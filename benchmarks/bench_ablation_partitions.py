"""Ablation — number of leaf partitions ``p`` (§5.2.1).

The paper fixes p = 1024 after a parameter sweep.  This bench re-runs the
sweep: more partitions give tighter leaf MBRs (fewer comparisons, better
filtering) at the cost of a taller tree and a longer assignment phase.
"""

import pytest

from _bench_utils import SCALE, bench_join
from repro.bench.workloads import synthetic_pair

_N_B = SCALE.large_b_steps[len(SCALE.large_b_steps) // 2]


@pytest.mark.benchmark(group="ablation-partitions")
@pytest.mark.parametrize("partitions", (64, 256, 1024, 4096), ids=lambda p: f"p{p}")
def test_partitions(benchmark, partitions):
    dataset_a, dataset_b = synthetic_pair("uniform", SCALE.large_a, _N_B, SCALE)
    bench_join(
        benchmark,
        "TOUCH",
        dataset_a,
        dataset_b,
        SCALE.large_epsilon,
        num_partitions=partitions,
    )
    benchmark.extra_info["num_partitions"] = partitions
