"""Backend-parity smoke benchmark for CI.

Runs one small Figure-9-style workload through every backend-aware
algorithm on both geometry backends, asserts that each algorithm returns
the *identical* result-pair set either way, and writes the wall-clock
timings as JSON (uploaded as a CI artifact so backend performance is
tracked over time).

Exit code 0 means parity held for every algorithm; any mismatch raises.

Usage::

    python benchmarks/smoke_backends.py --out bench-smoke.json
    python benchmarks/smoke_backends.py --scale small --algorithms TOUCH NL
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.bench.config import SCALES
from repro.bench.workloads import synthetic_pair
from repro.datasets.transform import inflate
from repro.joins.registry import BACKEND_AWARE, make_algorithm

#: Canonical order of the backend-aware algorithms for the smoke run.
DEFAULT_ALGORITHMS = ("TOUCH", "NL", "PBSM-100", "TwoLayer-100")


def smoke_one(algorithm: str, dataset_a, dataset_b, epsilon: float) -> dict:
    """Join one workload on both backends; assert identical pair sets."""
    build = inflate(dataset_a, epsilon)
    runs = {}
    for backend in ("object", "columnar"):
        start = time.perf_counter()
        result = make_algorithm(algorithm, backend=backend).join(build, dataset_b)
        wall = time.perf_counter() - start
        runs[backend] = {
            "wall_seconds": wall,
            "total_seconds": result.stats.total_seconds,
            "comparisons": result.stats.comparisons,
            "result_pairs": len(result.pairs),
            "memory_bytes": result.stats.memory_bytes,
            "pair_set": result.pair_set(),
        }
    obj, col = runs["object"], runs["columnar"]
    if obj["pair_set"] != col["pair_set"]:
        missing = obj["pair_set"] - col["pair_set"]
        extra = col["pair_set"] - obj["pair_set"]
        raise AssertionError(
            f"{algorithm}: backend results diverge — columnar is missing "
            f"{len(missing)} pairs and adds {len(extra)} spurious pairs"
        )
    for backend_run in runs.values():
        del backend_run["pair_set"]
    speedup = (
        obj["wall_seconds"] / col["wall_seconds"] if col["wall_seconds"] > 0 else None
    )
    return {"algorithm": algorithm, "runs": runs, "speedup_columnar": speedup}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument(
        "--algorithms",
        nargs="+",
        default=list(DEFAULT_ALGORITHMS),
        choices=sorted(BACKEND_AWARE),
        help="backend-aware algorithms to smoke-test",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the timing report as JSON"
    )
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    n_b = scale.large_b_steps[-1]
    dataset_a, dataset_b = synthetic_pair("uniform", scale.large_a, n_b, scale)
    report = {
        "workload": {
            "distribution": "uniform",
            "n_a": len(dataset_a),
            "n_b": len(dataset_b),
            "epsilon": scale.large_epsilon,
            "scale": scale.name,
        },
        "python": platform.python_version(),
        "results": [],
    }
    for algorithm in args.algorithms:
        entry = smoke_one(algorithm, dataset_a, dataset_b, scale.large_epsilon)
        report["results"].append(entry)
        runs = entry["runs"]
        print(
            f"{algorithm:10s} pairs={runs['object']['result_pairs']:8d}  "
            f"object={runs['object']['wall_seconds']:.3f}s  "
            f"columnar={runs['columnar']['wall_seconds']:.3f}s  "
            f"speedup={entry['speedup_columnar']:.2f}x  parity=OK"
        )
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2))
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
