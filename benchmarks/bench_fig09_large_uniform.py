"""Figure 9 — large uniform datasets, increasing |B|, ε = 5.

Series: comparisons (9a), execution time (9b) and memory footprint (9c)
for PBSM-500, PBSM-100, S3, INL, the synchronous R-Tree traversal and
TOUCH.  Paper shape: TOUCH fastest; PBSM-500 consumes about two orders of
magnitude more memory than everything else.
"""

import pytest

from _bench_utils import SCALE, bench_join
from repro.bench.workloads import LARGE_ALGORITHMS, synthetic_pair


@pytest.mark.benchmark(group="fig9-large-uniform")
@pytest.mark.parametrize("n_b", SCALE.large_b_steps, ids=lambda n: f"B{n}")
@pytest.mark.parametrize("algorithm", LARGE_ALGORITHMS)
def test_fig9(benchmark, algorithm, n_b):
    dataset_a, dataset_b = synthetic_pair("uniform", SCALE.large_a, n_b, SCALE)
    bench_join(benchmark, algorithm, dataset_a, dataset_b, SCALE.large_epsilon)
