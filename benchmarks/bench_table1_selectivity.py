"""Table 1 — join selectivity of the datasets (×1e-6).

Regenerates the paper's Table 1: the selectivity (result pairs divided by
|A|·|B|, Equation 1) of the uniform / Gaussian / clustered synthetic
pairs and of the neuroscience pair, for ε ∈ {5, 10}.

Paper shape to reproduce: at fixed ε, Gaussian > clustered > uniform among
the synthetic datasets; selectivity grows with ε for every dataset.
"""

import pytest

from _bench_utils import SCALE, bench_join
from repro.bench.workloads import LARGE_DISTRIBUTIONS, neuro_pair, synthetic_pair


@pytest.mark.benchmark(group="table1-selectivity")
@pytest.mark.parametrize("epsilon", SCALE.epsilons, ids=lambda e: f"eps{e:g}")
@pytest.mark.parametrize("distribution", LARGE_DISTRIBUTIONS)
def test_table1_synthetic(benchmark, distribution, epsilon):
    dataset_a, dataset_b = synthetic_pair(
        distribution, SCALE.table1_a, SCALE.table1_b, SCALE, space=SCALE.table1_space
    )
    record = bench_join(benchmark, "TOUCH", dataset_a, dataset_b, epsilon)
    benchmark.extra_info["selectivity_e6"] = record.selectivity * 1e6


@pytest.mark.benchmark(group="table1-selectivity")
@pytest.mark.parametrize("epsilon", SCALE.epsilons, ids=lambda e: f"eps{e:g}")
def test_table1_neuroscience(benchmark, epsilon):
    axons, dendrites = neuro_pair(SCALE)
    record = bench_join(benchmark, "TOUCH", axons, dendrites, epsilon)
    benchmark.extra_info["selectivity_e6"] = record.selectivity * 1e6
