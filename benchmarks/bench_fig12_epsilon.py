"""Figure 12 — impact of doubling ε on execution time.

Two equally sized datasets per distribution are joined with ε = 5 and
ε = 10.  Paper shape: most approaches roughly double their execution time
when ε doubles; both PBSM configurations grow *super-linearly* because a
larger ε replicates more objects into more cells.
"""

import pytest

from _bench_utils import SCALE, bench_join
from repro.bench.workloads import LARGE_ALGORITHMS, LARGE_DISTRIBUTIONS, synthetic_pair


@pytest.mark.benchmark(group="fig12-epsilon")
@pytest.mark.parametrize("epsilon", SCALE.epsilons, ids=lambda e: f"eps{e:g}")
@pytest.mark.parametrize("distribution", LARGE_DISTRIBUTIONS)
@pytest.mark.parametrize("algorithm", LARGE_ALGORITHMS)
def test_fig12(benchmark, algorithm, distribution, epsilon):
    dataset_a, dataset_b = synthetic_pair(
        distribution, SCALE.large_a, SCALE.large_a, SCALE
    )
    bench_join(benchmark, algorithm, dataset_a, dataset_b, epsilon)
