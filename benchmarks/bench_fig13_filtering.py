"""Figure 13 — TOUCH's filtering capability, ε = 5.

Counts the objects of dataset B eliminated by the assignment phase
(they overlap no tree-node MBR and can never join).  Paper shape: the
less uniform the distribution, the more objects are filtered — clustered
most, Gaussian some, uniform (nearly) none.
"""

import pytest

from _bench_utils import SCALE, bench_join
from repro.bench.workloads import LARGE_DISTRIBUTIONS, synthetic_pair


@pytest.mark.benchmark(group="fig13-filtering")
@pytest.mark.parametrize("n_b", SCALE.large_b_steps, ids=lambda n: f"B{n}")
@pytest.mark.parametrize("distribution", LARGE_DISTRIBUTIONS)
def test_fig13(benchmark, distribution, n_b):
    dataset_a, dataset_b = synthetic_pair(distribution, SCALE.large_a, n_b, SCALE)
    record = bench_join(benchmark, "TOUCH", dataset_a, dataset_b, SCALE.large_epsilon)
    benchmark.extra_info["filtered_fraction"] = record.filtered / max(1, record.n_b)
