"""§6.3 — loading the data vs joining it.

The paper shows that reading the datasets into memory (≤ 2 s) is dwarfed
by the spatial join itself (334-1512 s for PBSM-500), motivating work on
the in-memory join.  Here the binary load of dataset B and the PBSM-500
join are benchmarked side by side; the join must dominate at every |B|.
"""

import pytest

from _bench_utils import SCALE, bench_join
from repro.bench.workloads import synthetic_pair
from repro.datasets.io import read_dataset, write_dataset


@pytest.mark.benchmark(group="loading")
@pytest.mark.parametrize("n_b", SCALE.large_b_steps, ids=lambda n: f"B{n}")
def test_load_time(benchmark, tmp_path, n_b):
    _, dataset_b = synthetic_pair("uniform", SCALE.large_a, n_b, SCALE)
    path = tmp_path / f"b-{n_b}.bin"
    write_dataset(dataset_b, path)

    loaded = benchmark(read_dataset, path)
    assert len(loaded) == n_b
    benchmark.extra_info["n_b"] = n_b


@pytest.mark.benchmark(group="loading")
@pytest.mark.parametrize("n_b", SCALE.large_b_steps, ids=lambda n: f"B{n}")
def test_join_time_pbsm500(benchmark, n_b):
    dataset_a, dataset_b = synthetic_pair("uniform", SCALE.large_a, n_b, SCALE)
    bench_join(benchmark, "PBSM-500", dataset_a, dataset_b, SCALE.large_epsilon)
