"""Figure 14 — impact of TOUCH's fanout on filtering and comparisons.

Fanout sweep from 2 to 20 at fixed |A| and the largest |B| of the sweep,
ε = 5.  Paper shape: a smaller fanout yields a taller tree, *more*
filtered objects (14a; none on uniform data) and *fewer* comparisons
(14b; ~1.5× fewer at fanout 2 than at fanout 20).
"""

import pytest

from _bench_utils import SCALE, bench_join
from repro.bench.workloads import LARGE_DISTRIBUTIONS, synthetic_pair


@pytest.mark.benchmark(group="fig14-fanout")
@pytest.mark.parametrize("fanout", SCALE.fanout_sweep, ids=lambda f: f"fanout{f}")
@pytest.mark.parametrize("distribution", LARGE_DISTRIBUTIONS)
def test_fig14(benchmark, distribution, fanout):
    dataset_a, dataset_b = synthetic_pair(
        distribution, SCALE.large_a, SCALE.large_b_steps[-1], SCALE
    )
    # num_partitions=None applies Algorithm 2's literal rule (buckets of
    # size `fanout`), which is what makes the fanout drive leaf-MBR size
    # and hence the paper's filtering/comparison trends.
    record = bench_join(
        benchmark,
        "TOUCH",
        dataset_a,
        dataset_b,
        SCALE.large_epsilon,
        fanout=fanout,
        num_partitions=None,
    )
    benchmark.extra_info["fanout"] = fanout
    benchmark.extra_info["filtered_fraction"] = record.filtered / max(1, record.n_b)
