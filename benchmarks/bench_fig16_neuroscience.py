"""Figure 16 — neuroscience datasets, ε ∈ {5, 10}.

The axon × dendrite join of the touch-detection use case: execution time
(16a), comparisons (16b) and memory (16c) for every approach.  Paper
shape: TOUCH wins in time and memory; PBSM-500 is second-fastest but
needs far more memory; TOUCH filters a double-digit percentage of the
dendrites (26.58% at ε = 5, 21.23% at ε = 10) thanks to the dense-centre
sparse-rim density profile.
"""

import pytest

from _bench_utils import SCALE, bench_join
from repro.bench.workloads import LARGE_ALGORITHMS, neuro_pair


@pytest.mark.benchmark(group="fig16-neuroscience")
@pytest.mark.parametrize("epsilon", SCALE.epsilons, ids=lambda e: f"eps{e:g}")
@pytest.mark.parametrize("algorithm", LARGE_ALGORITHMS)
def test_fig16(benchmark, algorithm, epsilon):
    axons, dendrites = neuro_pair(SCALE)
    record = bench_join(benchmark, algorithm, axons, dendrites, epsilon)
    benchmark.extra_info["filtered_fraction"] = record.filtered / max(1, record.n_b)
