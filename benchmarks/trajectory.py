"""Benchmark-trajectory runner: record the perf curve, gate regressions.

Runs the medium Figure-9 (uniform) and Figure-11 (clustered) workloads
for the headline algorithms, the ``repeated_probe`` build-once/
probe-many workload, the ``serve_load`` sharded scatter-gather
workload (one row per shard count, qps + p50/p99 in the row extras),
the ``bench_spill`` memory-governor workload (budgeted joins at a
quarter of the estimated footprint, spill counters in the row extras),
the ``filter_refine`` non-point workload (mbr vs exact TOUCH on
the polygon/linestring datasets, refine counters in the row extras),
and the ``auto_oracle`` workload (``algorithm="auto"`` raced against
the fastest explicit variant, pair parity hard-asserted, the
auto/oracle ratio warn-gated), and writes a flat ``BENCH_PR<N>.json``
artifact at the repo root — the
committed point of this PR's performance trajectory.  Row schema
(stable across PRs, so points are comparable)::

    {"algorithm": ..., "backend": ..., "workload": ..., "seconds": ..., "pairs": ...}

When an earlier ``BENCH_*.json`` point exists, matching rows are
compared and any slowdown beyond ``--threshold`` (default 25%) is
reported as a **warning** — CI hardware varies, so timing never hard-
fails unless ``--strict`` is given.  Pair-count mismatches against the
previous point are warned about loudly too: same workload, same scale,
different pairs means a correctness change, not noise.

Usage::

    python benchmarks/trajectory.py --out BENCH_PR7.json
    python benchmarks/trajectory.py --scale smoke --quick   # CI-less dry run
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import sys
import time
from pathlib import Path

from repro.bench.config import SCALES
from repro.bench.runner import run_algorithm
from repro.bench.workloads import synthetic_pair
from repro.service.driver import run_serve_workload

#: The headline algorithms whose trajectory we track: the paper's
#: champion, the duplicate-free two-layer join, and the strongest
#: replicating baseline.
TRAJECTORY_ALGORITHMS = ("TOUCH", "TwoLayer-500", "PBSM-500")

#: (figure, distribution) pairs of the tracked one-shot workloads.
TRAJECTORY_FIGURES = (("fig9", "uniform"), ("fig11", "clustered"))

#: Extra head-to-head TOUCH rows per figure: the columnar baseline vs
#: the compiled kernel tier.  Rows are keyed by the *requested* backend
#: so the trajectory key stays stable even on hosts where the compiled
#: tier degrades to columnar (the resolved tier rides along as
#: ``resolved_backend``).
TOUCH_BACKEND_ROWS = ("compiled",)

#: Queries issued against the cached index in the serve workload (the
#: acceptance workload probes 100 times).
SERVE_PROBES = 100

#: The serve workload must beat rebuild-per-query by this factor on the
#: medium workload; below it the script warns (or fails with --strict).
MIN_SERVE_SPEEDUP = 5.0

#: Shard counts tracked for the scatter-gather serving tier (two points
#: minimum, so the trajectory records fan-out scaling, not one sample).
SERVE_LOAD_SHARDS = (1, 2, 4)

#: Batches issued / kept in flight per serve_load shard count.
SERVE_LOAD_PROBES = 40
SERVE_LOAD_CONCURRENCY = 8

#: Budget fractions of the estimated footprint tracked by the spill rows.
SPILL_DIVISORS = (4,)

#: Shape workloads tracked by the filter-refine rows (mbr = filter
#: only, exact = filter + refinement; the counter identity is asserted).
FILTER_REFINE_DISTRIBUTIONS = ("polygons", "lines")

#: Oracle pool raced against ``algorithm="auto"``: the tracked headline
#: algorithms plus the finer-grid variants the cost model tends to pick
#: for one-shot workloads.
AUTO_ORACLE_POOL = TRAJECTORY_ALGORITHMS + ("PBSM-100", "TwoLayer-100")

#: auto must land within this fraction of the per-workload oracle (the
#: fastest pool member, timed in the same run); beyond it the script
#: warns (or fails with --strict).  The margin absorbs auto's real
#: planning cost — fingerprinting and sketching both datasets — plus
#: ordinary timing noise.
AUTO_ORACLE_MARGIN = 0.10


def run_figures(scale, backend: str | None) -> list[dict]:
    """One-shot joins: one row per (figure, algorithm) at one |B| step."""
    rows = []
    n_b = scale.large_b_steps[len(scale.large_b_steps) // 2]
    for figure, distribution in TRAJECTORY_FIGURES:
        dataset_a, dataset_b = synthetic_pair(
            distribution, scale.large_a, n_b, scale
        )
        workload = f"{figure}/{distribution}/a{scale.large_a}-b{n_b}/eps{scale.large_epsilon:g}"
        for algorithm in TRAJECTORY_ALGORITHMS:
            overrides = {"backend": backend} if backend else {}
            start = time.perf_counter()
            record = run_algorithm(
                algorithm, dataset_a, dataset_b, scale.large_epsilon, **overrides
            )
            wall = time.perf_counter() - start
            rows.append(
                {
                    "algorithm": record.algorithm,
                    "backend": record.extra.get("backend", backend or "auto"),
                    "workload": workload,
                    "seconds": wall,
                    "pairs": record.result_pairs,
                }
            )
            print(
                f"  {record.algorithm:14s} {workload:42s} "
                f"{wall:8.3f}s  pairs={record.result_pairs}"
            )
        for requested in TOUCH_BACKEND_ROWS:
            start = time.perf_counter()
            record = run_algorithm(
                "TOUCH", dataset_a, dataset_b, scale.large_epsilon,
                backend=requested,
            )
            wall = time.perf_counter() - start
            resolved = record.extra.get("backend", requested)
            rows.append(
                {
                    "algorithm": record.algorithm,
                    "backend": requested,
                    "workload": workload,
                    "seconds": wall,
                    "pairs": record.result_pairs,
                    "resolved_backend": resolved,
                }
            )
            print(
                f"  {record.algorithm:14s} {workload:42s} "
                f"{wall:8.3f}s  pairs={record.result_pairs} "
                f"[{requested} -> {resolved}]"
            )
    return rows


def run_repeated_probe(scale, backend: str | None) -> tuple[list[dict], list[str]]:
    """The serve workload: cached-index and rebuild-per-query rows."""
    rows: list[dict] = []
    warnings: list[str] = []
    n_b = scale.large_b_steps[len(scale.large_b_steps) // 2]
    dataset_a, dataset_b = synthetic_pair("uniform", scale.large_a, n_b, scale)
    overrides = {"backend": backend} if backend else {}
    for algorithm in ("TOUCH", "TwoLayer-500"):
        summary = run_serve_workload(
            dataset_a,
            dataset_b,
            scale.large_epsilon,
            algorithm=algorithm,
            probes=SERVE_PROBES,
            compare_rebuild=True,  # hard-asserts pair parity per batch
            **overrides,
        )
        workload = (
            f"repeated_probe/uniform/a{scale.large_a}-b{n_b}"
            f"/eps{scale.large_epsilon:g}/q{summary['probes']}"
        )
        resolved = backend or "auto"
        rows.append(
            {
                "algorithm": summary["algorithm"],
                "backend": resolved,
                "workload": f"{workload}/cached",
                "seconds": summary["serve_seconds"],
                "pairs": summary["result_pairs"],
            }
        )
        rows.append(
            {
                "algorithm": summary["algorithm"],
                "backend": resolved,
                "workload": f"{workload}/rebuild",
                "seconds": summary["rebuild_seconds"],
                "pairs": summary["rebuild_pairs"],
            }
        )
        print(
            f"  {summary['algorithm']:14s} {workload:42s} cached "
            f"{summary['serve_seconds']:.3f}s vs rebuild "
            f"{summary['rebuild_seconds']:.3f}s -> {summary['speedup']:.1f}x "
            "(parity asserted)"
        )
        if scale.name != "smoke" and summary["speedup"] < MIN_SERVE_SPEEDUP:
            warnings.append(
                f"{summary['algorithm']} serve speedup {summary['speedup']:.1f}x "
                f"is below the {MIN_SERVE_SPEEDUP:g}x build-once/probe-many target"
            )
    return rows, warnings


def run_serve_load(scale, backend: str | None) -> list[dict]:
    """The sharded tier: one row per shard count, parity-asserted.

    ``seconds`` is the concurrent wall-clock of the whole batch set;
    qps and the latency percentiles ride in the row's extra keys (the
    comparison gate only reads ``seconds`` / ``pairs``, so the schema
    stays stable).
    """
    from repro.serving import run_scatter_workload

    rows: list[dict] = []
    n_b = scale.large_b_steps[len(scale.large_b_steps) // 2]
    dataset_a, dataset_b = synthetic_pair("uniform", scale.large_a, n_b, scale)
    overrides = {"backend": backend} if backend else {}
    resolved = backend or "auto"
    for shards in SERVE_LOAD_SHARDS:
        summary = run_scatter_workload(
            list(dataset_a),
            list(dataset_b),
            scale.large_epsilon,
            algorithm="TOUCH",
            shards=shards,
            probes=SERVE_LOAD_PROBES,
            concurrency=SERVE_LOAD_CONCURRENCY,
            **overrides,
        )
        workload = (
            f"serve_load/uniform/a{scale.large_a}-b{n_b}"
            f"/eps{scale.large_epsilon:g}/shards{shards}"
        )
        rows.append(
            {
                "algorithm": summary["algorithm"],
                "backend": resolved,
                "workload": workload,
                "seconds": summary["serve_seconds"],
                "pairs": summary["result_pairs"],
                "qps": summary["qps"],
                "p50_ms": summary["p50_ms"],
                "p99_ms": summary["p99_ms"],
            }
        )
        print(
            f"  {summary['algorithm']:14s} {workload:42s} "
            f"{summary['qps']:7.1f} qps  p50 {summary['p50_ms']:.2f} ms  "
            f"p99 {summary['p99_ms']:.2f} ms (parity asserted)"
        )
    return rows


def run_spill(scale, backend: str | None) -> list[dict]:
    """Memory-governor rows: budgeted joins at 1/4 footprint, parity asserted.

    ``seconds`` is the budgeted join's wall-clock (the memory/disk
    trade's cost); spill counters ride in the row extras.  Parity with
    the unbudgeted join is asserted — a spill row that drops pairs must
    never land in the trajectory.
    """
    from repro.datasets.transform import inflate
    from repro.joins.base import dimensionality
    from repro.joins.registry import make_algorithm
    from repro.memory import BudgetedSpatialJoin

    rows: list[dict] = []
    n_b = scale.large_b_steps[len(scale.large_b_steps) // 2]
    dataset_a, dataset_b = synthetic_pair("uniform", scale.large_a, n_b, scale)
    build = inflate(dataset_a, scale.large_epsilon)
    probe = list(dataset_b)
    dim = dimensionality(build, probe)
    overrides = {"backend": backend} if backend else {}
    resolved = backend or "auto"
    for algorithm in ("TOUCH", "TwoLayer-500"):
        baseline = make_algorithm(algorithm, **overrides).join(build, probe)
        footprint = make_algorithm(algorithm, **overrides).estimate_bytes(
            len(build), len(probe), dim
        )
        for divisor in SPILL_DIVISORS:
            budget = max(1, footprint // divisor)
            joiner = BudgetedSpatialJoin(
                lambda: make_algorithm(algorithm, **overrides),
                max_bytes=budget,
            )
            start = time.perf_counter()
            result = joiner.join(build, probe)
            wall = time.perf_counter() - start
            if result.pair_set() != baseline.pair_set():
                raise AssertionError(
                    f"budgeted {algorithm} at 1/{divisor} footprint diverges "
                    "from the unbudgeted join"
                )
            extra = result.stats.extra
            if extra.get("spilled_partitions", 0) <= 0:
                raise AssertionError(
                    f"budgeted {algorithm} at 1/{divisor} footprint spilled "
                    "nothing; the row would not measure the spill path"
                )
            workload = (
                f"bench_spill/uniform/a{scale.large_a}-b{n_b}"
                f"/eps{scale.large_epsilon:g}/budget1-{divisor}"
            )
            rows.append(
                {
                    "algorithm": algorithm,
                    "backend": resolved,
                    "workload": workload,
                    "seconds": wall,
                    "pairs": len(result.pairs),
                    "budget_bytes": budget,
                    "spilled_partitions": extra["spilled_partitions"],
                    "spill_bytes_written": extra["spill_bytes_written"],
                    "unspills": extra["unspills"],
                    "spill_passes": extra["spill_passes"],
                }
            )
            print(
                f"  {algorithm:14s} {workload:42s} "
                f"{wall:8.3f}s  pairs={len(result.pairs)} "
                f"spilled={extra['spilled_partitions']} "
                f"unspills={extra['unspills']} (parity asserted)"
            )
    return rows


def run_filter_refine(scale, backend: str | None) -> list[dict]:
    """Filter-refine rows: mbr vs exact TOUCH on the shape workloads.

    The exact rows carry the refine counters; the counter identity
    ``true_hits + exact_tests == candidate_pairs - false_hit_prunes``
    is asserted (full oracle parity is pinned by the test suite and the
    ``refine-parity`` CI job, which this script does not repeat at
    trajectory scale).
    """
    from repro.bench.runner import use_geometry

    rows = []
    n_b = scale.large_b_steps[len(scale.large_b_steps) // 2]
    for distribution in FILTER_REFINE_DISTRIBUTIONS:
        dataset_a, dataset_b = synthetic_pair(
            distribution, scale.large_a, n_b, scale
        )
        for geometry in ("mbr", "exact"):
            workload = (
                f"filter_refine/{distribution}/a{scale.large_a}-b{n_b}"
                f"/eps{scale.large_epsilon:g}/{geometry}"
            )
            overrides = {"backend": backend} if backend else {}
            with use_geometry(geometry):
                start = time.perf_counter()
                record = run_algorithm(
                    "TOUCH", dataset_a, dataset_b, scale.large_epsilon,
                    **overrides,
                )
                wall = time.perf_counter() - start
            row = {
                "algorithm": record.algorithm,
                "backend": record.extra.get("backend", backend or "auto"),
                "workload": workload,
                "seconds": wall,
                "pairs": record.result_pairs,
            }
            if geometry == "exact":
                extra = record.extra
                if (
                    extra["true_hits"] + extra["exact_tests"]
                    != extra["candidate_pairs"] - extra["false_hit_prunes"]
                ):
                    raise AssertionError(
                        f"refine counter identity broken on {workload}: "
                        f"{extra['true_hits']} + {extra['exact_tests']} != "
                        f"{extra['candidate_pairs']} - "
                        f"{extra['false_hit_prunes']}"
                    )
                row.update(
                    candidate_pairs=extra["candidate_pairs"],
                    false_hit_prunes=extra["false_hit_prunes"],
                    true_hits=extra["true_hits"],
                    exact_tests=extra["exact_tests"],
                    refine_seconds=extra["refine_seconds"],
                )
            rows.append(row)
            print(
                f"  {record.algorithm:14s} {workload:42s} "
                f"{wall:8.3f}s  pairs={record.result_pairs}"
                + (
                    f" cands={row['candidate_pairs']} "
                    f"true_hits={row['true_hits']} (identity asserted)"
                    if geometry == "exact"
                    else ""
                )
            )
    return rows


def run_auto_oracle(
    scale,
    backend: str | None,
    cached_oracle: "dict[str, float] | None" = None,
) -> tuple[list[dict], list[str]]:
    """Race ``algorithm="auto"`` against a per-workload oracle.

    One-shot Fig-9/Fig-11: auto joins each workload (its wall-clock
    includes planning), then every :data:`AUTO_ORACLE_POOL` member joins
    the identical datasets; pair counts are **asserted identical**
    across all runs, and auto is warn-gated within
    :data:`AUTO_ORACLE_MARGIN` of the fastest member.  Repeated-probe:
    the serve loop runs with auto end-to-end — ``compare_rebuild``
    hard-asserts pair-set parity per batch — gated against the best
    cached serve timing (``cached_oracle`` maps algorithm → cached
    seconds from this run's ``repeated_probe`` rows; without one, a
    TOUCH serve pass is timed as the reference).
    """
    rows: list[dict] = []
    warnings: list[str] = []
    overrides = {"backend": backend} if backend else {}
    resolved = backend or "auto"
    n_b = scale.large_b_steps[len(scale.large_b_steps) // 2]
    for figure, distribution in TRAJECTORY_FIGURES:
        dataset_a, dataset_b = synthetic_pair(
            distribution, scale.large_a, n_b, scale
        )
        workload = (
            f"auto_oracle/{figure}/{distribution}"
            f"/a{scale.large_a}-b{n_b}/eps{scale.large_epsilon:g}"
        )
        start = time.perf_counter()
        record = run_algorithm(
            "auto", dataset_a, dataset_b, scale.large_epsilon, **overrides
        )
        auto_seconds = time.perf_counter() - start
        chosen = record.algorithm
        auto_pairs = record.result_pairs
        oracle_name, oracle_seconds = "", float("inf")
        for algorithm in AUTO_ORACLE_POOL:
            start = time.perf_counter()
            reference = run_algorithm(
                algorithm, dataset_a, dataset_b, scale.large_epsilon, **overrides
            )
            wall = time.perf_counter() - start
            if reference.result_pairs != auto_pairs:
                raise AssertionError(
                    f"auto ({chosen}) disagrees with {algorithm} on "
                    f"{workload}: {auto_pairs} vs {reference.result_pairs} pairs"
                )
            if wall < oracle_seconds:
                oracle_name, oracle_seconds = algorithm, wall
        ratio = auto_seconds / oracle_seconds if oracle_seconds > 0 else 1.0
        rows.append(
            {
                # Keyed as "auto" so the cross-PR comparison tracks the
                # optimizer itself even when its choice changes.
                "algorithm": "auto",
                "backend": resolved,
                "workload": workload,
                "seconds": auto_seconds,
                "pairs": auto_pairs,
                "chosen": chosen,
                "oracle_algorithm": oracle_name,
                "oracle_seconds": oracle_seconds,
                "oracle_ratio": ratio,
            }
        )
        print(
            f"  {'auto->' + chosen:14s} {workload:42s} "
            f"{auto_seconds:8.3f}s  oracle {oracle_name} "
            f"{oracle_seconds:.3f}s ({ratio:.2f}x, parity asserted)"
        )
        if scale.name != "smoke" and ratio > 1.0 + AUTO_ORACLE_MARGIN:
            warnings.append(
                f"auto ({chosen}) on {workload} took {ratio:.2f}x the oracle "
                f"{oracle_name} ({auto_seconds:.3f}s vs {oracle_seconds:.3f}s); "
                f"margin is {AUTO_ORACLE_MARGIN:.0%}"
            )

    # Repeated probes: auto through the serve loop, parity per batch.
    dataset_a, dataset_b = synthetic_pair("uniform", scale.large_a, n_b, scale)
    summary = run_serve_workload(
        dataset_a,
        dataset_b,
        scale.large_epsilon,
        algorithm="auto",
        probes=SERVE_PROBES,
        compare_rebuild=True,  # hard-asserts pair-set parity per batch
        **overrides,
    )
    workload = (
        f"auto_oracle/repeated_probe/uniform/a{scale.large_a}-b{n_b}"
        f"/eps{scale.large_epsilon:g}/q{summary['probes']}"
    )
    oracle_name, oracle_seconds = "", float("inf")
    for name, seconds in (cached_oracle or {}).items():
        if seconds < oracle_seconds:
            oracle_name, oracle_seconds = name, seconds
    if not oracle_name:
        reference = run_serve_workload(
            dataset_a,
            dataset_b,
            scale.large_epsilon,
            algorithm="TOUCH",
            probes=SERVE_PROBES,
            **overrides,
        )
        oracle_name, oracle_seconds = "TOUCH", reference["serve_seconds"]
    ratio = (
        summary["serve_seconds"] / oracle_seconds if oracle_seconds > 0 else 1.0
    )
    rows.append(
        {
            "algorithm": "auto",
            "backend": resolved,
            "workload": workload,
            "seconds": summary["serve_seconds"],
            "pairs": summary["result_pairs"],
            "chosen": summary["algorithm"],
            "oracle_algorithm": oracle_name,
            "oracle_seconds": oracle_seconds,
            "oracle_ratio": ratio,
        }
    )
    print(
        f"  {'auto->' + summary['algorithm']:14s} {workload:42s} "
        f"{summary['serve_seconds']:8.3f}s  oracle {oracle_name} "
        f"{oracle_seconds:.3f}s ({ratio:.2f}x, parity asserted)"
    )
    if scale.name != "smoke" and ratio > 1.0 + AUTO_ORACLE_MARGIN:
        warnings.append(
            f"auto ({summary['algorithm']}) on {workload} took {ratio:.2f}x "
            f"the cached oracle {oracle_name} ({summary['serve_seconds']:.3f}s "
            f"vs {oracle_seconds:.3f}s); margin is {AUTO_ORACLE_MARGIN:.0%}"
        )
    return rows, warnings


def previous_point(
    root: Path, out: Path, current_pr: int | None
) -> "tuple[str, dict] | None":
    """The latest committed ``BENCH_PR<N>.json`` from a *previous* PR.

    With ``current_pr`` known, only strictly lower-numbered points
    qualify — this PR's own committed point must never serve as its
    baseline (it was recorded on different hardware, so comparing a
    fresh run against it would gate on machine deltas, not code).
    """
    candidates = []
    for path in root.glob("BENCH_*.json"):
        if path.resolve() == out.resolve():
            continue
        match = re.fullmatch(r"BENCH_PR(\d+)\.json", path.name)
        if match is None:
            continue
        order = int(match.group(1))
        if current_pr is not None and order >= current_pr:
            continue
        candidates.append((order, path))
    if not candidates:
        return None
    _, path = max(candidates)
    try:
        return path.name, json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"WARNING: could not read previous point {path.name}: {error}")
        return None


def compare_points(rows: list[dict], previous: dict, threshold: float) -> list[str]:
    """Warnings for rows slower than (or disagreeing with) the last point.

    The previous point is committed data from another PR on another
    machine — a missing row, a missing key, or a malformed entry must
    never crash the gate.  Anything that cannot be compared prints a
    "no baseline" note and the run continues.
    """
    warnings = []
    old_rows: dict[tuple, dict] = {}
    previous_rows = previous.get("rows") if isinstance(previous, dict) else None
    for row in previous_rows or []:
        try:
            old_rows[(row["algorithm"], row["backend"], row["workload"])] = row
        except (TypeError, KeyError):
            print("WARNING: malformed row in previous point; ignoring it")
    for row in rows:
        key = (row["algorithm"], row["backend"], row["workload"])
        label = f"{row['algorithm']} [{row['backend']}] {row['workload']}"
        old = old_rows.get(key)
        if old is None:
            print(f"no baseline for {label}; skipping comparison")
            continue
        old_pairs = old.get("pairs")
        old_seconds = old.get("seconds")
        if not isinstance(old_seconds, (int, float)) or isinstance(
            old_seconds, bool
        ):
            print(
                f"no baseline timing for {label} (previous row lacks "
                "'seconds'); skipping comparison"
            )
            continue
        if old_pairs is not None and row["pairs"] != old_pairs:
            warnings.append(
                f"{row['algorithm']} {row['workload']}: pairs changed "
                f"{old_pairs} -> {row['pairs']} — same workload, different "
                "result; investigate before trusting any timing"
            )
        if old_seconds > 0:
            slowdown = row["seconds"] / old_seconds - 1.0
            if slowdown > threshold:
                warnings.append(
                    f"{row['algorithm']} {row['workload']}: {slowdown:+.0%} "
                    f"({old_seconds:.3f}s -> {row['seconds']:.3f}s) exceeds "
                    f"the {threshold:.0%} regression threshold"
                )
    return warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="medium")
    parser.add_argument("--backend", default=None, help="geometry backend override")
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_PR10.json"), help="trajectory point to write"
    )
    parser.add_argument(
        "--compare-root",
        type=Path,
        default=None,
        help="directory holding previous BENCH_*.json points (default: --out's directory)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional slowdown vs the previous point that triggers a warning",
    )
    parser.add_argument(
        "--pr",
        type=int,
        default=None,
        help="this point's PR number (default: parsed from --out); only "
        "strictly older BENCH_PR<N>.json points are used as the baseline",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the repeated_probe and serve_load workloads (fast "
        "smoke of the runner)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on any regression warning instead of warning only",
    )
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    print(f"benchmark trajectory @ scale={scale.name}")
    rows = run_figures(scale, args.backend)
    warnings: list[str] = []
    if not args.quick:
        probe_rows, probe_warnings = run_repeated_probe(scale, args.backend)
        rows.extend(probe_rows)
        warnings.extend(probe_warnings)
        rows.extend(run_serve_load(scale, args.backend))
        rows.extend(run_spill(scale, args.backend))
        rows.extend(run_filter_refine(scale, args.backend))
        cached_oracle = {
            row["algorithm"]: row["seconds"]
            for row in probe_rows
            if row["workload"].endswith("/cached")
        }
        auto_rows, auto_warnings = run_auto_oracle(
            scale, args.backend, cached_oracle
        )
        rows.extend(auto_rows)
        warnings.extend(auto_warnings)

    point = {
        "schema": "bench-trajectory/v1",
        "scale": scale.name,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "rows": rows,
    }
    current_pr = args.pr
    if current_pr is None:
        match = re.match(r"BENCH_PR(\d+)", args.out.name)
        current_pr = int(match.group(1)) if match else None
    root = args.compare_root or args.out.parent
    previous = previous_point(root, args.out, current_pr)
    if previous is not None:
        name, data = previous
        print(f"comparing against previous trajectory point {name}")
        warnings.extend(compare_points(rows, data, args.threshold))
    else:
        print("no previous-PR BENCH_PR<N>.json point found; recording a first one")

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(point, indent=2) + "\n")
    print(f"wrote {args.out}")

    for warning in warnings:
        print(f"WARNING: {warning}")
    if warnings and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
