"""Figure 11 — large clustered datasets, increasing |B|, ε = 5.

Same series as Figure 9 on skewed data.  Paper shape: S3's space-oriented
partitioning degrades on clustered data (it falls behind INL here while
leading it on uniform/Gaussian); TOUCH's data-oriented partitioning and
filtering keep it fastest.
"""

import pytest

from _bench_utils import SCALE, bench_join
from repro.bench.workloads import LARGE_ALGORITHMS, synthetic_pair


@pytest.mark.benchmark(group="fig11-large-clustered")
@pytest.mark.parametrize("n_b", SCALE.large_b_steps, ids=lambda n: f"B{n}")
@pytest.mark.parametrize("algorithm", LARGE_ALGORITHMS)
def test_fig11(benchmark, algorithm, n_b):
    dataset_a, dataset_b = synthetic_pair("clustered", SCALE.large_a, n_b, SCALE)
    bench_join(benchmark, algorithm, dataset_a, dataset_b, SCALE.large_epsilon)
