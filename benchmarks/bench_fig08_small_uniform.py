"""Figure 8 — small uniform datasets, all eight algorithms, ε = 10.

The only figure that includes the quadratic nested loop and the plane
sweep.  Paper shape: TOUCH and both PBSM configurations drastically
outperform NL and PS in both comparisons and execution time, and
execution time tracks the number of comparisons.
"""

import pytest

from _bench_utils import SCALE, bench_join
from repro.bench.workloads import FIG8_ALGORITHMS, synthetic_pair


@pytest.mark.benchmark(group="fig8-small-uniform")
@pytest.mark.parametrize("n_b", SCALE.fig8_b_steps, ids=lambda n: f"B{n}")
@pytest.mark.parametrize("algorithm", FIG8_ALGORITHMS)
def test_fig8(benchmark, algorithm, n_b):
    dataset_a, dataset_b = synthetic_pair(
        "uniform", SCALE.fig8_a, n_b, SCALE, space=SCALE.fig8_space
    )
    bench_join(benchmark, algorithm, dataset_a, dataset_b, SCALE.fig8_epsilon)
