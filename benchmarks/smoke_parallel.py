"""Parallel-engine smoke benchmark: speedup vs workers, parity enforced.

Runs the Figure-9 uniform workload sequentially and through the
multiprocess engine at increasing worker counts, asserting the *pair
sets are identical* at every configuration (any mismatch raises — that
part is never flaky) and recording the wall-clock speedups as a JSON
artifact uploaded by CI, seeding the performance trajectory.

Timing is reported, not asserted: if parallel execution at the highest
worker count is slower than sequential, the script *warns* (CI hardware
varies, container schedulers throttle) but still exits 0 unless
``--strict-timing`` is given.

Usage::

    python benchmarks/smoke_parallel.py --out bench-parallel.json
    python benchmarks/smoke_parallel.py --scale medium --workers 1 2 4
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.bench.config import SCALES
from repro.bench.workloads import synthetic_pair
from repro.datasets.transform import inflate
from repro.joins.registry import ALGORITHMS, AlgorithmSpec
from repro.parallel.decompose import DECOMPOSE_KINDS
from repro.parallel.engine import ParallelChunkedJoin, shutdown_pools

DEFAULT_WORKER_STEPS = (1, 2, 4)


def run_sequential(spec: AlgorithmSpec, build, probe) -> dict:
    start = time.perf_counter()
    result = spec.make().join(build, probe)
    wall = time.perf_counter() - start
    return {
        "engine": "sequential",
        "wall_seconds": wall,
        "result_pairs": len(result.pairs),
        "comparisons": result.stats.comparisons,
        "pair_set": result.pair_set(),
    }


def run_parallel(spec: AlgorithmSpec, build, probe, workers: int, kind: str) -> dict:
    engine = ParallelChunkedJoin(spec, workers=workers, kind=kind)
    start = time.perf_counter()
    result = engine.join(build, probe)
    wall = time.perf_counter() - start
    extra = result.stats.extra
    return {
        "engine": "parallel",
        "workers": workers,
        "decompose": kind,
        "n_chunks": extra["n_chunks"],
        "wall_seconds": wall,
        "decompose_seconds": extra["decompose_seconds"],
        "worker_join_seconds": extra["worker_join_seconds"],
        "merge_seconds": extra["merge_seconds"],
        "result_pairs": len(result.pairs),
        "comparisons": result.stats.comparisons,
        "pair_set": result.pair_set(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="medium")
    parser.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="TOUCH")
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=list(DEFAULT_WORKER_STEPS),
        help="worker counts of the speedup sweep",
    )
    parser.add_argument("--decompose", choices=DECOMPOSE_KINDS, default="slabs")
    parser.add_argument(
        "--out", type=Path, default=None, help="write the speedup report as JSON"
    )
    parser.add_argument(
        "--strict-timing",
        action="store_true",
        help="fail (exit 1) when the widest parallel run is slower than "
        "sequential instead of warning",
    )
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    n_b = scale.large_b_steps[len(scale.large_b_steps) // 2]
    dataset_a, dataset_b = synthetic_pair("uniform", scale.large_a, n_b, scale)
    build = inflate(dataset_a, scale.large_epsilon)
    probe = list(dataset_b)
    spec = AlgorithmSpec.create(args.algorithm)

    runs = [run_sequential(spec, build, probe)]
    for workers in args.workers:
        runs.append(run_parallel(spec, build, probe, workers, args.decompose))

    # Pair parity is the hard invariant — assert it before any reporting.
    reference = runs[0]["pair_set"]
    for run in runs[1:]:
        if run["pair_set"] != reference:
            missing = len(reference - run["pair_set"])
            extra = len(run["pair_set"] - reference)
            raise AssertionError(
                f"parallel({run['workers']}, {run['decompose']}) diverges from "
                f"sequential: {missing} missing pairs, {extra} spurious pairs"
            )
    for run in runs:
        del run["pair_set"]

    sequential_wall = runs[0]["wall_seconds"]
    for run in runs[1:]:
        run["speedup"] = (
            sequential_wall / run["wall_seconds"] if run["wall_seconds"] > 0 else None
        )

    print(
        f"{args.algorithm} on fig9-uniform/{args.scale} "
        f"(|A|={len(dataset_a)}, |B|={len(dataset_b)}, "
        f"eps={scale.large_epsilon:g}, {args.decompose})"
    )
    print(f"  sequential      {sequential_wall:8.3f}s  parity=reference")
    for run in runs[1:]:
        print(
            f"  parallel({run['workers']})     {run['wall_seconds']:8.3f}s  "
            f"speedup={run['speedup']:.2f}x  chunks={run['n_chunks']}  parity=OK"
        )

    widest = max(runs[1:], key=lambda run: run["workers"])
    slower = widest["wall_seconds"] > sequential_wall
    if slower:
        print(
            f"WARNING: parallel({widest['workers']}) is slower than sequential "
            f"({widest['wall_seconds']:.3f}s vs {sequential_wall:.3f}s) — "
            f"expected on boxes with fewer than {widest['workers']} free cores; "
            "pair parity still holds."
        )

    if args.out is not None:
        report = {
            "workload": {
                "experiment": "fig9-uniform",
                "algorithm": args.algorithm,
                "n_a": len(dataset_a),
                "n_b": len(dataset_b),
                "epsilon": scale.large_epsilon,
                "scale": scale.name,
                "decompose": args.decompose,
            },
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "runs": runs,
        }
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2))
        print(f"wrote {args.out}")

    shutdown_pools()
    return 1 if (slower and args.strict_timing) else 0


if __name__ == "__main__":
    sys.exit(main())
