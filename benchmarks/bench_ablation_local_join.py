"""Ablation — TOUCH's local-join kernel and grid cell size (§5.2.2).

The paper motivates the grid local join and requires its cells to be
"considerably larger than the average size of the objects".  This sweep
replaces the kernel (grid / plane sweep / nested loop) and varies the
cell-size factor; the grid kernel should dominate the nested kernel, and
extreme cell sizes should hurt (tiny cells → replication, huge cells →
pairwise comparisons).
"""

import pytest

from _bench_utils import SCALE, bench_join
from repro.bench.workloads import synthetic_pair

_N_B = SCALE.large_b_steps[len(SCALE.large_b_steps) // 2]


@pytest.mark.benchmark(group="ablation-local-kernel")
@pytest.mark.parametrize("kernel", ("grid", "sweep", "nested"))
def test_local_kernel(benchmark, kernel):
    dataset_a, dataset_b = synthetic_pair("uniform", SCALE.large_a, _N_B, SCALE)
    bench_join(
        benchmark,
        "TOUCH",
        dataset_a,
        dataset_b,
        SCALE.large_epsilon,
        local_kernel=kernel,
    )
    benchmark.extra_info["local_kernel"] = kernel


@pytest.mark.benchmark(group="ablation-cell-size")
@pytest.mark.parametrize("factor", (1.0, 2.0, 4.0, 8.0, 16.0), ids=lambda f: f"x{f:g}")
def test_cell_size_factor(benchmark, factor):
    dataset_a, dataset_b = synthetic_pair("uniform", SCALE.large_a, _N_B, SCALE)
    bench_join(
        benchmark,
        "TOUCH",
        dataset_a,
        dataset_b,
        SCALE.large_epsilon,
        cell_size_factor=factor,
    )
    benchmark.extra_info["cell_size_factor"] = factor
