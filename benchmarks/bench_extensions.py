"""Extensions shoot-out: the related-work algorithms vs TOUCH.

Not a paper figure — the paper discusses the seeded tree (§2.2.2), the
quadtree dual traversal (§2.2.1) and SSSJ (§2.2.3) without evaluating
them.  This bench completes the picture on the Figure 9 workload so the
reproduction shows where TOUCH stands against the *whole* related-work
landscape, not only the paper's chosen competitors.
"""

import pytest

from _bench_utils import SCALE, bench_join
from repro.bench.workloads import synthetic_pair

_N_B = SCALE.large_b_steps[len(SCALE.large_b_steps) // 2]
_EXTENSIONS = ("SeededTree", "Quadtree", "SSSJ", "TOUCH")


@pytest.mark.benchmark(group="extensions")
@pytest.mark.parametrize("algorithm", _EXTENSIONS)
def test_extensions(benchmark, algorithm):
    dataset_a, dataset_b = synthetic_pair("uniform", SCALE.large_a, _N_B, SCALE)
    bench_join(benchmark, algorithm, dataset_a, dataset_b, SCALE.large_epsilon)
