"""Shared helpers for the pytest-benchmark suite.

Every benchmark measures one (algorithm × workload) cell of a paper
figure: the timed callable is the complete join — index construction
included, as in the paper — and the paper's implementation-independent
metrics (comparisons, memory model bytes, filtered objects, result pairs)
are attached to ``benchmark.extra_info`` so they appear in the saved
benchmark JSON alongside the timings.

Scale selection: set ``REPRO_SCALE`` (smoke | small | medium | paper);
the default is ``small``.
"""

from __future__ import annotations

from repro.bench.config import Scale, current_scale
from repro.bench.runner import RunRecord, run_algorithm
from repro.datasets.base import Dataset

__all__ = ["SCALE", "bench_join"]

SCALE: Scale = current_scale()

#: RunRecord fields surfaced in benchmark extra_info.
_EXTRA_FIELDS = (
    "result_pairs",
    "comparisons",
    "node_tests",
    "filtered",
    "replicated_entries",
    "memory_bytes",
)


def bench_join(
    benchmark,
    algorithm: str,
    dataset_a: Dataset,
    dataset_b: Dataset,
    epsilon: float,
    rounds: int = 1,
    **overrides,
) -> RunRecord:
    """Benchmark one distance join and attach the paper's counters."""
    records: list[RunRecord] = []

    def run() -> RunRecord:
        record = run_algorithm(algorithm, dataset_a, dataset_b, epsilon, **overrides)
        records.append(record)
        return record

    benchmark.pedantic(run, rounds=rounds, iterations=1, warmup_rounds=0)
    record = records[-1]
    for field in _EXTRA_FIELDS:
        benchmark.extra_info[field] = getattr(record, field)
    benchmark.extra_info["n_a"] = record.n_a
    benchmark.extra_info["n_b"] = record.n_b
    benchmark.extra_info["epsilon"] = epsilon
    return record
