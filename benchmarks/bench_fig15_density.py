"""Figure 15 — execution time on increasingly dense neuroscience data.

Random subsets of the axon/dendrite model (20%..100%) emulate growing
tissue density, ε = 5.  Paper shape at full density: TOUCH ~8× faster
than PBSM-500 and ~50× faster than the best of S3 / R-Tree / INL, with an
order of magnitude less memory than PBSM-500.
"""

import pytest

from _bench_utils import SCALE, bench_join
from repro.bench.workloads import LARGE_ALGORITHMS, neuro_pair
from repro.datasets.neuroscience import density_subsets

_SUBSETS = {
    f"{fraction:.0%}": (fraction, subset_a, subset_b)
    for fraction, subset_a, subset_b in density_subsets(
        *neuro_pair(SCALE), fractions=SCALE.density_fractions, seed=SCALE.seed
    )
}


@pytest.mark.benchmark(group="fig15-density")
@pytest.mark.parametrize("percent", list(_SUBSETS), ids=str)
@pytest.mark.parametrize("algorithm", LARGE_ALGORITHMS)
def test_fig15(benchmark, algorithm, percent):
    fraction, subset_a, subset_b = _SUBSETS[percent]
    bench_join(benchmark, algorithm, subset_a, subset_b, SCALE.large_epsilon)
    benchmark.extra_info["density_fraction"] = fraction
