"""Ablation — BlueGene/P-style chunked execution (§3).

The paper's deployment splits the tissue into contiguous subsets and runs
an independent in-memory join per core.  This bench verifies the
decomposition semantics on one machine: the union of per-chunk TOUCH
joins must produce the same result-pair count at every chunk count, while
per-chunk peak memory (one "core") shrinks.
"""

import pytest

from _bench_utils import SCALE
from repro.bench.runner import record_from_result
from repro.bench.workloads import synthetic_pair
from repro.datasets.transform import inflate
from repro.joins.registry import make_algorithm
from repro.parallel.chunked import ChunkedSpatialJoin

_N_B = SCALE.large_b_steps[len(SCALE.large_b_steps) // 2]


@pytest.mark.benchmark(group="ablation-chunked")
@pytest.mark.parametrize("n_chunks", (1, 2, 4, 8), ids=lambda n: f"chunks{n}")
def test_chunked(benchmark, n_chunks):
    dataset_a, dataset_b = synthetic_pair("uniform", SCALE.large_a, _N_B, SCALE)
    build = inflate(dataset_a, SCALE.large_epsilon)
    reference = make_algorithm("TOUCH").join(build, dataset_b)

    def run():
        algorithm = ChunkedSpatialJoin(lambda: make_algorithm("TOUCH"), n_chunks=n_chunks)
        result = algorithm.join(build, dataset_b)
        return record_from_result(
            result, dataset_a.name, len(dataset_a), len(dataset_b), SCALE.large_epsilon
        )

    record = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert record.result_pairs == len(reference.pairs)
    benchmark.extra_info["n_chunks"] = n_chunks
    benchmark.extra_info["comparisons"] = record.comparisons
    benchmark.extra_info["memory_bytes"] = record.memory_bytes
    benchmark.extra_info["result_pairs"] = record.result_pairs
