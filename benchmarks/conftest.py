"""pytest configuration for the benchmark suite.

Makes the sibling ``_bench_utils`` module importable when pytest is
invoked from the repository root (``pytest benchmarks/``).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
