"""Ablation — join order: build on the smaller or the larger dataset (§5.2.3).

The paper's heuristic builds the tree on the smaller dataset ("the
sparser the first dataset, the more objects of the second dataset may be
filtered", and building is cheaper).  Both orders are measured on an
asymmetric clustered pair.
"""

import pytest

from _bench_utils import SCALE
from repro.bench.runner import record_from_result
from repro.bench.workloads import synthetic_pair
from repro.core.distance_join import distance_join
from repro.joins.registry import make_algorithm

_N_B = SCALE.large_b_steps[-1]


@pytest.mark.benchmark(group="ablation-join-order")
@pytest.mark.parametrize("order", ("keep", "swap"), ids=("small-first", "large-first"))
def test_join_order(benchmark, order):
    dataset_a, dataset_b = synthetic_pair("clustered", SCALE.large_a, _N_B, SCALE)

    def run():
        result = distance_join(
            dataset_a,
            dataset_b,
            SCALE.large_epsilon,
            algorithm=make_algorithm("TOUCH"),
            order=order,
        )
        return record_from_result(
            result, dataset_a.name, len(dataset_a), len(dataset_b), SCALE.large_epsilon
        )

    record = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["order"] = "small-first" if order == "keep" else "large-first"
    benchmark.extra_info["comparisons"] = record.comparisons
    benchmark.extra_info["filtered"] = record.filtered
    benchmark.extra_info["result_pairs"] = record.result_pairs
