"""Spill-path smoke benchmark: budgeted joins vs the in-memory baseline.

Runs the Figure-9 uniform workload unbudgeted, then through the memory
governor at shrinking byte budgets (default: 1/4 of the estimated
footprint), asserting the *pair sets are identical* at every budget and
that every budgeted run actually spilled partitions to disk and cleaned
them up afterwards — the three invariants of the PR-8 memory governor.
Any violation raises; the reported slowdown factors are informational
(spilling trades wall-clock for memory by design).

Usage::

    python benchmarks/smoke_spill.py --out bench-spill.json
    python benchmarks/smoke_spill.py --scale medium --divisors 2 4 8
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.bench.config import SCALES
from repro.bench.workloads import synthetic_pair
from repro.datasets.transform import inflate
from repro.joins.base import dimensionality
from repro.joins.registry import ALGORITHMS, make_algorithm
from repro.memory import SPILL_COUNTER_KEYS, BudgetedSpatialJoin

DEFAULT_ALGORITHMS = ("TOUCH", "TwoLayer-500")
DEFAULT_DIVISORS = (4,)


def run_baseline(algorithm: str, build, probe) -> dict:
    start = time.perf_counter()
    result = make_algorithm(algorithm).join(build, probe)
    wall = time.perf_counter() - start
    return {
        "algorithm": algorithm,
        "budget": "unbounded",
        "wall_seconds": wall,
        "result_pairs": len(result.pairs),
        "pair_set": result.pair_set(),
    }


def run_budgeted(algorithm: str, build, probe, budget: int, label: str) -> dict:
    joiner = BudgetedSpatialJoin(algorithm, max_bytes=budget)
    start = time.perf_counter()
    result = joiner.join(build, probe)
    wall = time.perf_counter() - start
    if joiner.last_spill_dir and os.path.exists(joiner.last_spill_dir):
        raise AssertionError(
            f"{algorithm} at {label} left spill files in {joiner.last_spill_dir}"
        )
    run = {
        "algorithm": algorithm,
        "budget": label,
        "budget_bytes": budget,
        "wall_seconds": wall,
        "result_pairs": len(result.pairs),
        "pair_set": result.pair_set(),
    }
    for key in SPILL_COUNTER_KEYS:
        run[key] = result.stats.extra.get(key, 0)
    return run


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument(
        "--algorithms",
        nargs="+",
        choices=sorted(ALGORITHMS),
        default=list(DEFAULT_ALGORITHMS),
    )
    parser.add_argument(
        "--divisors",
        type=int,
        nargs="+",
        default=list(DEFAULT_DIVISORS),
        help="budget = footprint // divisor, one budgeted run per divisor",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the spill report as JSON"
    )
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    n_b = scale.large_b_steps[len(scale.large_b_steps) // 2]
    dataset_a, dataset_b = synthetic_pair("uniform", scale.large_a, n_b, scale)
    build = inflate(dataset_a, scale.large_epsilon)
    probe = list(dataset_b)
    dim = dimensionality(build, probe)
    print(
        f"spill smoke on fig9-uniform/{args.scale} "
        f"(|A|={len(dataset_a)}, |B|={len(dataset_b)}, "
        f"eps={scale.large_epsilon:g})"
    )

    runs = []
    for algorithm in args.algorithms:
        baseline = run_baseline(algorithm, build, probe)
        runs.append(baseline)
        footprint = make_algorithm(algorithm).estimate_bytes(
            len(build), len(probe), dim
        )
        print(
            f"  {algorithm:14s} unbounded   {baseline['wall_seconds']:8.3f}s  "
            f"pairs={baseline['result_pairs']}  footprint={footprint}B"
        )
        for divisor in args.divisors:
            budget = max(1, footprint // divisor)
            run = run_budgeted(algorithm, build, probe, budget, f"1/{divisor}")
            runs.append(run)
            # Hard invariants: exact parity, and the spill path actually ran.
            if run["pair_set"] != baseline["pair_set"]:
                missing = len(baseline["pair_set"] - run["pair_set"])
                spurious = len(run["pair_set"] - baseline["pair_set"])
                raise AssertionError(
                    f"{algorithm} at budget 1/{divisor} diverges: "
                    f"{missing} missing pairs, {spurious} spurious pairs"
                )
            if run["spilled_partitions"] <= 0:
                raise AssertionError(
                    f"{algorithm} at budget 1/{divisor} spilled nothing — "
                    "the smoke must exercise the spill path"
                )
            slowdown = (
                run["wall_seconds"] / baseline["wall_seconds"]
                if baseline["wall_seconds"] > 0
                else float("nan")
            )
            print(
                f"  {algorithm:14s} budget 1/{divisor}  "
                f"{run['wall_seconds']:8.3f}s  "
                f"spilled={run['spilled_partitions']}  "
                f"unspills={run['unspills']}  "
                f"passes={run['spill_passes']}  "
                f"slowdown={slowdown:.2f}x  parity=OK"
            )
    for run in runs:
        del run["pair_set"]

    if args.out is not None:
        report = {
            "workload": {
                "experiment": "fig9-uniform",
                "n_a": len(dataset_a),
                "n_b": len(dataset_b),
                "epsilon": scale.large_epsilon,
                "scale": scale.name,
            },
            "python": platform.python_version(),
            "runs": runs,
        }
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
