"""Figure 10 — large Gaussian datasets, increasing |B|, ε = 5.

Same series as Figure 9 on the highest-selectivity distribution.  Paper
shape: every algorithm performs more comparisons and runs longer than on
uniform data; memory is essentially unchanged.
"""

import pytest

from _bench_utils import SCALE, bench_join
from repro.bench.workloads import LARGE_ALGORITHMS, synthetic_pair


@pytest.mark.benchmark(group="fig10-large-gaussian")
@pytest.mark.parametrize("n_b", SCALE.large_b_steps, ids=lambda n: f"B{n}")
@pytest.mark.parametrize("algorithm", LARGE_ALGORITHMS)
def test_fig10(benchmark, algorithm, n_b):
    dataset_a, dataset_b = synthetic_pair("gaussian", SCALE.large_a, n_b, SCALE)
    bench_join(benchmark, algorithm, dataset_a, dataset_b, SCALE.large_epsilon)
