"""Benchmark harness: scales, workloads, runner, experiments, reporting."""

import json

import pytest

from repro.bench.config import SCALES, current_scale
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import format_table, save_json, summarize_series
from repro.bench.runner import run_algorithm
from repro.bench.workloads import (
    FIG8_ALGORITHMS,
    LARGE_ALGORITHMS,
    neuro_pair,
    synthetic_pair,
)

SMOKE = SCALES["smoke"]


class TestConfig:
    def test_all_scales_well_formed(self):
        for scale in SCALES.values():
            assert scale.fig8_a > 0
            assert len(scale.fig8_b_steps) >= 1
            assert len(scale.large_b_steps) >= 1
            assert scale.epsilons == (5.0, 10.0)

    def test_scales_ordered_by_size(self):
        assert SCALES["smoke"].large_a < SCALES["small"].large_a
        assert SCALES["small"].large_a < SCALES["medium"].large_a
        assert SCALES["medium"].large_a < SCALES["paper"].large_a

    def test_paper_scale_matches_paper_cardinalities(self):
        paper = SCALES["paper"]
        assert paper.fig8_a == 10_000
        assert paper.large_a == 1_600_000
        assert paper.large_b_steps[-1] == 9_600_000
        assert paper.table1_a == 160_000

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale().name == "smoke"
        monkeypatch.delenv("REPRO_SCALE")
        assert current_scale("medium").name == "medium"

    def test_unknown_scale(self):
        with pytest.raises(KeyError, match="unknown scale"):
            current_scale("galactic")


class TestWorkloads:
    def test_synthetic_pair_cached(self):
        first = synthetic_pair("uniform", 100, 200, SMOKE)
        second = synthetic_pair("uniform", 100, 200, SMOKE)
        assert first[0] is second[0]

    def test_pair_sizes(self):
        dataset_a, dataset_b = synthetic_pair("gaussian", 50, 150, SMOKE)
        assert len(dataset_a) == 50 and len(dataset_b) == 150

    def test_neuro_pair_ratio(self):
        axons, dendrites = neuro_pair(SMOKE)
        assert len(dendrites) > len(axons)

    def test_algorithm_lists_match_paper(self):
        assert "NL" in FIG8_ALGORITHMS and "PS" in FIG8_ALGORITHMS
        assert "NL" not in LARGE_ALGORITHMS and "PS" not in LARGE_ALGORITHMS
        assert "TOUCH" in LARGE_ALGORITHMS


class TestRunner:
    def test_run_algorithm_record(self):
        dataset_a, dataset_b = synthetic_pair("uniform", 60, 120, SMOKE)
        record = run_algorithm("TOUCH", dataset_a, dataset_b, 10.0)
        assert record.algorithm == "TOUCH"
        assert record.n_a == 60 and record.n_b == 120
        assert record.epsilon == 10.0
        assert record.total_seconds > 0
        assert 0.0 <= record.selectivity <= 1.0

    def test_overrides_forwarded(self):
        dataset_a, dataset_b = synthetic_pair("uniform", 60, 120, SMOKE)
        record = run_algorithm("TOUCH", dataset_a, dataset_b, 5.0, fanout=8)
        assert record.extra["tree_height"] >= 1

    def test_as_dict_flat(self):
        dataset_a, dataset_b = synthetic_pair("uniform", 60, 120, SMOKE)
        row = run_algorithm("NL", dataset_a, dataset_b, 5.0).as_dict()
        assert row["comparisons"] == 60 * 120


class TestExperiments:
    def test_registry_covers_every_paper_artifact(self):
        expected = {
            "table1",
            "loading",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99", SMOKE)

    def test_table1_rows(self):
        result = run_experiment("table1", SMOKE)
        datasets = {row["dataset"] for row in result.rows}
        assert len(result.rows) == 8  # (3 synthetic + neuro) x 2 eps
        assert any("uniform" in d for d in datasets)
        assert any("neuro" in d for d in datasets)
        assert all("selectivity_e6" in row for row in result.rows)

    def test_fig13_reports_filtering(self):
        result = run_experiment("fig13", SMOKE)
        assert all(row["algorithm"] == "TOUCH" for row in result.rows)
        assert all("filtered_fraction" in row for row in result.rows)

    def test_fig14_sweeps_fanout(self):
        result = run_experiment("fig14", SMOKE)
        fanouts = {row["fanout"] for row in result.rows}
        assert fanouts == set(SMOKE.fanout_sweep)

    def test_loading_join_dominates_load(self):
        result = run_experiment("loading", SMOKE)
        assert all(row["join_over_load"] > 1.0 for row in result.rows)

    def test_repeated_probe_modes_and_parity(self):
        result = run_experiment("repeated_probe", SMOKE)
        modes = {(row["algorithm"], row["mode"]) for row in result.rows}
        assert modes == {
            ("TOUCH", "rebuild"),
            ("TOUCH", "cached"),
            ("TwoLayer-500", "rebuild"),
            ("TwoLayer-500", "cached"),
        }
        by_algorithm = {}
        for row in result.rows:
            by_algorithm.setdefault(row["algorithm"], {})[row["mode"]] = row
        for rows in by_algorithm.values():
            # The driver hard-asserts per-batch pair parity; the summary
            # totals must agree too.
            assert rows["cached"]["result_pairs"] == rows["rebuild"]["result_pairs"]
            assert rows["cached"]["speedup"] > 0

    def test_ablation_chunked_result_parity(self):
        result = run_experiment("ablation_chunked", SMOKE)
        counts = {row["result_pairs"] for row in result.rows}
        assert len(counts) == 1  # identical pairs at every chunk count


class TestParallelRunner:
    def test_explicit_workers_selects_parallel_engine(self):
        dataset_a, dataset_b = synthetic_pair("uniform", 60, 120, SMOKE)
        sequential = run_algorithm("TOUCH", dataset_a, dataset_b, 5.0)
        record = run_algorithm("TOUCH", dataset_a, dataset_b, 5.0, workers=2)
        assert record.algorithm.startswith("Parallel[TOUCH")
        assert record.extra["workers"] == 2
        assert record.result_pairs == sequential.result_pairs

    def test_decompose_kind_forwarded(self):
        dataset_a, dataset_b = synthetic_pair("uniform", 60, 120, SMOKE)
        record = run_algorithm(
            "NL", dataset_a, dataset_b, 5.0, workers=2, decompose="tiles"
        )
        assert record.extra["decompose"] == "tiles"

    def test_ambient_use_parallel(self):
        from repro.bench.runner import use_parallel

        dataset_a, dataset_b = synthetic_pair("uniform", 60, 120, SMOKE)
        with use_parallel(2, "slabs"):
            ambient = run_algorithm("NL", dataset_a, dataset_b, 5.0)
            forced_sequential = run_algorithm(
                "NL", dataset_a, dataset_b, 5.0, workers=0
            )
        assert ambient.algorithm.startswith("Parallel[NL")
        assert forced_sequential.algorithm == "NL"
        assert ambient.result_pairs == forced_sequential.result_pairs

    def test_env_override(self, monkeypatch):
        from repro.bench.runner import current_parallel

        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setenv("REPRO_DECOMPOSE", "tiles")
        assert current_parallel() == (3, "tiles", "reference")
        monkeypatch.setenv("REPRO_DEDUP", "partition")
        assert current_parallel() == (3, "tiles", "partition")
        monkeypatch.delenv("REPRO_DEDUP")
        monkeypatch.delenv("REPRO_DECOMPOSE")
        assert current_parallel() == (3, "slabs", "reference")
        monkeypatch.delenv("REPRO_WORKERS")
        assert current_parallel() is None

    def test_env_junk_values_name_the_variable(self, monkeypatch):
        """Regression: junk REPRO_* values used to surface as bare
        ``int()`` tracebacks (or deep engine errors) with no hint which
        environment variable was at fault."""
        from repro.bench.runner import current_backend, current_parallel

        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS='many'"):
            current_parallel()
        monkeypatch.setenv("REPRO_WORKERS", "-2")
        with pytest.raises(ValueError, match="REPRO_WORKERS='-2'"):
            current_parallel()
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_DECOMPOSE", "shards")
        with pytest.raises(ValueError, match="REPRO_DECOMPOSE='shards'"):
            current_parallel()
        monkeypatch.delenv("REPRO_DECOMPOSE")
        monkeypatch.setenv("REPRO_DEDUP", "hope")
        with pytest.raises(ValueError, match="REPRO_DEDUP='hope'"):
            current_parallel()
        monkeypatch.delenv("REPRO_DEDUP")
        monkeypatch.setenv("REPRO_BACKEND", "fortran")
        with pytest.raises(ValueError, match="REPRO_BACKEND='fortran'"):
            current_backend()

    def test_env_zero_workers_stays_sequential(self, monkeypatch):
        from repro.bench.runner import current_parallel

        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert current_parallel() is None

    def test_run_algorithm_surfaces_env_error(self, monkeypatch):
        dataset_a, dataset_b = synthetic_pair("uniform", 30, 60, SMOKE)
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            run_algorithm("NL", dataset_a, dataset_b, 5.0)

    def test_parallel_scaling_experiment(self):
        result = run_experiment("parallel_scaling", SMOKE)
        engines = {row["engine"] for row in result.rows}
        assert engines == {"sequential", "parallel"}
        pair_counts = {row["result_pairs"] for row in result.rows}
        assert len(pair_counts) == 1  # identical pairs on every engine
        assert all("speedup" in row for row in result.rows)
        kinds = {row["decompose"] for row in result.rows if row["engine"] == "parallel"}
        assert kinds == {"slabs", "tiles"}

    def test_run_experiment_threads_workers(self):
        result = run_experiment("fig13", SMOKE, workers=1)
        assert all(
            row["algorithm"].startswith("Parallel[TOUCH") for row in result.rows
        )


class TestReporting:
    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_phase_timing_columns_surfaced_in_order(self):
        rows = [
            {
                "algorithm": "Parallel[TOUCHx4@2w]",
                "total_seconds": 0.5,
                "workers": 2,
                "n_chunks": 4,
                "decompose": "slabs",
                "decompose_seconds": 0.01,
                "worker_join_seconds": 0.4,
                "merge_seconds": 0.002,
            }
        ]
        table = format_table(rows)
        header = table.splitlines()[0]
        assert "decompose_seconds" in header
        assert "worker_join_seconds" in header
        assert "merge_seconds" in header
        # Stable order: the engine columns follow the default metrics.
        assert header.index("workers") < header.index("decompose_seconds")
        assert header.index("decompose_seconds") < header.index("worker_join_seconds")
        assert header.index("worker_join_seconds") < header.index("merge_seconds")

    def test_format_table_columns(self):
        rows = [{"algorithm": "TOUCH", "comparisons": 12, "total_seconds": 0.5}]
        table = format_table(rows, columns=["algorithm", "comparisons"])
        assert "TOUCH" in table and "12" in table
        assert "total_seconds" not in table

    def test_save_json_roundtrip(self, tmp_path):
        result = run_experiment("table1", SMOKE)
        path = save_json(result, tmp_path / "t1.json")
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "table1"
        assert len(payload["rows"]) == len(result.rows)

    def test_summarize_series(self):
        rows = [
            {"algorithm": "TOUCH", "n_b": 2, "total_seconds": 0.2},
            {"algorithm": "TOUCH", "n_b": 1, "total_seconds": 0.1},
            {"algorithm": "S3", "n_b": 1, "total_seconds": 0.3},
        ]
        series = summarize_series(rows, "algorithm", "n_b", "total_seconds")
        assert series["TOUCH"] == [(1, 0.1), (2, 0.2)]
        assert series["S3"] == [(1, 0.3)]
