"""Unit tests for the shared local-join kernels."""

import pytest

from repro.datasets.synthetic import uniform_boxes
from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject, box_object
from repro.joins.local import (
    LOCAL_KERNELS,
    average_side_length,
    grid_kernel,
    nested_loop_kernel,
    plane_sweep_kernel,
)
from repro.stats.counters import JoinStatistics
from repro.validation import brute_force_pairs


def run_kernel(kernel, objs_a, objs_b, **kwargs):
    stats = JoinStatistics()
    pairs = []
    kernel(objs_a, objs_b, stats, lambda a, b: pairs.append((a.oid, b.oid)), **kwargs)
    return pairs, stats


DATA_A = list(uniform_boxes(60, seed=21, side_range=(0.0, 80.0)))
DATA_B = list(uniform_boxes(150, seed=22, side_range=(0.0, 80.0)))
TRUTH = brute_force_pairs(DATA_A, DATA_B)


@pytest.mark.parametrize("name", sorted(LOCAL_KERNELS))
class TestKernelContract:
    def test_exact_result(self, name):
        pairs, _ = run_kernel(LOCAL_KERNELS[name], DATA_A, DATA_B)
        assert set(pairs) == TRUTH

    def test_no_duplicates(self, name):
        pairs, _ = run_kernel(LOCAL_KERNELS[name], DATA_A, DATA_B)
        assert len(pairs) == len(set(pairs))

    def test_empty_inputs(self, name):
        pairs, stats = run_kernel(LOCAL_KERNELS[name], [], DATA_B)
        assert pairs == [] and stats.comparisons == 0
        pairs, stats = run_kernel(LOCAL_KERNELS[name], DATA_A, [])
        assert pairs == [] and stats.comparisons == 0


class TestNestedLoop:
    def test_comparison_count_is_product(self):
        _, stats = run_kernel(nested_loop_kernel, DATA_A, DATA_B)
        assert stats.comparisons == len(DATA_A) * len(DATA_B)


class TestPlaneSweep:
    def test_fewer_comparisons_than_nested(self):
        _, sweep_stats = run_kernel(plane_sweep_kernel, DATA_A, DATA_B)
        assert sweep_stats.comparisons < len(DATA_A) * len(DATA_B)

    def test_presorted_path(self):
        sorted_a = sorted(DATA_A, key=lambda o: o.mbr.lo[0])
        sorted_b = sorted(DATA_B, key=lambda o: o.mbr.lo[0])
        pairs, _ = run_kernel(plane_sweep_kernel, sorted_a, sorted_b, presorted=True)
        assert set(pairs) == TRUTH

    def test_identical_sort_keys(self):
        a = [SpatialObject(i, MBR((0.0, i), (1.0, i + 0.5))) for i in range(5)]
        b = [SpatialObject(i, MBR((0.0, i + 0.25), (1.0, i + 0.3))) for i in range(5)]
        pairs, _ = run_kernel(plane_sweep_kernel, a, b)
        assert set(pairs) == brute_force_pairs(a, b)


class TestGridKernel:
    def test_counts_duplicates_suppressed(self):
        _, stats = run_kernel(grid_kernel, DATA_A, DATA_B, cell_size_factor=1.0)
        # With cells comparable to objects, pairs span cells; the
        # reference-point rule must have suppressed the extra sightings.
        assert stats.duplicates_suppressed >= 0
        assert stats.comparisons > 0

    def test_degenerate_point_objects_fall_back(self):
        points_a = [box_object(i, (i, i), (i, i)) for i in range(5)]
        points_b = [box_object(i, (i, i), (i, i)) for i in range(5)]
        pairs, stats = run_kernel(grid_kernel, points_a, points_b)
        assert set(pairs) == {(i, i) for i in range(5)}
        assert stats.comparisons == 25  # nested-loop fallback

    def test_explicit_universe(self):
        universe = MBR((0.0, 0.0, 0.0), (1000.0, 1000.0, 1000.0))
        pairs, _ = run_kernel(grid_kernel, DATA_A, DATA_B, universe=universe)
        assert set(pairs) == TRUTH

    def test_max_cells_cap_respected(self):
        _, stats = run_kernel(
            grid_kernel, DATA_A, DATA_B, cell_size_factor=0.001, max_cells_per_dim=4
        )
        # The cap keeps the grid coarse: replication stays bounded.
        assert stats.replicated_entries < len(DATA_B) * 4**3

    def test_records_peak_grid_bytes(self):
        _, stats = run_kernel(grid_kernel, DATA_A, DATA_B)
        assert stats.extra.get("local_grid_peak_bytes", 0) > 0


class TestAverageSideLength:
    def test_empty(self):
        assert average_side_length([]) == 0.0

    def test_unit_boxes(self):
        objs = [box_object(i, (0, 0), (1, 1)) for i in range(3)]
        assert average_side_length(objs) == 1.0

    def test_mixed_sides(self):
        objs = [box_object(0, (0, 0), (2, 4))]
        assert average_side_length(objs) == 3.0
