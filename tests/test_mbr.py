"""Unit tests for the MBR primitive."""

import math

import pytest

from repro.geometry.mbr import MBR, mbr_of_points, total_mbr


class TestConstruction:
    def test_basic(self):
        box = MBR((0.0, 1.0), (2.0, 3.0))
        assert box.lo == (0.0, 1.0)
        assert box.hi == (2.0, 3.0)

    def test_coerces_ints_to_floats(self):
        box = MBR((0, 1), (2, 3))
        assert box.lo == (0.0, 1.0)
        assert isinstance(box.lo[0], float)

    def test_dim(self):
        assert MBR((0,), (1,)).dim == 1
        assert MBR((0, 0, 0), (1, 1, 1)).dim == 3

    def test_degenerate_point_box_allowed(self):
        box = MBR((1.0, 2.0), (1.0, 2.0))
        assert box.volume() == 0.0

    def test_rejects_inverted_corners(self):
        with pytest.raises(ValueError, match="hi < lo"):
            MBR((2.0,), (1.0,))

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            MBR((0.0, 0.0), (1.0,))

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ValueError, match="at least one dimension"):
            MBR((), ())

    def test_immutable(self):
        box = MBR((0.0,), (1.0,))
        with pytest.raises(AttributeError):
            box.lo = (5.0,)

    def test_equality_and_hash(self):
        a = MBR((0.0, 0.0), (1.0, 1.0))
        b = MBR((0, 0), (1, 1))
        c = MBR((0.0, 0.0), (2.0, 1.0))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not an mbr"

    def test_repr_roundtrip(self):
        box = MBR((0.0, 0.0), (1.0, 2.0))
        assert eval(repr(box)) == box

    def test_iter_yields_intervals(self):
        box = MBR((0.0, 1.0), (2.0, 3.0))
        assert list(box) == [(0.0, 2.0), (1.0, 3.0)]

    def test_picklable_despite_immutability(self):
        import pickle

        box = MBR((0.0, 1.0), (2.0, 3.0))
        assert pickle.loads(pickle.dumps(box)) == box

    def test_spatial_object_picklable(self):
        import pickle

        from repro.geometry.objects import box_object

        obj = box_object(7, (0, 0), (1, 1))
        clone = pickle.loads(pickle.dumps(obj))
        assert clone.oid == 7 and clone.mbr == obj.mbr


class TestPredicates:
    def test_overlapping_boxes_intersect(self):
        assert MBR((0, 0), (2, 2)).intersects(MBR((1, 1), (3, 3)))

    def test_disjoint_boxes_do_not_intersect(self):
        assert not MBR((0, 0), (1, 1)).intersects(MBR((2, 2), (3, 3)))

    def test_touching_edges_intersect(self):
        # Closed-box semantics: shared boundary counts.
        assert MBR((0, 0), (1, 1)).intersects(MBR((1, 0), (2, 1)))

    def test_touching_corner_intersects(self):
        assert MBR((0, 0), (1, 1)).intersects(MBR((1, 1), (2, 2)))

    def test_disjoint_in_one_dimension_only(self):
        # Overlap in x but not in y.
        assert not MBR((0, 0), (2, 1)).intersects(MBR((1, 5), (3, 6)))

    def test_containment_intersects(self):
        outer = MBR((0, 0), (10, 10))
        inner = MBR((4, 4), (5, 5))
        assert outer.intersects(inner)
        assert inner.intersects(outer)

    def test_contains(self):
        outer = MBR((0, 0), (10, 10))
        assert outer.contains(MBR((1, 1), (9, 9)))
        assert outer.contains(outer)
        assert not outer.contains(MBR((5, 5), (11, 11)))

    def test_contains_point(self):
        box = MBR((0, 0), (1, 1))
        assert box.contains_point((0.5, 0.5))
        assert box.contains_point((0.0, 1.0))  # boundary
        assert not box.contains_point((1.5, 0.5))

    def test_intersects_symmetry(self):
        a = MBR((0, 0, 0), (3, 3, 3))
        b = MBR((2, 2, 2), (5, 5, 5))
        assert a.intersects(b) == b.intersects(a)


class TestOperations:
    def test_union(self):
        union = MBR((0, 0), (1, 1)).union(MBR((2, 2), (3, 3)))
        assert union == MBR((0, 0), (3, 3))

    def test_intersection_of_overlapping(self):
        inter = MBR((0, 0), (2, 2)).intersection(MBR((1, 1), (3, 3)))
        assert inter == MBR((1, 1), (2, 2))

    def test_intersection_of_disjoint_is_none(self):
        assert MBR((0, 0), (1, 1)).intersection(MBR((2, 2), (3, 3))) is None

    def test_intersection_of_touching_is_degenerate(self):
        inter = MBR((0, 0), (1, 1)).intersection(MBR((1, 0), (2, 1)))
        assert inter == MBR((1, 0), (1, 1))
        assert inter.volume() == 0.0

    def test_expand(self):
        box = MBR((2, 2), (4, 4)).expand(1.0)
        assert box == MBR((1, 1), (5, 5))

    def test_expand_zero_is_identity(self):
        box = MBR((0, 0), (1, 1))
        assert box.expand(0.0) == box

    def test_expand_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            MBR((0,), (1,)).expand(-1.0)

    def test_expand_implements_epsilon_reduction(self):
        # distance(a, b) <= eps  iff  a.expand(eps) intersects b (L-inf).
        a = MBR((0.0,), (1.0,))
        b = MBR((3.0,), (4.0,))
        assert a.min_distance(b) == 2.0
        assert a.expand(2.0).intersects(b)
        assert not a.expand(1.9).intersects(b)

    def test_translate(self):
        assert MBR((0, 0), (1, 1)).translate((5, -1)) == MBR((5, -1), (6, 0))


class TestMeasures:
    def test_volume_2d(self):
        assert MBR((0, 0), (2, 3)).volume() == 6.0

    def test_volume_3d(self):
        assert MBR((0, 0, 0), (2, 3, 4)).volume() == 24.0

    def test_margin(self):
        assert MBR((0, 0), (2, 3)).margin() == 5.0

    def test_center(self):
        assert MBR((0, 0), (2, 4)).center() == (1.0, 2.0)

    def test_side_lengths(self):
        assert MBR((1, 1), (2, 4)).side_lengths() == (1.0, 3.0)

    def test_min_distance_overlapping_is_zero(self):
        assert MBR((0, 0), (2, 2)).min_distance(MBR((1, 1), (3, 3))) == 0.0

    def test_min_distance_axis_gap(self):
        assert MBR((0, 0), (1, 1)).min_distance(MBR((3, 0), (4, 1))) == 2.0

    def test_min_distance_diagonal(self):
        distance = MBR((0, 0), (1, 1)).min_distance(MBR((2, 2), (3, 3)))
        assert distance == pytest.approx(math.sqrt(2.0))

    def test_overlap_volume(self):
        assert MBR((0, 0), (2, 2)).overlap_volume(MBR((1, 1), (3, 3))) == 1.0
        assert MBR((0, 0), (1, 1)).overlap_volume(MBR((5, 5), (6, 6))) == 0.0


class TestAggregates:
    def test_mbr_of_points(self):
        box = mbr_of_points([(0, 5), (3, 1), (2, 2)])
        assert box == MBR((0, 1), (3, 5))

    def test_mbr_of_points_single(self):
        assert mbr_of_points([(1, 1)]) == MBR((1, 1), (1, 1))

    def test_mbr_of_points_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            mbr_of_points([])

    def test_total_mbr(self):
        box = total_mbr([MBR((0, 0), (1, 1)), MBR((5, -2), (6, 0))])
        assert box == MBR((0, -2), (6, 1))

    def test_total_mbr_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            total_mbr([])

    def test_total_mbr_accepts_generator(self):
        boxes = (MBR((i, i), (i + 1, i + 1)) for i in range(3))
        assert total_mbr(boxes) == MBR((0, 0), (3, 3))
