"""Unit tests for the Hilbert-curve encoder."""

import itertools

import pytest

from repro.geometry.mbr import MBR
from repro.rtree.hilbert import hilbert_index, hilbert_key_function


class TestHilbertIndex:
    def test_rejects_empty_coords(self):
        with pytest.raises(ValueError, match="at least one"):
            hilbert_index((), 4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            hilbert_index((16,), 4)
        with pytest.raises(ValueError, match="outside"):
            hilbert_index((-1, 0), 4)

    @pytest.mark.parametrize("dim", [2, 3])
    def test_bijective_on_small_grid(self, dim):
        order = 3
        side = 1 << order
        indices = {
            hilbert_index(coords, order)
            for coords in itertools.product(range(side), repeat=dim)
        }
        assert len(indices) == side**dim
        assert min(indices) == 0
        assert max(indices) == side**dim - 1

    def test_locality_neighbours_are_close_2d(self):
        """Consecutive Hilbert indices must be grid neighbours."""
        order = 4
        side = 1 << order
        by_index = {}
        for coords in itertools.product(range(side), repeat=2):
            by_index[hilbert_index(coords, order)] = coords
        for i in range(side * side - 1):
            (x1, y1), (x2, y2) = by_index[i], by_index[i + 1]
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_1d_is_identity(self):
        for value in range(16):
            assert hilbert_index((value,), 4) == value


class TestHilbertKeyFunction:
    def test_keys_are_distinct_for_spread_boxes(self):
        universe = MBR((0.0, 0.0), (100.0, 100.0))
        key = hilbert_key_function(universe, order=8)
        boxes = [MBR((i, i), (i + 1, i + 1)) for i in range(0, 90, 10)]
        keys = [key(box) for box in boxes]
        assert len(set(keys)) == len(keys)

    def test_clamps_outside_universe(self):
        universe = MBR((0.0, 0.0), (10.0, 10.0))
        key = hilbert_key_function(universe, order=4)
        assert key(MBR((-50, -50), (-40, -40))) == key(MBR((0, 0), (0.01, 0.01)))

    def test_degenerate_universe_dimension(self):
        universe = MBR((0.0, 5.0), (10.0, 5.0))
        key = hilbert_key_function(universe, order=4)
        assert isinstance(key(MBR((1, 5), (2, 5))), int)
