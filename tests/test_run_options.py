"""RunOptions: the consolidated execution-option front door.

Pins the precedence stack of ``run_algorithm`` — explicit legacy call
kwarg > ``options`` object > ambient scope > ``REPRO_*`` environment >
engine default — plus ``RunOptions.from_env`` validation and the
deprecation shim for the historical kwargs.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench.config import DEDUP_MODES, RunOptions
from repro.bench.runner import (
    current_options,
    run_algorithm,
    use_backend,
    use_parallel,
)
from repro.datasets.synthetic import uniform_boxes
from repro.service import SpatialQueryService

EPS = 2.5


@pytest.fixture(scope="module")
def pair():
    return (
        uniform_boxes(60, seed=81, space=30.0),
        uniform_boxes(150, seed=82, space=30.0),
    )


class TestRunOptionsObject:
    def test_defaults_are_all_unspecified(self):
        options = RunOptions()
        assert options.workers is None
        assert options.decompose is None
        assert options.dedup is None
        assert options.backend is None
        assert options.reuse_index is None
        assert options.describe() == {}

    def test_frozen(self):
        options = RunOptions(workers=2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            options.workers = 4

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"workers": -1}, "workers must be >= 0"),
            ({"decompose": "hexagons"}, "unknown decompose kind"),
            ({"dedup": "vote"}, "unknown dedup mode"),
            ({"backend": "gpu"}, "unknown backend"),
        ],
    )
    def test_validation_is_eager(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            RunOptions(**kwargs)

    def test_over_set_fields_win(self):
        base = RunOptions(workers=4, decompose="slabs", backend="object")
        overlay = RunOptions(workers=0, dedup="partition")
        merged = overlay.over(base)
        assert merged == RunOptions(
            workers=0, decompose="slabs", dedup="partition", backend="object"
        )

    def test_over_none_defers(self):
        base = RunOptions(workers=3)
        assert RunOptions().over(base) is base

    def test_describe_reports_set_fields(self):
        options = RunOptions(workers=2, decompose="tiles", reuse_index=True)
        assert options.describe() == {
            "workers": 2,
            "decompose": "tiles",
            "reuse_index": True,
        }

    def test_dedup_modes_match_engine(self):
        from repro.parallel.engine import ParallelChunkedJoin

        assert DEDUP_MODES == ParallelChunkedJoin.DEDUP_MODES


class TestFromEnv:
    def test_unset_environment_is_all_none(self, monkeypatch):
        for name in (
            "REPRO_WORKERS",
            "REPRO_DECOMPOSE",
            "REPRO_DEDUP",
            "REPRO_BACKEND",
        ):
            monkeypatch.delenv(name, raising=False)
        assert RunOptions.from_env() == RunOptions()

    def test_reads_every_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setenv("REPRO_DECOMPOSE", "tiles")
        monkeypatch.setenv("REPRO_DEDUP", "partition")
        monkeypatch.setenv("REPRO_BACKEND", "object")
        assert RunOptions.from_env() == RunOptions(
            workers=3, decompose="tiles", dedup="partition", backend="object"
        )

    @pytest.mark.parametrize(
        "name, value",
        [
            ("REPRO_WORKERS", "many"),
            ("REPRO_WORKERS", "-2"),
            ("REPRO_DECOMPOSE", "hexagons"),
            ("REPRO_DEDUP", "vote"),
            ("REPRO_BACKEND", "gpu"),
        ],
    )
    def test_junk_values_name_the_variable(self, monkeypatch, name, value):
        monkeypatch.setenv(name, value)
        with pytest.raises(ValueError, match=name):
            RunOptions.from_env()


class TestCurrentOptions:
    def test_default_is_empty(self, monkeypatch):
        for name in ("REPRO_WORKERS", "REPRO_DECOMPOSE", "REPRO_BACKEND"):
            monkeypatch.delenv(name, raising=False)
        assert current_options() == RunOptions()

    def test_env_flows_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_DECOMPOSE", "tiles")
        options = current_options()
        assert options.workers == 2
        assert options.decompose == "tiles"

    def test_scope_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        with use_parallel(workers=4, decompose="slabs"):
            assert current_options().workers == 4
        with use_backend("object"):
            assert current_options().backend == "object"


class TestRunAlgorithmPrecedence:
    """The three layers, pinned pairwise on real joins.

    ``workers`` selects the engine, and the engine stamps itself into
    ``extra`` (``n_chunks`` present iff the multiprocess engine ran), so
    each layer's victory is observable from the record.
    """

    @pytest.mark.parallel
    def test_options_object_selects_the_engine(self, pair):
        a, b = pair
        record = run_algorithm(
            "TOUCH", a, b, EPS, options=RunOptions(workers=2, decompose="tiles")
        )
        assert record.extra["workers"] == 2
        assert record.extra["decompose"] == "tiles"

    @pytest.mark.parallel
    def test_options_object_beats_environment(self, pair, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        a, b = pair
        record = run_algorithm("TOUCH", a, b, EPS, options=RunOptions(workers=0))
        assert "n_chunks" not in record.extra  # sequential path ran

    @pytest.mark.parallel
    def test_legacy_kwarg_beats_options_object(self, pair):
        a, b = pair
        with pytest.deprecated_call():
            record = run_algorithm(
                "TOUCH", a, b, EPS, options=RunOptions(workers=2), workers=0
            )
        assert "n_chunks" not in record.extra

    @pytest.mark.parallel
    def test_environment_still_applies_when_unspecified(self, pair, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_DECOMPOSE", "tiles")
        a, b = pair
        record = run_algorithm("TOUCH", a, b, EPS)
        assert record.extra["workers"] == 2
        assert record.extra["decompose"] == "tiles"

    def test_options_backend_feeds_algorithm(self, pair):
        a, b = pair
        record = run_algorithm(
            "TOUCH", a, b, EPS, options=RunOptions(backend="object")
        )
        assert record.extra["backend"] == "object"

    def test_explicit_backend_override_beats_options(self, pair):
        a, b = pair
        record = run_algorithm(
            "TOUCH",
            a,
            b,
            EPS,
            options=RunOptions(backend="object"),
            backend="columnar",
        )
        assert record.extra["backend"] == "columnar"

    def test_options_reuse_index_routes_through_service(self, pair):
        a, b = pair
        service = SpatialQueryService(capacity=2)
        record = run_algorithm(
            "TOUCH", a, b, EPS, options=RunOptions(reuse_index=service)
        )
        assert record.extra["cache"] == "cold"
        again = run_algorithm(
            "TOUCH", a, b, EPS, options=RunOptions(reuse_index=service)
        )
        assert again.extra["cache"] == "warm"
        assert again.result_pairs == record.result_pairs

    def test_reuse_index_with_workers_still_rejected(self, pair):
        a, b = pair
        with pytest.raises(ValueError, match="cannot be combined"):
            run_algorithm(
                "TOUCH",
                a,
                b,
                EPS,
                options=RunOptions(workers=2, reuse_index=True),
            )


class TestDeprecationShim:
    """The historical kwargs keep working, loudly."""

    @pytest.mark.parallel
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"workers": 2, "decompose": "tiles"},
            {"workers": 2, "dedup": "partition"},
        ],
    )
    def test_legacy_kwargs_warn(self, pair, kwargs):
        a, b = pair
        with pytest.deprecated_call(match="options=RunOptions"):
            record = run_algorithm("TOUCH", a, b, EPS, **kwargs)
        if kwargs.get("workers"):
            assert record.extra["workers"] == kwargs["workers"]

    def test_legacy_reuse_index_warns(self, pair):
        a, b = pair
        with pytest.deprecated_call(match="reuse_index"):
            record = run_algorithm(
                "TOUCH", a, b, EPS, reuse_index=SpatialQueryService(capacity=2)
            )
        assert record.extra["cache"] == "cold"

    def test_reuse_index_false_is_unspecified(self, pair):
        """``reuse_index=False`` was the old default — it must not warn."""
        import warnings

        a, b = pair
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            record = run_algorithm("TOUCH", a, b, EPS, reuse_index=False)
        assert "cache" not in record.extra

    def test_no_kwargs_no_warning(self, pair):
        import warnings

        a, b = pair
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            record = run_algorithm("TOUCH", a, b, EPS)
        assert record.result_pairs > 0

    @pytest.mark.parallel
    def test_legacy_and_new_spellings_agree(self, pair):
        a, b = pair
        with pytest.deprecated_call():
            legacy = run_algorithm("TOUCH", a, b, EPS, workers=2)
        modern = run_algorithm("TOUCH", a, b, EPS, options=RunOptions(workers=2))
        assert legacy.result_pairs == modern.result_pairs

    def test_warning_points_at_caller(self, pair):
        """The shim's stacklevel must attribute the warning to the call
        site of ``run_algorithm``, not to the runner internals."""
        a, b = pair
        with pytest.warns(DeprecationWarning) as records:
            run_algorithm("TOUCH", a, b, EPS, workers=0)
        assert len(records) == 1
        assert records[0].filename == __file__


class TestHandoffOption:
    """The shared-memory hand-off mode rides the same options stack."""

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown handoff mode"):
            RunOptions(handoff="carrier-pigeon")

    def test_modes_match_engine(self):
        from repro.bench.config import HANDOFF_MODES
        from repro.parallel.engine import HANDOFF_MODES as ENGINE_MODES

        assert HANDOFF_MODES == ENGINE_MODES

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HANDOFF", "pickle")
        assert RunOptions.from_env().handoff == "pickle"
        monkeypatch.setenv("REPRO_HANDOFF", "postal")
        with pytest.raises(ValueError, match="REPRO_HANDOFF"):
            RunOptions.from_env()

    def test_over_and_describe(self):
        base = RunOptions(handoff="shm")
        assert base.over(RunOptions()).handoff == "shm"
        assert RunOptions(handoff="pickle").over(base).handoff == "pickle"
        assert base.describe() == {"handoff": "shm"}

    @pytest.mark.parallel
    def test_handoff_flows_to_engine(self, pair):
        a, b = pair
        record = run_algorithm(
            "TOUCH", a, b, EPS, options=RunOptions(workers=2, handoff="pickle")
        )
        assert record.extra["handoff"] == "pickle"
        assert record.extra["pickled_coord_bytes"] > 0

    @pytest.mark.parallel
    def test_env_handoff_flows_through(self, pair, monkeypatch):
        a, b = pair
        monkeypatch.setenv("REPRO_HANDOFF", "pickle")
        record = run_algorithm("TOUCH", a, b, EPS, options=RunOptions(workers=2))
        assert record.extra["handoff"] == "pickle"
