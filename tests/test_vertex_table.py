"""Columnar VertexTable: construction, slicing, shared-memory hand-off."""

import numpy as np
import pytest

from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject
from repro.geometry.shapes import BoxShape, LineString, Point, Polygon
from repro.geometry.vertex_table import VertexTable, shape_of


def mixed_objects():
    shapes = [
        Polygon([(0, 0), (4, 0), (4, 4), (0, 4)]),
        LineString([(10, 10), (12, 14), (15, 11)]),
        Point([(20, 20)]),
        BoxShape((30, 30), (33, 35)),
        None,  # MBR-only object — box fallback in the table
    ]
    objects = []
    for i, shape in enumerate(shapes):
        mbr = shape.mbr() if shape is not None else MBR((40, 40), (42, 41))
        objects.append(SpatialObject(i, mbr, shape))
    return objects


class TestConstruction:
    def test_round_trips_every_kind(self):
        objects = mixed_objects()
        table = VertexTable.from_objects(objects)
        assert len(table) == len(objects)
        for i, obj in enumerate(objects):
            rebuilt = table.shape_at(i)
            expected = shape_of(obj)
            assert type(rebuilt) is type(expected)
            assert rebuilt.vertices == expected.vertices

    def test_flat_buffer_is_csr(self):
        table = VertexTable.from_objects(mixed_objects())
        assert table.vertices.dtype == np.float64
        assert table.offsets[0] == 0
        assert int(table.offsets[-1]) == len(table.vertices)
        assert np.all(np.diff(table.offsets) > 0)

    def test_take_preserves_ids_and_shapes(self):
        objects = mixed_objects()
        table = VertexTable.from_objects(objects)
        sub = table.take([3, 1])
        assert len(sub) == 2
        assert list(sub.ids) == [3, 1]
        assert sub.shape_at(0).vertices == shape_of(objects[3]).vertices
        assert sub.shape_at(1).vertices == shape_of(objects[1]).vertices


class TestSharedMemory:
    def test_shared_round_trip(self):
        table = VertexTable.from_objects(mixed_objects())
        block = table.to_shared()
        try:
            remote = VertexTable.from_shared(block.handle)
            try:
                assert len(remote) == len(table)
                for i in range(len(table)):
                    assert remote.shape_at(i).vertices == table.shape_at(i).vertices
            finally:
                remote.release()
        finally:
            block.close()

    def test_shm_slice_selects_members(self):
        table = VertexTable.from_objects(mixed_objects())
        block = table.to_shared()
        try:
            sliced = VertexTable.shm_slice(block.handle, [0, 4])
            try:
                assert list(sliced.ids) == [0, 4]
                assert sliced.shape_at(0).vertices == table.shape_at(0).vertices
                assert sliced.shape_at(1).vertices == table.shape_at(4).vertices
            finally:
                sliced.release()
        finally:
            block.close()


class TestShapeOf:
    def test_falls_back_to_solid_box(self):
        obj = SpatialObject(7, MBR((1, 2), (3, 4)))
        fallback = shape_of(obj)
        assert isinstance(fallback, BoxShape)
        assert fallback.vertices == ((1.0, 2.0), (3.0, 4.0))

    def test_passes_through_attached_shape(self):
        shape = Point([(5, 5)])
        obj = SpatialObject(8, shape.mbr(), shape)
        assert shape_of(obj) is shape


class TestFingerprint:
    def test_shapes_change_dataset_fingerprint(self):
        from repro.datasets.base import Dataset
        from repro.service.fingerprint import dataset_fingerprint

        square = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        plain = Dataset([SpatialObject(0, square.mbr())], name="d")
        shaped = Dataset([SpatialObject(0, square.mbr(), square)], name="d")
        assert dataset_fingerprint(plain) != dataset_fingerprint(shaped)

    def test_different_shapes_differ(self):
        from repro.datasets.base import Dataset
        from repro.service.fingerprint import dataset_fingerprint

        a = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        b = Polygon([(0, 0), (2, 0), (2, 2), (0, 2.5)])
        fp_a = dataset_fingerprint(
            Dataset([SpatialObject(0, a.mbr().union(b.mbr()), a)], name="d")
        )
        fp_b = dataset_fingerprint(
            Dataset([SpatialObject(0, a.mbr().union(b.mbr()), b)], name="d")
        )
        assert fp_a != fp_b


class TestCacheKeys:
    def test_geometry_separates_index_keys(self):
        from repro.service.cache import IndexKey

        mbr_key = IndexKey.create("fp", "TOUCH", {}, None, 1.0)
        exact_key = IndexKey.create("fp", "TOUCH", {}, None, 1.0, geometry="exact")
        assert mbr_key != exact_key
        assert mbr_key.geometry == "mbr"


class TestDatasetShapes:
    def test_has_shapes_and_vertex_table(self):
        from repro.datasets.base import Dataset

        square = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        shaped = Dataset([SpatialObject(0, square.mbr(), square)], name="s")
        plain = Dataset([SpatialObject(0, square.mbr())], name="p")
        assert shaped.has_shapes and not plain.has_shapes
        table = shaped.vertex_table()
        assert len(table) == 1
        assert table.shape_at(0).vertices == square.vertices

    def test_synthetic_shape_workloads_carry_shapes(self):
        from repro.datasets.synthetic import clustered_linestrings, clustered_polygons

        polys = clustered_polygons(12, seed=3)
        lines = clustered_linestrings(12, seed=4)
        assert polys.has_shapes and lines.has_shapes
        for obj in list(polys) + list(lines):
            shape = obj.geometry
            assert shape is not None
            # The object's MBR is exactly the shape's MBR — the filter
            # stage must see tight boxes or candidates go missing.
            assert obj.mbr.lo == pytest.approx(shape.mbr().lo)
            assert obj.mbr.hi == pytest.approx(shape.mbr().hi)
