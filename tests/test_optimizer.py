"""Unit tests of the adaptive optimizer: sketches, cost model, plans.

The contracts pinned here are the ones ``algorithm="auto"`` stands on:
sketches are deterministic and cached by fingerprint, the cost model is
monotone in workload size and ε, and a :class:`~repro.optimizer.plan.Plan`
survives a JSON round-trip bit-for-bit (the wire/``stats.extra``
representation is the plan).
"""

from __future__ import annotations

import json

import pytest

from repro.datasets.synthetic import uniform_boxes
from repro.geometry.columnar import CoordinateTable
from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject
from repro.joins.registry import ALGORITHMS, available
from repro.optimizer import (
    DEFAULT_CALIBRATION,
    Plan,
    choose_plan,
    clear_sketch_cache,
    score_candidates,
    sketch_dataset,
    sketch_table,
    work_units,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_sketch_cache()
    yield
    clear_sketch_cache()


def _pair(n_a=60, n_b=120, seed_a=101, seed_b=102):
    return uniform_boxes(n_a, seed=seed_a), uniform_boxes(n_b, seed=seed_b)


# -- sketches ----------------------------------------------------------
class TestSketch:
    def test_deterministic_by_fingerprint(self):
        objects, _ = _pair()
        first = sketch_dataset(list(objects))
        clear_sketch_cache()
        second = sketch_dataset(list(objects))
        assert first == second
        assert first.fingerprint == second.fingerprint

    def test_cache_hit_returns_same_object(self):
        objects, _ = _pair()
        first = sketch_dataset(list(objects))
        second = sketch_dataset(list(objects))
        assert first is second

    def test_different_data_different_fingerprint(self):
        a, b = _pair()
        assert sketch_dataset(list(a)).fingerprint != sketch_dataset(
            list(b)
        ).fingerprint

    def test_values_on_handcrafted_objects(self):
        objects = [
            SpatialObject(0, MBR((0.0, 0.0), (2.0, 4.0))),
            SpatialObject(1, MBR((8.0, 6.0), (10.0, 10.0))),
        ]
        sketch = sketch_dataset(objects)
        assert sketch.n == 2
        assert sketch.dim == 2
        assert sketch.lo == (0.0, 0.0)
        assert sketch.hi == (10.0, 10.0)
        assert sketch.mean_sides == (2.0, 4.0)
        assert sketch.shape_fraction == 0.0

    def test_empty_dataset(self):
        sketch = sketch_dataset([])
        assert sketch.n == 0
        assert sketch.density == 0.0

    def test_table_sketch_matches_object_sketch_values(self):
        objects, _ = _pair()
        objects = list(objects)
        from_objects = sketch_dataset(objects)
        from_table = sketch_table(CoordinateTable.from_objects(objects))
        assert from_table.n == from_objects.n
        assert from_table.lo == from_objects.lo
        assert from_table.hi == from_objects.hi
        assert from_table.mean_sides == pytest.approx(from_objects.mean_sides)
        # ...but the cache keys stay disjoint: a table has no identities.
        assert from_table.fingerprint.startswith("table:")
        assert from_table.fingerprint != from_objects.fingerprint

    def test_table_sketch_cached(self):
        objects, _ = _pair()
        table = CoordinateTable.from_objects(list(objects))
        assert sketch_table(table) is sketch_table(
            CoordinateTable.from_objects(list(objects))
        )

    def test_sketch_json_round_trip(self):
        objects, _ = _pair()
        sketch = sketch_dataset(list(objects))
        restored = type(sketch).from_dict(json.loads(json.dumps(sketch.as_dict())))
        assert restored == sketch


# -- cost model --------------------------------------------------------
class TestCostModel:
    def test_more_objects_never_cheaper(self):
        small_a = sketch_dataset(list(uniform_boxes(50, seed=1)))
        small_b = sketch_dataset(list(uniform_boxes(100, seed=2)))
        big_a = sketch_dataset(list(uniform_boxes(400, seed=1)))
        big_b = sketch_dataset(list(uniform_boxes(800, seed=2)))
        for name in ALGORITHMS:
            small_units = sum(work_units(name, small_a, small_b, 5.0)[:2])
            big_units = sum(work_units(name, big_a, big_b, 5.0)[:2])
            assert big_units >= small_units, name

    def test_larger_epsilon_never_cheaper(self):
        a = sketch_dataset(list(uniform_boxes(100, seed=3)))
        b = sketch_dataset(list(uniform_boxes(200, seed=4)))
        for name in ALGORITHMS:
            narrow = sum(work_units(name, a, b, 1.0)[:2])
            wide = sum(work_units(name, a, b, 10.0)[:2])
            assert wide >= narrow, name

    def test_scores_cover_registry_sorted_cheapest_first(self):
        a = sketch_dataset(list(uniform_boxes(100, seed=5)))
        b = sketch_dataset(list(uniform_boxes(200, seed=6)))
        scores = score_candidates(a, b, 5.0)
        assert sorted(s.algorithm for s in scores) == sorted(ALGORITHMS)
        costs = [s.cost_seconds for s in scores]
        assert costs == sorted(costs)

    def test_rebuild_penalty_for_non_prepare_aware(self):
        a = sketch_dataset(list(uniform_boxes(100, seed=5)))
        b = sketch_dataset(list(uniform_boxes(200, seed=6)))
        prepare_aware = {info.name for info in available() if info.prepare_aware}
        scores = score_candidates(a, b, 5.0, probes=50)
        for score in scores:
            if score.algorithm not in prepare_aware:
                assert "rebuilds per probe" in score.note

    def test_reuse_index_amortises_prepare_aware_build(self):
        a = sketch_dataset(list(uniform_boxes(100, seed=5)))
        b = sketch_dataset(list(uniform_boxes(200, seed=6)))
        one_shot = {
            s.algorithm: s.cost_seconds for s in score_candidates(a, b, 5.0)
        }
        reused = score_candidates(a, b, 5.0, reuse_index=True)
        prepare_aware = {info.name for info in available() if info.prepare_aware}
        for score in reused:
            per_probe = float(
                DEFAULT_CALIBRATION["probe_overhead_seconds"]
            ) + float(
                DEFAULT_CALIBRATION["probe_overhead_extra"].get(
                    score.algorithm, 0.0
                )
            )
            if score.algorithm in prepare_aware:
                assert "amortised" in score.note
                # Amortised build + the per-probe overhead: strictly
                # below the one-shot build plus the same overhead.
                assert (
                    score.cost_seconds < one_shot[score.algorithm] + per_probe
                )

    def test_memory_budget_spill_penalty(self):
        a = sketch_dataset(list(uniform_boxes(400, seed=7)))
        b = sketch_dataset(list(uniform_boxes(800, seed=8)))
        unbounded = {
            s.algorithm: s.cost_seconds for s in score_candidates(a, b, 5.0)
        }
        squeezed = score_candidates(a, b, 5.0, max_bytes=1)
        assert any("over memory budget" in s.note for s in squeezed)
        for score in squeezed:
            assert score.cost_seconds >= unbounded[score.algorithm]


# -- plans -------------------------------------------------------------
class TestChoosePlan:
    def test_winner_is_cheapest_candidate(self):
        a = sketch_dataset(list(uniform_boxes(100, seed=9)))
        b = sketch_dataset(list(uniform_boxes(200, seed=10)))
        plan = choose_plan(a, b, 5.0)
        assert plan.algorithm == plan.candidates[0].algorithm
        assert plan.chosen().algorithm == plan.algorithm
        assert sum(1 for c in plan.candidates if c.chosen) == 1

    def test_pinned_algorithm_respected_and_recorded(self):
        a = sketch_dataset(list(uniform_boxes(100, seed=9)))
        b = sketch_dataset(list(uniform_boxes(200, seed=10)))
        plan = choose_plan(a, b, 5.0, algorithm="NL", workers=2)
        assert plan.algorithm == "NL"
        assert plan.workers == 2
        assert "algorithm" in plan.pinned
        assert "workers" in plan.pinned
        # The full candidate list is still scored (that's how explain
        # shows what auto would have picked instead).
        assert len(plan.candidates) == len(ALGORITHMS)

    def test_backend_auto_is_not_a_pin(self):
        a = sketch_dataset(list(uniform_boxes(100, seed=9)))
        b = sketch_dataset(list(uniform_boxes(200, seed=10)))
        assert "backend" not in choose_plan(a, b, 5.0, backend="auto").pinned
        assert "backend" in choose_plan(a, b, 5.0, backend="object").pinned

    def test_unknown_algorithm_raises(self):
        a = sketch_dataset(list(uniform_boxes(50, seed=9)))
        b = sketch_dataset(list(uniform_boxes(50, seed=10)))
        with pytest.raises(KeyError):
            choose_plan(a, b, 5.0, algorithm="NoSuchJoin")

    def test_small_workload_stays_sequential(self):
        a = sketch_dataset(list(uniform_boxes(50, seed=11)))
        b = sketch_dataset(list(uniform_boxes(50, seed=12)))
        assert choose_plan(a, b, 1.0).workers == 0

    def test_plan_json_round_trip_exact(self):
        a = sketch_dataset(list(uniform_boxes(100, seed=13)))
        b = sketch_dataset(list(uniform_boxes(200, seed=14)))
        plan = choose_plan(a, b, 5.0, geometry="mbr", reuse_index=True)
        restored = Plan.from_dict(json.loads(json.dumps(plan.as_dict())))
        assert restored == plan

    def test_plan_is_deterministic(self):
        a_objects = list(uniform_boxes(100, seed=15))
        b_objects = list(uniform_boxes(200, seed=16))
        first = choose_plan(
            sketch_dataset(a_objects), sketch_dataset(b_objects), 5.0
        )
        clear_sketch_cache()
        second = choose_plan(
            sketch_dataset(list(a_objects)), sketch_dataset(list(b_objects)), 5.0
        )
        assert first == second
