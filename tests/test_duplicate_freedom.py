"""Duplicate-freedom property suite on adversarial boundary data.

Every multiple-assignment path in the library (PBSM cells, grid local
joins, the chunked/parallel region cut, the two-layer mini-joins) must
return a *duplicate-free pair multiset* — each intersecting pair exactly
once — even when the data conspires to sit exactly on the partition
boundaries.  Three adversarial workloads probe that:

- **corner points** — zero-extent MBRs placed exactly on cell/tile
  corners of the canonical grid configurations (multiples of 2, 2.5 and
  10 space units, i.e. PBSM/TwoLayer cell edges and slab/tile edges of
  a 4-way decomposition);
- **shared-edge lattice** — axis-aligned unit boxes tiling the plane so
  every box shares full edges (and corners) with its neighbours;
- **row spanners** — objects spanning whole rows of tiles/slabs, so
  each is replicated into every partition along an axis.

Checked for every registered algorithm, both geometry backends where
supported, and through the sequential, chunked and multiprocess engines
under both dedup policies.
"""

import pytest

from repro.geometry.objects import box_object, point_object
from repro.joins.registry import ALGORITHMS, BACKEND_AWARE, AlgorithmSpec
from repro.parallel.chunked import ChunkedSpatialJoin
from repro.parallel.engine import ParallelChunkedJoin
from repro.validation import assert_matches_ground_truth


def corner_points():
    """Zero-extent MBRs on the lattice corners of every grid in play."""
    objects_a = [box_object(0, (0.0, 0.0), (10.0, 10.0))]
    objects_a += [
        box_object(1 + i, (2.5 * i, 0.0), (2.5 * i + 2.5, 10.0)) for i in range(4)
    ]
    # Corners at multiples of 2.5 (slab/tile edges of a 4-way cut over
    # [0, 10]) and of 2.0 (scaled PBSM/TwoLayer cell edges).
    objects_b = [
        point_object(100 + 10 * i + j, (2.5 * i, 2.5 * j))
        for i in range(5)
        for j in range(5)
    ]
    objects_b += [
        point_object(200 + 10 * i + j, (2.0 * i, 2.0 * j))
        for i in range(6)
        for j in range(6)
    ]
    return objects_a, objects_b


def shared_edge_lattice():
    """Unit boxes tiling [0, 6]^2: every interior edge is shared twice."""
    objects_a = [
        box_object(10 * i + j, (float(i), float(j)), (i + 1.0, j + 1.0))
        for i in range(6)
        for j in range(6)
    ]
    objects_b = [
        box_object(10 * i + j, (float(i), float(j)), (i + 1.0, j + 1.0))
        for i in range(1, 5)
        for j in range(1, 5)
    ]
    return objects_a, objects_b


def row_spanners():
    """Objects spanning whole rows of tiles against column spanners."""
    objects_a = [
        box_object(i, (0.0, 1.5 * i), (12.0, 1.5 * i + 2.0)) for i in range(8)
    ]
    objects_b = [
        box_object(j, (1.5 * j, 0.0), (1.5 * j + 2.0, 12.0)) for j in range(8)
    ]
    objects_b.append(box_object(99, (0.0, 0.0), (12.0, 12.0)))  # spans everything
    return objects_a, objects_b


WORKLOADS = {
    "corner_points": corner_points,
    "shared_edge_lattice": shared_edge_lattice,
    "row_spanners": row_spanners,
}

#: Algorithms driven through the multiprocess engines (a representative
#: slice: the replaced machinery, its replacement, the paper's champion
#: and the ground-truth baseline) — every algorithm already runs through
#: the full engine matrix in tests/test_parallel_parity.py.
ENGINE_ALGORITHMS = ("NL", "PBSM-500", "TwoLayer-500", "TOUCH")


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
class TestSequentialDuplicateFreedom:
    def test_exact_multiset(self, algorithm, workload):
        objects_a, objects_b = WORKLOADS[workload]()
        result = AlgorithmSpec.create(algorithm).make().join(objects_a, objects_b)
        # assert_matches_ground_truth includes assert_no_duplicates.
        assert_matches_ground_truth(result, objects_a, objects_b)


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("backend", ["object", "columnar"])
@pytest.mark.parametrize("algorithm", sorted(BACKEND_AWARE))
class TestBackendDuplicateFreedom:
    def test_exact_multiset(self, algorithm, backend, workload):
        if backend == "columnar":
            pytest.importorskip("numpy")
        objects_a, objects_b = WORKLOADS[workload]()
        result = (
            AlgorithmSpec.create(algorithm, backend=backend)
            .make()
            .join(objects_a, objects_b)
        )
        assert_matches_ground_truth(result, objects_a, objects_b)
        if algorithm.startswith("TwoLayer"):
            assert result.stats.dedup_checks == 0


@pytest.mark.parallel
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("algorithm", ENGINE_ALGORITHMS)
class TestEngineDuplicateFreedom:
    def test_chunked(self, algorithm, workload):
        objects_a, objects_b = WORKLOADS[workload]()
        for kind in ("slabs", "tiles"):
            engine = ChunkedSpatialJoin(
                AlgorithmSpec.create(algorithm), n_chunks=4, kind=kind
            )
            result = engine.join(objects_a, objects_b)
            assert_matches_ground_truth(result, objects_a, objects_b)

    @pytest.mark.parametrize("dedup", ["reference", "partition"])
    def test_parallel(self, algorithm, workload, dedup):
        objects_a, objects_b = WORKLOADS[workload]()
        for kind in ("slabs", "tiles"):
            engine = ParallelChunkedJoin(
                algorithm, workers=2, n_chunks=4, kind=kind, dedup=dedup
            )
            result = engine.join(objects_a, objects_b)
            assert_matches_ground_truth(result, objects_a, objects_b)
            if dedup == "partition" and algorithm.startswith(("NL", "TwoLayer")):
                # Neither the engine nor these inner algorithms perform
                # any ownership test: the whole path is dedup-free.
                assert result.stats.dedup_checks == 0
