"""The repro-touch command-line harness."""

import json

import pytest

from repro.bench.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_scale_choices(self):
        args = build_parser().parse_args(["run", "table1", "--scale", "smoke"])
        assert args.scale == "smoke"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table1", "--scale", "galactic"])

    def test_workers_and_decompose_flags(self):
        args = build_parser().parse_args(
            ["run", "fig9", "--workers", "4", "--decompose", "tiles"]
        )
        assert args.workers == 4
        assert args.decompose == "tiles"
        args = build_parser().parse_args(["all", "--workers", "2"])
        assert args.workers == 2 and args.decompose is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig9", "--decompose", "shards"])

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--probes", "12", "--algorithm", "TwoLayer-500", "--compare-rebuild"]
        )
        assert args.probes == 12
        assert args.algorithm == "TwoLayer-500"
        assert args.compare_rebuild is True
        assert args.batch is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--algorithm", "MagicJoin"])

    def test_dedup_flag(self):
        args = build_parser().parse_args(
            ["run", "fig9", "--workers", "2", "--dedup", "partition"]
        )
        assert args.dedup == "partition"
        args = build_parser().parse_args(["all", "--workers", "2"])
        assert args.dedup is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig9", "--dedup", "hope"])

    def test_explain_flags(self):
        args = build_parser().parse_args(
            ["explain", "--scale", "smoke", "--algorithm", "TOUCH", "--top", "3"]
        )
        assert args.algorithm == "TOUCH"
        assert args.top == 3
        assert build_parser().parse_args(["explain"]).algorithm == "auto"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "--algorithm", "MagicJoin"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table1" in out and "smoke" in out

    def test_run_prints_table(self, capsys):
        assert main(["run", "table1", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "TOUCH" in out

    def test_run_writes_json(self, tmp_path, capsys):
        target = tmp_path / "out" / "table1.json"
        assert main(["run", "table1", "--scale", "smoke", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["experiment"] == "table1"

    def test_run_fig13(self, capsys):
        assert main(["run", "fig13", "--scale", "smoke"]) == 0
        assert "filter" in capsys.readouterr().out.lower()

    def test_run_with_workers(self, capsys):
        assert main(["run", "table1", "--scale", "smoke", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "Parallel[TOUCH" in out
        assert "worker_join_seconds" in out

    def test_run_parallel_scaling(self, capsys):
        assert main(["run", "parallel_scaling", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "sequential" in out

    def test_explain_prints_plan(self, capsys):
        assert main(["explain", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "candidates" in out

    def test_explain_writes_json(self, tmp_path, capsys):
        target = tmp_path / "plan.json"
        assert (
            main(
                [
                    "explain",
                    "--scale",
                    "smoke",
                    "--algorithm",
                    "TOUCH",
                    "--json",
                    str(target),
                ]
            )
            == 0
        )
        payload = json.loads(target.read_text())
        assert payload["algorithm"] == "TOUCH"
        assert "algorithm" in payload["pinned"]
        assert any(c["chosen"] for c in payload["candidates"])

    def test_explain_unknown_dataset_exits_2(self, capsys):
        assert main(["explain", "--scale", "smoke", "--dataset", "nope"]) == 2
        assert "known" in capsys.readouterr().err
