"""The columnar geometry backend: tables, batch kernels, bulk grid.

Property tests pin the batch kernels to the object model's semantics —
closed boxes, touching edges intersect, degenerate (point) boxes allowed
— and unit tests cover the conversions and the vectorised grid/assignment
machinery against their object-model twins.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.assignment import assign_dataset_b, assign_table_b
from repro.core.tree import TouchTree
from repro.datasets.base import Dataset
from repro.datasets.synthetic import uniform_boxes
from repro.geometry.columnar import (
    BACKENDS,
    CoordinateTable,
    concat_ranges,
    intersect_pairs,
    intersects_many,
    overlap_mask,
    resolve_backend,
    sweep_pairs,
)
from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject, box_object
from repro.grid.columnar import ColumnarGrid
from repro.grid.uniform import UniformGrid
from repro.stats.counters import JoinStatistics


# -- box strategies ----------------------------------------------------
# Integer corners force plenty of exactly-touching edges/corners and
# zero-extent (point) boxes — the cases where open/closed semantics and
# strict/non-strict comparisons diverge.
def _boxes(dim: int, max_n: int = 12):
    corner = st.integers(min_value=-6, max_value=6)
    extent = st.integers(min_value=0, max_value=4)
    box = st.tuples(
        st.tuples(*[corner] * dim), st.tuples(*[extent] * dim)
    ).map(
        lambda t: MBR(
            tuple(float(c) for c in t[0]),
            tuple(float(c + e) for c, e in zip(t[0], t[1])),
        )
    )
    return st.lists(box, min_size=1, max_size=max_n)


def _table(mbrs) -> CoordinateTable:
    return CoordinateTable.from_mbrs(mbrs)


class TestIntersectsManyProperty:
    @given(_boxes(2), _boxes(2))
    def test_matches_pairwise_2d(self, boxes_a, boxes_b):
        matrix = intersects_many(_table(boxes_a), _table(boxes_b))
        for i, a in enumerate(boxes_a):
            for j, b in enumerate(boxes_b):
                assert matrix[i, j] == a.intersects(b)

    @given(_boxes(3), _boxes(3))
    def test_matches_pairwise_3d(self, boxes_a, boxes_b):
        matrix = intersects_many(_table(boxes_a), _table(boxes_b))
        for i, a in enumerate(boxes_a):
            for j, b in enumerate(boxes_b):
                assert matrix[i, j] == a.intersects(b)

    @given(_boxes(3), _boxes(3))
    def test_pairs_kernels_agree_with_matrix(self, boxes_a, boxes_b):
        """intersect_pairs and sweep_pairs report exactly the matrix."""
        table_a, table_b = _table(boxes_a), _table(boxes_b)
        truth = {
            (i, j)
            for i, j in zip(*np.nonzero(intersects_many(table_a, table_b)))
        }
        nested = set(zip(*(arr.tolist() for arr in intersect_pairs(table_a, table_b))))
        assert nested == truth
        idx_a, idx_b, candidates = sweep_pairs(table_a, table_b)
        swept = set(zip(idx_a.tolist(), idx_b.tolist()))
        assert swept == truth
        assert len(idx_a) <= candidates <= len(boxes_a) * len(boxes_b)

    def test_touching_edges_and_points(self):
        boxes_a = [
            MBR((0.0, 0.0), (1.0, 1.0)),
            MBR((2.0, 2.0), (2.0, 2.0)),  # a point
        ]
        boxes_b = [
            MBR((1.0, 1.0), (2.0, 2.0)),  # shares corner with both
            MBR((5.0, 5.0), (6.0, 6.0)),
        ]
        matrix = intersects_many(_table(boxes_a), _table(boxes_b))
        assert matrix.tolist() == [[True, False], [True, False]]

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dimension"):
            intersects_many(_table([MBR((0,), (1,))]), _table([MBR((0, 0), (1, 1))]))


class TestCoordinateTable:
    def test_object_round_trip(self):
        objects = list(uniform_boxes(50, seed=201))
        table = CoordinateTable.from_objects(objects)
        assert len(table) == 50 and table.dim == 3
        back = table.to_objects()
        assert [o.oid for o in back] == [o.oid for o in objects]
        assert all(x.mbr == y.mbr for x, y in zip(back, objects))

    def test_dataset_round_trip(self):
        dataset = uniform_boxes(30, seed=202)
        table = dataset.to_table()
        assert table.nbytes == 30 * (2 * 3 * 8 + 8)
        back = Dataset.from_table(table, name="restored")
        assert back.name == "restored"
        assert list(back) == list(dataset)

    def test_take_and_mbr(self):
        table = _table([MBR((0.0, 0.0), (1.0, 2.0)), MBR((3.0, 3.0), (4.0, 5.0))])
        sub = table.take(np.array([1]))
        assert len(sub) == 1
        assert sub.mbr(0) == MBR((3.0, 3.0), (4.0, 5.0))

    def test_overlap_mask(self):
        table = _table([MBR((0.0, 0.0), (1.0, 1.0)), MBR((5.0, 5.0), (6.0, 6.0))])
        assert overlap_mask(table, (1.0, 1.0), (2.0, 2.0)).tolist() == [True, False]

    def test_validation(self):
        with pytest.raises(ValueError, match="shape"):
            CoordinateTable(np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(ValueError, match="ids"):
            CoordinateTable(np.zeros((2, 4)), np.zeros(3))

    def test_empty_inputs_build_typed_empty_tables(self):
        # Empty sides are legal: a (0, 2D) float64 table with a
        # well-defined dim instead of a shape-inference error.
        for table in (
            CoordinateTable.from_objects([]),
            CoordinateTable.from_mbrs([]),
        ):
            assert len(table) == 0
            assert table.dim == 3  # DEFAULT_DIM
            assert table.coords.shape == (0, 6)
            assert table.coords.dtype == np.float64
            assert table.ids.dtype == np.int64
        assert CoordinateTable.from_objects([], dim=2).coords.shape == (0, 4)
        assert CoordinateTable.from_mbrs([], dim=2).dim == 2

    def test_empty_bounds_raises_named_error(self):
        table = CoordinateTable.from_mbrs([])
        with pytest.raises(ValueError, match=r"bounds\(\) of an empty table"):
            table.bounds()

    def test_concat_ranges(self):
        anchors, values = concat_ranges(np.array([5, 0, 7]), np.array([2, 0, 3]))
        assert anchors.tolist() == [0, 0, 2, 2, 2]
        assert values.tolist() == [5, 6, 7, 8, 9]


class TestBackendResolution:
    def test_auto_resolves_to_columnar_with_numpy(self):
        assert resolve_backend("auto") == "columnar"

    def test_explicit_passthrough(self):
        assert resolve_backend("object") == "object"
        assert resolve_backend("columnar") == "columnar"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("gpu")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_constructors_accept_all(self, backend):
        from repro.core.touch import TouchJoin
        from repro.joins.nested_loop import NestedLoopJoin
        from repro.joins.pbsm import PBSMJoin

        for cls in (TouchJoin, NestedLoopJoin, PBSMJoin):
            assert cls(backend=backend).backend == backend

    def test_constructors_reject_unknown(self):
        from repro.core.touch import TouchJoin
        from repro.joins.nested_loop import NestedLoopJoin
        from repro.joins.pbsm import PBSMJoin

        for cls in (TouchJoin, NestedLoopJoin, PBSMJoin):
            with pytest.raises(ValueError, match="backend"):
                cls(backend="bogus")


class TestColumnarGridParity:
    @given(_boxes(2, max_n=20), st.integers(min_value=1, max_value=7))
    def test_entry_counts_match_uniform_grid(self, boxes, resolution):
        universe = MBR((-8.0, -8.0), (12.0, 12.0))
        object_grid = UniformGrid(universe, resolution=resolution)
        for i, box in enumerate(boxes):
            object_grid.insert(i, box)
        table = _table(boxes)
        grid = ColumnarGrid(
            np.array(universe.lo), np.array(universe.hi), resolution=resolution
        )
        obj_idx, keys = grid.entries(table)
        assert len(obj_idx) == object_grid.reference_count
        assert len(np.unique(keys)) == len(object_grid)

    def test_cell_indices_clamped(self):
        grid = ColumnarGrid(np.zeros(2), np.full(2, 10.0), resolution=5)
        points = np.array([[-3.0, 4.9], [11.0, 10.0]])
        assert grid.cell_indices(points).tolist() == [[0, 2], [4, 4]]

    def test_cell_indices_far_outside_fixed_universe(self):
        # Regression: the float->int64 cast used to run *before* the
        # clamp, so coordinates far beyond a fixed universe overflowed
        # to INT64_MIN and landed in cell 0 instead of the last cell.
        universe = MBR((0.0, 0.0), (10.0, 10.0))
        object_grid = UniformGrid(universe, resolution=5)
        grid = ColumnarGrid(np.zeros(2), np.full(2, 10.0), resolution=5)
        points = [(1e300, 3.0), (-1e300, 3.0), (1e19, 1e19), (5.0, 1e25)]
        columnar = grid.cell_indices(np.array(points))
        for point, cells in zip(points, columnar):
            assert tuple(cells) == object_grid.cell_of_point(point)
        assert columnar[0].tolist() == [4, 1]

    @given(
        _boxes(2, max_n=16),
        st.integers(min_value=1, max_value=7),
    )
    def test_out_of_universe_indices_match_object_path(self, boxes, resolution):
        # The strategy's boxes live in [-6, 10]^2; a deliberately small
        # fixed universe makes many of them straddle or fall outside it.
        universe = MBR((-2.0, -1.0), (3.0, 4.0))
        object_grid = UniformGrid(universe, resolution=resolution)
        grid = ColumnarGrid(
            np.array(universe.lo), np.array(universe.hi), resolution=resolution
        )
        table = _table(boxes)
        lo_idx, hi_idx = grid.index_ranges(table)
        for i, box in enumerate(boxes):
            expected = object_grid.index_ranges(box)
            assert tuple(lo_idx[i]) == tuple(lo for lo, _ in expected)
            assert tuple(hi_idx[i]) == tuple(hi for _, hi in expected)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="exactly one"):
            ColumnarGrid(np.zeros(2), np.ones(2))
        with pytest.raises(ValueError, match=">= 1"):
            ColumnarGrid(np.zeros(2), np.ones(2), resolution=0)
        with pytest.raises(ValueError, match="positive"):
            ColumnarGrid(np.zeros(2), np.ones(2), cell_size=0.0)


class TestBatchedAssignmentParity:
    @pytest.mark.parametrize("seed", [301, 302, 303])
    def test_same_nodes_and_filtering_as_scalar_walk(self, seed):
        objects_a = list(uniform_boxes(120, seed=seed, side_range=(0.0, 15.0)))
        objects_b = list(uniform_boxes(400, seed=seed + 50, side_range=(0.0, 15.0)))

        scalar_tree = TouchTree(objects_a, num_partitions=16)
        scalar_stats = JoinStatistics()
        assign_dataset_b(scalar_tree, objects_b, scalar_stats)

        batched_tree = TouchTree(objects_a, num_partitions=16)
        batched_stats = JoinStatistics()
        table_b = CoordinateTable.from_objects(objects_b)
        assigned = assign_table_b(batched_tree, table_b, objects_b, batched_stats)

        assert batched_stats.filtered == scalar_stats.filtered
        scalar_map = {
            node.mbr: sorted(o.oid for o in node.entities_b)
            for node in scalar_tree.iter_nodes()
            if node.entities_b
        }
        batched_map = {
            node.mbr: sorted(o.oid for o in node.entities_b)
            for node in batched_tree.iter_nodes()
            if node.entities_b
        }
        assert batched_map == scalar_map
        # The returned row indices mirror the attached objects.
        for node, rows in assigned.items():
            assert sorted(table_b.ids[rows].tolist()) == sorted(
                o.oid for o in node.entities_b
            )

    def test_empty_b(self):
        tree = TouchTree([box_object(0, (0, 0), (1, 1))])
        table = CoordinateTable(np.empty((0, 4)), np.empty(0, dtype=np.int64))
        assert assign_table_b(tree, table) == {}

    def test_all_filtered(self):
        tree = TouchTree([box_object(0, (0.0, 0.0), (1.0, 1.0))])
        far = [SpatialObject(7, MBR((50.0, 50.0), (51.0, 51.0)))]
        stats = JoinStatistics()
        assigned = assign_table_b(
            tree, CoordinateTable.from_objects(far), far, stats
        )
        assert assigned == {} and stats.filtered == 1


class TestAxesOverlapMask:
    """Partial-dimensional overlap: the decomposition membership kernel."""

    def test_matches_per_object_touches(self):
        from repro.geometry.columnar import axes_overlap_mask
        from repro.parallel.decompose import Decomposition

        objects = list(uniform_boxes(120, seed=77, space=50.0, side_range=(0.0, 6.0)))
        table = CoordinateTable.from_objects(objects)
        universe = MBR((0.0, 0.0, 0.0), (50.0, 50.0, 50.0))
        for kind, n_chunks in (("slabs", 4), ("tiles", 6)):
            decomposition = Decomposition.build(universe, kind=kind, n_chunks=n_chunks)
            for region in decomposition.regions:
                mask = axes_overlap_mask(
                    table, region.axes, region.lows, region.highs
                )
                expected = [region.touches(o.mbr) for o in objects]
                assert mask.tolist() == expected

    def test_unconstrained_axes_stay_free(self):
        from repro.geometry.columnar import axes_overlap_mask

        table = CoordinateTable.from_mbrs(
            [MBR((0.0, 100.0), (1.0, 101.0)), MBR((5.0, -3.0), (6.0, -2.0))]
        )
        mask = axes_overlap_mask(table, (0,), (0.0,), (2.0,))
        assert mask.tolist() == [True, False]  # axis 1 never consulted
