"""Statistics counters, memory model, timers and validation helpers."""

import time

import pytest

from repro.geometry.objects import box_object
from repro.joins.base import JoinResult
from repro.stats import memory as memmodel
from repro.stats.counters import JoinStatistics
from repro.stats.timing import PhaseTimer, timed
from repro.validation import (
    assert_all_equivalent,
    assert_matches_ground_truth,
    assert_no_duplicates,
    brute_force_pairs,
    find_duplicates,
)


class TestJoinStatistics:
    def test_defaults_zero(self):
        stats = JoinStatistics()
        assert stats.comparisons == 0
        assert stats.extra == {}

    def test_merge_adds_counters(self):
        first = JoinStatistics(comparisons=10, filtered=2, total_seconds=1.0)
        second = JoinStatistics(comparisons=5, filtered=1, total_seconds=0.5)
        first.merge(second)
        assert first.comparisons == 15
        assert first.filtered == 3
        assert first.total_seconds == 1.5

    def test_merge_takes_max_memory(self):
        first = JoinStatistics(memory_bytes=100)
        first.merge(JoinStatistics(memory_bytes=70))
        assert first.memory_bytes == 100
        first.merge(JoinStatistics(memory_bytes=300))
        assert first.memory_bytes == 300

    def test_as_dict_roundtrip(self):
        stats = JoinStatistics(comparisons=3, result_pairs=1)
        view = stats.as_dict()
        assert view["comparisons"] == 3
        assert view["result_pairs"] == 1


class TestMemoryModel:
    def test_mbr_bytes(self):
        assert memmodel.mbr_bytes(3) == 48

    def test_node_bytes_grows_with_fanout(self):
        assert memmodel.node_bytes(3, 16) > memmodel.node_bytes(3, 2)

    def test_grid_cells_bytes(self):
        assert memmodel.grid_cells_bytes(0, 0) == 0
        assert memmodel.grid_cells_bytes(2, 10) == 2 * 24 + 10 * 8

    def test_reference_list(self):
        assert memmodel.reference_list_bytes(5) == 40


class TestTimers:
    def test_phase_timer_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("x"):
            time.sleep(0.001)
        with timer.phase("x"):
            time.sleep(0.001)
        assert timer.seconds("x") >= 0.002
        assert timer.seconds("missing") == 0.0
        assert timer.total() == pytest.approx(timer.seconds("x"))

    def test_timed_context(self):
        with timed() as holder:
            time.sleep(0.001)
        assert holder[0] >= 0.001


class TestValidation:
    def _result(self, pairs):
        stats = JoinStatistics(result_pairs=len(pairs))
        return JoinResult("test", pairs, stats)

    def test_brute_force(self):
        a = [box_object(0, (0, 0), (2, 2))]
        b = [box_object(0, (1, 1), (3, 3)), box_object(1, (9, 9), (10, 10))]
        assert brute_force_pairs(a, b) == {(0, 0)}

    def test_find_duplicates(self):
        assert find_duplicates([(1, 1), (2, 2), (1, 1)]) == [(1, 1)]
        assert find_duplicates([(1, 1), (2, 2)]) == []

    def test_assert_no_duplicates_raises(self):
        with pytest.raises(AssertionError, match="duplicated"):
            assert_no_duplicates(self._result([(1, 1), (1, 1)]))

    def test_assert_matches_detects_missing(self):
        a = [box_object(0, (0, 0), (2, 2))]
        b = [box_object(0, (1, 1), (3, 3))]
        with pytest.raises(AssertionError, match="missing"):
            assert_matches_ground_truth(self._result([]), a, b)

    def test_assert_matches_detects_spurious(self):
        a = [box_object(0, (0, 0), (1, 1))]
        b = [box_object(0, (5, 5), (6, 6))]
        with pytest.raises(AssertionError, match="spurious"):
            assert_matches_ground_truth(self._result([(0, 0)]), a, b)

    def test_assert_all_equivalent(self):
        assert_all_equivalent([])
        assert_all_equivalent([self._result([(1, 2)]), self._result([(1, 2)])])
        with pytest.raises(AssertionError, match="differs"):
            assert_all_equivalent([self._result([(1, 2)]), self._result([])])
