"""TOUCH end-to-end: phases 1-3, parameters, statistics."""

import pytest

from repro.core.local_join import join_assigned_nodes
from repro.core.touch import TouchJoin
from repro.core.tree import TouchTree
from repro.datasets.synthetic import clustered_boxes, gaussian_boxes, uniform_boxes
from repro.datasets.transform import inflate
from repro.stats.counters import JoinStatistics
from repro.validation import assert_matches_ground_truth

A = uniform_boxes(100, seed=101, side_range=(0.0, 20.0))
B = uniform_boxes(300, seed=102, side_range=(0.0, 20.0))


class TestParameters:
    def test_default_configuration_matches_paper(self):
        join = TouchJoin()
        info = join.describe()
        assert info["fanout"] == 2
        assert info["num_partitions"] == 1024
        assert info["local_kernel"] == "grid"

    def test_unknown_local_kernel_rejected_at_join(self):
        with pytest.raises(ValueError, match="kernel"):
            TouchJoin(local_kernel="bogus").join(A, B)

    @pytest.mark.parametrize("kernel", ["grid", "sweep", "nested"])
    def test_all_kernels_correct(self, kernel):
        result = TouchJoin(local_kernel=kernel).join(A, B)
        assert_matches_ground_truth(result, A, B)

    @pytest.mark.parametrize("fanout", [2, 3, 8, 20])
    def test_all_fanouts_correct(self, fanout):
        result = TouchJoin(fanout=fanout, num_partitions=32).join(A, B)
        assert_matches_ground_truth(result, A, B)

    @pytest.mark.parametrize("partitions", [1, 4, 64, 100_000])
    def test_partition_extremes_correct(self, partitions):
        result = TouchJoin(num_partitions=partitions).join(A, B)
        assert_matches_ground_truth(result, A, B)

    def test_leaf_capacity_override(self):
        result = TouchJoin(leaf_capacity=5, num_partitions=2).join(A, B)
        assert_matches_ground_truth(result, A, B)
        assert result.parameters["leaf_capacity"] == 5


class TestPhases:
    def test_phase_timings_populated(self):
        result = TouchJoin().join(A, B)
        stats = result.stats
        assert stats.build_seconds > 0
        assert stats.assign_seconds > 0
        assert stats.join_seconds > 0

    def test_tree_exposed_after_join(self):
        join = TouchJoin(num_partitions=16)
        join.join(A, B)
        assert isinstance(join.last_tree, TouchTree)
        assert join.last_tree.assigned_b_count() + join.last_tree.node_count() > 0

    def test_extra_reports_tree_shape(self):
        result = TouchJoin(num_partitions=16).join(A, B)
        assert result.stats.extra["tree_height"] >= 1
        assert result.stats.extra["tree_nodes"] >= 16


class TestPaperClaims:
    def test_far_fewer_comparisons_than_nested_loop(self):
        result = TouchJoin().join(A, B)
        assert result.stats.comparisons < len(A) * len(B) / 10

    def test_smaller_fanout_no_worse_comparisons(self):
        """Figure 14b direction at test scale: fanout 2 vs fanout 20.

        Uses Algorithm 2's coupling (num_partitions=None: buckets of
        `fanout` objects) on a density-preserved clustered workload, the
        regime of the paper's fanout sweep.  The paper reports a modest
        1.5x effect; at this scale we assert the direction with a small
        noise allowance.
        """
        from repro.datasets.synthetic import clustered_boxes

        a = inflate(clustered_boxes(500, seed=103, space=68.0, n_clusters=20), 5.0)
        b = clustered_boxes(3000, seed=104, space=68.0, n_clusters=20)
        lean = TouchJoin(fanout=2, num_partitions=None).join(a, b)
        wide = TouchJoin(fanout=20, num_partitions=None).join(a, b)
        assert lean.pair_set() == wide.pair_set()
        assert lean.stats.comparisons <= wide.stats.comparisons * 1.05

    def test_filtering_on_clustered_data(self):
        """Figure 13: clustered data filters B objects, uniform barely."""
        clustered_a = clustered_boxes(200, seed=105, n_clusters=3, cluster_sigma=30.0)
        uniform_b = uniform_boxes(600, seed=106)
        result = TouchJoin(num_partitions=64).join(clustered_a, uniform_b)
        assert result.stats.filtered > 0
        assert_matches_ground_truth(result, clustered_a, uniform_b)

    def test_no_duplicates_on_dense_data(self):
        """Lemma 3 under heavy overlap."""
        a = inflate(gaussian_boxes(150, seed=107), 20.0)
        b = gaussian_boxes(450, seed=108)
        result = TouchJoin().join(a, b)
        assert_matches_ground_truth(result, a, b)


class TestJoinAssignedNodes:
    def test_rejects_unknown_kernel(self):
        tree = TouchTree(list(A), num_partitions=8)
        with pytest.raises(ValueError, match="kernel"):
            join_assigned_nodes(tree, JoinStatistics(), kernel_name="bogus")

    def test_emit_callback_sees_every_pair(self):
        from repro.core.assignment import assign_dataset_b

        tree = TouchTree(list(A), num_partitions=8)
        stats = JoinStatistics()
        assign_dataset_b(tree, list(B), stats)
        streamed = []
        pairs = join_assigned_nodes(
            tree, stats, emit=lambda a, b: streamed.append((a.oid, b.oid))
        )
        assert streamed == pairs

    def test_tree_without_assignments_yields_nothing(self):
        tree = TouchTree(list(A), num_partitions=8)
        assert join_assigned_nodes(tree, JoinStatistics()) == []
