"""TOUCH phase 1: the hierarchical data-oriented partitioning tree."""

import math

import pytest

from repro.core.tree import TouchNode, TouchTree
from repro.datasets.synthetic import clustered_boxes, uniform_boxes
from repro.geometry.mbr import MBR
from repro.geometry.objects import box_object

OBJECTS = list(uniform_boxes(200, seed=81))


class TestConstruction:
    def test_rejects_empty_dataset(self):
        with pytest.raises(ValueError, match="empty"):
            TouchTree([])

    def test_rejects_small_fanout(self):
        with pytest.raises(ValueError, match="fanout"):
            TouchTree(OBJECTS, fanout=1)

    def test_rejects_bad_partitions(self):
        with pytest.raises(ValueError, match="num_partitions"):
            TouchTree(OBJECTS, num_partitions=0)

    def test_rejects_bad_leaf_capacity(self):
        with pytest.raises(ValueError, match="leaf_capacity"):
            TouchTree(OBJECTS, leaf_capacity=0)

    def test_partition_count_determines_bucket_size(self):
        tree = TouchTree(OBJECTS, num_partitions=50)
        assert tree.leaf_capacity == math.ceil(200 / 50)

    def test_leaf_capacity_overrides_partitions(self):
        tree = TouchTree(OBJECTS, num_partitions=50, leaf_capacity=25)
        assert tree.leaf_capacity == 25

    def test_single_bucket_tree(self):
        tree = TouchTree(OBJECTS[:5], leaf_capacity=10)
        assert tree.height == 1
        assert tree.root.is_leaf
        assert len(tree.root.entities_a) == 5


class TestStructure:
    def test_all_objects_in_leaves_exactly_once(self):
        tree = TouchTree(OBJECTS, num_partitions=32)
        stored = sorted(o.oid for o in tree.root.iter_leaf_objects())
        assert stored == list(range(200))

    def test_leaf_buckets_bounded(self):
        tree = TouchTree(OBJECTS, num_partitions=32)
        for leaf in tree.leaves():
            assert 1 <= len(leaf.entities_a) <= tree.leaf_capacity

    def test_mbrs_enclose_children(self):
        tree = TouchTree(OBJECTS, num_partitions=32, fanout=3)
        for node in tree.iter_nodes():
            if node.is_leaf:
                for obj in node.entities_a:
                    assert node.mbr.contains(obj.mbr)
            else:
                for child in node.children:
                    assert node.mbr.contains(child.mbr)

    def test_fanout_respected(self):
        tree = TouchTree(OBJECTS, num_partitions=64, fanout=2)
        for node in tree.iter_nodes():
            if not node.is_leaf:
                assert len(node.children) <= 2

    def test_smaller_fanout_taller_tree(self):
        """§5.2.1: the smaller the fanout, the higher the tree."""
        tall = TouchTree(OBJECTS, num_partitions=64, fanout=2)
        flat = TouchTree(OBJECTS, num_partitions=64, fanout=16)
        assert tall.height > flat.height

    def test_levels_consistent(self):
        tree = TouchTree(OBJECTS, num_partitions=64, fanout=2)
        for node in tree.iter_nodes():
            for child in node.children:
                assert child.level == node.level - 1
        assert all(leaf.level == 0 for leaf in tree.leaves())

    def test_entities_b_start_empty(self):
        tree = TouchTree(OBJECTS, num_partitions=32)
        assert tree.assigned_b_count() == 0
        assert all(node.entities_b == [] for node in tree.iter_nodes())

    def test_str_buckets_are_tight_on_clustered_data(self):
        clustered = list(clustered_boxes(300, seed=82, n_clusters=5, cluster_sigma=20.0))
        tree = TouchTree(clustered, num_partitions=30)
        universe_volume = 1000.0**3
        total_leaf_volume = sum(leaf.mbr.volume() for leaf in tree.leaves())
        # STR buckets on 5 tight clusters must cover a small fraction of
        # the universe (slab cuts can still produce a few long slivers).
        assert total_leaf_volume < universe_volume / 5


class TestAccounting:
    def test_memory_includes_b_assignments(self):
        tree = TouchTree(OBJECTS, num_partitions=32)
        before = tree.memory_bytes()
        tree.root.entities_b.append(box_object(0, (0, 0, 0), (1, 1, 1)))
        assert tree.memory_bytes() > before

    def test_node_count_and_height(self):
        tree = TouchTree(OBJECTS, num_partitions=64, fanout=2)
        assert tree.node_count() >= 64
        assert tree.height >= 7  # 64 leaves, fanout 2

    def test_repr(self):
        node = TouchNode(MBR((0, 0), (1, 1)), level=0)
        assert "level=0" in repr(node)
