"""Cross-backend contract: columnar == object, workload by workload.

The columnar backend must return the exact pair set of the object
backend — and, for TOUCH and NL, the exact instrumentation counters —
on every workload of the algorithm contract suite (3-D and 2-D, all
three distributions, with and without ε-inflation, edge cases).
"""

import pytest

from repro.datasets.synthetic import clustered_boxes, uniform_boxes
from repro.datasets.transform import inflate
from repro.joins.registry import BACKEND_AWARE, make_algorithm

#: Counters that must match bit-for-bit across backends (PBSM excepted
#: on comparisons: its columnar cell join counts nested-loop candidates
#: where the object path sweeps).
_EXACT_COUNTERS = ("filtered", "replicated_entries", "duplicates_suppressed")

PORTED = sorted(BACKEND_AWARE)


def _both(algorithm, dataset_a, dataset_b):
    obj = make_algorithm(algorithm, backend="object").join(dataset_a, dataset_b)
    col = make_algorithm(algorithm, backend="columnar").join(dataset_a, dataset_b)
    assert col.pair_set() == obj.pair_set(), algorithm
    assert len(col.pairs) == len(obj.pairs)  # set-equal AND duplicate-free
    for counter in _EXACT_COUNTERS:
        assert getattr(col.stats, counter) == getattr(obj.stats, counter), counter
    if algorithm in ("TOUCH", "NL"):
        assert col.stats.comparisons == obj.stats.comparisons
    return obj, col


@pytest.mark.parametrize("algorithm", PORTED)
class TestBackendParity3D:
    def test_uniform(self, algorithm, small_uniform_pair):
        _both(algorithm, *small_uniform_pair)

    def test_gaussian(self, algorithm, small_gaussian_pair):
        _both(algorithm, *small_gaussian_pair)

    def test_clustered(self, algorithm, small_clustered_pair):
        _both(algorithm, *small_clustered_pair)

    def test_with_epsilon_inflation(self, algorithm, small_uniform_pair):
        dataset_a, dataset_b = small_uniform_pair
        _both(algorithm, inflate(dataset_a, 25.0), dataset_b)


@pytest.mark.parametrize("algorithm", PORTED)
class TestBackendParity2D:
    def test_uniform_2d(self, algorithm):
        a = uniform_boxes(60, seed=31, dim=2, side_range=(0.0, 40.0))
        b = uniform_boxes(180, seed=32, dim=2, side_range=(0.0, 40.0))
        _both(algorithm, a, b)

    def test_clustered_2d(self, algorithm):
        a = clustered_boxes(60, seed=33, dim=2, n_clusters=5)
        b = clustered_boxes(180, seed=34, dim=2, n_clusters=5)
        _both(algorithm, a, b)


@pytest.mark.parametrize("algorithm", PORTED)
class TestBackendParityEdges:
    def test_empty_inputs(self, algorithm, small_uniform_pair):
        dataset_a, _ = small_uniform_pair
        assert make_algorithm(algorithm, backend="columnar").join([], []).pairs == []
        assert (
            make_algorithm(algorithm, backend="columnar").join(dataset_a, []).pairs
            == []
        )

    def test_touching_boundaries(self, algorithm):
        from repro.geometry.objects import box_object

        a = [box_object(0, (0, 0), (1, 1)), box_object(1, (5, 5), (6, 6))]
        b = [
            box_object(0, (1, 0), (2, 1)),
            box_object(1, (6, 6), (7, 7)),
            box_object(2, (3, 3), (4, 4)),
        ]
        obj, col = _both(algorithm, a, b)
        assert col.pair_set() == {(0, 0), (1, 1)}

    def test_identical_datasets(self, algorithm):
        data = list(uniform_boxes(40, seed=35, side_range=(0.0, 60.0)))
        _both(algorithm, data, data)


@pytest.mark.parametrize("kernel", ["grid", "sweep", "nested"])
def test_touch_kernels_backend_parity(kernel, small_clustered_pair):
    """Every local-join kernel has a matching columnar twin."""
    from repro.core.touch import TouchJoin

    dataset_a, dataset_b = small_clustered_pair
    obj = TouchJoin(local_kernel=kernel, backend="object").join(dataset_a, dataset_b)
    col = TouchJoin(local_kernel=kernel, backend="columnar").join(dataset_a, dataset_b)
    assert col.pair_set() == obj.pair_set()
    assert col.stats.comparisons == obj.stats.comparisons


def test_backend_recorded_in_stats(small_uniform_pair):
    dataset_a, dataset_b = small_uniform_pair
    result = make_algorithm("TOUCH").join(dataset_a, dataset_b)
    assert result.stats.extra["backend"] == "columnar"  # numpy is installed
    result = make_algorithm("TOUCH", backend="object").join(dataset_a, dataset_b)
    assert result.stats.extra["backend"] == "object"


def test_backend_override_ignored_for_object_only_algorithms():
    """A sweep can pass one backend to every registered algorithm."""
    algorithm = make_algorithm("S3", backend="columnar")
    assert not hasattr(algorithm, "backend")


def test_cli_backend_flag(tmp_path, capsys):
    """`repro-touch run --backend` threads down to every join."""
    import json
    import os

    from repro.bench.cli import main

    os.environ["REPRO_SCALE"] = "smoke"
    try:
        out = tmp_path / "fig13.json"
        assert main(["run", "fig13", "--backend", "object", "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["backend"] == "object"
        assert all(row["backend"] == "object" for row in payload["rows"])
        capsys.readouterr()
    finally:
        del os.environ["REPRO_SCALE"]


def test_runner_ambient_backend(small_uniform_pair):
    from repro.bench.runner import run_algorithm, use_backend

    dataset_a, dataset_b = small_uniform_pair
    with use_backend("object"):
        record = run_algorithm("TOUCH", dataset_a, dataset_b, 5.0)
    assert record.extra["backend"] == "object"
    # Explicit per-call override beats the ambient selection.
    with use_backend("object"):
        record = run_algorithm("TOUCH", dataset_a, dataset_b, 5.0, backend="columnar")
    assert record.extra["backend"] == "columnar"


def test_run_experiment_preserves_ambient_backend(monkeypatch):
    """run_experiment(backend=None) must not clobber a caller's ambient
    use_backend() scope (regression: it used to enter use_backend(None))."""
    from repro.bench.experiments import run_experiment
    from repro.bench.runner import use_backend

    monkeypatch.setenv("REPRO_SCALE", "smoke")
    with use_backend("object"):
        result = run_experiment("fig13")
    assert {row["backend"] for row in result.rows} == {"object"}
