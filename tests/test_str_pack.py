"""Unit tests for Sort-Tile-Recursive packing."""

import math

import pytest

from repro.datasets.synthetic import uniform_boxes
from repro.rtree.str_pack import slices_of, str_partition


def centers(obj):
    return obj.mbr.center()


class TestSlices:
    def test_even_split(self):
        assert slices_of([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_uneven_split(self):
        assert slices_of([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError, match=">= 1"):
            slices_of([1], 0)

    def test_empty(self):
        assert slices_of([], 3) == []


class TestStrPartition:
    def test_empty_input(self):
        assert str_partition([], 4, centers, dim=2) == []

    def test_single_group_when_under_capacity(self):
        objs = list(uniform_boxes(3, seed=1))
        groups = str_partition(objs, 10, centers, dim=3)
        assert len(groups) == 1
        assert sorted(o.oid for o in groups[0]) == [0, 1, 2]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match=">= 1"):
            str_partition([1], 0, lambda x: (0,), dim=1)

    def test_partition_sizes_bounded_by_capacity(self):
        objs = list(uniform_boxes(137, seed=2))
        groups = str_partition(objs, 8, centers, dim=3)
        assert all(1 <= len(g) <= 8 for g in groups)

    def test_every_object_in_exactly_one_group(self):
        objs = list(uniform_boxes(100, seed=3))
        groups = str_partition(objs, 7, centers, dim=3)
        seen = [o.oid for g in groups for o in g]
        assert sorted(seen) == list(range(100))

    def test_group_count_near_optimal(self):
        objs = list(uniform_boxes(128, seed=4))
        groups = str_partition(objs, 8, centers, dim=3)
        # STR may create slightly more groups than ceil(n / c) due to
        # slab rounding, but never more than one extra per slab level.
        assert math.ceil(128 / 8) <= len(groups) <= 2 * math.ceil(128 / 8)

    def test_spatial_coherence_beats_random_grouping(self):
        """STR groups must be far tighter than arbitrary groups."""
        from repro.geometry.mbr import total_mbr

        objs = list(uniform_boxes(200, seed=5))
        groups = str_partition(objs, 10, centers, dim=3)
        str_volume = sum(total_mbr(o.mbr for o in g).volume() for g in groups)
        arbitrary = [objs[i : i + 10] for i in range(0, 200, 10)]
        arbitrary_volume = sum(total_mbr(o.mbr for o in g).volume() for g in arbitrary)
        assert str_volume < arbitrary_volume / 10

    def test_works_in_2d(self):
        objs = list(uniform_boxes(60, seed=6, dim=2))
        groups = str_partition(objs, 6, centers, dim=2)
        assert sorted(o.oid for g in groups for o in g) == list(range(60))

    def test_works_in_1d(self):
        objs = list(uniform_boxes(20, seed=7, dim=1))
        groups = str_partition(objs, 4, centers, dim=1)
        assert len(groups) == 5
        # 1D STR is a plain sorted chop: group ranges must not interleave.
        bounds = [
            (min(o.mbr.lo[0] for o in g), max(o.mbr.lo[0] for o in g)) for g in groups
        ]
        bounds.sort()
        for (_, prev_hi), (next_lo, _) in zip(bounds, bounds[1:]):
            assert prev_hi <= next_lo

    def test_duplicate_centers(self):
        from repro.geometry.mbr import MBR
        from repro.geometry.objects import SpatialObject

        objs = [SpatialObject(i, MBR((1.0, 1.0), (2.0, 2.0))) for i in range(10)]
        groups = str_partition(objs, 3, centers, dim=2)
        assert sorted(o.oid for g in groups for o in g) == list(range(10))
