"""Scatter-gather parity: every algorithm × backend, both tiers.

One shared 3-shard cluster serves the whole module; for each registered
algorithm (and each geometry backend of the backend-aware ones) the same
probe batch runs through the sharded tier and the single-process
:class:`SpatialQueryService`, and the sorted pair lists must be
identical — the two-layer ownership-mask merge is exact, never
approximate.
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import uniform_boxes
from repro.joins.registry import available
from repro.service import SpatialQueryService
from repro.serving import ShardedQueryService

EPS = 2.5

CASES = []
for _info in available():
    _name = _info.name
    if _info.backend_aware:
        CASES.append((_name, "object"))
        CASES.append((_name, "columnar"))
    else:
        CASES.append((_name, None))


@pytest.fixture(scope="module")
def data():
    return (
        list(uniform_boxes(120, seed=71, space=40.0)),
        list(uniform_boxes(300, seed=72, space=40.0)),
    )


@pytest.fixture(scope="module")
def sharded(data):
    build, _ = data
    # Capacity covers one warm index per (algorithm, backend) case so the
    # sweep doesn't thrash the worker-side LRU.
    with ShardedQueryService(shards=3, capacity=len(CASES) + 2) as service:
        service.register("build", build)
        yield service


@pytest.fixture(scope="module")
def reference(data):
    build, _ = data
    service = SpatialQueryService(capacity=len(CASES) + 2)
    service.register("build", build)
    return service


@pytest.mark.parallel
@pytest.mark.parametrize(
    "algorithm, backend",
    CASES,
    ids=[f"{name}-{backend or 'default'}" for name, backend in CASES],
)
def test_pair_sets_identical_across_tiers(
    sharded, reference, data, algorithm, backend
):
    _, probe = data
    config = {"backend": backend} if backend else {}
    expected = reference.probe("build", probe, EPS, algorithm=algorithm, **config)
    got = sharded.probe("build", probe, EPS, algorithm=algorithm, **config)
    assert sorted(got.pairs) == sorted(expected.pairs)
    assert got.stats.result_pairs == expected.stats.result_pairs
    assert got.parameters["shards"] == 3


@pytest.mark.parallel
@pytest.mark.parametrize("algorithm", ["TOUCH", "PBSM-500", "TwoLayer-500"])
def test_mbr_batch_parity(sharded, reference, data, algorithm):
    _, probe = data
    boxes = [obj.mbr for obj in probe[:60]]
    expected = reference.probe_mbrs("build", boxes, EPS, algorithm=algorithm)
    got = sharded.probe_mbrs("build", boxes, EPS, algorithm=algorithm)
    assert sorted(got.pairs) == sorted(expected.pairs)


@pytest.mark.parallel
@pytest.mark.parametrize("epsilon", [0.0, 1.0, 5.0])
def test_epsilon_sweep_parity(sharded, reference, data, epsilon):
    """One registration serves every ε — membership is ε-independent."""
    _, probe = data
    expected = reference.probe("build", probe, epsilon)
    got = sharded.probe("build", probe, epsilon)
    assert sorted(got.pairs) == sorted(expected.pairs)
