"""Exact geometry types: construction, validation, distances, payloads."""

import json
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.mbr import MBR
from repro.geometry.shapes import (
    KIND_CODES,
    BoxShape,
    LineString,
    Point,
    Polygon,
    box_gap_sq,
    polygon_contains,
    segment_distance_sq,
    shape_distance,
    shape_distance_sq,
    shape_from_payload,
    shape_to_payload,
)

coordinate = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False, width=32
)


@st.composite
def linestring_strategy(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    verts = [(draw(coordinate), draw(coordinate)) for _ in range(n)]
    # Guarantee positive length: append a vertex strictly right of all.
    verts.append((max(x for x, _ in verts) + 1.0, verts[0][1]))
    return LineString(verts)


@st.composite
def polygon_strategy(draw):
    # Star-convex rings around a random center: always simple.
    cx, cy = draw(coordinate), draw(coordinate)
    n = draw(st.integers(min_value=3, max_value=8))
    radii = [
        draw(st.floats(min_value=0.5, max_value=10.0, allow_nan=False, width=32))
        for _ in range(n)
    ]
    verts = [
        (cx + r * math.cos(2 * math.pi * i / n), cy + r * math.sin(2 * math.pi * i / n))
        for i, r in enumerate(radii)
    ]
    return Polygon(verts)


@st.composite
def shape_strategy(draw):
    kind = draw(st.sampled_from(("point", "box", "linestring", "polygon")))
    if kind == "point":
        return Point([(draw(coordinate), draw(coordinate))])
    if kind == "box":
        x, y = draw(coordinate), draw(coordinate)
        w = draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False, width=32))
        h = draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False, width=32))
        return BoxShape((x, y), (x + w, y + h))
    if kind == "linestring":
        return draw(linestring_strategy())
    return draw(polygon_strategy())


class TestValidation:
    def test_polygon_needs_three_vertices(self):
        with pytest.raises(ValueError, match=r"polygon #7.*at least 3"):
            Polygon([(0, 0), (1, 1)], oid=7)

    def test_polygon_must_be_2d(self):
        with pytest.raises(ValueError, match=r"polygon #3.*2-D"):
            Polygon([(0, 0, 0), (1, 0, 0), (0, 1, 0)], oid=3)

    def test_linestring_rejects_zero_length(self):
        with pytest.raises(ValueError, match=r"linestring #9.*zero-length"):
            LineString([(2, 2), (2, 2)], oid=9)

    def test_linestring_needs_two_vertices(self):
        with pytest.raises(ValueError, match=r"linestring #1.*at least 2"):
            LineString([(0, 0)], oid=1)

    def test_non_finite_coordinate_rejected(self):
        with pytest.raises(ValueError, match=r"point #4.*non-finite"):
            Point([(float("nan"), 0.0)], oid=4)

    def test_mixed_dimensionality_rejected(self):
        with pytest.raises(ValueError, match=r"linestring #2.*vertex 1"):
            LineString([(0, 0), (1, 1, 1)], oid=2)

    def test_box_rejects_inverted_corners(self):
        with pytest.raises(ValueError, match=r"box #5.*hi < lo"):
            BoxShape((0, 0), (-1, 1), oid=5)

    def test_point_exactly_one_vertex(self):
        with pytest.raises(ValueError, match="exactly 1"):
            Point([(0, 0), (1, 1)])

    def test_closed_ring_stored_open(self):
        ring = Polygon([(0, 0), (4, 0), (4, 4), (0, 4), (0, 0)])
        assert len(ring.vertices) == 4


class TestDistances:
    def test_disjoint_boxes_gap(self):
        a = BoxShape((0, 0), (1, 1))
        b = BoxShape((4, 0), (5, 1))
        assert shape_distance(a, b) == pytest.approx(3.0)

    def test_touching_boxes_zero(self):
        a = BoxShape((0, 0), (1, 1))
        b = BoxShape((1, 0), (2, 1))
        assert shape_distance_sq(a, b) == 0.0

    def test_crossing_segments_zero(self):
        a = LineString([(0, 0), (2, 2)])
        b = LineString([(0, 2), (2, 0)])
        assert shape_distance_sq(a, b) == 0.0

    def test_point_inside_polygon_zero(self):
        square = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert shape_distance_sq(square, Point([(2, 2)])) == 0.0

    def test_point_outside_polygon_boundary_distance(self):
        square = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert shape_distance(square, Point([(7, 2)])) == pytest.approx(3.0)

    def test_nested_polygons_zero(self):
        outer = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        inner = Polygon([(4, 4), (6, 4), (6, 6), (4, 6)])
        assert shape_distance_sq(outer, inner) == 0.0

    def test_segment_distance_parallel(self):
        assert segment_distance_sq(0, 0, 1, 0, 0, 2, 1, 2) == pytest.approx(4.0)

    def test_mbr_touching_but_shapes_disjoint(self):
        # Two diagonal lines in overlapping MBRs but far apart — the
        # false-hit case the MBR filter cannot see.
        a = LineString([(0, 0), (1, 1)])
        b = LineString([(0, 1), (-1, 2)])
        assert a.mbr().intersects(MBR((-1, 0), (1, 2)))
        assert shape_distance_sq(a, b) > 0.0

    @given(shape_strategy(), shape_strategy())
    def test_distance_symmetric(self, a, b):
        # Symmetric up to float rounding: the segment loops visit the
        # operands in swapped order, so the last few ulps may differ.
        assert math.isclose(
            shape_distance_sq(a, b),
            shape_distance_sq(b, a),
            rel_tol=1e-9,
            abs_tol=1e-18,
        )

    @given(shape_strategy(), shape_strategy())
    def test_mbr_gap_lower_bounds_distance(self, a, b):
        box_a, box_b = a.mbr(), b.mbr()
        gap = box_gap_sq(box_a.lo, box_a.hi, box_b.lo, box_b.hi)
        assert gap <= shape_distance_sq(a, b) + 1e-9

    @given(shape_strategy())
    def test_self_distance_zero(self, shape):
        assert shape_distance_sq(shape, shape) == 0.0

    @given(polygon_strategy())
    def test_interior_rectangle_inside_mbr(self, polygon):
        interior = polygon.interior_rectangle()
        if interior is not None:
            assert polygon.mbr().contains(interior)
            for corner in (interior.lo, interior.hi):
                assert polygon_contains(polygon.vertices, corner)


class TestPayloads:
    @given(shape_strategy())
    def test_round_trip_bit_exact(self, shape):
        payload = shape_to_payload(shape)
        wire = json.loads(json.dumps(payload))
        back = shape_from_payload(wire, oid=0)
        assert type(back) is type(shape)
        assert back.vertices == shape.vertices

    def test_payload_kind_codes_stable(self):
        assert KIND_CODES == {"box": 0, "point": 1, "linestring": 2, "polygon": 3}
        assert shape_to_payload(Point([(1, 2)]))[0] == "point"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown shape kind"):
            shape_from_payload(["blob", 2, [0.0, 0.0]], oid=12)

    def test_bad_payload_names_object(self):
        with pytest.raises(ValueError, match="#12"):
            shape_from_payload(["polygon", 2, [0.0, 0.0, 1.0, 1.0]], oid=12)
