"""End-to-end contracts of ``algorithm="auto"`` and ``explain()``.

Two properties are pinned across every execution surface — the one-shot
runner, the build-once/probe-many service, and the shard worker's wire
handlers:

1. **Parity**: auto returns the same pairs as any explicitly named
   algorithm on the same workload (the optimizer picks *how*, never
   *what*).
2. **Plan equality**: ``explain()`` returns exactly the plan the
   executed join records in ``stats.extra["plan"]`` — same sketches,
   same scores, same choice — including after a JSON round-trip.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.config import RunOptions
from repro.bench.runner import explain, run_algorithm
from repro.datasets.synthetic import clustered_boxes, uniform_boxes
from repro.joins.registry import make_algorithm
from repro.optimizer import Plan, clear_sketch_cache
from repro.service import SpatialQueryService


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_sketch_cache()
    yield
    clear_sketch_cache()


@pytest.fixture(scope="module")
def pair():
    return uniform_boxes(120, seed=31), uniform_boxes(240, seed=32)


@pytest.fixture(scope="module")
def clustered():
    return (
        clustered_boxes(120, seed=33, n_clusters=8),
        clustered_boxes(240, seed=34, n_clusters=8),
    )


EPSILON = 5.0


# -- the one-shot runner -----------------------------------------------
class TestRunnerAuto:
    def test_auto_matches_explicit_pairs(self, pair):
        dataset_a, dataset_b = pair
        auto = run_algorithm("auto", dataset_a, dataset_b, EPSILON)
        reference = run_algorithm("TOUCH", dataset_a, dataset_b, EPSILON)
        assert auto.result_pairs == reference.result_pairs
        assert auto.algorithm != "auto"  # resolved to a concrete variant

    @pytest.mark.parametrize("backend", ["object", "columnar"])
    def test_auto_parity_per_backend(self, pair, backend):
        dataset_a, dataset_b = pair
        auto = run_algorithm(
            "auto", dataset_a, dataset_b, EPSILON, backend=backend
        )
        reference = run_algorithm(
            "TwoLayer-500", dataset_a, dataset_b, EPSILON, backend=backend
        )
        assert auto.result_pairs == reference.result_pairs

    def test_auto_parity_through_parallel_engine(self, pair):
        dataset_a, dataset_b = pair
        sequential = run_algorithm("auto", dataset_a, dataset_b, EPSILON)
        parallel = run_algorithm(
            "auto",
            dataset_a,
            dataset_b,
            EPSILON,
            options=RunOptions(workers=2, decompose="slabs"),
        )
        assert parallel.result_pairs == sequential.result_pairs
        assert Plan.from_dict(parallel.extra["plan"]).workers == 2

    def test_executed_plan_recorded_and_equals_explain(self, pair):
        dataset_a, dataset_b = pair
        record = run_algorithm("auto", dataset_a, dataset_b, EPSILON)
        plan = explain("auto", dataset_a, dataset_b, EPSILON)
        assert Plan.from_dict(record.extra["plan"]) == plan
        assert record.algorithm == plan.algorithm

    def test_explain_named_algorithm_pins_choice(self, pair):
        dataset_a, dataset_b = pair
        plan = explain("NL", dataset_a, dataset_b, EPSILON)
        assert plan.algorithm == "NL"
        assert "algorithm" in plan.pinned
        record = run_algorithm("NL", dataset_a, dataset_b, EPSILON)
        assert record.result_pairs == run_algorithm(
            "auto", dataset_a, dataset_b, EPSILON
        ).result_pairs

    def test_explain_matches_clustered_run(self, clustered):
        dataset_a, dataset_b = clustered
        record = run_algorithm("auto", dataset_a, dataset_b, EPSILON)
        assert Plan.from_dict(record.extra["plan"]) == explain(
            "auto", dataset_a, dataset_b, EPSILON
        )

    def test_reuse_index_route_plans_in_service(self, pair):
        dataset_a, dataset_b = pair
        service = SpatialQueryService(capacity=4)
        options = RunOptions(reuse_index=service)
        record = run_algorithm(
            "auto", dataset_a, dataset_b, EPSILON, options=options
        )
        plan = explain("auto", dataset_a, dataset_b, EPSILON, options=options)
        assert Plan.from_dict(record.extra["plan"]) == plan
        assert plan.reuse_index is True
        again = run_algorithm(
            "auto", dataset_a, dataset_b, EPSILON, options=options
        )
        assert again.extra["cache"] == "warm"
        assert again.result_pairs == record.result_pairs


# -- the query service -------------------------------------------------
class TestServiceAuto:
    def test_probe_auto_matches_explicit_pair_set(self, pair):
        dataset_a, dataset_b = pair
        service = SpatialQueryService(capacity=4)
        service.register("build", list(dataset_a))
        probe = [obj.mbr for obj in list(dataset_b)]
        auto = service.probe("build", probe, EPSILON, algorithm="auto")
        explicit = service.probe("build", probe, EPSILON, algorithm="TOUCH")
        assert auto.pair_set() == explicit.pair_set()

    def test_explain_equals_executed_plan(self, pair):
        dataset_a, dataset_b = pair
        service = SpatialQueryService(capacity=4)
        service.register("build", list(dataset_a))
        probe = [obj.mbr for obj in list(dataset_b)]
        plan = service.explain("build", probe, EPSILON)
        result = service.probe("build", probe, EPSILON, algorithm="auto")
        assert Plan.from_dict(result.stats.extra["plan"]) == plan
        assert result.algorithm == plan.algorithm

    def test_repeated_auto_probes_hit_warm_cache(self, pair):
        dataset_a, dataset_b = pair
        service = SpatialQueryService(capacity=4)
        service.register("build", list(dataset_a))
        probe = [obj.mbr for obj in list(dataset_b)[:50]]
        first = service.probe("build", probe, EPSILON, algorithm="auto")
        second = service.probe("build", probe, EPSILON, algorithm="auto")
        assert first.parameters["cache"] == "cold"
        assert second.parameters["cache"] == "warm"

    def test_named_probe_records_no_plan(self, pair):
        dataset_a, dataset_b = pair
        service = SpatialQueryService(capacity=4)
        service.register("build", list(dataset_a))
        probe = [obj.mbr for obj in list(dataset_b)[:50]]
        result = service.probe("build", probe, EPSILON, algorithm="TOUCH")
        assert "plan" not in result.stats.extra


# -- the shard worker's wire handlers ----------------------------------
class TestShardedAuto:
    def _worker(self, dataset_a):
        from repro.serving.worker import ShardWorker

        worker = ShardWorker(0)
        worker.op_register(
            {
                "op": "register",
                "dataset": "build",
                "members": [
                    [obj.oid, list(obj.mbr.lo), list(obj.mbr.hi), 0]
                    for obj in dataset_a
                ],
            }
        )
        return worker

    def _probe_frame(self, dataset_b, algorithm):
        boxes = [list(obj.mbr.lo) + list(obj.mbr.hi) for obj in dataset_b]
        return {
            "op": "probe",
            "dataset": "build",
            "epsilon": EPSILON,
            "algorithm": algorithm,
            "config": {},
            "ids": list(range(len(boxes))),
            "boxes": boxes,
            "masks": [0] * len(boxes),
            "full_mask": 0,
        }

    def test_auto_probe_response_carries_plan(self, pair):
        dataset_a, dataset_b = pair
        worker = self._worker(list(dataset_a))
        probe = list(dataset_b)[:80]
        auto = worker.op_probe(self._probe_frame(probe, "auto"))
        explicit = worker.op_probe(self._probe_frame(probe, "TOUCH"))
        assert sorted(map(tuple, auto["pairs"])) == sorted(
            map(tuple, explicit["pairs"])
        )
        assert auto["algorithm"] == auto["plan"]["algorithm"]
        assert "plan" not in explicit  # named frames stay byte-stable

    def test_explain_frame_matches_probe_plan_over_json(self, pair):
        dataset_a, dataset_b = pair
        worker = self._worker(list(dataset_a))
        probe = list(dataset_b)[:80]
        frame = self._probe_frame(probe, "auto")
        explained = worker.op_explain(
            {**frame, "op": "explain", "masks": None, "full_mask": None}
        )
        executed = worker.op_probe(frame)
        # Both plans survive the wire (JSON) and compare equal.
        wire = json.loads(json.dumps(explained["plan"]))
        assert Plan.from_dict(wire) == Plan.from_dict(executed["plan"])


# -- ground truth ------------------------------------------------------
def test_auto_pairs_match_direct_join(pair):
    dataset_a, dataset_b = pair
    auto = run_algorithm("auto", dataset_a, dataset_b, EPSILON)
    build = [obj.inflated(EPSILON) for obj in list(dataset_a)]
    direct = make_algorithm("NL").join(build, list(dataset_b))
    assert auto.result_pairs == len(direct.pairs)
