"""The memory governor: budget ledger, spill store, budgeted-join parity.

Parity is the load-bearing property: a budgeted join must return the
*identical* pair set as the unbudgeted base algorithm at every budget,
while actually spilling (counters prove it) and leaving no spill files
behind.  The fault-injection tests pin the failure contract: a vanished
or truncated spill file surfaces as :class:`SpillError`, and the spill
directory is removed on success *and* on crash.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.config import RunOptions
from repro.bench.runner import current_max_bytes, run_algorithm, use_max_bytes
from repro.datasets.synthetic import uniform_boxes
from repro.geometry.columnar import HAVE_NUMPY
from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject
from repro.joins.base import dimensionality
from repro.joins.registry import available, make_algorithm
from repro.memory import (
    BudgetedSpatialJoin,
    MemoryBudget,
    SpillError,
    SpillStore,
    validate_max_bytes,
)
from repro.service import SpatialQueryService

EPS = 0.5


@pytest.fixture(scope="module")
def dense_pair():
    """Dense enough (2-6-unit boxes in a 100-unit cube) to yield pairs."""
    return (
        uniform_boxes(400, space=100.0, dim=3, side_range=(2.0, 6.0), seed=21),
        uniform_boxes(300, space=100.0, dim=3, side_range=(2.0, 6.0), seed=22),
    )


def footprint(name, pair, **overrides):
    a, b = pair
    algo = make_algorithm(name, **overrides)
    return algo.estimate_bytes(len(a), len(b), dimensionality(a, b))


class TestMemoryBudget:
    def test_charge_release_peak(self):
        budget = MemoryBudget(100)
        assert budget.free_bytes == 100
        budget.charge(60)
        assert budget.fits(40) and not budget.fits(41)
        budget.charge(40)
        assert budget.peak_bytes == 100
        budget.release(60)
        assert budget.used_bytes == 40
        budget.release(1000)  # clamps at zero, never negative
        assert budget.used_bytes == 0
        assert budget.peak_bytes == 100

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            MemoryBudget(100).charge(-1)

    @pytest.mark.parametrize("bad", [0, -1, True, False, 1.5, "64", None])
    def test_validate_max_bytes_rejects(self, bad):
        with pytest.raises(ValueError) as excinfo:
            validate_max_bytes(bad)
        assert "max_bytes" in str(excinfo.value)

    def test_validate_names_the_argument(self):
        with pytest.raises(ValueError, match="capacity_bytes"):
            validate_max_bytes(0, argument="capacity_bytes")


class TestSpillStore:
    def _objects(self, n, seed):
        return uniform_boxes(n, space=50.0, dim=3, seed=seed)

    def test_round_trip(self):
        a, b = self._objects(20, 1), self._objects(30, 2)
        with SpillStore() as store:
            part = store.write(0, a, b)
            assert part.n_a == 20 and part.n_b == 30
            assert part.file_bytes > 0
            assert store.bytes_written == part.file_bytes
            back_a, back_b = store.read(part)
        assert [(o.oid, o.mbr) for o in back_a] == [(o.oid, o.mbr) for o in a]
        assert [(o.oid, o.mbr) for o in back_b] == [(o.oid, o.mbr) for o in b]

    def test_read_once_deletes_the_file(self):
        a, b = self._objects(5, 3), self._objects(5, 4)
        with SpillStore() as store:
            part = store.write(7, a, b)
            assert os.path.exists(part.path)
            store.read(part)
            assert not os.path.exists(part.path)
            with pytest.raises(SpillError):
                store.read(part)

    def test_close_removes_directory_even_with_unread_partitions(self):
        a, b = self._objects(5, 5), self._objects(5, 6)
        store = SpillStore()
        store.write(0, a, b)
        directory = store.directory
        assert os.path.isdir(directory)
        store.close()
        assert not os.path.exists(directory)
        store.close()  # idempotent

    def test_missing_file_raises_spill_error(self):
        a, b = self._objects(5, 7), self._objects(5, 8)
        with SpillStore() as store:
            part = store.write(0, a, b)
            os.remove(part.path)
            with pytest.raises(SpillError):
                store.read(part)

    def test_corrupt_file_raises_spill_error(self):
        a, b = self._objects(8, 9), self._objects(8, 10)
        with SpillStore() as store:
            part = store.write(0, a, b)
            with open(part.path, "r+b") as handle:
                handle.truncate(16)
            with pytest.raises(SpillError):
                store.read(part)


class TestBudgetedParity:
    @pytest.mark.parametrize("name", [info.name for info in available()])
    def test_every_algorithm_spills_to_the_same_pairs(self, name, dense_pair):
        a, b = dense_pair
        baseline = make_algorithm(name).join(a, b).pair_set()
        assert baseline, "workload must produce pairs for parity to mean anything"
        estimated = footprint(name, dense_pair)
        for divisor in (2, 4):
            joiner = BudgetedSpatialJoin(name, max_bytes=estimated // divisor)
            result = joiner.join(a, b)
            assert result.pair_set() == baseline
            assert result.stats.extra["spilled_partitions"] > 0
            assert result.stats.extra["unspills"] > 0
            assert result.stats.extra["spill_bytes_written"] > 0
            assert joiner.last_spill_dir is not None
            assert not os.path.exists(joiner.last_spill_dir)

    @pytest.mark.parametrize(
        "backend",
        ["object"] + (["columnar"] if HAVE_NUMPY else []),
    )
    def test_backend_parity_under_budget(self, backend, dense_pair):
        a, b = dense_pair
        baseline = make_algorithm("TOUCH", backend=backend).join(a, b).pair_set()
        estimated = footprint("TOUCH", dense_pair, backend=backend)
        joiner = BudgetedSpatialJoin(
            lambda: make_algorithm("TOUCH", backend=backend),
            max_bytes=estimated // 4,
        )
        result = joiner.join(a, b)
        assert result.pair_set() == baseline
        assert result.stats.extra["spilled_partitions"] > 0

    def test_fitting_join_runs_the_base_directly(self, dense_pair):
        a, b = dense_pair
        estimated = footprint("NL", dense_pair)
        result = BudgetedSpatialJoin("NL", max_bytes=estimated * 10).join(a, b)
        assert result.pair_set() == make_algorithm("NL").join(a, b).pair_set()
        assert result.stats.extra["spilled_partitions"] == 0
        assert result.stats.extra["unspills"] == 0

    def test_empty_inputs(self):
        result = BudgetedSpatialJoin("NL", max_bytes=1).join([], [])
        assert result.pairs == []

    def test_slab_decomposition_parity(self, dense_pair):
        a, b = dense_pair
        baseline = make_algorithm("TOUCH").join(a, b).pair_set()
        estimated = footprint("TOUCH", dense_pair)
        joiner = BudgetedSpatialJoin("TOUCH", max_bytes=estimated // 3, kind="slabs")
        assert joiner.join(a, b).pair_set() == baseline


class TestSkewRecursion:
    def test_stacked_boxes_recurse_then_overrun(self):
        """Identical boxes cannot be split: recursion bottoms out cleanly.

        Small ``max_partitions``/``max_depth`` keep the degenerate case
        from fanning out combinatorially (every region holds every box).
        """
        box = MBR((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        a = [SpatialObject(i, box) for i in range(12)]
        b = [SpatialObject(i, box) for i in range(12)]
        joiner = BudgetedSpatialJoin(
            "NL", max_bytes=64, max_partitions=2, max_depth=1
        )
        result = joiner.join(a, b)
        assert result.pair_set() == make_algorithm("NL").join(a, b).pair_set()
        assert len(result.pairs) == 12 * 12
        assert result.stats.extra["recursive_repartitions"] > 0
        assert result.stats.extra["budget_overruns"] > 0
        assert not os.path.exists(joiner.last_spill_dir)


class _ExplodingJoin:
    """A base algorithm that dies mid-join, for crash-hygiene tests."""

    name = "Exploding"

    def __init__(self):
        self._inner = make_algorithm("NL")
        self.estimate_bytes = self._inner.estimate_bytes

    def join(self, a, b):
        raise RuntimeError("synthetic mid-join crash")


class TestFaultInjection:
    def test_vanished_spill_file_is_a_spill_error(self, dense_pair, monkeypatch):
        a, b = dense_pair
        estimated = footprint("NL", dense_pair)
        original_read = SpillStore.read

        def vanishing_read(self, partition):
            if os.path.exists(partition.path):
                os.remove(partition.path)
            return original_read(self, partition)

        monkeypatch.setattr(SpillStore, "read", vanishing_read)
        joiner = BudgetedSpatialJoin("NL", max_bytes=estimated // 4)
        with pytest.raises(SpillError):
            joiner.join(a, b)
        assert not os.path.exists(joiner.last_spill_dir)

    def test_base_join_crash_still_cleans_the_spill_dir(self, dense_pair):
        a, b = dense_pair
        joiner = BudgetedSpatialJoin(_ExplodingJoin, max_bytes=1024)
        with pytest.raises(RuntimeError, match="synthetic mid-join crash"):
            joiner.join(a, b)
        assert joiner.last_spill_dir is not None
        assert not os.path.exists(joiner.last_spill_dir)

    def test_custom_spill_root(self, dense_pair, tmp_path):
        a, b = dense_pair
        estimated = footprint("NL", dense_pair)
        joiner = BudgetedSpatialJoin(
            "NL", max_bytes=estimated // 4, spill_root=str(tmp_path)
        )
        baseline = make_algorithm("NL").join(a, b).pair_set()
        assert joiner.join(a, b).pair_set() == baseline
        assert list(tmp_path.iterdir()) == []  # per-join dir removed


class TestRunOptionsPlumbing:
    def test_options_max_bytes_budgets_the_run(self, dense_pair):
        a, b = dense_pair
        plain = run_algorithm("TOUCH", a, b, EPS)
        inflated = [o.inflated(EPS) for o in a]
        estimated = make_algorithm("TOUCH").estimate_bytes(
            len(a), len(b), dimensionality(inflated, b)
        )
        record = run_algorithm(
            "TOUCH", a, b, EPS, options=RunOptions(max_bytes=estimated // 4)
        )
        assert record.result_pairs == plain.result_pairs
        assert record.extra["spilled_partitions"] > 0
        assert record.extra["budget_bytes"] == estimated // 4

    def test_scope_and_env(self, monkeypatch):
        assert current_max_bytes() is None
        monkeypatch.setenv("REPRO_MAX_BYTES", "12345")
        assert current_max_bytes() == 12345
        with use_max_bytes(777):
            assert current_max_bytes() == 777
        assert current_max_bytes() == 12345

    @pytest.mark.parametrize("bad", [0, -3, True, 2.5])
    def test_run_options_validation(self, bad):
        with pytest.raises(ValueError, match="max_bytes"):
            RunOptions(max_bytes=bad)


class TestServiceAcceptance:
    """The PR's acceptance criterion, via the service front door."""

    @pytest.mark.parametrize("algorithm", ["TOUCH", "TwoLayer-500"])
    def test_quarter_budget_probe_parity(self, algorithm, dense_pair):
        a, b = dense_pair
        inflated = [o.inflated(EPS) for o in a]
        baseline = make_algorithm(algorithm).join(inflated, list(b)).pair_set()
        estimated = make_algorithm(algorithm).estimate_bytes(
            len(a), len(b), dimensionality(a, b)
        )
        service = SpatialQueryService(max_bytes=estimated // 4)
        service.register("build", a)
        result = service.probe("build", b, EPS, algorithm=algorithm)
        assert result.pair_set() == baseline
        assert result.parameters["cache"] == "spilled"
        stats = service.stats()
        assert stats["spilled_partitions"] > 0
        assert stats["spilled_joins"] == 1
        assert stats["spill_bytes_written"] > 0
        spill_dir = result.parameters["spill_dir"]
        assert spill_dir and not os.path.exists(spill_dir)

    def test_per_probe_override_wins(self, dense_pair):
        a, b = dense_pair
        estimated = make_algorithm("TOUCH").estimate_bytes(
            len(a), len(b), dimensionality(a, b)
        )
        service = SpatialQueryService()  # no service-wide budget
        service.register("build", a)
        budgeted = service.probe("build", b, EPS, max_bytes=estimated // 4)
        plain = service.probe("build", b, EPS)
        assert budgeted.pair_set() == plain.pair_set()
        assert budgeted.parameters["cache"] == "spilled"
        assert plain.parameters["cache"] in ("cold", "warm")


@pytest.mark.parallel
class TestParallelBudget:
    @pytest.mark.parametrize("dedup", ["reference", "partition"])
    def test_worker_budgets_preserve_parity(self, dedup, dense_pair):
        from repro.parallel.engine import ParallelChunkedJoin

        a, b = dense_pair
        baseline = make_algorithm("TOUCH").join(a, b).pair_set()
        estimated = footprint("TOUCH", dense_pair)
        engine = ParallelChunkedJoin(
            "TOUCH", workers=2, dedup=dedup, max_bytes=estimated // 2
        )
        result = engine.join(a, b)
        assert result.pair_set() == baseline
        assert result.stats.extra["worker_max_bytes"] == estimated // 4
        assert result.stats.extra["spilled_partitions"] > 0
