"""The distance-join front end: ε-reduction, join order, refinement."""

import pytest

from repro.core.distance_join import distance_join, inflate_dataset, spatial_join
from repro.core.refine import exact_distance, refine_pairs
from repro.core.touch import TouchJoin
from repro.datasets.synthetic import uniform_boxes
from repro.geometry.distance import Cylinder
from repro.geometry.objects import SpatialObject, box_object
from repro.joins.nested_loop import NestedLoopJoin

A = uniform_boxes(80, seed=111)
B = uniform_boxes(240, seed=112)


def l_inf_truth(objects_a, objects_b, epsilon):
    """Ground truth for the MBR distance join under the L-inf metric."""
    pairs = set()
    for a in objects_a:
        for b in objects_b:
            gaps = [
                max(alo - bhi, blo - ahi, 0.0)
                for alo, ahi, blo, bhi in zip(a.mbr.lo, a.mbr.hi, b.mbr.lo, b.mbr.hi)
            ]
            if max(gaps) <= epsilon:
                pairs.add((a.oid, b.oid))
    return pairs


class TestEpsilonReduction:
    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValueError, match="non-negative"):
            distance_join(A, B, -1.0)

    def test_epsilon_zero_equals_intersection_join(self):
        plain = NestedLoopJoin().join(A, B)
        dist = distance_join(A, B, 0.0, algorithm=NestedLoopJoin(), order="keep")
        assert dist.pair_set() == plain.pair_set()

    def test_matches_linf_ground_truth(self):
        result = distance_join(A, B, 15.0, algorithm=NestedLoopJoin(), order="keep")
        assert result.pair_set() == l_inf_truth(A, B, 15.0)

    def test_default_algorithm_is_touch(self):
        result = distance_join(A, B, 10.0)
        assert result.algorithm == "TOUCH"
        assert result.pair_set() == l_inf_truth(A, B, 10.0)

    def test_bigger_epsilon_superset(self):
        small = distance_join(A, B, 5.0)
        big = distance_join(A, B, 10.0)
        assert small.pair_set() <= big.pair_set()

    def test_inflate_dataset_helper(self):
        inflated = inflate_dataset(list(A)[:3], 2.0)
        for original, fat in zip(A, inflated):
            assert fat.mbr == original.mbr.expand(2.0)


class TestJoinOrder:
    def test_auto_picks_smaller_build_side(self):
        # B smaller than A: auto must swap, pairs stay (a, b)-oriented.
        big_a, small_b = B, A
        swapped = distance_join(big_a, small_b, 10.0, order="auto")
        kept = distance_join(big_a, small_b, 10.0, order="keep")
        assert swapped.pair_set() == kept.pair_set()
        assert swapped.parameters.get("swapped") is True

    def test_explicit_swap_reorients_pairs(self):
        result = spatial_join(A, B, NestedLoopJoin(), order="swap")
        truth = NestedLoopJoin().join(A, B).pair_set()
        assert result.pair_set() == truth

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError, match="order"):
            spatial_join(A, B, NestedLoopJoin(), order="sideways")

    def test_all_orders_agree(self):
        results = {
            order: distance_join(A, B, 8.0, algorithm=TouchJoin(), order=order).pair_set()
            for order in ("auto", "keep", "swap")
        }
        assert results["auto"] == results["keep"] == results["swap"]


class TestRefinement:
    def test_exact_distance_falls_back_to_mbr(self):
        a = box_object(0, (0, 0), (1, 1))
        b = box_object(1, (4, 0), (5, 1))
        assert exact_distance(a, b) == 3.0

    def test_exact_distance_uses_geometry(self):
        cyl_a = Cylinder((0, 0, 0), (1, 0, 0), 0.5)
        cyl_b = Cylinder((0, 4, 0), (1, 4, 0), 0.5)
        obj_a = SpatialObject(0, cyl_a.mbr(), geometry=cyl_a)
        obj_b = SpatialObject(1, cyl_b.mbr(), geometry=cyl_b)
        assert exact_distance(obj_a, obj_b) == pytest.approx(3.0)

    def test_refine_drops_corner_candidates(self):
        """MBR filter is L-inf; refinement enforces Euclidean distance."""
        a = [box_object(0, (0.0, 0.0), (1.0, 1.0))]
        # Diagonal neighbour: L-inf distance 3, Euclidean ~4.24.
        b = [box_object(0, (4.0, 4.0), (5.0, 5.0))]
        candidates = distance_join(a, b, 3.5, algorithm=NestedLoopJoin(), order="keep")
        assert candidates.pair_set() == {(0, 0)}  # filter keeps it
        refined = distance_join(
            a, b, 3.5, algorithm=NestedLoopJoin(), order="keep", refine=True
        )
        assert refined.pairs == []  # refinement rejects it

    def test_refine_counts_tests(self):
        result = distance_join(A, B, 10.0, refine=True)
        assert result.stats.extra.get("refinement_tests", 0) >= len(result.pairs)

    def test_refine_pairs_direct(self):
        a = [box_object(0, (0, 0), (1, 1))]
        b = [box_object(0, (2, 0), (3, 1)), box_object(1, (9, 0), (10, 1))]
        kept = refine_pairs([(0, 0), (0, 1)], a, b, epsilon=1.5)
        assert kept == [(0, 0)]


class TestParallelDistanceJoin:
    """The workers= front-end switch onto the multiprocess engine."""

    def test_workers_matches_sequential(self):
        sequential = distance_join(A, B, 10.0)
        parallel = distance_join(A, B, 10.0, workers=2)
        assert parallel.pair_set() == sequential.pair_set()
        assert parallel.stats.extra["workers"] == 2

    def test_workers_with_registry_name_and_tiles(self):
        sequential = distance_join(A, B, 10.0, algorithm=NestedLoopJoin())
        parallel = distance_join(A, B, 10.0, algorithm="NL", workers=2, decompose="tiles")
        assert parallel.pair_set() == sequential.pair_set()
        assert parallel.stats.extra["decompose"] == "tiles"

    def test_workers_rejects_live_instances(self):
        with pytest.raises(TypeError, match="registry name or AlgorithmSpec"):
            distance_join(A, B, 10.0, algorithm=NestedLoopJoin(), workers=2)

    def test_workers_respects_join_order_swap(self):
        # B is smaller here, so auto order swaps; pairs must still come
        # back in (oid_a, oid_b) orientation.
        small_b = list(B)[:40]
        sequential = distance_join(A, small_b, 10.0, algorithm=NestedLoopJoin())
        parallel = distance_join(A, small_b, 10.0, algorithm="NL", workers=2)
        assert parallel.pair_set() == sequential.pair_set()
