"""SSSJ — scalable sweeping-based spatial join (related work §2.2.3)."""

import pytest

from repro.datasets.synthetic import clustered_boxes, gaussian_boxes, uniform_boxes
from repro.geometry.objects import box_object
from repro.joins.sssj import SSSJJoin
from repro.validation import assert_matches_ground_truth

A = uniform_boxes(80, seed=151, side_range=(0.0, 30.0))
B = uniform_boxes(240, seed=152, side_range=(0.0, 30.0))


class TestConfiguration:
    def test_rejects_bad_strips(self):
        with pytest.raises(ValueError, match="strips"):
            SSSJJoin(strips=0)

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError, match="strip_dim"):
            SSSJJoin(strip_dim=-1)

    def test_out_of_range_dim(self):
        with pytest.raises(ValueError, match="out of range"):
            SSSJJoin(strip_dim=7).join(A, B)

    def test_describe(self):
        assert SSSJJoin(strips=32, strip_dim=2).describe() == {
            "strips": 32,
            "strip_dim": 2,
        }


class TestCorrectness:
    @pytest.mark.parametrize("strips", [1, 4, 16, 64])
    def test_matches_truth_any_strip_count(self, strips):
        result = SSSJJoin(strips=strips).join(A, B)
        assert_matches_ground_truth(result, A, B)

    @pytest.mark.parametrize("strip_dim", [0, 1, 2])
    def test_any_strip_dimension(self, strip_dim):
        result = SSSJJoin(strips=16, strip_dim=strip_dim).join(A, B)
        assert_matches_ground_truth(result, A, B)

    def test_gaussian_and_clustered(self):
        for generator, seed in ((gaussian_boxes, 153), (clustered_boxes, 155)):
            a = generator(60, seed=seed, side_range=(0.0, 40.0))
            b = generator(180, seed=seed + 1, side_range=(0.0, 40.0))
            assert_matches_ground_truth(SSSJJoin(strips=20).join(a, b), a, b)

    def test_spanning_pair_reported_once(self):
        """Two objects spanning many strips meet in every shared strip;
        the first-common-strip rule must emit them exactly once."""
        a = [box_object(0, (0.0, 0.0), (1.0, 90.0))]
        b = [box_object(0, (0.5, 10.0), (1.5, 80.0))] + [
            box_object(i, (50.0, i), (50.4, i + 0.4)) for i in range(1, 30)
        ]
        result = SSSJJoin(strips=16).join(a, b)
        assert result.pair_set() >= {(0, 0)}
        assert len([p for p in result.pairs if p == (0, 0)]) == 1
        assert result.stats.duplicates_suppressed > 0

    def test_resident_spanning_mix(self):
        a = [box_object(0, (10.0, 0.0), (11.0, 100.0))]  # spans all strips
        b = [box_object(0, (10.5, 50.0), (10.8, 50.5))]  # resident
        result = SSSJJoin(strips=8).join(a, b)
        assert result.pairs == [(0, 0)]

    def test_single_strip_degenerates_to_sweep(self):
        result = SSSJJoin(strips=1).join(A, B)
        assert_matches_ground_truth(result, A, B)
        assert result.stats.replicated_entries == 0


class TestAccounting:
    def test_spanning_references_counted(self):
        a = [box_object(0, (0.0, 0.0), (1.0, 99.0))]  # spans everything
        b = [box_object(0, (0.0, 1.0), (1.0, 1.5))]
        result = SSSJJoin(strips=10).join(a, b)
        assert result.stats.replicated_entries > 0

    def test_memory_reported(self):
        result = SSSJJoin(strips=16).join(A, B)
        assert result.stats.memory_bytes > 0
