"""Integration tests asserting the paper's reproduced claims.

These are the claims EXPERIMENTS.md marks ✓, pinned as executable
assertions on small density-preserved workloads (universe scaled so the
object density matches the paper's 1.6M-objects-per-1000³ regime).
"""

import pytest

from repro.datasets.synthetic import make_distribution, uniform_boxes
from repro.datasets.transform import inflate
from repro.joins.registry import make_algorithm

# Paper-figure integration tests: every algorithm on the density-preserved
# workload, twice (columnar + object fixtures) — the slowest file of the
# suite, so the CI matrix skips it (-m "not slow") while tier-1 runs it.
pytestmark = pytest.mark.slow

# Density-preserved small workload: 800 x 4800 objects in a 79-unit cube
# has the same density as the paper's 1.6M in 1000^3.
SPACE = 79.4
EPSILON = 5.0


@pytest.fixture(scope="module")
def workload():
    a = inflate(uniform_boxes(800, seed=161, space=SPACE), EPSILON)
    b = uniform_boxes(4800, seed=162, space=SPACE)
    return a, b


@pytest.fixture(scope="module")
def results(workload):
    a, b = workload
    names = ("PBSM-500", "PBSM-100", "S3", "INL", "RTree", "TOUCH")
    return {name: make_algorithm(name).join(a, b) for name in names}


@pytest.fixture(scope="module")
def object_results(workload):
    """The same joins forced onto the object backend.

    The paper's §6.4 memory numbers describe the C++ object
    implementation's data structures; the columnar backend additionally
    reports its real coordinate-table allocations (56 bytes/object of
    float64 corners + id), which at this tiny test scale swamps the
    analytic pointer model.  The memory-ordering claims are therefore
    pinned on the object backend, the faithful model of the paper's
    implementation; ``backend`` is ignored by the object-only
    algorithms.
    """
    a, b = workload
    names = ("PBSM-500", "PBSM-100", "S3", "INL", "RTree", "TOUCH")
    return {name: make_algorithm(name, backend="object").join(a, b) for name in names}


class TestMemoryClaims:
    def test_pbsm500_memory_explodes(self, object_results):
        """§6.4: PBSM-500 consumes orders of magnitude more memory."""
        pbsm = object_results["PBSM-500"].stats.memory_bytes
        # vs the single-hierarchy approaches the gap is ~50x even at
        # this tiny scale; TOUCH's includes its transient local grid, so
        # the factor is smaller but still near an order of magnitude.
        for other in ("S3", "INL"):
            assert pbsm > 20 * object_results[other].stats.memory_bytes
        assert pbsm > 8 * object_results["TOUCH"].stats.memory_bytes

    def test_pbsm_memory_ordering(self, object_results):
        """PBSM-100's bigger cells replicate less than PBSM-500's."""
        assert (
            object_results["PBSM-100"].stats.memory_bytes
            < object_results["PBSM-500"].stats.memory_bytes / 5
        )
        assert (
            object_results["PBSM-100"].stats.replicated_entries
            < object_results["PBSM-500"].stats.replicated_entries
        )

    def test_inl_leaner_than_touch_leaner_than_rtree(self, object_results):
        """§6.4: INL keeps one tree; TOUCH adds buckets; RTree keeps two."""
        assert (
            object_results["INL"].stats.memory_bytes
            < object_results["TOUCH"].stats.memory_bytes
        )
        assert (
            object_results["TOUCH"].stats.memory_bytes
            < object_results["RTree"].stats.memory_bytes
        )

    def test_replication_free_algorithms(self, results):
        for name in ("S3", "INL", "RTree"):
            assert results[name].stats.replicated_entries == 0

    def test_columnar_tables_counted(self, results, object_results, workload):
        """The columnar backend reports its coordinate-table footprint.

        ``memory_bytes`` of a columnar TOUCH run exceeds the object
        run's by exactly the two tables' ``nbytes`` (the tree and
        local-grid models are shared), keeping figure-table memory
        numbers honest across backends.
        """
        a, b = workload
        touch_col = results["TOUCH"].stats
        touch_obj = object_results["TOUCH"].stats
        table_bytes = touch_col.extra["columnar_table_bytes"]
        # 2 * dim float64 corners plus one int64 id per object, per side.
        per_object = 2 * 3 * 8 + 8
        assert table_bytes == per_object * (len(a) + len(b))
        assert (
            touch_col.memory_bytes
            == touch_obj.memory_bytes + table_bytes
        )


class TestComparisonClaims:
    def test_all_far_below_nested_loop(self, results, workload):
        a, b = workload
        quadratic = len(a) * len(b)
        for name, result in results.items():
            assert result.stats.comparisons < quadratic / 10, name

    def test_touch_beats_s3_comparisons(self, results):
        """Data-oriented beats space-oriented partitioning (§4.1)."""
        assert (
            results["TOUCH"].stats.comparisons < results["S3"].stats.comparisons / 3
        )

    def test_epsilon_superlinear_pbsm_linear_trees(self):
        """Figure 12: PBSM replication grows super-linearly in ε while
        index-based approaches grow roughly linearly in time."""
        base = uniform_boxes(800, seed=163, space=SPACE)
        probe = uniform_boxes(2400, seed=164, space=SPACE)
        rep = {}
        for eps in (2.0, 4.0):
            result = make_algorithm("PBSM-500").join(inflate(base, eps), probe)
            rep[eps] = result.stats.replicated_entries
        assert rep[4.0] > 1.6 * rep[2.0]

    def test_gaussian_costs_more_than_uniform(self):
        """Figures 9 vs 10: selectivity drives comparisons."""
        comparisons = {}
        for name in ("uniform", "gaussian"):
            a = inflate(make_distribution(name, 800, seed=165, space=SPACE), EPSILON)
            b = make_distribution(name, 4800, seed=166, space=SPACE)
            comparisons[name] = make_algorithm("TOUCH").join(a, b).stats.comparisons
        assert comparisons["gaussian"] > comparisons["uniform"]


class TestResultEquivalence:
    def test_all_algorithms_agree(self, results):
        reference = results["TOUCH"].pair_set()
        for name, result in results.items():
            assert result.pair_set() == reference, name


class TestFilteringClaims:
    def test_neuro_filtering_double_digit_percent(self):
        """Figure 16: the dense-core/sparse-rim profile filters B."""
        from repro.datasets.neuroscience import neuroscience_datasets

        axons, dendrites = neuroscience_datasets(n_neurons=16, seed=167)
        touch = make_algorithm("TOUCH")
        result = touch.join(inflate(axons, EPSILON), list(dendrites))
        assert result.stats.filtered / len(dendrites) > 0.03

    def test_filtering_shrinks_with_epsilon(self):
        """Figure 16: bigger ε inflates objects, filtering drops."""
        from repro.datasets.neuroscience import neuroscience_datasets

        axons, dendrites = neuroscience_datasets(n_neurons=16, seed=168)
        filtered = {}
        for eps in (2.0, 10.0):
            result = make_algorithm("TOUCH").join(inflate(axons, eps), list(dendrites))
            filtered[eps] = result.stats.filtered
        assert filtered[10.0] < filtered[2.0]

    def test_uniform_filters_nearly_nothing(self, results, workload):
        """Figure 13: (almost) no filtering on uniform data."""
        _, b = workload
        assert results["TOUCH"].stats.filtered < 0.01 * len(b)
