"""Registry, JoinResult helpers and the algorithm base class."""

import pytest

from repro.geometry.objects import box_object
from repro.joins.base import JoinResult, SpatialJoinAlgorithm, dimensionality
from repro.joins.registry import (
    ALGORITHMS,
    BACKEND_AWARE,
    AlgorithmInfo,
    algorithm_names,
    available,
    make_algorithm,
    prepare_aware_names,
)
from repro.stats.counters import JoinStatistics


class TestRegistry:
    def test_names_cover_paper_evaluation(self):
        names = {info.name for info in available()}
        assert {
            "NL",
            "PS",
            "PBSM-500",
            "PBSM-100",
            "S3",
            "INL",
            "RTree",
            "TOUCH",
        } <= names

    def test_extensions_registered(self):
        names = {info.name for info in available()}
        assert {"SeededTree", "Quadtree", "SSSJ"} <= names

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            make_algorithm("SuperJoin9000")

    def test_every_factory_builds(self):
        for name in ALGORITHMS:
            algorithm = make_algorithm(name)
            assert isinstance(algorithm, SpatialJoinAlgorithm)

    def test_overrides_forwarded(self):
        algorithm = make_algorithm("TOUCH", fanout=7)
        assert algorithm.fanout == 7

    def test_paper_configurations(self):
        assert make_algorithm("INL").fanout == 2
        assert make_algorithm("RTree").fanout == 2
        assert make_algorithm("S3").fanout == 3
        assert make_algorithm("PBSM-500").name == "PBSM-500"
        assert make_algorithm("PBSM-100").name == "PBSM-100"


class TestAvailable:
    def test_one_record_per_registered_algorithm(self):
        infos = available()
        assert [info.name for info in infos] == list(ALGORITHMS)
        assert all(isinstance(info, AlgorithmInfo) for info in infos)

    def test_records_are_frozen_and_hashable(self):
        info = available()[0]
        with pytest.raises(Exception):
            info.name = "other"
        assert len({i for i in available()}) == len(available())

    def test_backend_aware_matches_constant(self):
        aware = {info.name for info in available() if info.backend_aware}
        assert aware == set(BACKEND_AWARE)

    def test_config_matches_default_describe(self):
        for info in available():
            assert info.config_dict() == make_algorithm(info.name).describe()

    def test_as_dict_is_json_safe(self):
        import json

        for info in available():
            assert json.loads(json.dumps(info.as_dict()))["name"] == info.name

    def test_touch_estimates_bytes(self):
        by_name = {info.name: info for info in available()}
        assert by_name["TOUCH"].estimates_bytes

    def test_same_tuple_returned(self):
        assert available() is available()


class TestDeprecatedHelpers:
    def test_algorithm_names_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="available"):
            names = algorithm_names()
        assert names == [info.name for info in available()]

    def test_prepare_aware_names_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="prepare_aware"):
            names = prepare_aware_names()
        assert names == [info.name for info in available() if info.prepare_aware]


class TestJoinResult:
    def _result(self, pairs):
        return JoinResult("x", pairs, JoinStatistics(result_pairs=len(pairs)))

    def test_len_and_repr(self):
        result = self._result([(1, 2), (3, 4)])
        assert len(result) == 2
        assert "pairs=2" in repr(result)

    def test_pair_set_and_sorted(self):
        result = self._result([(3, 4), (1, 2)])
        assert result.pair_set() == {(1, 2), (3, 4)}
        assert result.sorted_pairs() == [(1, 2), (3, 4)]

    def test_selectivity(self):
        result = self._result([(1, 2)])
        assert result.selectivity(10, 10) == 0.01
        assert result.selectivity(0, 10) == 0.0


class TestBaseTemplate:
    def test_join_fills_totals(self):
        class Trivial(SpatialJoinAlgorithm):
            name = "Trivial"

            def _execute(self, objects_a, objects_b, stats):
                return [(a.oid, b.oid) for a in objects_a for b in objects_b
                        if a.mbr.intersects(b.mbr)]

        a = [box_object(0, (0, 0), (2, 2))]
        b = [box_object(5, (1, 1), (3, 3))]
        result = Trivial().join(a, b)
        assert result.pairs == [(0, 5)]
        assert result.stats.result_pairs == 1
        assert result.stats.total_seconds > 0
        assert result.algorithm == "Trivial"

    def test_repr_includes_parameters(self):
        algorithm = make_algorithm("TOUCH", fanout=3)
        assert "fanout=3" in repr(algorithm)

    def test_dimensionality_helper(self):
        a = [box_object(0, (0, 0, 0), (1, 1, 1))]
        assert dimensionality(a, []) == 3
        assert dimensionality([], a) == 3
        assert dimensionality([], []) == 0
