"""Registry, JoinResult helpers and the algorithm base class."""

import pytest

from repro.geometry.objects import box_object
from repro.joins.base import JoinResult, SpatialJoinAlgorithm, dimensionality
from repro.joins.registry import ALGORITHMS, algorithm_names, make_algorithm
from repro.stats.counters import JoinStatistics


class TestRegistry:
    def test_names_cover_paper_evaluation(self):
        names = set(algorithm_names())
        assert {
            "NL",
            "PS",
            "PBSM-500",
            "PBSM-100",
            "S3",
            "INL",
            "RTree",
            "TOUCH",
        } <= names

    def test_extensions_registered(self):
        names = set(algorithm_names())
        assert {"SeededTree", "Quadtree", "SSSJ"} <= names

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            make_algorithm("SuperJoin9000")

    def test_every_factory_builds(self):
        for name in ALGORITHMS:
            algorithm = make_algorithm(name)
            assert isinstance(algorithm, SpatialJoinAlgorithm)

    def test_overrides_forwarded(self):
        algorithm = make_algorithm("TOUCH", fanout=7)
        assert algorithm.fanout == 7

    def test_paper_configurations(self):
        assert make_algorithm("INL").fanout == 2
        assert make_algorithm("RTree").fanout == 2
        assert make_algorithm("S3").fanout == 3
        assert make_algorithm("PBSM-500").name == "PBSM-500"
        assert make_algorithm("PBSM-100").name == "PBSM-100"


class TestJoinResult:
    def _result(self, pairs):
        return JoinResult("x", pairs, JoinStatistics(result_pairs=len(pairs)))

    def test_len_and_repr(self):
        result = self._result([(1, 2), (3, 4)])
        assert len(result) == 2
        assert "pairs=2" in repr(result)

    def test_pair_set_and_sorted(self):
        result = self._result([(3, 4), (1, 2)])
        assert result.pair_set() == {(1, 2), (3, 4)}
        assert result.sorted_pairs() == [(1, 2), (3, 4)]

    def test_selectivity(self):
        result = self._result([(1, 2)])
        assert result.selectivity(10, 10) == 0.01
        assert result.selectivity(0, 10) == 0.0


class TestBaseTemplate:
    def test_join_fills_totals(self):
        class Trivial(SpatialJoinAlgorithm):
            name = "Trivial"

            def _execute(self, objects_a, objects_b, stats):
                return [(a.oid, b.oid) for a in objects_a for b in objects_b
                        if a.mbr.intersects(b.mbr)]

        a = [box_object(0, (0, 0), (2, 2))]
        b = [box_object(5, (1, 1), (3, 3))]
        result = Trivial().join(a, b)
        assert result.pairs == [(0, 5)]
        assert result.stats.result_pairs == 1
        assert result.stats.total_seconds > 0
        assert result.algorithm == "Trivial"

    def test_repr_includes_parameters(self):
        algorithm = make_algorithm("TOUCH", fanout=3)
        assert "fanout=3" in repr(algorithm)

    def test_dimensionality_helper(self):
        a = [box_object(0, (0, 0, 0), (1, 1, 1))]
        assert dimensionality(a, []) == 3
        assert dimensionality([], a) == 3
        assert dimensionality([], []) == 0
