"""Quadtree/Octree dual-traversal baseline (related work §2.2.1)."""

import pytest

from repro.datasets.synthetic import clustered_boxes, uniform_boxes
from repro.geometry.objects import box_object
from repro.joins.quadtree import QuadtreeJoin, _Quadtree
from repro.geometry.mbr import MBR
from repro.validation import assert_matches_ground_truth

A = uniform_boxes(70, seed=131, side_range=(0.0, 25.0))
B = uniform_boxes(210, seed=132, side_range=(0.0, 25.0))


class TestQuadtreeStructure:
    def test_splits_when_over_capacity(self):
        universe = MBR((0.0, 0.0), (100.0, 100.0))
        objs = [box_object(i, (i, i), (i + 0.5, i + 0.5)) for i in range(40)]
        tree = _Quadtree(objs, universe, leaf_capacity=4, max_depth=10)
        assert not tree.root.is_leaf
        assert tree.node_count > 1

    def test_replication_counted(self):
        universe = MBR((0.0, 0.0), (100.0, 100.0))
        # One object straddling the first split plane at x = 50.
        objs = [box_object(i, (i, 0), (i + 0.4, 0.4)) for i in range(10)]
        objs.append(box_object(99, (49.0, 49.0), (51.0, 51.0)))
        tree = _Quadtree(objs, universe, leaf_capacity=2, max_depth=10)
        assert tree.reference_count > len(objs)

    def test_non_discriminating_split_stops(self):
        """Objects covering the whole region must not recurse forever."""
        universe = MBR((0.0, 0.0), (100.0, 100.0))
        objs = [box_object(i, (0, 0), (100, 100)) for i in range(50)]
        tree = _Quadtree(objs, universe, leaf_capacity=2, max_depth=30)
        assert tree.root.is_leaf
        assert tree.node_count == 1

    def test_max_depth_respected(self):
        universe = MBR((0.0, 0.0), (100.0, 100.0))
        # Many nearly coincident tiny objects force the depth bound.
        objs = [box_object(i, (1.0, 1.0), (1.001, 1.001)) for i in range(30)]
        tree = _Quadtree(objs, universe, leaf_capacity=2, max_depth=3)
        assert tree.node_count <= 1 + 4 + 16 + 64


class TestQuadtreeJoin:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="leaf_capacity"):
            QuadtreeJoin(leaf_capacity=0)
        with pytest.raises(ValueError, match="max_depth"):
            QuadtreeJoin(max_depth=-1)
        with pytest.raises(ValueError, match="kernel"):
            QuadtreeJoin(local_kernel="bogus")

    def test_correct_on_uniform(self):
        result = QuadtreeJoin(leaf_capacity=8).join(A, B)
        assert_matches_ground_truth(result, A, B)

    def test_correct_on_clustered(self):
        a = clustered_boxes(60, seed=133, n_clusters=4)
        b = clustered_boxes(180, seed=134, n_clusters=4)
        result = QuadtreeJoin(leaf_capacity=4).join(a, b)
        assert_matches_ground_truth(result, a, b)

    def test_duplicates_suppressed_for_straddlers(self):
        a = [box_object(0, (0.0, 0.0), (90.0, 90.0))]
        b = [box_object(0, (10.0, 10.0), (80.0, 80.0))] + [
            box_object(i, (i, 95.0), (i + 0.4, 95.4)) for i in range(1, 40)
        ]
        result = QuadtreeJoin(leaf_capacity=2).join(a, b)
        assert (0, 0) in result.pair_set()
        assert result.stats.duplicates_suppressed > 0

    def test_memory_includes_result_dedup_set(self):
        """Unlike PBSM, the end-filtering needs result memory (§2.2.3)."""
        dense_a = uniform_boxes(60, seed=135, side_range=(0.0, 120.0))
        dense_b = uniform_boxes(120, seed=136, side_range=(0.0, 120.0))
        result = QuadtreeJoin(leaf_capacity=4).join(dense_a, dense_b)
        assert result.stats.memory_bytes > 16 * len(result.pairs)

    def test_describe(self):
        info = QuadtreeJoin(leaf_capacity=7, max_depth=5).describe()
        assert info["leaf_capacity"] == 7 and info["max_depth"] == 5
