"""Index-cache correctness: the build race, validation, byte eviction.

The race this suite pins down: ``get_or_build`` used to pop its per-key
build lock *before* inserting the built index, so a third thread could
miss the cache, find no build lock, and rebuild an index that was
already built.  The white-box invariant test asserts the fixed ordering
directly (the entry must be resident at the instant the build lock is
popped); the barrier test hammers the path with real threads.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.joins.base import BuiltIndex
from repro.memory.budget import estimate_built_bytes
from repro.service.cache import IndexCache, IndexKey


def make_key(tag: str, epsilon: float = 0.5) -> IndexKey:
    return IndexKey.create(f"fp-{tag}", "TOUCH", {}, None, epsilon)


class _Payload:
    """Anything with ``nbytes`` prices into the cache deterministically."""

    def __init__(self, nbytes: int) -> None:
        self.nbytes = nbytes


def make_built(nbytes: int) -> BuiltIndex:
    return BuiltIndex(
        algorithm="TOUCH",
        parameters={},
        payload={"table": _Payload(nbytes)},
        n_build=0,
        reusable=True,
        build_seconds=0.0,
        build_stats=None,
    )


class _PopRecorder(dict):
    """Instrumented ``_building`` dict: records cache residency at pop.

    Under the fixed locking, the built entry is inserted *before* the
    per-key build lock is popped (same lock acquisition), so every
    successful-build pop must observe the key already resident.  The
    pre-fix ordering popped first and inserted later — residency False —
    which is exactly the window the duplicate-build race lived in.
    """

    def __init__(self, cache: IndexCache) -> None:
        super().__init__()
        self.cache = cache
        self.resident_at_pop: list[bool] = []

    def pop(self, key, *default):
        self.resident_at_pop.append(key in self.cache._entries)
        return super().pop(key, *default)


class TestBuildRace:
    def test_entry_resident_when_build_lock_released(self):
        cache = IndexCache(capacity=4)
        recorder = _PopRecorder(cache)
        cache._building = recorder
        key = make_key("a")
        cache.get_or_build(key, lambda: make_built(64))
        assert recorder.resident_at_pop == [True]

    def test_failed_build_pops_without_inserting(self):
        cache = IndexCache(capacity=4)
        recorder = _PopRecorder(cache)
        cache._building = recorder
        key = make_key("boom")
        with pytest.raises(RuntimeError, match="builder failed"):
            cache.get_or_build(
                key, lambda: (_ for _ in ()).throw(RuntimeError("builder failed"))
            )
        assert recorder.resident_at_pop == [False]
        assert len(cache._building) == 0

    @pytest.mark.parametrize("threads", [4, 8])
    def test_barrier_hammer_builds_exactly_once(self, threads):
        cache = IndexCache(capacity=4)
        key = make_key("hot")
        barrier = threading.Barrier(threads)
        builds = []
        build_lock = threading.Lock()

        def builder() -> BuiltIndex:
            with build_lock:
                builds.append(threading.get_ident())
            time.sleep(0.02)  # hold the build open so laggards pile up
            return make_built(128)

        results = []

        def worker():
            barrier.wait()
            built, warm = cache.get_or_build(key, builder)
            results.append((built, warm))

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert len(builds) == 1, f"index built {len(builds)} times"
        assert len(results) == threads
        assert len({id(built) for built, _ in results}) == 1
        assert sum(1 for _, warm in results if not warm) == 1
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == threads - 1

    def test_counters_consistent_after_builder_exception(self):
        cache = IndexCache(capacity=4)
        key = make_key("flaky")
        with pytest.raises(ValueError, match="no data"):
            cache.get_or_build(
                key, lambda: (_ for _ in ()).throw(ValueError("no data"))
            )
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["size"] == 0
        assert stats["resident_bytes"] == 0
        # A retry with a working builder proceeds normally.
        built, warm = cache.get_or_build(key, lambda: make_built(32))
        assert not warm
        assert cache.stats()["size"] == 1


class TestValidation:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0, -0.001])
    def test_index_key_rejects_bad_epsilon(self, bad):
        with pytest.raises(ValueError, match="epsilon"):
            make_key("x", epsilon=bad)

    def test_nan_key_would_poison_the_cache(self):
        """Why the NaN check exists: a NaN key never equals itself."""
        with pytest.raises(ValueError):
            IndexKey.create("fp", "TOUCH", {}, None, float("nan"))

    @pytest.mark.parametrize("bad", [0, -1, True, 1.5, "8"])
    def test_cache_rejects_bad_capacity(self, bad):
        with pytest.raises(ValueError, match="capacity"):
            IndexCache(capacity=bad)

    @pytest.mark.parametrize("bad", [0, -10, False, 3.5])
    def test_cache_rejects_bad_max_bytes(self, bad):
        with pytest.raises(ValueError, match="max_bytes"):
            IndexCache(capacity=2, max_bytes=bad)

    def test_service_probe_rejects_nonfinite_epsilon(self):
        from repro.geometry.mbr import MBR
        from repro.geometry.objects import SpatialObject
        from repro.service import SpatialQueryService

        service = SpatialQueryService()
        objs = [SpatialObject(0, MBR((0.0, 0.0), (1.0, 1.0)))]
        service.register("d", objs)
        for bad in (float("nan"), float("inf"), -2.0):
            with pytest.raises(ValueError, match="epsilon"):
                service.probe("d", objs, bad)


class TestByteEviction:
    def test_eviction_by_bytes_drops_lru_first(self):
        cache = IndexCache(capacity=10, max_bytes=1000)
        keys = [make_key(str(i)) for i in range(3)]
        for key in keys:
            cache.put(key, make_built(400))
        # 3 x 400 = 1200 > 1000: the oldest entry goes.
        assert cache.keys() == keys[1:]
        stats = cache.stats()
        assert stats["resident_bytes"] == 800
        assert stats["evictions"] == 1

    def test_recency_refresh_protects_hot_entries(self):
        cache = IndexCache(capacity=10, max_bytes=1000)
        keys = [make_key(str(i)) for i in range(2)]
        cache.put(keys[0], make_built(400))
        cache.put(keys[1], make_built(400))
        cache.get(keys[0])  # refresh: key 1 is now the LRU
        cache.put(make_key("2"), make_built(400))
        assert keys[0] in cache.keys()
        assert keys[1] not in cache.keys()

    def test_oversized_entry_keeps_newest(self):
        """An index above the whole budget must not thrash the cache empty."""
        cache = IndexCache(capacity=4, max_bytes=100)
        big = make_key("big")
        cache.put(big, make_built(5000))
        assert cache.keys() == [big]
        assert cache.stats()["resident_bytes"] == 5000

    def test_replacing_a_key_reprices_it(self):
        cache = IndexCache(capacity=4, max_bytes=10_000)
        key = make_key("k")
        cache.put(key, make_built(400))
        cache.put(key, make_built(900))
        assert cache.stats()["resident_bytes"] == 900

    def test_clear_resets_byte_accounting(self):
        cache = IndexCache(capacity=4, max_bytes=10_000)
        cache.put(make_key("k"), make_built(123))
        cache.clear()
        stats = cache.stats()
        assert stats["size"] == 0
        assert stats["resident_bytes"] == 0

    def test_estimate_built_bytes_prices_payload_and_records(self):
        assert estimate_built_bytes(make_built(64)) == 64
        built = make_built(64)
        built.n_build = 10
        assert estimate_built_bytes(built) > 64
