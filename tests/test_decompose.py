"""The shared slab/tile decomposition and boundary-ownership rule."""

import pickle

import pytest

from repro.geometry.mbr import MBR
from repro.parallel.decompose import (
    DEFAULT_OBJECTS_PER_CHUNK,
    MAX_ADAPTIVE_CHUNKS,
    Decomposition,
    adaptive_chunk_count,
    slab_bounds,
    tile_grid,
)

UNIVERSE_2D = MBR((0.0, 0.0), (10.0, 10.0))
UNIVERSE_3D = MBR((0.0, 0.0, 0.0), (10.0, 10.0, 10.0))


class TestSlabBounds:
    def test_even_split(self):
        assert slab_bounds(0.0, 10.0, 2) == [(0.0, 5.0), (5.0, 10.0)]

    def test_single_chunk(self):
        assert slab_bounds(0.0, 10.0, 1) == [(0.0, 10.0)]

    def test_last_slab_closed_at_hi(self):
        bounds = slab_bounds(0.0, 1.0, 3)
        assert bounds[-1][1] == 1.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError, match="n_chunks"):
            slab_bounds(0.0, 1.0, 0)
        with pytest.raises(ValueError, match="invalid interval"):
            slab_bounds(1.0, 0.0, 2)


class TestTileGrid:
    def test_square_universe_square_grid(self):
        assert tile_grid(4, 10.0, 10.0) == (2, 2)
        assert tile_grid(16, 10.0, 10.0) == (4, 4)

    def test_elongated_universe_cut_along_long_axis(self):
        nx, ny = tile_grid(4, 100.0, 1.0)
        assert nx == 4 and ny == 1
        nx, ny = tile_grid(4, 1.0, 100.0)
        assert nx == 1 and ny == 4

    def test_prime_counts_degenerate_to_strips(self):
        assert tile_grid(7, 10.0, 10.0) in ((7, 1), (1, 7))

    def test_total_is_exact(self):
        for n in (1, 2, 3, 6, 12, 30):
            nx, ny = tile_grid(n, 10.0, 7.0)
            assert nx * ny == n

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError, match="n_chunks"):
            tile_grid(0, 1.0, 1.0)


class TestAdaptiveChunkCount:
    def test_at_least_one_chunk_per_worker(self):
        assert adaptive_chunk_count(10, workers=4) == 4

    def test_scales_with_objects(self):
        n = 10 * DEFAULT_OBJECTS_PER_CHUNK
        assert adaptive_chunk_count(n, workers=2) == 10

    def test_capped(self):
        huge = 10_000 * DEFAULT_OBJECTS_PER_CHUNK
        assert adaptive_chunk_count(huge, workers=2) == MAX_ADAPTIVE_CHUNKS

    def test_empty_input(self):
        assert adaptive_chunk_count(0, workers=1) == 1

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            adaptive_chunk_count(10, workers=0)


class TestSlabDecomposition:
    def test_regions_cover_universe(self):
        decomposition = Decomposition.slabs(UNIVERSE_2D, 4, axis=0)
        assert len(decomposition) == 4
        assert decomposition.regions[0].lows == (0.0,)
        assert decomposition.regions[-1].highs == (10.0,)
        # Adjacent regions share an edge exactly.
        for left, right in zip(decomposition.regions, decomposition.regions[1:]):
            assert left.highs[0] == right.lows[0]

    def test_axis_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            Decomposition.slabs(UNIVERSE_2D, 2, axis=5)
        with pytest.raises(ValueError, match="axis"):
            Decomposition.slabs(UNIVERSE_2D, 2, axis=-1)

    def test_membership_is_closed(self):
        decomposition = Decomposition.slabs(UNIVERSE_2D, 2, axis=0)
        on_edge = MBR((5.0, 1.0), (5.0, 2.0))  # zero extent, exactly on edge
        assert decomposition.regions[0].touches(on_edge)
        assert decomposition.regions[1].touches(on_edge)

    def test_ownership_is_half_open(self):
        decomposition = Decomposition.slabs(UNIVERSE_2D, 2, axis=0)
        just_left = MBR((4.999, 0.0), (6.0, 1.0))
        at_edge = MBR((5.0, 0.0), (6.0, 1.0))
        assert decomposition.owner_index(just_left, just_left) == 0
        assert decomposition.owner_index(at_edge, at_edge) == 1

    def test_interior_edge_reference_has_exactly_one_owner(self):
        """Regression: a reference point exactly on an interior slab edge.

        The historical per-slab rule closed only the *last* slab's
        interval; resolving ownership against the shared edge list makes
        every interior edge belong to exactly one (the right-hand) slab.
        """
        decomposition = Decomposition.slabs(UNIVERSE_2D, 4, axis=0)
        for edge_cell, edge in enumerate([0.0, 2.5, 5.0, 7.5, 10.0]):
            box = MBR((edge, 0.0), (min(edge + 1.0, 10.0), 1.0))
            owners = [
                region
                for region in decomposition.regions
                if decomposition.owns(region, box, box)
            ]
            assert len(owners) == 1
            assert owners[0].cells[0] == min(edge_cell, 3)
            # The owner also *sees* both objects, so the pair is found.
            assert owners[0].touches(box)

    def test_universe_hi_owned_by_last_slab(self):
        decomposition = Decomposition.slabs(UNIVERSE_2D, 3, axis=0)
        point = MBR((10.0, 4.0), (10.0, 4.0))
        assert decomposition.owner_index(point, point) == 2

    def test_reference_point_is_max_of_los(self):
        decomposition = Decomposition.slabs(UNIVERSE_2D, 2, axis=0)
        a = MBR((1.0, 0.0), (9.0, 1.0))  # spans both slabs
        b = MBR((6.0, 0.0), (7.0, 1.0))  # starts in slab 1
        assert decomposition.owner_index(a, b) == 1
        assert decomposition.owner_index(b, a) == 1  # symmetric


class TestTileDecomposition:
    def test_grid_shape(self):
        decomposition = Decomposition.tiles(UNIVERSE_3D, 4)
        assert decomposition.shape == (2, 2)
        assert len(decomposition) == 4
        assert decomposition.kind == "tiles"

    def test_flat_indices_match_owner_index(self):
        decomposition = Decomposition.tiles(UNIVERSE_2D, 4)
        probes = {
            (1.0, 1.0): (0, 0),
            (1.0, 6.0): (0, 1),
            (6.0, 1.0): (1, 0),
            (6.0, 6.0): (1, 1),
        }
        for point, cells in probes.items():
            box = MBR(point, point)
            flat = decomposition.owner_index(box, box)
            assert decomposition.regions[flat].cells == cells

    def test_same_axis_twice_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            Decomposition.tiles(UNIVERSE_2D, 4, axes=(1, 1))

    def test_corner_reference_single_owner(self):
        decomposition = Decomposition.tiles(UNIVERSE_2D, 4)
        corner = MBR((5.0, 5.0), (6.0, 6.0))
        owners = [
            region
            for region in decomposition.regions
            if decomposition.owns(region, corner, corner)
        ]
        assert len(owners) == 1 and owners[0].cells == (1, 1)


class TestBuildDispatch:
    def test_kind_validation(self):
        with pytest.raises(ValueError, match="kind"):
            Decomposition.build(UNIVERSE_2D, kind="shards", n_chunks=2)

    def test_tiles_fall_back_to_slabs_in_1d(self):
        universe = MBR((0.0,), (10.0,))
        decomposition = Decomposition.build(universe, kind="tiles", n_chunks=3)
        assert decomposition.kind == "slabs"

    def test_high_axis_tiles_wrap(self):
        decomposition = Decomposition.build(
            UNIVERSE_3D, kind="tiles", n_chunks=4, axis=2
        )
        assert decomposition.axes == (2, 0)

    def test_out_of_range_axis_rejected_for_both_kinds(self):
        for kind in ("slabs", "tiles"):
            with pytest.raises(ValueError, match="out of range"):
                Decomposition.build(UNIVERSE_2D, kind=kind, n_chunks=2, axis=7)

    def test_picklable(self):
        decomposition = Decomposition.build(UNIVERSE_3D, kind="tiles", n_chunks=6)
        clone = pickle.loads(pickle.dumps(decomposition))
        assert clone.shape == decomposition.shape
        assert clone.bounds == decomposition.bounds
        assert [r.index for r in clone.regions] == [
            r.index for r in decomposition.regions
        ]


class TestEveryReferenceHasOneOwner:
    """Property: the ownership rule is a partition of the universe."""

    @pytest.mark.parametrize("kind,n_chunks", [("slabs", 5), ("tiles", 6)])
    def test_dense_probe_grid(self, kind, n_chunks):
        decomposition = Decomposition.build(UNIVERSE_2D, kind=kind, n_chunks=n_chunks)
        steps = 40
        for i in range(steps + 1):
            for j in range(steps + 1):
                point = MBR(
                    (10.0 * i / steps, 10.0 * j / steps),
                    (10.0 * i / steps, 10.0 * j / steps),
                )
                owners = sum(
                    decomposition.owns(region, point, point)
                    for region in decomposition.regions
                )
                assert owners == 1
