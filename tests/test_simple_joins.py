"""Behaviour specific to NL, PS, INL, RTree sync and seeded tree joins."""

import pytest

from repro.datasets.synthetic import uniform_boxes
from repro.joins.indexed_nested_loop import IndexedNestedLoopJoin
from repro.joins.nested_loop import NestedLoopJoin
from repro.joins.plane_sweep import PlaneSweepJoin
from repro.joins.rtree_join import RTreeSyncJoin
from repro.joins.seeded_tree import SeededTreeJoin
from repro.validation import assert_matches_ground_truth

A = uniform_boxes(70, seed=71, side_range=(0.0, 30.0))
B = uniform_boxes(200, seed=72, side_range=(0.0, 30.0))


class TestNestedLoop:
    def test_comparisons_equal_product(self):
        result = NestedLoopJoin().join(A, B)
        assert result.stats.comparisons == len(A) * len(B)

    def test_zero_memory_model(self):
        """The object path builds nothing; the columnar path reports
        exactly its two coordinate tables (56 bytes per 3-D object)."""
        assert NestedLoopJoin(backend="object").join(A, B).stats.memory_bytes == 0
        columnar = NestedLoopJoin(backend="columnar").join(A, B).stats
        assert columnar.memory_bytes == 56 * (len(A) + len(B))

    def test_backends_agree(self):
        obj = NestedLoopJoin(backend="object").join(A, B)
        col = NestedLoopJoin(backend="columnar").join(A, B)
        assert obj.pairs == col.pairs  # identical A-major order, not just set
        assert obj.stats.comparisons == col.stats.comparisons


class TestPlaneSweep:
    def test_fewer_comparisons_than_nl(self):
        ps = PlaneSweepJoin().join(A, B)
        assert 0 < ps.stats.comparisons < len(A) * len(B)

    def test_sweep_along_each_dimension(self):
        results = [PlaneSweepJoin(sweep_dim=d).join(A, B) for d in range(3)]
        assert results[0].pair_set() == results[1].pair_set() == results[2].pair_set()

    def test_rejects_negative_dim(self):
        with pytest.raises(ValueError, match=">= 0"):
            PlaneSweepJoin(sweep_dim=-1)

    def test_out_of_range_dim(self):
        with pytest.raises(ValueError, match="out of range"):
            PlaneSweepJoin(sweep_dim=5).join(A, B)

    def test_memory_is_two_reference_arrays(self):
        result = PlaneSweepJoin().join(A, B)
        assert result.stats.memory_bytes == 8 * (len(A) + len(B))


class TestIndexedNestedLoop:
    def test_counts_node_tests(self):
        result = IndexedNestedLoopJoin(fanout=2).join(A, B)
        assert result.stats.node_tests > 0

    def test_bigger_fanout_changes_tree(self):
        lean = IndexedNestedLoopJoin(fanout=2).join(A, B)
        wide = IndexedNestedLoopJoin(fanout=16).join(A, B)
        assert lean.pair_set() == wide.pair_set()
        # Taller tree -> more node tests; wider leaves -> more comparisons.
        assert wide.stats.comparisons >= lean.stats.comparisons

    def test_hilbert_packing(self):
        result = IndexedNestedLoopJoin(fanout=4, packing="hilbert").join(A, B)
        assert_matches_ground_truth(result, A, B)


class TestRTreeSync:
    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            RTreeSyncJoin(local_kernel="bogus")

    def test_node_tests_counted(self):
        result = RTreeSyncJoin(fanout=2).join(A, B)
        assert result.stats.node_tests > 0

    def test_memory_counts_both_trees(self):
        one_sided = IndexedNestedLoopJoin(fanout=2).join(A, B)
        both = RTreeSyncJoin(fanout=2).join(A, B)
        assert both.stats.memory_bytes > one_sided.stats.memory_bytes

    def test_shares_traversal_work_unlike_inl(self):
        """Paper: INL is slower because every probe re-traverses the tree
        from the root; the synchronous traversal shares that work.  The
        effect shows up as far fewer node tests for the same result."""
        inl = IndexedNestedLoopJoin(fanout=2, leaf_capacity=4).join(A, B)
        sync = RTreeSyncJoin(fanout=2, leaf_capacity=4, local_kernel="nested").join(A, B)
        assert sync.pair_set() == inl.pair_set()
        assert sync.stats.node_tests < inl.stats.node_tests

    def test_different_tree_heights(self):
        tiny_a = list(A)[:3]
        result = RTreeSyncJoin(fanout=2).join(tiny_a, B)
        assert_matches_ground_truth(result, tiny_a, B)

    def test_nested_kernel_variant(self):
        result = RTreeSyncJoin(local_kernel="nested").join(A, B)
        assert_matches_ground_truth(result, A, B)


class TestSeededTree:
    def test_rejects_bad_seed_levels(self):
        with pytest.raises(ValueError, match="seed_levels"):
            SeededTreeJoin(seed_levels=0)

    def test_seed_levels_deeper_than_tree(self):
        result = SeededTreeJoin(seed_levels=50).join(A, B)
        assert_matches_ground_truth(result, A, B)

    def test_routing_counts_node_tests(self):
        result = SeededTreeJoin(fanout=4, seed_levels=3).join(A, B)
        assert result.stats.node_tests > 0

    def test_probe_side_far_away(self):
        """All B routed into one slot; grown subtree must still join."""
        from repro.geometry.objects import box_object

        far_b = [box_object(i, (i, 0, 0), (i + 0.5, 0.5, 0.5)) for i in range(30)]
        result = SeededTreeJoin(fanout=4).join(A, far_b)
        assert_matches_ground_truth(result, A, far_b)
