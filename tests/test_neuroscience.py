"""The synthetic neuroscience model generator (rat-brain substitute)."""

import pytest

from repro.datasets.neuroscience import (
    NeuronModelGenerator,
    density_subsets,
    neuroscience_datasets,
)
from repro.geometry.distance import Cylinder


@pytest.fixture(scope="module")
def model():
    return neuroscience_datasets(n_neurons=8, seed=1)


class TestGeneration:
    def test_rejects_bad_neuron_count(self):
        with pytest.raises(ValueError, match="n_neurons"):
            NeuronModelGenerator(n_neurons=0)

    def test_axon_dendrite_ratio(self, model):
        """The paper's subset has roughly 1 : 2 axons : dendrites."""
        axons, dendrites = model
        ratio = len(dendrites) / len(axons)
        assert 1.5 <= ratio <= 2.8

    def test_objects_carry_cylinder_geometry(self, model):
        axons, dendrites = model
        assert all(isinstance(o.geometry, Cylinder) for o in axons)
        assert all(isinstance(o.geometry, Cylinder) for o in dendrites)

    def test_mbr_matches_geometry(self, model):
        axons, _ = model
        for obj in list(axons)[:50]:
            assert obj.mbr == obj.geometry.mbr()

    def test_inside_universe(self, model):
        axons, dendrites = model
        for dataset in (axons, dendrites):
            for obj in dataset:
                assert dataset.universe.expand(5.0).contains(obj.mbr)

    def test_reproducible(self):
        first_a, first_d = neuroscience_datasets(n_neurons=4, seed=9)
        second_a, second_d = neuroscience_datasets(n_neurons=4, seed=9)
        assert [o.mbr for o in first_a] == [o.mbr for o in second_a]
        assert len(first_d) == len(second_d)

    def test_dense_core_sparse_rim(self):
        """The density profile the paper's filtering relies on."""
        axons, _ = neuroscience_datasets(n_neurons=20, seed=3)
        space = axons.universe.hi[0]
        core = sum(
            1
            for o in axons
            if all(space * 0.25 <= c <= space * 0.75 for c in o.mbr.center())
        )
        # Core octant holds far more than its 12.5% volume share.
        assert core / len(axons) > 0.4

    def test_more_neurons_more_cylinders(self):
        small_a, _ = neuroscience_datasets(n_neurons=3, seed=5)
        large_a, _ = neuroscience_datasets(n_neurons=12, seed=5)
        assert len(large_a) > len(small_a)

    def test_branching_produces_extra_segments(self):
        no_branch = NeuronModelGenerator(
            n_neurons=5, seed=7, branch_probability=0.0
        ).generate()[0]
        branchy = NeuronModelGenerator(
            n_neurons=5, seed=7, branch_probability=0.3
        ).generate()[0]
        assert len(branchy) > len(no_branch)


class TestDensitySubsets:
    def test_fractions_respected(self, model):
        axons, dendrites = model
        subsets = density_subsets(axons, dendrites, fractions=(0.25, 0.5, 1.0), seed=1)
        assert len(subsets) == 3
        for fraction, subset_a, subset_b in subsets:
            assert len(subset_a) == max(1, int(len(axons) * fraction))
            assert len(subset_b) == max(1, int(len(dendrites) * fraction))

    def test_rejects_bad_fraction(self, model):
        axons, dendrites = model
        with pytest.raises(ValueError, match="fractions"):
            density_subsets(axons, dendrites, fractions=(0.0,))

    def test_subsets_are_nested(self, model):
        """Growing density adds objects without replacing earlier ones."""
        axons, dendrites = model
        subsets = density_subsets(axons, dendrites, fractions=(0.3, 0.6, 1.0), seed=2)
        ids = [frozenset(o.oid for o in subset_a) for _, subset_a, _ in subsets]
        assert ids[0] < ids[1] < ids[2]

    def test_full_fraction_is_whole_dataset(self, model):
        axons, dendrites = model
        _, subset_a, subset_b = density_subsets(
            axons, dendrites, fractions=(1.0,), seed=3
        )[0]
        assert len(subset_a) == len(axons)
        assert len(subset_b) == len(dendrites)


class TestTouchDetectionUseCase:
    def test_distance_join_with_refinement(self, model):
        """The end-to-end synapse-placement pipeline."""
        from repro.core.distance_join import distance_join

        axons, dendrites = model
        candidates = distance_join(axons, dendrites, epsilon=3.0, order="keep")
        refined = distance_join(axons, dendrites, epsilon=3.0, order="keep", refine=True)
        assert set(refined.pairs) <= set(candidates.pairs)
        for oid_a, oid_b in list(refined.pairs)[:20]:
            cyl_a = axons[oid_a].geometry
            cyl_b = dendrites[oid_b].geometry
            assert cyl_a.min_distance(cyl_b) <= 3.0 + 1e-9
