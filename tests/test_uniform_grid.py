"""Unit tests for the uniform hash grid substrate."""

import pytest

from repro.geometry.mbr import MBR
from repro.grid.uniform import UniformGrid

UNIVERSE = MBR((0.0, 0.0), (10.0, 10.0))


class TestConstruction:
    def test_requires_exactly_one_sizing_argument(self):
        with pytest.raises(ValueError, match="exactly one"):
            UniformGrid(UNIVERSE)
        with pytest.raises(ValueError, match="exactly one"):
            UniformGrid(UNIVERSE, resolution=10, cell_size=1.0)

    def test_scalar_resolution_broadcasts(self):
        grid = UniformGrid(UNIVERSE, resolution=5)
        assert grid.resolution == (5, 5)
        assert grid.cell_size == (2.0, 2.0)

    def test_per_dimension_resolution(self):
        grid = UniformGrid(UNIVERSE, resolution=(5, 10))
        assert grid.cell_size == (2.0, 1.0)

    def test_cell_size_derives_resolution(self):
        grid = UniformGrid(UNIVERSE, cell_size=3.0)
        assert grid.resolution == (4, 4)  # ceil(10 / 3)

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError, match=">= 1"):
            UniformGrid(UNIVERSE, resolution=0)

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError, match="positive"):
            UniformGrid(UNIVERSE, cell_size=0.0)

    def test_degenerate_universe_dimension(self):
        flat = MBR((0.0, 5.0), (10.0, 5.0))
        grid = UniformGrid(flat, resolution=4)
        assert grid.cell_of_point((3.0, 5.0))[1] == 0


class TestCoordinates:
    def test_cell_of_point_interior(self):
        grid = UniformGrid(UNIVERSE, resolution=5)
        assert grid.cell_of_point((0.1, 0.1)) == (0, 0)
        assert grid.cell_of_point((9.9, 9.9)) == (4, 4)

    def test_cell_of_point_clamps_outside(self):
        grid = UniformGrid(UNIVERSE, resolution=5)
        assert grid.cell_of_point((-3.0, 50.0)) == (0, 4)

    def test_upper_boundary_maps_to_last_cell(self):
        grid = UniformGrid(UNIVERSE, resolution=5)
        assert grid.cell_of_point((10.0, 10.0)) == (4, 4)

    def test_index_ranges(self):
        grid = UniformGrid(UNIVERSE, resolution=5)
        assert grid.index_ranges(MBR((1.0, 3.0), (5.0, 3.5))) == ((0, 2), (1, 1))

    def test_cells_overlapping_counts(self):
        grid = UniformGrid(UNIVERSE, resolution=5)
        box = MBR((1.0, 1.0), (5.0, 3.0))
        cells = list(grid.cells_overlapping(box))
        assert len(cells) == grid.cell_count_for(box) == 6  # 3 x 2

    def test_cell_mbr_roundtrip(self):
        grid = UniformGrid(UNIVERSE, resolution=5)
        cell = grid.cell_mbr((1, 2))
        assert cell == MBR((2.0, 4.0), (4.0, 6.0))
        assert grid.cell_of_point(cell.center()) == (1, 2)


class TestPopulation:
    def test_insert_single_cell(self):
        grid = UniformGrid(UNIVERSE, resolution=5)
        touched = grid.insert("x", MBR((0.1, 0.1), (0.2, 0.2)))
        assert touched == 1
        assert grid.items_in_cell((0, 0)) == ["x"]
        assert len(grid) == 1
        assert grid.reference_count == 1

    def test_insert_replicates_across_cells(self):
        grid = UniformGrid(UNIVERSE, resolution=5)
        touched = grid.insert("wide", MBR((0.0, 0.0), (10.0, 0.5)))
        assert touched == 5  # spans every column of row 0
        assert grid.reference_count == 5

    def test_items_in_missing_cell_is_empty(self):
        grid = UniformGrid(UNIVERSE, resolution=5)
        assert grid.items_in_cell((3, 3)) == []

    def test_contains_and_iteration(self):
        grid = UniformGrid(UNIVERSE, resolution=5)
        grid.insert("a", MBR((0.1, 0.1), (0.2, 0.2)))
        assert (0, 0) in grid
        assert (1, 1) not in grid
        assert dict(grid.non_empty_cells()) == {(0, 0): ["a"]}

    def test_memory_grows_with_references(self):
        grid = UniformGrid(UNIVERSE, resolution=5)
        empty_bytes = grid.memory_bytes()
        grid.insert("wide", MBR((0.0, 0.0), (10.0, 10.0)))
        assert grid.memory_bytes() > empty_bytes


class TestReferencePointDedup:
    def test_exactly_one_owner_among_common_cells(self):
        grid = UniformGrid(UNIVERSE, resolution=5)
        a = MBR((1.0, 1.0), (7.0, 7.0))
        b = MBR((3.0, 3.0), (9.0, 9.0))
        common = set(grid.cells_overlapping(a)) & set(grid.cells_overlapping(b))
        owners = [c for c in common if grid.owns_pair(c, a, b)]
        assert len(owners) == 1

    def test_owner_contains_reference_point(self):
        grid = UniformGrid(UNIVERSE, resolution=5)
        a = MBR((1.0, 1.0), (7.0, 7.0))
        b = MBR((3.0, 3.0), (9.0, 9.0))
        owner = next(
            c
            for c in set(grid.cells_overlapping(a)) & set(grid.cells_overlapping(b))
            if grid.owns_pair(c, a, b)
        )
        assert owner == grid.cell_of_point((3.0, 3.0))

    def test_order_insensitive(self):
        grid = UniformGrid(UNIVERSE, resolution=5)
        a = MBR((0.0, 0.0), (4.0, 4.0))
        b = MBR((2.0, 2.0), (6.0, 6.0))
        cell = grid.cell_of_point((2.0, 2.0))
        assert grid.owns_pair(cell, a, b) == grid.owns_pair(cell, b, a)
