"""Analytic selectivity estimation (Aref & Samet-style cost model)."""

import pytest

from repro.datasets.synthetic import gaussian_boxes, uniform_boxes
from repro.geometry.columnar import HAVE_NUMPY, CoordinateTable
from repro.geometry.objects import box_object
from repro.joins.nested_loop import NestedLoopJoin
from repro.stats.estimate import (
    estimate_pair_probability,
    estimate_result_pairs,
    estimate_selectivity,
    mean_side_lengths,
)


class TestMeanSides:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            mean_side_lengths([])

    def test_mean_per_dimension(self):
        objs = [box_object(0, (0, 0), (2, 4)), box_object(1, (0, 0), (4, 0))]
        assert mean_side_lengths(objs) == (3.0, 2.0)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="columnar path needs numpy")
    def test_columnar_table_accepted(self):
        objs = [box_object(0, (0, 0), (2, 4)), box_object(1, (0, 0), (4, 0))]
        table = CoordinateTable.from_objects(objs)
        assert mean_side_lengths(table) == (3.0, 2.0)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="columnar path needs numpy")
    def test_columnar_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            mean_side_lengths(CoordinateTable.from_objects([]))

    @pytest.mark.skipif(not HAVE_NUMPY, reason="columnar path needs numpy")
    def test_columnar_matches_object_loop(self):
        objects = list(uniform_boxes(500, seed=7, side_range=(0.0, 25.0)))
        from_objects = mean_side_lengths(objects)
        from_table = mean_side_lengths(CoordinateTable.from_objects(objects))
        assert from_table == pytest.approx(from_objects, rel=1e-12)


class TestPairProbability:
    def test_minkowski_window(self):
        # sides 1 and 1 with eps 2 in a 100-unit 1D universe: (1+1+4)/100.
        assert estimate_pair_probability((1.0,), (1.0,), (100.0,), epsilon=2.0) == 0.06

    def test_caps_at_one(self):
        assert estimate_pair_probability((80.0,), (80.0,), (100.0,)) == 1.0

    def test_degenerate_dimension_ignored(self):
        assert estimate_pair_probability((1.0, 1.0), (1.0, 1.0), (100.0, 0.0)) == 0.02

    def test_dimensions_multiply(self):
        p = estimate_pair_probability((1.0, 1.0), (1.0, 1.0), (10.0, 10.0))
        assert p == pytest.approx(0.04)


class TestAgainstMeasurement:
    def test_uniform_estimate_within_factor_two(self):
        """On uniform data the model must be accurate."""
        a = uniform_boxes(300, seed=141, side_range=(0.0, 30.0))
        b = uniform_boxes(900, seed=142, side_range=(0.0, 30.0))
        predicted = estimate_result_pairs(a, b)
        measured = len(NestedLoopJoin().join(a, b).pairs)
        assert measured / 2 <= predicted <= measured * 2

    def test_skewed_data_underestimated(self):
        """On skewed data the uniform model is a lower bound."""
        a = gaussian_boxes(300, seed=143, sigma=100.0, side_range=(0.0, 20.0))
        b = gaussian_boxes(900, seed=144, sigma=100.0, side_range=(0.0, 20.0))
        predicted = estimate_result_pairs(a, b)
        measured = len(NestedLoopJoin().join(a, b).pairs)
        assert predicted < measured

    def test_empty_datasets(self):
        assert estimate_selectivity([], []) == 0.0
        assert estimate_result_pairs([], [box_object(0, (0,), (1,))]) == 0.0

    def test_epsilon_monotone(self):
        a = uniform_boxes(100, seed=145)
        b = uniform_boxes(100, seed=146)
        assert estimate_selectivity(a, b, 10.0) > estimate_selectivity(a, b, 1.0)
