"""The sharded serving tier: routing, protocol, and the live topology.

Unit-level pins for the shard geometry (``covering_indices`` vs the
``covers`` oracle, the home-shard uniqueness lemma) and the JSON-lines
wire protocol, plus end-to-end tests against one real 3-shard cluster:
worker processes, scatter-gather probes, the ``serve_front`` listener,
and concurrent clients mixing a thread pool with raw asyncio
connections.
"""

from __future__ import annotations

import asyncio
import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.bench.cli import main as cli_main
from repro.datasets.synthetic import uniform_boxes
from repro.geometry.mbr import MBR
from repro.parallel.decompose import Decomposition
from repro.service import SpatialQueryService
from repro.serving import (
    ProtocolError,
    RemoteError,
    ShardedQueryService,
    ShardMap,
    SyncConnection,
    percentile,
    run_scatter_workload,
    serve_front,
)
from repro.serving.protocol import (
    decode_boxes,
    decode_message,
    encode_boxes,
    encode_message,
)

EPS = 2.5
UNIVERSE = MBR((0.0, 0.0, 0.0), (40.0, 40.0, 40.0))


def random_mbrs(count: int, seed: int, span: float = 44.0) -> list[MBR]:
    """Random boxes, some poking past the universe boundary."""
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        lo = [rng.uniform(-2.0, span) for _ in range(3)]
        side = [rng.uniform(0.0, 3.0) for _ in range(3)]
        out.append(MBR(lo, [c + s for c, s in zip(lo, side)]))
    return out


# ---------------------------------------------------------------------------
# Routing geometry
# ---------------------------------------------------------------------------
class TestCoveringIndices:
    @pytest.mark.parametrize("kind", ["slabs", "tiles"])
    @pytest.mark.parametrize("n_chunks", [1, 3, 6])
    def test_matches_the_covers_oracle(self, kind, n_chunks):
        decomposition = Decomposition.build(UNIVERSE, kind=kind, n_chunks=n_chunks)
        for box in random_mbrs(120, seed=hash((kind, n_chunks)) % 10_000):
            expected = [
                region.index
                for region in decomposition.regions
                if decomposition.covers(region, box)
            ]
            assert decomposition.covering_indices(box) == expected
            assert expected, "ownership clamps: every box covers >= 1 region"

    def test_point_box_covers_exactly_one_region(self):
        decomposition = Decomposition.build(UNIVERSE, kind="slabs", n_chunks=5)
        point = MBR((7.0, 7.0, 7.0), (7.0, 7.0, 7.0))
        assert len(decomposition.covering_indices(point)) == 1


class TestShardMap:
    def test_validation(self):
        with pytest.raises(ValueError, match="n_shards must be >= 1"):
            ShardMap(UNIVERSE, 0)
        with pytest.raises(ValueError, match="unknown shard layout"):
            ShardMap(UNIVERSE, 2, kind="spirals")
        with pytest.raises(ValueError, match="zero objects"):
            ShardMap.for_objects([], 2)

    def test_full_mask_tracks_partitioned_axes(self):
        assert ShardMap(UNIVERSE, 4, kind="slabs").full_mask == 0b1
        tiled = ShardMap(UNIVERSE, 4, kind="tiles")
        assert tiled.full_mask == (1 << len(tiled.decomposition.axes)) - 1

    def test_len_and_describe(self):
        shard_map = ShardMap(UNIVERSE, 3)
        assert len(shard_map) == 3
        assert shard_map.describe()["shards"] == 3

    def test_membership_mirrors_covering_indices(self):
        objects = list(uniform_boxes(100, seed=31, space=40.0))
        shard_map = ShardMap.for_objects(objects, 4)
        members = shard_map.shard_members(objects)
        placed: dict[int, list[int]] = {obj.oid: [] for obj in objects}
        for shard, shard_objects in enumerate(members):
            for obj, mask in shard_objects:
                placed[obj.oid].append(shard)
                assert 0 <= mask <= shard_map.full_mask
        for obj in objects:
            assert placed[obj.oid] == shard_map.decomposition.covering_indices(
                obj.mbr
            )

    @pytest.mark.parametrize("kind", ["slabs", "tiles"])
    def test_every_intersecting_pair_has_exactly_one_home_shard(self, kind):
        """The duplicate-free lemma the scatter-gather merge rests on."""
        build = random_mbrs(40, seed=91)
        probes = random_mbrs(40, seed=92)
        shard_map = ShardMap(UNIVERSE, 6, kind=kind)
        decomposition = shard_map.decomposition
        for a in build:
            build_shards = {
                flat: decomposition.class_mask(decomposition.regions[flat], a)
                for flat in decomposition.covering_indices(a)
            }
            for q in probes:
                inflated = q.expand(EPS)
                if not a.intersects(inflated):
                    continue
                homes = [
                    shard
                    for shard, probe_mask in shard_map.route(inflated)
                    if shard in build_shards
                    and build_shards[shard] | probe_mask == shard_map.full_mask
                ]
                assert len(homes) == 1


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_message_round_trip(self):
        message = {"op": "probe", "epsilon": 2.5, "ids": [0, 7], "nested": {"x": 1}}
        frame = encode_message(message)
        assert frame.endswith(b"\n") and b" " not in frame
        assert decode_message(frame) == message

    def test_floats_survive_bit_for_bit(self):
        values = [0.1, 1e-17, 40.0 / 3.0, 2.5000000000000004]
        decoded = decode_message(encode_message({"v": values}))
        assert decoded["v"] == values

    def test_decode_rejects_junk(self):
        with pytest.raises(ProtocolError, match="undecodable frame"):
            decode_message(b"{nope\n")
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_message(b"[1, 2]\n")

    def test_box_round_trip(self):
        boxes = random_mbrs(25, seed=5)
        assert decode_boxes(encode_boxes(boxes)) == boxes

    def test_decode_boxes_rejects_odd_rows(self):
        with pytest.raises(ProtocolError, match="not 2\\*D"):
            decode_boxes([[1.0, 2.0, 3.0]])

    def test_remote_error_carries_type(self):
        error = RemoteError("boom", "KeyError")
        assert error.error_type == "KeyError"
        assert str(error) == "boom"


class TestPercentile:
    def test_nearest_rank(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 0.5) == 3.0
        assert percentile(samples, 1.0) == 5.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError, match="zero samples"):
            percentile([], 0.5)
        with pytest.raises(ValueError, match="fraction"):
            percentile([1.0], 1.5)


# ---------------------------------------------------------------------------
# The live topology (one shared 3-shard cluster for the whole module)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def data():
    return (
        list(uniform_boxes(120, seed=71, space=40.0)),
        list(uniform_boxes(300, seed=72, space=40.0)),
    )


@pytest.fixture(scope="module")
def sharded(data):
    build, _ = data
    with ShardedQueryService(shards=3, capacity=8) as service:
        service.register("build", build)
        yield service


@pytest.fixture(scope="module")
def reference(data):
    build, _ = data
    service = SpatialQueryService(capacity=8)
    service.register("build", build)
    return service


@pytest.mark.parallel
class TestShardedService:
    def test_register_reports_replication(self, sharded, data):
        build, _ = data
        info = sharded.datasets()
        assert info == {"build": len(build)}
        assert sharded.cluster.shards == 3

    def test_object_probe_matches_single_process(self, sharded, reference, data):
        _, probe = data
        expected = reference.probe("build", probe, EPS)
        got = sharded.probe("build", probe, EPS)
        assert sorted(got.pairs) == sorted(expected.pairs)
        assert got.parameters["shards"] == 3

    def test_single_mbr_probe(self, sharded, reference, data):
        _, probe = data
        box = probe[0].mbr
        expected = reference.probe("build", box, EPS)
        got = sharded.probe("build", box, EPS)
        assert sorted(got.pairs) == sorted(expected.pairs)

    def test_mbr_batch_and_aliases(self, sharded, reference, data):
        _, probe = data
        boxes = [obj.mbr for obj in probe[:40]]
        expected = reference.probe_mbrs("build", boxes, EPS)
        via_probe = sharded.probe("build", boxes, EPS)
        via_alias = sharded.probe_mbrs("build", boxes, EPS)
        via_query = sharded.query("build", probe[:40], EPS)
        assert sorted(via_probe.pairs) == sorted(expected.pairs)
        assert sorted(via_alias.pairs) == sorted(expected.pairs)
        assert {b for _, b in via_query.pairs} <= {obj.oid for obj in probe[:40]}

    def test_epsilon_zero_and_validation(self, sharded, data):
        _, probe = data
        result = sharded.probe("build", probe[:10], 0.0)
        assert result.parameters["epsilon"] == 0.0
        with pytest.raises(ValueError, match="non-negative"):
            sharded.probe("build", probe[:10], -1.0)

    def test_unknown_dataset_names_the_registered_ones(self, sharded, data):
        _, probe = data
        with pytest.raises(KeyError, match="unknown dataset 'nope'.*build"):
            sharded.probe("nope", probe[:5], EPS)

    def test_empty_batch_rejected(self, sharded):
        with pytest.raises(ValueError, match="empty batch"):
            sharded.probe("build", [], EPS)
        with pytest.raises(ValueError, match="at least one query MBR"):
            sharded.probe_mbrs("build", [], EPS)

    def test_warm_cache_on_repeat(self, sharded, data):
        _, probe = data
        sharded.probe("build", probe[:20], EPS)
        again = sharded.probe("build", probe[:20], EPS)
        assert again.parameters["cache"] == "warm"

    def test_stats_and_health(self, sharded):
        stats = sharded.stats()
        assert stats["probes"] >= 1
        assert stats["subprobes"] >= stats["probes"]
        assert len(stats["per_shard"]) == 3
        health = sharded.health()
        assert [entry["shard"] for entry in health] == [0, 1, 2]
        assert all("build" in entry["datasets"] for entry in health)

    def test_concurrent_thread_pool_and_asyncio_clients(
        self, sharded, reference, data
    ):
        """The ISSUE's client mix: blocking threads + raw async sockets.

        Eight thread-pool clients hammer the sync facade while four
        asyncio clients speak the JSON-lines protocol to a
        ``serve_front`` listener on the same router — every response
        must match the single-process service pair-for-pair.
        """
        _, probe = data
        batches = [probe[i::6] for i in range(6)]
        expected = [
            sorted(reference.probe("build", chunk, EPS).pairs)
            for chunk in batches
        ]

        server = asyncio.run_coroutine_threadsafe(
            serve_front(sharded.router), sharded._loop
        ).result()
        port = server.sockets[0].getsockname()[1]
        try:
            with ThreadPoolExecutor(max_workers=8) as pool:
                futures = [
                    pool.submit(sharded.probe, "build", batches[i % 6], EPS)
                    for i in range(12)
                ]

                async def async_client(index: int) -> list:
                    chunk = batches[index % 6]
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", port
                    )
                    try:
                        writer.write(
                            encode_message(
                                {
                                    "op": "probe",
                                    "dataset": "build",
                                    "epsilon": EPS,
                                    "ids": [obj.oid for obj in chunk],
                                    "boxes": encode_boxes(
                                        [obj.mbr for obj in chunk]
                                    ),
                                }
                            )
                        )
                        await writer.drain()
                        response = decode_message(await reader.readline())
                        assert response["ok"], response
                        return sorted(
                            (a, b) for a, b in response["pairs"]
                        )
                    finally:
                        writer.close()

                async def drive() -> list:
                    return await asyncio.gather(
                        *(async_client(i) for i in range(8))
                    )

                async_pairs = asyncio.run(drive())
                for index, future in enumerate(futures):
                    assert sorted(future.result().pairs) == expected[index % 6]
                for index, pairs in enumerate(async_pairs):
                    assert pairs == expected[index % 6]
        finally:
            sharded._loop.call_soon_threadsafe(server.close)

    def test_serve_front_error_frames(self, sharded):
        server = asyncio.run_coroutine_threadsafe(
            serve_front(sharded.router), sharded._loop
        ).result()
        port = server.sockets[0].getsockname()[1]
        try:
            with SyncConnection("127.0.0.1", port) as connection:
                listing = connection.request({"op": "datasets"})
                assert listing["datasets"] == sharded.datasets()
                with pytest.raises(RemoteError, match="unknown op"):
                    connection.request({"op": "explode"})
                with pytest.raises(RemoteError, match="unknown dataset") as info:
                    connection.request(
                        {
                            "op": "probe",
                            "dataset": "nope",
                            "epsilon": EPS,
                            "boxes": [[0, 0, 0, 1, 1, 1]],
                        }
                    )
                assert info.value.error_type == "KeyError"
        finally:
            sharded._loop.call_soon_threadsafe(server.close)

    def test_not_running_raises(self):
        service = ShardedQueryService(shards=2)
        with pytest.raises(RuntimeError, match="not running"):
            service._call(None)


@pytest.mark.parallel
def test_frames_larger_than_the_default_stream_limit():
    """Register/probe frames past asyncio's 64 KiB default readline limit.

    The stream servers and pooled client connections must pass an
    explicit ``limit`` — with the default, a medium-scale registration
    killed the worker connection mid-frame (regression).
    """
    build = list(uniform_boxes(1600, seed=41, space=60.0))
    probe = list(uniform_boxes(400, seed=42, space=60.0))
    reference = SpatialQueryService(capacity=2)
    reference.register("big", build)
    expected = reference.probe("big", probe, EPS)
    with ShardedQueryService(shards=2, capacity=2) as service:
        service.register("big", build)
        got = service.probe("big", probe, EPS)
    assert sorted(got.pairs) == sorted(expected.pairs)


@pytest.mark.parallel
def test_scatter_workload_reports_and_asserts_parity(data):
    build, probe = data
    summary = run_scatter_workload(
        build, probe, EPS, shards=2, probes=6, concurrency=4
    )
    assert summary["parity"] is True
    assert summary["probes"] == 6
    assert summary["qps"] > 0
    assert summary["p99_ms"] >= summary["p50_ms"] >= 0
    assert summary["fanout_avg"] >= 1.0
    assert summary["result_pairs"] > 0


def test_cli_serve_unknown_dataset_lists_known(capsys):
    exit_code = cli_main(["serve", "--dataset", "nosuch", "--scale", "smoke"])
    captured = capsys.readouterr()
    assert exit_code == 2
    assert "unknown dataset 'nosuch'" in captured.err
    assert "uniform" in captured.err and "neuro" in captured.err
