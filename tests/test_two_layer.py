"""Two-layer partition join: correctness, classes, zero dedup checks."""

import pytest

from repro.datasets.synthetic import clustered_boxes, uniform_boxes
from repro.datasets.transform import inflate
from repro.geometry.mbr import MBR
from repro.geometry.objects import box_object, point_object
from repro.joins.registry import make_algorithm
from repro.partition import TwoLayerJoin, class_label, full_mask, mini_join_masks
from repro.validation import assert_matches_ground_truth


class TestClassAlgebra:
    def test_full_mask(self):
        assert full_mask(1) == 0b1
        assert full_mask(2) == 0b11
        assert full_mask(3) == 0b111
        with pytest.raises(ValueError):
            full_mask(0)

    def test_mini_join_matrix_sizes(self):
        # 3 of 4 combinations on one axis, 9 of 16 on two, 27 of 64 on three.
        assert len(mini_join_masks(1)) == 3
        assert len(mini_join_masks(2)) == 9
        assert len(mini_join_masks(3)) == 27

    def test_mini_join_matrix_2d_contents(self):
        combos = set(mini_join_masks(2))
        a, b, c, d = 0b11, 0b10, 0b01, 0b00
        assert combos == {
            (a, a), (a, b), (b, a), (a, c), (c, a), (a, d), (d, a), (b, c), (c, b)
        }
        # The disallowed combos: both sides began earlier on some axis.
        assert (b, b) not in combos and (c, c) not in combos
        assert (d, d) not in combos and (b, d) not in combos

    def test_class_labels_2d(self):
        assert class_label(0b11, 2) == "A"
        assert class_label(0b10, 2) == "B"
        assert class_label(0b01, 2) == "C"
        assert class_label(0b00, 2) == "D"


class TestConfiguration:
    def test_validation(self):
        with pytest.raises(ValueError, match="at most one"):
            TwoLayerJoin(resolution=10, cell_size=1.0)
        with pytest.raises(ValueError, match=">= 1"):
            TwoLayerJoin(resolution=0)
        with pytest.raises(ValueError, match="positive"):
            TwoLayerJoin(cell_size=-1.0)
        with pytest.raises(ValueError, match="kernel"):
            TwoLayerJoin(local_kernel="bogus")
        # The grid kernel dedups internally with reference-point tests,
        # which would silently break the dedup_checks == 0 guarantee.
        with pytest.raises(ValueError, match="reference-point"):
            TwoLayerJoin(local_kernel="grid")

    def test_display_names(self):
        assert TwoLayerJoin(resolution=500).name == "TwoLayer-500"
        assert TwoLayerJoin(cell_size=2.0).name == "TwoLayer-500"
        assert TwoLayerJoin(cell_size=10.0).name == "TwoLayer-100"
        assert TwoLayerJoin(cell_size=3.0).name == "TwoLayer-cell3"
        assert TwoLayerJoin().name == "TwoLayer-100"

    def test_describe(self):
        info = TwoLayerJoin(resolution=42, local_kernel="nested").describe()
        assert info["resolution"] == 42
        assert info["local_kernel"] == "nested"


@pytest.mark.parametrize("backend", ["object", "columnar"])
class TestCorrectness:
    def test_uniform_2d(self, backend):
        if backend == "columnar":
            pytest.importorskip("numpy")
        a = uniform_boxes(60, seed=71, dim=2, side_range=(0.0, 30.0))
        b = uniform_boxes(150, seed=72, dim=2, side_range=(0.0, 30.0))
        result = TwoLayerJoin(cell_size=40.0, backend=backend).join(a, b)
        assert_matches_ground_truth(result, a, b)
        assert result.stats.dedup_checks == 0
        assert result.stats.duplicates_suppressed == 0

    def test_clustered_3d_with_inflation(self, backend):
        if backend == "columnar":
            pytest.importorskip("numpy")
        a = inflate(clustered_boxes(50, seed=73, n_clusters=4), 25.0)
        b = clustered_boxes(140, seed=74, n_clusters=4)
        result = TwoLayerJoin(cell_size=60.0, backend=backend).join(list(a), list(b))
        assert_matches_ground_truth(result, list(a), list(b))
        assert result.stats.dedup_checks == 0

    def test_zero_extent_objects_on_tile_corners(self, backend):
        if backend == "columnar":
            pytest.importorskip("numpy")
        # resolution 4 over [0, 10]: tile edges at 2.5, 5.0, 7.5 — every
        # point object sits exactly on a tile corner or edge.
        universe = MBR((0.0, 0.0), (10.0, 10.0))
        a = [box_object(0, (0.0, 0.0), (10.0, 10.0)), point_object(1, (5.0, 5.0))]
        b = [
            point_object(j, (2.5 * (j % 5), 2.5 * (j // 5)))
            for j in range(25)
        ]
        result = TwoLayerJoin(
            resolution=4, universe=universe, backend=backend
        ).join(a, b)
        assert_matches_ground_truth(result, a, b)
        assert result.stats.dedup_checks == 0

    def test_objects_spanning_whole_tile_rows(self, backend):
        if backend == "columnar":
            pytest.importorskip("numpy")
        a = [box_object(i, (0.0, 2.0 * i), (10.0, 2.0 * i + 3.0)) for i in range(5)]
        b = [box_object(j, (1.0 * j, 0.0), (1.0 * j + 0.5, 10.0)) for j in range(10)]
        result = TwoLayerJoin(resolution=5, backend=backend).join(a, b)
        assert_matches_ground_truth(result, a, b)
        assert result.stats.dedup_checks == 0

    def test_objects_outside_fixed_universe(self, backend):
        if backend == "columnar":
            pytest.importorskip("numpy")
        # Objects entirely outside / straddling a fixed universe clamp
        # into the edge tiles identically on both backends.
        universe = MBR((0.0, 0.0), (10.0, 10.0))
        a = [
            box_object(0, (-5.0, -5.0), (-1.0, -1.0)),   # fully outside (low)
            box_object(1, (12.0, 3.0), (1e19, 4.0)),     # fully outside (high, huge)
            box_object(2, (-2.0, 4.0), (3.0, 6.0)),      # straddling
        ]
        b = [
            box_object(0, (-4.0, -4.0), (-2.0, -2.0)),
            box_object(1, (14.0, 3.5), (1e19, 3.8)),
            box_object(2, (1.0, 5.0), (2.0, 5.5)),
        ]
        result = TwoLayerJoin(
            resolution=5, universe=universe, backend=backend
        ).join(a, b)
        assert_matches_ground_truth(result, a, b)
        assert result.stats.dedup_checks == 0

    def test_empty_sides(self, backend):
        a = uniform_boxes(10, seed=75, dim=2)
        assert TwoLayerJoin(backend=backend).join([], a).pairs == []
        assert TwoLayerJoin(backend=backend).join(a, []).pairs == []
        assert TwoLayerJoin(backend=backend).join([], []).pairs == []


class TestBackendParity:
    def test_pair_sets_and_replication_agree(self):
        pytest.importorskip("numpy")
        a = uniform_boxes(70, seed=76, dim=2, side_range=(0.0, 25.0))
        b = uniform_boxes(160, seed=77, dim=2, side_range=(0.0, 25.0))
        results = {
            backend: TwoLayerJoin(cell_size=30.0, backend=backend).join(a, b)
            for backend in ("object", "columnar")
        }
        assert (
            results["object"].sorted_pairs() == results["columnar"].sorted_pairs()
        )
        assert (
            results["object"].stats.replicated_entries
            == results["columnar"].stats.replicated_entries
        )
        for result in results.values():
            assert result.stats.dedup_checks == 0

    def test_registry_against_pbsm(self):
        a = uniform_boxes(60, seed=78, dim=2, side_range=(0.0, 20.0))
        b = uniform_boxes(140, seed=79, dim=2, side_range=(0.0, 20.0))
        for name in ("TwoLayer-500", "TwoLayer-100"):
            two_layer = make_algorithm(name).join(a, b)
            pbsm = make_algorithm(name.replace("TwoLayer", "PBSM")).join(a, b)
            assert two_layer.sorted_pairs() == pbsm.sorted_pairs()
            assert two_layer.stats.dedup_checks == 0
            assert pbsm.stats.dedup_checks > 0  # the machinery being replaced


class TestClassifiedEntries:
    def test_columnar_masks_match_object_classification(self):
        np = pytest.importorskip("numpy")
        from repro.geometry.columnar import CoordinateTable
        from repro.grid.columnar import ColumnarGrid
        from repro.grid.uniform import UniformGrid

        boxes = uniform_boxes(50, seed=80, dim=2, side_range=(0.0, 35.0))
        universe = MBR((0.0, 0.0), (1000.0, 1000.0))
        object_grid = UniformGrid(universe, resolution=10)
        grid = ColumnarGrid(
            np.array(universe.lo), np.array(universe.hi), resolution=10
        )
        table = CoordinateTable.from_objects(boxes)
        obj_idx, keys, masks = grid.entries(table, with_class_masks=True)
        expected = {}
        for i, obj in enumerate(boxes):
            ranges = object_grid.index_ranges(obj.mbr)
            for coords in object_grid.cells_overlapping(obj.mbr):
                mask = 0
                for d, (lo, _hi) in enumerate(ranges):
                    if coords[d] == lo:
                        mask |= 1 << d
                key = sum(
                    c * r for c, r in zip(coords, grid._radix.tolist())
                )
                expected[(i, key)] = mask
        assert len(obj_idx) == len(expected)
        for i, key, mask in zip(obj_idx.tolist(), keys.tolist(), masks.tolist()):
            assert expected[(i, key)] == mask

    def test_exactly_one_home_tile_per_object(self):
        np = pytest.importorskip("numpy")
        from repro.geometry.columnar import CoordinateTable
        from repro.grid.columnar import ColumnarGrid

        boxes = uniform_boxes(80, seed=81, dim=3, side_range=(0.0, 80.0))
        table = CoordinateTable.from_objects(boxes)
        grid = ColumnarGrid(
            np.zeros(3), np.full(3, 1000.0), resolution=8
        )
        obj_idx, _keys, masks = grid.entries(table, with_class_masks=True)
        home = obj_idx[masks == full_mask(3)]
        assert sorted(home.tolist()) == list(range(len(boxes)))
