"""Synthetic dataset generators: paper §6.2 parameters and invariants."""

import pytest

from repro.datasets.synthetic import (
    DISTRIBUTIONS,
    SPACE_UNITS,
    clustered_boxes,
    gaussian_boxes,
    make_distribution,
    uniform_boxes,
)


@pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
class TestCommonInvariants:
    def test_count_and_ids(self, name):
        dataset = make_distribution(name, 50, seed=1)
        assert len(dataset) == 50
        assert [o.oid for o in dataset] == list(range(50))

    def test_objects_inside_universe(self, name):
        dataset = make_distribution(name, 200, seed=2)
        universe = dataset.universe
        for obj in dataset:
            assert universe.contains(obj.mbr)

    def test_side_lengths_in_range(self, name):
        dataset = make_distribution(name, 200, seed=3)
        for obj in dataset:
            for side in obj.mbr.side_lengths():
                assert 0.0 <= side <= 1.0

    def test_reproducible_with_seed(self, name):
        first = make_distribution(name, 30, seed=7)
        second = make_distribution(name, 30, seed=7)
        assert [o.mbr for o in first] == [o.mbr for o in second]

    def test_different_seeds_differ(self, name):
        first = make_distribution(name, 30, seed=7)
        second = make_distribution(name, 30, seed=8)
        assert [o.mbr for o in first] != [o.mbr for o in second]

    def test_metadata_recorded(self, name):
        dataset = make_distribution(name, 10, seed=9)
        assert dataset.metadata["distribution"] == name
        assert dataset.metadata["n"] == 10


class TestDistributionShapes:
    def test_universe_is_paper_space(self):
        dataset = uniform_boxes(10, seed=1)
        assert dataset.universe.hi == (SPACE_UNITS,) * 3

    def test_2d_generation(self):
        dataset = uniform_boxes(20, seed=1, dim=2)
        assert dataset.dim == 2

    def test_gaussian_concentrates_in_center(self):
        """μ=500, σ=250: the central octant must be over-represented."""
        dataset = gaussian_boxes(2000, seed=4)
        inner = sum(
            1
            for o in dataset
            if all(250.0 <= c <= 750.0 for c in o.mbr.center())
        )
        uniform_inner = sum(
            1
            for o in uniform_boxes(2000, seed=4)
            if all(250.0 <= c <= 750.0 for c in o.mbr.center())
        )
        assert inner > uniform_inner * 1.5

    def test_gaussian_sigma_controls_spread(self):
        tight = gaussian_boxes(1000, seed=5, sigma=50.0)
        wide = gaussian_boxes(1000, seed=5, sigma=400.0)

        def spread(dataset):
            centers = [o.mbr.center() for o in dataset]
            mean = [sum(c[d] for c in centers) / len(centers) for d in range(3)]
            return sum(
                sum((c[d] - mean[d]) ** 2 for d in range(3)) for c in centers
            )

        assert spread(tight) < spread(wide)

    def test_clustered_rejects_bad_cluster_count(self):
        with pytest.raises(ValueError, match="n_clusters"):
            clustered_boxes(10, n_clusters=0)

    def test_clustered_with_one_tight_cluster(self):
        dataset = clustered_boxes(500, seed=6, n_clusters=1, cluster_sigma=10.0)
        centers = [o.mbr.center() for o in dataset]
        mean = [sum(c[d] for c in centers) / len(centers) for d in range(3)]
        # Nearly all mass within ~4 sigma of the single cluster centre.
        near = sum(
            1
            for c in centers
            if all(abs(c[d] - mean[d]) < 40.0 for d in range(3))
        )
        assert near > 450

    def test_selectivity_ordering_matches_table1(self):
        """Skew raises selectivity: Gaussian clearly beats uniform.

        The full Table 1 ordering (gaussian > clustered > uniform) is
        asserted by the `table1` experiment at bench scale, where counts
        are large enough to be outside Poisson noise; at unit-test sizes
        only the widest gap is statistically stable.
        """
        from repro.datasets.transform import inflate
        from repro.joins.plane_sweep import PlaneSweepJoin

        counts = {}
        for name in ("uniform", "gaussian"):
            a = inflate(make_distribution(name, 2000, seed=10), 25.0)
            b = make_distribution(name, 6000, seed=11)
            counts[name] = len(PlaneSweepJoin().join(a, b).pairs)
        assert counts["gaussian"] > counts["uniform"]

    def test_unknown_distribution(self):
        with pytest.raises(KeyError, match="unknown distribution"):
            make_distribution("zipfian", 10)
