"""The query service: cache semantics, concurrency, parity, driver, CLI."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.bench.runner import run_algorithm
from repro.datasets.base import Dataset
from repro.datasets.synthetic import uniform_boxes
from repro.geometry.columnar import HAVE_NUMPY
from repro.geometry.mbr import MBR
from repro.joins.registry import available, make_algorithm
from repro.service import (
    IndexCache,
    IndexKey,
    SpatialQueryService,
    dataset_fingerprint,
    default_service,
    probe_batches,
    reset_default_service,
    run_serve_workload,
)

EPS = 2.5


@pytest.fixture(scope="module")
def pair():
    return (
        uniform_boxes(120, seed=71, space=40.0),
        uniform_boxes(300, seed=72, space=40.0),
    )


def expected_pairs(pair, algorithm="TOUCH", **overrides):
    a, b = pair
    build = [obj.inflated(EPS) for obj in a]
    return make_algorithm(algorithm, **overrides).join(build, list(b)).pair_set()


class TestFingerprint:
    def test_deterministic_and_order_sensitive(self, pair):
        a, _ = pair
        objects = list(a)
        assert dataset_fingerprint(objects) == dataset_fingerprint(list(a))
        assert dataset_fingerprint(objects) != dataset_fingerprint(objects[::-1])
        assert dataset_fingerprint(objects[:-1]) != dataset_fingerprint(objects)

    def test_wrapper_independent(self, pair):
        a, _ = pair
        assert dataset_fingerprint(a) == dataset_fingerprint(tuple(a))

    def test_empty_dataset(self):
        assert isinstance(dataset_fingerprint([]), str)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs both paths to compare")
    def test_pure_python_fallback_matches_columnar_digest(self, pair, monkeypatch):
        """Without numpy the struct-packed stream must digest identically."""
        import repro.service.fingerprint as fp

        a, _ = pair
        with_numpy = dataset_fingerprint(list(a))
        monkeypatch.setattr(fp, "HAVE_NUMPY", False)
        assert fp.dataset_fingerprint(list(a)) == with_numpy


class TestIndexCache:
    @staticmethod
    def key(tag: str) -> IndexKey:
        return IndexKey.create(tag, "TOUCH", {}, None, 5.0)

    @staticmethod
    def build(tag: str):
        algorithm = make_algorithm("NL")
        return algorithm.prepare([])

    def test_lru_eviction_order(self):
        cache = IndexCache(capacity=2)
        for tag in ("a", "b"):
            cache.get_or_build(self.key(tag), lambda: self.build(tag))
        # Touch "a" so "b" becomes the LRU victim.
        assert cache.get(self.key("a")) is not None
        cache.get_or_build(self.key("c"), lambda: self.build("c"))
        assert cache.get(self.key("b")) is None  # evicted
        assert cache.get(self.key("a")) is not None
        assert cache.get(self.key("c")) is not None
        assert cache.stats()["evictions"] == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            IndexCache(capacity=0)

    def test_backend_is_part_of_the_key(self):
        assert IndexKey.create("f", "TOUCH", {}, "object", 5.0) != IndexKey.create(
            "f", "TOUCH", {}, "columnar", 5.0
        )
        # backend inside config is normalised out, never silently ignored
        assert IndexKey.create(
            "f", "TOUCH", {"backend": "object"}, "object", 5.0
        ) == IndexKey.create("f", "TOUCH", {}, "object", 5.0)

    def test_put_keys_and_clear(self):
        cache = IndexCache(capacity=2)
        cache.put(self.key("a"), self.build("a"))
        cache.put(self.key("b"), self.build("b"))
        assert cache.keys() == [self.key("a"), self.key("b")]
        assert len(cache) == 2
        # Re-putting refreshes recency like a hit would.
        cache.put(self.key("a"), self.build("a"))
        assert cache.keys() == [self.key("b"), self.key("a")]
        cache.clear()
        assert len(cache) == 0
        assert cache.get(self.key("a")) is None

    def test_failed_build_releases_the_key(self):
        """Regression: a raising builder must not leak its per-key build
        lock, and a retry must be able to build (and cache) normally."""
        cache = IndexCache(capacity=2)
        for _ in range(3):
            with pytest.raises(RuntimeError, match="boom"):
                cache.get_or_build(
                    self.key("a"), lambda: (_ for _ in ()).throw(RuntimeError("boom"))
                )
        assert not cache._building
        built, warm = cache.get_or_build(self.key("a"), lambda: self.build("a"))
        assert built is not None and warm is False

    def test_get_or_build_builds_once(self):
        cache = IndexCache(capacity=2)
        calls = []

        def builder():
            calls.append(1)
            return self.build("a")

        _, warm_first = cache.get_or_build(self.key("a"), builder)
        _, warm_second = cache.get_or_build(self.key("a"), builder)
        assert (warm_first, warm_second) == (False, True)
        assert len(calls) == 1


class TestServiceSemantics:
    def test_warm_and_cold_queries(self, pair):
        a, b = pair
        service = SpatialQueryService(capacity=4)
        service.register("neurons", a)
        expected = expected_pairs(pair)
        cold = service.query("neurons", b, EPS)
        warm = service.query("neurons", b, EPS)
        assert cold.parameters["cache"] == "cold"
        assert warm.parameters["cache"] == "warm"
        assert cold.pair_set() == warm.pair_set() == expected
        stats = service.stats()
        assert stats["queries"] == 2
        assert stats["warm_hits"] == 1
        assert stats["cold_builds"] == 1

    def test_unknown_dataset_name(self):
        service = SpatialQueryService()
        with pytest.raises(KeyError, match="unknown dataset"):
            service.query("nope", [], EPS)

    def test_negative_epsilon_rejected(self, pair):
        a, b = pair
        service = SpatialQueryService()
        with pytest.raises(ValueError, match="epsilon"):
            service.query(list(a), b, -1.0)

    def test_adhoc_dataset_and_dataset_wrapper(self, pair):
        a, b = pair
        service = SpatialQueryService()
        result = service.query(list(a), Dataset(list(b), name="probe"), EPS)
        assert result.pair_set() == expected_pairs(pair)

    def test_config_change_misses_the_cache(self, pair):
        a, b = pair
        service = SpatialQueryService(capacity=4)
        service.register("d", a)
        service.query("d", b, EPS, algorithm="TOUCH")
        fanout = service.query("d", b, EPS, algorithm="TOUCH", fanout=4)
        assert fanout.parameters["cache"] == "cold"
        other_eps = service.query("d", b, 2 * EPS, algorithm="TOUCH")
        assert other_eps.parameters["cache"] == "cold"
        again = service.query("d", b, EPS, algorithm="TOUCH")
        assert again.parameters["cache"] == "warm"
        assert service.stats()["cold_builds"] == 3

    @pytest.mark.skipif(not HAVE_NUMPY, reason="both backends require numpy")
    def test_backend_change_misses_the_cache(self, pair):
        a, b = pair
        service = SpatialQueryService(capacity=4)
        service.register("d", a)
        first = service.query("d", b, EPS, backend="object")
        second = service.query("d", b, EPS, backend="columnar")
        assert first.parameters["cache"] == "cold"
        assert second.parameters["cache"] == "cold"
        assert first.pair_set() == second.pair_set()

    def test_lru_eviction_through_the_service(self, pair):
        a, b = pair
        service = SpatialQueryService(capacity=2)
        service.register("d", a)
        service.query("d", b, EPS, algorithm="TOUCH")
        service.query("d", b, EPS, algorithm="PBSM-500")
        service.query("d", b, EPS, algorithm="INL")  # evicts TOUCH
        evicted = service.query("d", b, EPS, algorithm="TOUCH")
        assert evicted.parameters["cache"] == "cold"
        assert service.stats()["evictions"] >= 2

    def test_register_returns_fingerprint_and_lists_datasets(self, pair):
        a, _ = pair
        service = SpatialQueryService()
        fingerprint = service.register("d", a)
        assert fingerprint == dataset_fingerprint(list(a))
        assert service.datasets() == {"d": len(a)}

    @pytest.mark.parametrize(
        "algorithm",
        sorted(info.name for info in available() if info.prepare_aware),
    )
    def test_parity_per_algorithm(self, algorithm, pair):
        a, b = pair
        service = SpatialQueryService()
        service.register("d", a)
        result = service.query("d", b, EPS, algorithm=algorithm)
        assert result.pair_set() == expected_pairs(pair, algorithm)

    def test_concurrent_probes_identical(self, pair):
        a, b = pair
        service = SpatialQueryService(capacity=4)
        service.register("d", a)
        expected = expected_pairs(pair)
        batches = [list(b)[i::4] for i in range(4)]

        def worker(seed: int):
            out = set()
            for batch in batches:
                out |= service.query("d", batch, EPS).pair_set()
            return frozenset(out)

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(worker, range(6)))
        assert all(result == expected for result in results)
        # All threads raced the same key: the index was built exactly once.
        assert service.stats()["cold_builds"] == 1

    def test_probe_mbrs_batch(self, pair):
        a, _ = pair
        service = SpatialQueryService()
        service.register("d", a)
        queries = [
            MBR((0.0, 0.0, 0.0), (8.0, 8.0, 8.0)),
            MBR((30.0, 30.0, 30.0), (31.0, 31.0, 31.0)),
            MBR((-90.0, -90.0, -90.0), (-89.0, -89.0, -89.0)),
        ]
        result = service.probe_mbrs("d", queries, EPS)
        build = [obj.inflated(EPS) for obj in a]
        expected = set()
        for position, query in enumerate(queries):
            for obj in build:
                if obj.mbr.intersects(query):
                    expected.add((obj.oid, position))
        assert result.pair_set() == expected

    def test_probe_mbrs_requires_queries(self, pair):
        a, _ = pair
        service = SpatialQueryService()
        with pytest.raises(ValueError, match="at least one"):
            service.probe_mbrs(list(a), [], EPS)

    def test_default_service_is_a_singleton(self):
        reset_default_service()
        assert default_service() is default_service()
        reset_default_service()


class TestRunAlgorithmReuse:
    def test_reuse_index_records_cache_state(self, pair):
        a, b = pair
        service = SpatialQueryService(capacity=4)
        plain = run_algorithm("TOUCH", list(a), list(b), EPS)
        cold = run_algorithm("TOUCH", list(a), list(b), EPS, reuse_index=service)
        warm = run_algorithm("TOUCH", list(a), list(b), EPS, reuse_index=service)
        assert cold.extra["cache"] == "cold"
        assert warm.extra["cache"] == "warm"
        assert cold.result_pairs == warm.result_pairs == plain.result_pairs

    def test_reuse_index_true_uses_default_service(self, pair):
        a, b = pair
        reset_default_service()
        try:
            cold = run_algorithm("TOUCH", list(a), list(b), EPS, reuse_index=True)
            warm = run_algorithm("TOUCH", list(a), list(b), EPS, reuse_index=True)
            assert (cold.extra["cache"], warm.extra["cache"]) == ("cold", "warm")
        finally:
            reset_default_service()

    def test_reuse_index_rejects_workers(self, pair):
        a, b = pair
        with pytest.raises(ValueError, match="reuse_index"):
            run_algorithm("TOUCH", list(a), list(b), EPS, workers=2, reuse_index=True)


class TestDriver:
    def test_probe_batches_shapes(self, pair):
        _, b = pair
        batches = probe_batches(list(b), probes=7)
        assert len(batches) == 7
        assert all(batches)
        wrapped = probe_batches(list(b)[:5], probes=3, batch=4)
        assert all(len(chunk) == 4 for chunk in wrapped)

    def test_probe_batches_validation(self, pair):
        _, b = pair
        with pytest.raises(ValueError, match="empty"):
            probe_batches([], probes=2)
        with pytest.raises(ValueError, match="probes"):
            probe_batches(list(b), probes=0)
        with pytest.raises(ValueError, match="batch"):
            probe_batches(list(b), probes=2, batch=0)

    def test_run_serve_workload_with_rebuild_parity(self, pair):
        a, b = pair
        summary = run_serve_workload(
            list(a), list(b), EPS, probes=5, compare_rebuild=True
        )
        assert summary["parity"] is True
        assert summary["cold_queries"] == 1
        assert summary["warm_queries"] == 4
        assert summary["result_pairs"] == summary["rebuild_pairs"]
        assert summary["speedup"] > 0


class TestServeCli:
    def test_serve_subcommand(self, capsys):
        from repro.bench.cli import main

        assert main(["serve", "--scale", "smoke", "--probes", "5"]) == 0
        out = capsys.readouterr().out
        assert "query service" in out
        assert "5 query batches" in out

    def test_serve_compare_rebuild_and_json(self, tmp_path, capsys):
        import json

        from repro.bench.cli import main

        target = tmp_path / "serve.json"
        assert (
            main(
                [
                    "serve",
                    "--scale",
                    "smoke",
                    "--probes",
                    "4",
                    "--algorithm",
                    "TwoLayer-500",
                    "--compare-rebuild",
                    "--json",
                    str(target),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "speedup" in out
        payload = json.loads(target.read_text())
        assert payload["parity"] is True
        assert payload["probes"] == 4
