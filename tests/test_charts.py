"""ASCII chart renderer for the paper's figures."""

import pytest

from repro.bench.charts import chart_for_experiment, render_chart


@pytest.fixture
def two_series():
    return {
        "TOUCH": [(1, 0.1), (2, 0.2), (3, 0.4)],
        "PBSM-500": [(1, 1.0), (2, 2.0), (3, 4.0)],
    }


class TestRenderChart:
    def test_contains_markers_and_legend(self, two_series):
        chart = render_chart(two_series)
        assert "o=PBSM-500" in chart
        assert "x=TOUCH" in chart
        assert "log10(y)" in chart

    def test_linear_mode(self, two_series):
        chart = render_chart(two_series, log_y=False)
        assert "[y]" in chart

    def test_empty_series(self):
        assert render_chart({}) == "(no data to chart)"

    def test_nonpositive_dropped_in_log_mode(self):
        chart = render_chart({"A": [(1, 0.0), (2, 10.0)]})
        assert "(no data" not in chart

    def test_all_nonpositive_log(self):
        assert render_chart({"A": [(1, 0.0)]}) == "(no data to chart)"

    def test_title_rendered(self, two_series):
        assert render_chart(two_series, title="Figure 9b").startswith("Figure 9b")

    def test_single_point(self):
        chart = render_chart({"A": [(5, 3.0)]})
        assert "o=A" in chart

    def test_dimensions_respected(self, two_series):
        chart = render_chart(two_series, width=20, height=5)
        plot_lines = [line for line in chart.splitlines() if "|" in line]
        assert len(plot_lines) == 5


class TestChartForExperiment:
    def test_groups_rows(self):
        rows = [
            {"algorithm": "TOUCH", "n_b": 100, "total_seconds": 0.5},
            {"algorithm": "TOUCH", "n_b": 200, "total_seconds": 0.9},
            {"algorithm": "S3", "n_b": 100, "total_seconds": 2.0},
        ]
        chart = chart_for_experiment(rows, title="t")
        assert "TOUCH" in chart and "S3" in chart

    def test_cli_chart_flag(self, capsys):
        from repro.bench.cli import main

        assert main(["run", "fig13", "--scale", "smoke", "--chart", "filtered"]) == 0
        out = capsys.readouterr().out
        assert "filtered" in out
