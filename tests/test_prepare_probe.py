"""The build/probe lifecycle: parity, reuse, immutability, fallbacks."""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import clustered_boxes, uniform_boxes
from repro.geometry.columnar import HAVE_NUMPY
from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject
from repro.joins.base import BuiltIndex, SpatialJoinAlgorithm
from repro.joins.registry import ALGORITHMS, available, make_algorithm

#: Algorithms with a genuinely reusable index.
PREPARE_AWARE = ("PBSM-500", "PBSM-100", "TwoLayer-500", "TwoLayer-100", "INL", "RTree", "TOUCH")

#: The backend-aware subset of the above.
PREPARE_BACKENDS = ("TOUCH", "TwoLayer-500", "PBSM-500")

EPS = 2.5


@pytest.fixture(scope="module")
def workload():
    a = uniform_boxes(150, seed=41, space=50.0)
    b = clustered_boxes(400, seed=42, space=50.0, n_clusters=8)
    build = [obj.inflated(EPS) for obj in a]
    return build, list(b)


def reference_pairs(name: str, build, probe, **overrides):
    return make_algorithm(name, **overrides).join(build, probe).pair_set()


class TestRegistry:
    def test_prepare_aware_names(self):
        aware = {info.name for info in available() if info.prepare_aware}
        assert aware == set(PREPARE_AWARE)

    def test_every_algorithm_supports_the_lifecycle(self, workload):
        build, probe = workload
        for name in ALGORITHMS:
            algorithm = make_algorithm(name)
            built = algorithm.prepare(build)
            assert isinstance(built, BuiltIndex)
            assert built.n_build == len(build)
            assert built.reusable == algorithm.supports_prepare()


class TestParity:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_probe_matches_one_shot_join(self, name, workload):
        build, probe = workload
        expected = reference_pairs(name, build, probe)
        algorithm = make_algorithm(name)
        built = algorithm.prepare(build)
        assert algorithm.probe(built, probe).pair_set() == expected

    @pytest.mark.parametrize("name", PREPARE_BACKENDS)
    @pytest.mark.parametrize("backend", ["object", "columnar"])
    def test_backends_agree(self, name, backend, workload):
        if backend == "columnar" and not HAVE_NUMPY:
            pytest.skip("columnar backend requires numpy")
        build, probe = workload
        expected = reference_pairs(name, build, probe, backend=backend)
        algorithm = make_algorithm(name, backend=backend)
        built = algorithm.prepare(build)
        result = algorithm.probe(built, probe)
        assert result.pair_set() == expected
        assert result.stats.result_pairs == len(result.pairs)

    @pytest.mark.parametrize("name", PREPARE_AWARE)
    def test_repeated_probes_identical(self, name, workload):
        """The index must not be mutated by probing."""
        build, probe = workload
        algorithm = make_algorithm(name)
        built = algorithm.prepare(build)
        first = algorithm.probe(built, probe).pair_set()
        for _ in range(3):
            assert algorithm.probe(built, probe).pair_set() == first

    @pytest.mark.parametrize("name", PREPARE_AWARE)
    def test_probe_batches_union_to_full_join(self, name, workload):
        """Disjoint probe batches together cover the one-shot result."""
        build, probe = workload
        expected = reference_pairs(name, build, probe)
        algorithm = make_algorithm(name)
        built = algorithm.prepare(build)
        union = set()
        step = 50
        for start in range(0, len(probe), step):
            union |= algorithm.probe(built, probe[start : start + step]).pair_set()
        assert union == expected

    @pytest.mark.parametrize("name", PREPARE_AWARE)
    def test_probe_objects_outside_build_universe(self, name, workload):
        """Grid universes are fixed at build time; outliers must clamp."""
        build, _ = workload
        outliers = [
            SpatialObject(900, MBR((-40.0, -40.0, -40.0), (-39.0, -39.0, -39.0))),
            SpatialObject(901, MBR((200.0, 200.0, 200.0), (201.0, 202.0, 203.0))),
            # Row spanner: crosses the whole universe on one axis.
            SpatialObject(902, MBR((-10.0, 20.0, 20.0), (90.0, 21.0, 21.0))),
            SpatialObject(903, MBR((10.0, 10.0, 10.0), (11.0, 11.0, 11.0))),
        ]
        expected = reference_pairs(name, build, outliers)
        algorithm = make_algorithm(name)
        built = algorithm.prepare(build)
        assert algorithm.probe(built, outliers).pair_set() == expected


class TestEdgeCases:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_empty_sides(self, name, workload):
        build, probe = workload
        algorithm = make_algorithm(name)
        assert algorithm.probe(algorithm.prepare([]), probe).pairs == []
        built = algorithm.prepare(build)
        assert algorithm.probe(built, []).pairs == []

    def test_probe_rejects_foreign_index(self, workload):
        build, probe = workload
        built = make_algorithm("TOUCH").prepare(build)
        with pytest.raises(ValueError, match="prepared by"):
            make_algorithm("PBSM-500").probe(built, probe)

    def test_fallback_is_marked_non_reusable(self, workload):
        build, _ = workload
        algorithm = make_algorithm("NL")
        assert not algorithm.supports_prepare()
        assert not algorithm.prepare(build).reusable

    @pytest.mark.skipif(not HAVE_NUMPY, reason="coordinate tables require numpy")
    @pytest.mark.parametrize("name", ["TOUCH", "TwoLayer-500", "PBSM-500", "NL"])
    def test_probe_with_coordinate_table(self, name, workload):
        """Raw MBR tables probe identically to the equivalent objects."""
        from repro.geometry.columnar import CoordinateTable

        build, probe = workload
        queries = probe[:60]
        table = CoordinateTable.from_objects(queries)
        algorithm = make_algorithm(name)
        built = algorithm.prepare(build)
        assert (
            algorithm.probe(built, table).pair_set()
            == algorithm.probe(built, queries).pair_set()
        )

    def test_probe_parameters_report_lifecycle(self, workload):
        build, probe = workload
        algorithm = make_algorithm("TOUCH")
        built = algorithm.prepare(build)
        result = algorithm.probe(built, probe)
        assert result.parameters["lifecycle"] == "probe"
        assert result.parameters["n_build"] == len(build)


class TestTwoLayerProbeInvariants:
    @pytest.mark.parametrize("backend", ["object", "columnar"])
    def test_probe_performs_no_dedup_checks(self, backend, workload):
        """Duplicate-freedom by construction must survive the split."""
        if backend == "columnar" and not HAVE_NUMPY:
            pytest.skip("columnar backend requires numpy")
        build, probe = workload
        algorithm = make_algorithm("TwoLayer-500", backend=backend)
        built = algorithm.prepare(build)
        result = algorithm.probe(built, probe)
        assert result.stats.dedup_checks == 0
        assert len(result.pairs) == len(result.pair_set())


class TestBaseClassContract:
    def test_supports_prepare_detects_override(self):
        class Plain(SpatialJoinAlgorithm):
            name = "plain"

            def _execute(self, objects_a, objects_b, stats):
                return []

        class Split(Plain):
            name = "split"

            def _build(self, objects_a, stats):
                return objects_a

            def _probe(self, payload, objects_b, stats):
                return []

        assert not Plain.supports_prepare()
        assert Split.supports_prepare()
