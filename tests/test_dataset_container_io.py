"""Dataset container, binary IO and transformations."""

import pytest

from repro.datasets.base import Dataset
from repro.datasets.io import read_dataset, write_dataset
from repro.datasets.synthetic import uniform_boxes
from repro.datasets.transform import concat, inflate, reindexed, sample_fraction
from repro.geometry.mbr import MBR
from repro.geometry.objects import box_object


class TestDataset:
    def test_sequence_protocol(self):
        objs = [box_object(i, (i, i), (i + 1, i + 1)) for i in range(5)]
        dataset = Dataset(objs, name="five")
        assert len(dataset) == 5
        assert dataset[2].oid == 2
        assert [o.oid for o in dataset] == list(range(5))

    def test_slice_returns_dataset(self):
        objs = [box_object(i, (i, i), (i + 1, i + 1)) for i in range(5)]
        sliced = Dataset(objs)[1:3]
        assert isinstance(sliced, Dataset)
        assert len(sliced) == 2

    def test_universe_computed_lazily(self):
        objs = [box_object(0, (0, 0), (1, 1)), box_object(1, (4, 4), (5, 5))]
        dataset = Dataset(objs)
        assert dataset.universe == MBR((0, 0), (5, 5))

    def test_universe_declared_wins(self):
        universe = MBR((0, 0), (100, 100))
        dataset = Dataset([box_object(0, (1, 1), (2, 2))], universe=universe)
        assert dataset.universe is universe

    def test_empty_dataset_without_universe_raises(self):
        with pytest.raises(ValueError, match="empty"):
            Dataset([]).universe

    def test_take_and_renamed(self):
        dataset = uniform_boxes(20, seed=1)
        assert len(dataset.take(5)) == 5
        assert dataset.renamed("other").name == "other"

    def test_repr(self):
        assert "n=3" in repr(Dataset([box_object(i, (0,), (1,)) for i in range(3)], name="x"))


class TestBinaryIO:
    def test_roundtrip(self, tmp_path):
        original = uniform_boxes(100, seed=2)
        path = tmp_path / "data.bin"
        written = write_dataset(original, path)
        assert written == path.stat().st_size
        loaded = read_dataset(path)
        assert len(loaded) == 100
        assert [o.mbr for o in loaded] == [o.mbr for o in original]

    def test_roundtrip_2d(self, tmp_path):
        original = uniform_boxes(50, seed=3, dim=2)
        path = tmp_path / "data2d.bin"
        write_dataset(original, path)
        assert read_dataset(path).dim == 2

    def test_empty_dataset_roundtrip(self, tmp_path):
        path = tmp_path / "empty.bin"
        write_dataset(Dataset([], universe=MBR((0, 0), (1, 1))), path)
        # dim of an empty dataset comes from the universe; count is zero.
        loaded = read_dataset(path)
        assert len(loaded) == 0

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "axons.bin"
        write_dataset(uniform_boxes(3, seed=4), path)
        assert read_dataset(path).name == "axons"

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(ValueError, match="bad magic"):
            read_dataset(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"RP")
        with pytest.raises(ValueError, match="truncated header"):
            read_dataset(path)

    def test_truncated_payload_rejected(self, tmp_path):
        source = tmp_path / "full.bin"
        write_dataset(uniform_boxes(10, seed=5), source)
        clipped = tmp_path / "clipped.bin"
        clipped.write_bytes(source.read_bytes()[:-16])
        with pytest.raises(ValueError, match="truncated payload"):
            read_dataset(clipped)


class TestTransforms:
    def test_sample_fraction_size(self):
        dataset = uniform_boxes(100, seed=6)
        sample = sample_fraction(dataset, 0.25, seed=1)
        assert len(sample) == 25

    def test_sample_fraction_no_duplicates(self):
        dataset = uniform_boxes(100, seed=7)
        sample = sample_fraction(dataset, 0.5, seed=2)
        ids = [o.oid for o in sample]
        assert len(ids) == len(set(ids))

    def test_sample_fraction_bad_value(self):
        with pytest.raises(ValueError, match="fraction"):
            sample_fraction(uniform_boxes(10, seed=8), 1.5)

    def test_inflate_expands_everything(self):
        dataset = uniform_boxes(10, seed=9)
        fat = inflate(dataset, 3.0)
        for thin_obj, fat_obj in zip(dataset, fat):
            assert fat_obj.mbr == thin_obj.mbr.expand(3.0)
        assert fat.metadata["epsilon"] == 3.0

    def test_reindexed(self):
        dataset = uniform_boxes(5, seed=10)
        shifted = reindexed(dataset, start=100)
        assert [o.oid for o in shifted] == [100, 101, 102, 103, 104]

    def test_concat(self):
        first = uniform_boxes(5, seed=11)
        second = uniform_boxes(7, seed=12)
        merged = concat(first, second)
        assert len(merged) == 12
