"""PBSM-specific behaviour: multiple assignment, replication, dedup."""

import pytest

from repro.datasets.synthetic import uniform_boxes
from repro.datasets.transform import inflate
from repro.geometry.mbr import MBR
from repro.geometry.objects import box_object
from repro.joins.pbsm import PBSMJoin
from repro.validation import assert_matches_ground_truth


class TestConfiguration:
    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError, match=">= 1"):
            PBSMJoin(resolution=0)

    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            PBSMJoin(local_kernel="bogus")

    def test_name_includes_resolution(self):
        assert PBSMJoin(resolution=500).name == "PBSM-500"
        assert PBSMJoin(resolution=100).name == "PBSM-100"

    def test_cell_size_configuration_is_scale_invariant_naming(self):
        # The paper's configs expressed in cell units keep their names.
        assert PBSMJoin(cell_size=2.0).name == "PBSM-500"
        assert PBSMJoin(cell_size=10.0).name == "PBSM-100"

    def test_non_integer_cell_ratio_falls_back_to_cell_name(self):
        # 1000 / 3 = 333.333...: the old display name was the misleading
        # "PBSM-333.333"; now the literal cell size is shown instead.
        assert PBSMJoin(cell_size=3.0).name == "PBSM-cell3"
        assert PBSMJoin(cell_size=0.75).name == "PBSM-cell0.75"
        # Cells wider than the paper universe must not snap to "PBSM-0".
        assert PBSMJoin(cell_size=1e10).name == "PBSM-cell1e+10"

    def test_default_configuration_is_the_papers_500(self):
        # The documented contract: at most one of resolution/cell_size;
        # neither means the paper's resolution=500 default.
        joiner = PBSMJoin()
        assert joiner.resolution == 500
        assert joiner.cell_size is None
        assert joiner.name == "PBSM-500"

    def test_resolution_and_cell_size_exclusive(self):
        with pytest.raises(ValueError, match="at most one"):
            PBSMJoin(resolution=10, cell_size=1.0)

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError, match="positive"):
            PBSMJoin(cell_size=0.0)

    def test_cell_size_join_correct(self):
        a = uniform_boxes(40, seed=53, side_range=(0.0, 60.0))
        b = uniform_boxes(80, seed=54, side_range=(0.0, 60.0))
        result = PBSMJoin(cell_size=50.0).join(a, b)
        assert_matches_ground_truth(result, a, b)

    def test_describe(self):
        info = PBSMJoin(resolution=42, local_kernel="nested").describe()
        assert info == {
            "resolution": 42,
            "cell_size": None,
            "local_kernel": "nested",
            "backend": "auto",
        }


class TestReplication:
    def test_replication_counted(self):
        a = uniform_boxes(50, seed=41)
        b = uniform_boxes(100, seed=42)
        inflated = inflate(a, 10.0)  # inflated objects span many cells
        result = PBSMJoin(resolution=100).join(inflated, b)
        assert result.stats.replicated_entries > 0

    def test_finer_grid_replicates_more(self):
        a = inflate(uniform_boxes(50, seed=43), 10.0)
        b = uniform_boxes(100, seed=44)
        coarse = PBSMJoin(resolution=50).join(a, b)
        fine = PBSMJoin(resolution=400).join(a, b)
        assert fine.stats.replicated_entries > coarse.stats.replicated_entries
        assert fine.stats.memory_bytes > coarse.stats.memory_bytes

    def test_epsilon_superlinear_replication(self):
        """The Figure 12 effect: replication grows super-linearly in eps."""
        base = uniform_boxes(50, seed=45)
        b = uniform_boxes(100, seed=46)
        joiner = PBSMJoin(resolution=200)
        rep5 = joiner.join(inflate(base, 5.0), b).stats.replicated_entries
        rep10 = joiner.join(inflate(base, 10.0), b).stats.replicated_entries
        assert rep10 > 2 * rep5 * 0.8  # clearly super-linear territory


class TestDeduplication:
    def test_pair_spanning_many_cells_reported_once(self):
        # One huge object overlapping one huge object: hundreds of common
        # cells, exactly one result pair.
        a = [box_object(0, (0, 0), (900, 900))]
        b = [box_object(0, (100, 100), (800, 800))]
        result = PBSMJoin(resolution=30).join(a, b)
        assert result.pairs == [(0, 0)]
        assert result.stats.duplicates_suppressed > 0

    def test_correct_on_dense_overlapping_data(self):
        a = uniform_boxes(60, seed=47, side_range=(0.0, 120.0))
        b = uniform_boxes(120, seed=48, side_range=(0.0, 120.0))
        result = PBSMJoin(resolution=40).join(a, b)
        assert_matches_ground_truth(result, a, b)


class TestUniverseHandling:
    def test_explicit_universe(self):
        universe = MBR((0.0, 0.0, 0.0), (1000.0, 1000.0, 1000.0))
        a = uniform_boxes(40, seed=49)
        b = uniform_boxes(80, seed=50)
        result = PBSMJoin(resolution=50, universe=universe).join(a, b)
        assert_matches_ground_truth(result, a, b)

    def test_objects_outside_declared_universe_are_clamped(self):
        universe = MBR((0.0, 0.0), (10.0, 10.0))
        a = [box_object(0, (-5, -5), (-4, -4)), box_object(1, (1, 1), (2, 2))]
        b = [box_object(0, (-4.5, -4.5), (-4.2, -4.2)), box_object(1, (1.5, 1.5), (3, 3))]
        result = PBSMJoin(resolution=5, universe=universe).join(a, b)
        assert result.pair_set() == {(0, 0), (1, 1)}

    def test_resolution_one_degenerates_to_single_cell(self):
        a = uniform_boxes(30, seed=51)
        b = uniform_boxes(60, seed=52)
        result = PBSMJoin(resolution=1).join(a, b)
        assert_matches_ground_truth(result, a, b)
        assert result.stats.replicated_entries == 0
