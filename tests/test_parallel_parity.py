"""Deep parity/property suite: every engine returns the same join.

The contract pinned here, for every registered algorithm:

- **pair parity** — sequential, chunked (slabs and tiles) and the
  multiprocess engine at 1/2/4 workers, under both boundary-duplicate
  policies (``dedup="reference"`` and the duplicate-free two-layer
  ``dedup="partition"``), return identical *sorted pair sets* on
  uniform, gaussian (skewed) and clustered data;
- **counter parity** — for the same ``(kind, n_chunks, dedup)``
  configuration the multiprocess engine reports exactly the same summed
  comparison counters independent of the worker count (parallelism may
  change wall-clock, never work); ``dedup="reference"`` additionally
  matches the sequential chunked simulation;
- **degenerate inputs** — empty sides, every object inside one slab,
  objects spanning every slab boundary, and zero-extent MBRs sitting
  exactly on slab edges neither lose nor duplicate pairs.

The whole module is marked ``parallel`` so CI can run it standalone
(``pytest -m parallel``) on every supported Python version; the
``REPRO_PARITY_DEDUP`` environment variable restricts the engine runs
to one dedup policy so the CI matrix can split them across legs.
"""

import os
import random

import pytest

from repro.datasets.synthetic import clustered_boxes, gaussian_boxes, uniform_boxes
from repro.geometry.objects import SpatialObject, box_object, point_object
from repro.joins.registry import ALGORITHMS, BACKEND_AWARE, AlgorithmSpec
from repro.parallel.chunked import ChunkedSpatialJoin
from repro.parallel.engine import ParallelChunkedJoin
from repro.validation import assert_matches_ground_truth, brute_force_pairs

pytestmark = pytest.mark.parallel

N_CHUNKS = 4
WORKER_STEPS = (1, 2, 4)
KINDS = ("slabs", "tiles")

#: Engine dedup policies under test; REPRO_PARITY_DEDUP=<mode> narrows
#: the sweep to one of them (the CI matrix runs one leg per mode).  An
#: unknown value fails loudly — silently emptying the sweep would turn
#: the whole suite into a vacuous pass with zero engine coverage.
_DEDUP_ENV = os.environ.get("REPRO_PARITY_DEDUP")
if _DEDUP_ENV not in (None, "", "reference", "partition"):
    raise ValueError(
        f"REPRO_PARITY_DEDUP={_DEDUP_ENV!r}: expected 'reference' or 'partition'"
    )
DEDUP_MODES = tuple(
    mode for mode in ("reference", "partition") if _DEDUP_ENV in (None, "", mode)
)

#: Dense small workloads: every distribution the satellite asks for.
DATASETS = {
    "uniform": (
        uniform_boxes(60, seed=41, space=60.0, side_range=(0.0, 8.0)),
        uniform_boxes(150, seed=42, space=60.0, side_range=(0.0, 8.0)),
    ),
    "gaussian": (  # the skewed distribution (mass piles at the centre)
        gaussian_boxes(60, seed=43, space=60.0, side_range=(0.0, 8.0)),
        gaussian_boxes(150, seed=44, space=60.0, side_range=(0.0, 8.0)),
    ),
    "clustered": (
        clustered_boxes(60, seed=45, space=60.0, n_clusters=3, side_range=(0.0, 8.0)),
        clustered_boxes(150, seed=46, space=60.0, n_clusters=3, side_range=(0.0, 8.0)),
    ),
}


def engine_results(name: str, objects_a, objects_b, backend: str | None = None):
    """Run one algorithm through every engine; yield labelled results.

    The counter key groups runs whose summed work must be identical:
    chunked and the reference-dedup parallel engine share one key per
    decomposition kind, the partition-dedup engine (whose mini-join
    structure legitimately performs different work) gets its own.
    """
    overrides = {"backend": backend} if backend else {}
    spec = AlgorithmSpec.create(name, **overrides)
    yield "sequential", None, spec.make().join(objects_a, objects_b)
    for kind in KINDS:
        if "reference" in DEDUP_MODES:
            chunked = ChunkedSpatialJoin(spec, n_chunks=N_CHUNKS, kind=kind)
            yield (
                f"chunked:{kind}",
                f"{kind}:reference",
                chunked.join(objects_a, objects_b),
            )
        for workers in WORKER_STEPS:
            for dedup in DEDUP_MODES:
                parallel = ParallelChunkedJoin(
                    spec, workers=workers, n_chunks=N_CHUNKS, kind=kind, dedup=dedup
                )
                yield (
                    f"parallel:{kind}:{workers}w:{dedup}",
                    f"{kind}:{dedup}",
                    parallel.join(objects_a, objects_b),
                )
        # One forced-pickle run per (kind, dedup): the shared-memory
        # hand-off (the auto default above) and the pickled-buffer path
        # must produce byte-identical pairs and counters.
        for dedup in DEDUP_MODES:
            parallel = ParallelChunkedJoin(
                spec,
                workers=2,
                n_chunks=N_CHUNKS,
                kind=kind,
                dedup=dedup,
                handoff="pickle",
            )
            yield (
                f"parallel:{kind}:2w:{dedup}:pickle",
                f"{kind}:{dedup}",
                parallel.join(objects_a, objects_b),
            )


def assert_engine_parity(name: str, objects_a, objects_b, backend=None):
    """Pair parity vs sequential; counter parity within a configuration."""
    objects_a, objects_b = list(objects_a), list(objects_b)
    reference_pairs = None
    comparisons_by_key: dict[str, int] = {}
    for label, counter_key, result in engine_results(
        name, objects_a, objects_b, backend
    ):
        if reference_pairs is None:
            reference_pairs = result.sorted_pairs()
            assert sorted(brute_force_pairs(objects_a, objects_b)) == reference_pairs
            continue
        assert result.sorted_pairs() == reference_pairs, (
            f"{name} via {label}: pair set diverges from sequential"
        )
        expected = comparisons_by_key.setdefault(
            counter_key, result.stats.comparisons
        )
        assert result.stats.comparisons == expected, (
            f"{name} via {label}: summed comparisons {result.stats.comparisons} "
            f"!= {expected} of the first {counter_key} engine"
        )
        # Engine runs that resolved to the shm hand-off must not have
        # pickled a single coordinate buffer on the hot path.
        if result.stats.extra.get("handoff") == "shm":
            assert result.stats.extra.get("pickled_coord_bytes") == 0, (
                f"{name} via {label}: shm hand-off pickled coordinate buffers"
            )


class TestEveryAlgorithm:
    """All registered algorithms × all engines, uniform data."""

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_engine_parity(self, name):
        objects_a, objects_b = DATASETS["uniform"]
        assert_engine_parity(name, objects_a, objects_b)


class TestEveryBackend:
    """Backend-aware algorithms × both geometry backends × engines."""

    @pytest.mark.parametrize("name", sorted(BACKEND_AWARE))
    @pytest.mark.parametrize("backend", ["object", "columnar", "compiled"])
    def test_engine_parity(self, name, backend, monkeypatch):
        pytest.importorskip("numpy")
        objects_a, objects_b = DATASETS["uniform"]
        if backend != "compiled":
            assert_engine_parity(name, objects_a, objects_b, backend=backend)
            return
        # The compiled leg forces the tier on (numpy twins when numba
        # is absent).  Cached fork pools inherit the environment at
        # creation time, so recycle them on both sides of the run.
        from repro.parallel.engine import shutdown_pools

        shutdown_pools()
        monkeypatch.setenv("REPRO_COMPILED", "force")
        try:
            assert_engine_parity(name, objects_a, objects_b, backend=backend)
        finally:
            shutdown_pools()

    def test_backends_agree_under_the_parallel_engine(self):
        pytest.importorskip("numpy")
        objects_a, objects_b = DATASETS["uniform"]
        results = {}
        for backend in ("object", "columnar"):
            spec = AlgorithmSpec.create("TOUCH", backend=backend)
            engine = ParallelChunkedJoin(spec, workers=2, n_chunks=N_CHUNKS)
            results[backend] = engine.join(objects_a, objects_b)
        assert (
            results["object"].sorted_pairs() == results["columnar"].sorted_pairs()
        )
        assert (
            results["object"].stats.comparisons
            == results["columnar"].stats.comparisons
        )


class TestDistributions:
    """Skewed and clustered data through the full engine matrix."""

    @pytest.mark.parametrize("distribution", ["gaussian", "clustered"])
    @pytest.mark.parametrize("name", ["TOUCH", "PBSM-100", "NL"])
    def test_engine_parity(self, name, distribution):
        objects_a, objects_b = DATASETS[distribution]
        assert_engine_parity(name, objects_a, objects_b)


class TestDegenerateInputs:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("workers", WORKER_STEPS)
    def test_empty_sides(self, kind, workers):
        objects_a, _ = DATASETS["uniform"]
        engine = ParallelChunkedJoin(
            "NL", workers=workers, n_chunks=N_CHUNKS, kind=kind
        )
        assert engine.join([], list(objects_a)).pairs == []
        assert engine.join(list(objects_a), []).pairs == []
        assert engine.join([], []).pairs == []

    def test_all_objects_in_one_slab(self):
        # Everything inside x ∈ [0, 1] of a [0, 10] universe: three of the
        # four slabs receive A objects but no B objects (or vice versa).
        objects_a = [box_object(i, (0.1 * i, 0.0), (0.1 * i + 0.3, 1.0)) for i in range(8)]
        objects_b = [box_object(i, (0.05 * i, 0.0), (0.05 * i + 0.2, 1.0)) for i in range(8)]
        objects_a.append(box_object(99, (9.5, 0.0), (10.0, 1.0)))  # pins the universe
        assert_engine_parity("NL", objects_a, objects_b)

    def test_objects_spanning_every_slab_boundary(self):
        # A objects cover the full axis, so each lands in all four slabs.
        objects_a = [box_object(i, (0.0, float(i)), (10.0, i + 1.5)) for i in range(6)]
        objects_b = [
            box_object(j, (2.5 * (j % 5), 0.0), (2.5 * (j % 5) + 1.0, 10.0))
            for j in range(10)
        ]
        assert_engine_parity("NL", objects_a, objects_b)
        assert_engine_parity("TOUCH", objects_a, objects_b)

    def test_zero_extent_mbrs_on_slab_edges(self):
        # Universe [0, 10] cut into 4 slabs: edges at 2.5, 5.0, 7.5.  A
        # point object sits exactly on each edge (zero extent in every
        # dimension) and must pair with the boxes covering it exactly once.
        objects_a = [box_object(0, (0.0, 0.0), (10.0, 10.0))]
        objects_b = [
            point_object(j, (edge, 5.0)) for j, edge in enumerate([0.0, 2.5, 5.0, 7.5, 10.0])
        ]
        assert_engine_parity("NL", objects_a, objects_b)
        # And point-point coincidence right on an interior edge:
        objects_a = [
            point_object(0, (2.5, 1.0)),
            box_object(1, (0.0, 0.0), (10.0, 10.0)),
        ]
        objects_b = [point_object(0, (2.5, 1.0))]
        assert_engine_parity("NL", objects_a, objects_b)

    def test_single_pair_universe(self):
        objects_a = [box_object(0, (1.0, 1.0), (2.0, 2.0))]
        objects_b = [box_object(0, (1.5, 1.5), (2.5, 2.5))]
        assert_engine_parity("NL", objects_a, objects_b)


class TestRandomised:
    """Property check on adversarial random boxes (many shared corners)."""

    @pytest.mark.parametrize("seed", [7, 99, 2013])
    def test_random_boxes_with_snapped_corners(self, seed):
        rng = random.Random(seed)

        def snapped_box(oid):
            # Snap corners to a coarse lattice so MBRs collide with slab
            # edges and each other far more often than generic floats.
            lo = [rng.randint(0, 20) / 2.0 for _ in range(2)]
            extent = [rng.randint(0, 6) / 2.0 for _ in range(2)]
            hi = [min(c + e, 10.0) for c, e in zip(lo, extent)]
            return SpatialObject(oid, box_object(oid, lo, hi).mbr)

        objects_a = [snapped_box(i) for i in range(40)]
        objects_b = [snapped_box(j) for j in range(90)]
        assert_engine_parity("NL", objects_a, objects_b)
        for workers in (2, 4):
            result = ParallelChunkedJoin(
                "PBSM-100", workers=workers, n_chunks=5, kind="slabs"
            ).join(objects_a, objects_b)
            assert_matches_ground_truth(result, objects_a, objects_b)
