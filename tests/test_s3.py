"""S3-specific behaviour: level assignment, hierarchy join, filtering."""

import pytest

from repro.datasets.synthetic import clustered_boxes, uniform_boxes
from repro.geometry.mbr import MBR
from repro.geometry.objects import box_object
from repro.joins.s3 import S3Join, _GridHierarchy
from repro.validation import assert_matches_ground_truth

UNIVERSE = MBR((0.0, 0.0), (100.0, 100.0))


class TestGridHierarchy:
    def test_small_object_lands_on_finest_level(self):
        hierarchy = _GridHierarchy(UNIVERSE, fanout=2, levels=4)
        # Finest level: 8 cells/dim, 12.5 units each.
        level, coords = hierarchy.assignment_of(MBR((1.0, 1.0), (2.0, 2.0)))
        assert level == 3
        assert coords == (0, 0)

    def test_straddling_object_promoted(self):
        hierarchy = _GridHierarchy(UNIVERSE, fanout=2, levels=4)
        # Straddles the finest boundary at 12.5 but fits in a 25-unit cell.
        level, coords = hierarchy.assignment_of(MBR((10.0, 1.0), (15.0, 2.0)))
        assert level == 2
        assert coords == (0, 0)

    def test_huge_object_lands_at_root(self):
        hierarchy = _GridHierarchy(UNIVERSE, fanout=2, levels=4)
        level, coords = hierarchy.assignment_of(MBR((1.0, 1.0), (99.0, 99.0)))
        assert level == 0
        assert coords == (0, 0)

    def test_insert_places_object(self):
        hierarchy = _GridHierarchy(UNIVERSE, fanout=2, levels=3)
        obj = box_object(1, (1.0, 1.0), (2.0, 2.0))
        level, coords = hierarchy.insert(obj)
        assert hierarchy.cells[level][coords] == [obj]

    def test_memory_counts_all_levels(self):
        hierarchy = _GridHierarchy(UNIVERSE, fanout=2, levels=3)
        before = hierarchy.memory_bytes()
        hierarchy.insert(box_object(1, (1, 1), (2, 2)))
        assert hierarchy.memory_bytes() > before

    def test_single_level_hierarchy(self):
        hierarchy = _GridHierarchy(UNIVERSE, fanout=3, levels=1)
        level, coords = hierarchy.assignment_of(MBR((1, 1), (99, 99)))
        assert level == 0 and coords == (0, 0)


class TestS3Join:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="fanout"):
            S3Join(fanout=1)
        with pytest.raises(ValueError, match="levels"):
            S3Join(levels=0)
        with pytest.raises(ValueError, match="kernel"):
            S3Join(local_kernel="bogus")

    def test_describe(self):
        info = S3Join(fanout=3, levels=5).describe()
        assert info["fanout"] == 3 and info["levels"] == 5

    def test_mixed_level_pairs_found(self):
        """An object at the root level must still meet finest-level objects."""
        a = [box_object(0, (1, 1), (99, 99))]  # root level
        b = [box_object(0, (50, 50), (50.5, 50.5))]  # finest level
        result = S3Join(fanout=2, levels=4).join(a, b)
        assert result.pairs == [(0, 0)]

    def test_reverse_mixed_level_pairs_found(self):
        a = [box_object(0, (50, 50), (50.5, 50.5))]  # finest level
        b = [box_object(0, (1, 1), (99, 99))]  # root level
        result = S3Join(fanout=2, levels=4).join(a, b)
        assert result.pairs == [(0, 0)]

    def test_filtering_on_sparse_a(self):
        """Objects of B far from every A object must be filtered."""
        a = [box_object(i, (i, i), (i + 0.5, i + 0.5)) for i in range(5)]
        b = [box_object(i, (900 + i, 900 + i), (900.5 + i, 900.5 + i)) for i in range(20)]
        b += [box_object(100, (1.0, 1.0), (1.2, 1.2))]  # near A
        result = S3Join(fanout=3, levels=5).join(a, b)
        assert result.stats.filtered >= 19
        assert (1, 100) in result.pair_set()

    def test_filtered_objects_never_lose_results(self):
        a = clustered_boxes(60, seed=61, n_clusters=3)
        b = uniform_boxes(200, seed=62)
        result = S3Join(fanout=3, levels=5).join(a, b)
        assert_matches_ground_truth(result, a, b)

    def test_deeper_hierarchy_fewer_comparisons(self):
        a = uniform_boxes(80, seed=63, side_range=(0.0, 5.0))
        b = uniform_boxes(240, seed=64, side_range=(0.0, 5.0))
        shallow = S3Join(fanout=2, levels=2).join(a, b)
        deep = S3Join(fanout=2, levels=6).join(a, b)
        assert deep.stats.comparisons < shallow.stats.comparisons
        assert deep.pair_set() == shallow.pair_set()

    def test_boundary_touching_pair(self):
        """Pairs meeting exactly at a grid boundary must not be missed."""
        # 2-level, fanout-2 hierarchy over [0,100]: boundary at 50.
        a = [box_object(0, (40.0, 40.0), (50.0, 50.0))]
        b = [box_object(0, (50.0, 50.0), (60.0, 60.0))]
        result = S3Join(fanout=2, levels=2).join(a, b)
        assert result.pairs == [(0, 0)]
