"""Shared-memory coordinate-table hand-off: lifecycle and parity.

The parallel engine publishes each dataset once as a
``multiprocessing.shared_memory`` block and ships only row indices to
workers (``tests/test_parallel_parity.py`` pins the pair parity against
the pickle path engine-wide).  These tests pin the primitive layer:
publish / attach / slice round-trips, handle pickling, the
unlink-on-close lifecycle that must never strand ``/dev/shm`` segments,
and the engine's crash behaviour (a killed worker surfaces as
:class:`~repro.parallel.engine.WorkerCrashError`, segments still freed).
"""

from __future__ import annotations

import glob
import pickle

import pytest

np = pytest.importorskip("numpy")

from repro.datasets import uniform_boxes
from repro.geometry.columnar import (
    HAVE_SHM,
    CoordinateTable,
    SharedTableHandle,
)
from repro.joins.registry import make_algorithm
from repro.parallel.engine import (
    ParallelChunkedJoin,
    WorkerCrashError,
    shutdown_pools,
)

pytestmark = pytest.mark.skipif(
    not HAVE_SHM, reason="multiprocessing.shared_memory unavailable"
)


def _segments() -> set:
    return set(glob.glob("/dev/shm/psm_*"))


def _table(n: int, seed: int = 0) -> CoordinateTable:
    rng = np.random.default_rng(seed)
    lo = rng.random((n, 3)) * 10.0
    hi = lo + rng.random((n, 3))
    return CoordinateTable(
        np.hstack([lo, hi]), np.arange(n, dtype=np.int64)
    )


class TestSharedBlockLifecycle:
    def test_publish_attach_roundtrip(self):
        table = _table(32)
        block = table.to_shared()
        try:
            view = CoordinateTable.from_shared(block.handle)
            assert np.array_equal(view.coords, table.coords)
            assert np.array_equal(view.ids, table.ids)
            view.release()
        finally:
            block.close(unlink=True)

    def test_shm_slice_copies_and_detaches(self):
        table = _table(16, seed=1)
        before = _segments()
        with table.to_shared() as block:
            rows = np.array([3, 1, 7], dtype=np.int64)
            sub = table.take(rows)
            sliced = CoordinateTable.shm_slice(block.handle, rows)
            assert np.array_equal(sliced.coords, sub.coords)
            assert np.array_equal(sliced.ids, sub.ids)
            # The slice owns private copies: mutating it cannot touch
            # the published block.
            sliced.coords[:] = -1.0
            again = CoordinateTable.shm_slice(block.handle, rows)
            assert np.array_equal(again.coords, sub.coords)
        assert _segments() == before

    def test_close_unlinks_and_is_idempotent(self):
        before = _segments()
        block = _table(8).to_shared()
        assert len(_segments()) == len(before) + 1
        block.close(unlink=True)
        assert _segments() == before
        block.close(unlink=True)  # second close must be a no-op

    def test_handle_pickles(self):
        table = _table(4, seed=2)
        with table.to_shared() as block:
            handle = pickle.loads(pickle.dumps(block.handle))
            assert isinstance(handle, SharedTableHandle)
            assert (handle.name, handle.rows, handle.dim) == (
                block.handle.name,
                block.handle.rows,
                block.handle.dim,
            )
            view = CoordinateTable.from_shared(handle)
            assert np.array_equal(view.ids, table.ids)
            view.release()

    def test_empty_table_publishes(self):
        empty = CoordinateTable.from_mbrs([])
        with empty.to_shared() as block:
            view = CoordinateTable.shm_slice(
                block.handle, np.empty(0, dtype=np.int64)
            )
            assert len(view) == 0 and view.dim == empty.dim


@pytest.mark.parallel
class TestEngineShmLifecycle:
    """Fault injection: the parent must clean up whatever workers do."""

    def setup_method(self):
        shutdown_pools()

    def teardown_method(self):
        shutdown_pools()

    @staticmethod
    def _datasets():
        a = uniform_boxes(120, space=20.0, side_range=(0.5, 2.0), seed=31)
        b = uniform_boxes(150, space=20.0, side_range=(0.5, 2.0), seed=32)
        return list(a), list(b)

    def test_worker_crash_raises_and_frees_segments(self, monkeypatch):
        import repro.parallel.engine as engine

        objects_a, objects_b = self._datasets()
        monkeypatch.setattr(engine, "_run_chunk", _kill_worker)
        before = _segments()
        join = ParallelChunkedJoin(
            "TOUCH", workers=2, n_chunks=4, handoff="shm"
        )
        with pytest.raises(WorkerCrashError) as crash:
            join.join(objects_a, objects_b)
        # The error carries the engine's statistics: handoff mode and
        # the crash marker are visible to callers.
        stats = crash.value.stats
        assert stats.extra["worker_crashed"] is True
        assert stats.extra["handoff"] == "shm"
        assert stats.extra["pickled_coord_bytes"] == 0
        assert _segments() == before

    def test_engine_recovers_after_crash(self, monkeypatch):
        import repro.parallel.engine as engine

        objects_a, objects_b = self._datasets()
        expected = make_algorithm("TOUCH").join(objects_a, objects_b)
        original = engine._run_chunk
        monkeypatch.setattr(engine, "_run_chunk", _kill_worker)
        with pytest.raises(WorkerCrashError):
            ParallelChunkedJoin("TOUCH", workers=2, n_chunks=4).join(
                objects_a, objects_b
            )
        monkeypatch.setattr(engine, "_run_chunk", original)
        result = ParallelChunkedJoin("TOUCH", workers=2, n_chunks=4).join(
            objects_a, objects_b
        )
        assert result.pair_set() == expected.pair_set()

    def test_normal_run_leaves_no_segments(self):
        objects_a, objects_b = self._datasets()
        before = _segments()
        result = ParallelChunkedJoin(
            "TOUCH", workers=2, n_chunks=4, handoff="shm"
        ).join(objects_a, objects_b)
        assert _segments() == before
        assert result.stats.extra["pickled_coord_bytes"] == 0

    def test_forced_shm_without_support_raises(self, monkeypatch):
        import repro.parallel.engine as engine

        objects_a, objects_b = self._datasets()
        monkeypatch.setattr(engine, "HAVE_SHM", False)
        join = ParallelChunkedJoin("TOUCH", workers=1, handoff="shm")
        with pytest.raises(RuntimeError, match="shm"):
            join.join(objects_a, objects_b)
        # auto degrades instead of raising
        auto = ParallelChunkedJoin("TOUCH", workers=1, n_chunks=2).join(
            objects_a, objects_b
        )
        assert auto.stats.extra["handoff"] == "pickle"


def _kill_worker(task):
    import os
    import signal

    os.kill(os.getpid(), signal.SIGKILL)
