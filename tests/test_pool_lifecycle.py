"""Worker-pool lifecycle: no semaphore or shm leaks at interpreter exit.

The engine caches one :class:`~concurrent.futures.ProcessPoolExecutor`
per ``(start_method, workers)`` and registers an ``atexit`` teardown on
first use.  A clean interpreter exit must therefore never trip the
``multiprocessing.resource_tracker`` "leaked semaphore/shared_memory
objects" warnings.  These tests run a real join workload in a child
interpreter under ``-W error::ResourceWarning`` (spawn start method
included — the strictest lifecycle) and require a silent, zero-status
exit.  The script must live in a real file: spawn re-imports
``__main__``, which does not exist for stdin-fed code.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("numpy")

SRC = str(Path(__file__).resolve().parent.parent / "src")

SCRIPT = """\
import sys

from repro.datasets.synthetic import uniform_boxes
from repro.parallel.engine import ParallelChunkedJoin, shutdown_pools

START_METHOD = sys.argv[1]
EXPLICIT_SHUTDOWN = sys.argv[2] == "explicit"

if __name__ == "__main__":
    a = list(uniform_boxes(80, space=20.0, side_range=(0.5, 2.0), seed=1))
    b = list(uniform_boxes(100, space=20.0, side_range=(0.5, 2.0), seed=2))
    for _ in range(3):
        join = ParallelChunkedJoin(
            "TOUCH", workers=2, n_chunks=4, start_method=START_METHOD
        )
        result = join.join(a, b)
        assert result.pairs, "join produced no pairs"
    if EXPLICIT_SHUTDOWN:
        shutdown_pools()
    # else: the atexit hook registered on first executor use must
    # tear the cached pools down on its own.
    print("LIFECYCLE-OK")
"""


@pytest.mark.parallel
@pytest.mark.parametrize("start_method", ["fork", "spawn"])
@pytest.mark.parametrize("teardown", ["explicit", "atexit"])
def test_no_resource_leaks_at_exit(tmp_path, start_method, teardown):
    script = tmp_path / "pool_lifecycle_check.py"
    script.write_text(SCRIPT)
    proc = subprocess.run(
        [sys.executable, "-W", "error::ResourceWarning", str(script),
         start_method, teardown],
        capture_output=True,
        text=True,
        timeout=120,
        env={
            "PATH": "/usr/bin:/bin",
            "PYTHONPATH": SRC,
        },
    )
    assert proc.returncode == 0, proc.stderr
    assert "LIFECYCLE-OK" in proc.stdout
    for marker in ("ResourceWarning", "leaked", "resource_tracker"):
        assert marker not in proc.stderr, proc.stderr
