"""Unit tests for the exact distance primitives of the refinement phase."""

import math

import pytest

from repro.geometry.distance import (
    Box,
    Cylinder,
    point_distance,
    point_segment_distance,
    segment_distance,
)


class TestPointDistance:
    def test_same_point(self):
        assert point_distance((1, 2, 3), (1, 2, 3)) == 0.0

    def test_axis_aligned(self):
        assert point_distance((0, 0), (3, 0)) == 3.0

    def test_pythagorean(self):
        assert point_distance((0, 0), (3, 4)) == 5.0


class TestPointSegmentDistance:
    def test_projection_inside_segment(self):
        assert point_segment_distance((1, 1), (0, 0), (2, 0)) == 1.0

    def test_projection_clamps_to_start(self):
        assert point_segment_distance((-1, 1), (0, 0), (2, 0)) == pytest.approx(math.sqrt(2))

    def test_projection_clamps_to_end(self):
        assert point_segment_distance((3, 1), (0, 0), (2, 0)) == pytest.approx(math.sqrt(2))

    def test_degenerate_segment_is_point_distance(self):
        assert point_segment_distance((1, 1), (0, 0), (0, 0)) == pytest.approx(math.sqrt(2))

    def test_point_on_segment(self):
        assert point_segment_distance((1, 0), (0, 0), (2, 0)) == 0.0


class TestSegmentDistance:
    def test_crossing_segments(self):
        assert segment_distance((0, -1), (0, 1), (-1, 0), (1, 0)) == 0.0

    def test_parallel_segments(self):
        assert segment_distance((0, 0), (2, 0), (0, 1), (2, 1)) == 1.0

    def test_parallel_offset_segments(self):
        # Parallel but staggered along the axis: closest at endpoints.
        assert segment_distance((0, 0), (1, 0), (3, 1), (4, 1)) == pytest.approx(math.sqrt(5))

    def test_collinear_disjoint(self):
        assert segment_distance((0, 0), (1, 0), (3, 0), (4, 0)) == 2.0

    def test_skew_segments_3d(self):
        # Classic skew lines: z-offset of 1, crossing in xy projection.
        d = segment_distance((0, 0, 0), (2, 0, 0), (1, -1, 1), (1, 1, 1))
        assert d == pytest.approx(1.0)

    def test_both_degenerate(self):
        assert segment_distance((0, 0), (0, 0), (3, 4), (3, 4)) == 5.0

    def test_first_degenerate(self):
        assert segment_distance((1, 1), (1, 1), (0, 0), (2, 0)) == 1.0

    def test_second_degenerate(self):
        assert segment_distance((0, 0), (2, 0), (1, 1), (1, 1)) == 1.0

    def test_symmetry(self):
        d1 = segment_distance((0, 0, 0), (1, 2, 3), (4, 4, 4), (5, 0, 1))
        d2 = segment_distance((4, 4, 4), (5, 0, 1), (0, 0, 0), (1, 2, 3))
        assert d1 == pytest.approx(d2)

    def test_shared_endpoint(self):
        assert segment_distance((0, 0), (1, 1), (1, 1), (2, 0)) == 0.0


class TestCylinder:
    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError, match="non-negative"):
            Cylinder((0, 0, 0), (1, 0, 0), -1.0)

    def test_mbr_includes_radius(self):
        cyl = Cylinder((0, 0, 0), (2, 0, 0), 0.5)
        mbr = cyl.mbr()
        assert mbr.lo == (-0.5, -0.5, -0.5)
        assert mbr.hi == (2.5, 0.5, 0.5)

    def test_mbr_handles_reversed_axis(self):
        cyl = Cylinder((2, 0, 0), (0, 0, 0), 0.5)
        assert cyl.mbr().lo == (-0.5, -0.5, -0.5)

    def test_distance_between_parallel_cylinders(self):
        a = Cylinder((0, 0, 0), (2, 0, 0), 0.25)
        b = Cylinder((0, 2, 0), (2, 2, 0), 0.25)
        assert a.min_distance(b) == pytest.approx(1.5)

    def test_overlapping_cylinders_distance_zero(self):
        a = Cylinder((0, 0, 0), (2, 0, 0), 0.5)
        b = Cylinder((1, 0.5, 0), (1, 2, 0), 0.5)
        assert a.min_distance(b) == 0.0

    def test_touch_detection_threshold(self):
        # The synapse-placement rule: within eps iff axis distance <= eps + radii.
        a = Cylinder((0, 0, 0), (1, 0, 0), 0.5)
        b = Cylinder((0, 3, 0), (1, 3, 0), 0.5)
        assert a.min_distance(b) == pytest.approx(2.0)

    def test_distance_consistent_with_mbr_lower_bound(self):
        a = Cylinder((0, 0, 0), (2, 1, 0), 0.3)
        b = Cylinder((5, 5, 5), (6, 6, 6), 0.2)
        assert a.min_distance(b) >= a.mbr().min_distance(b.mbr()) - 1e-9


class TestBox:
    def test_mbr_is_self(self):
        box = Box((0, 0), (1, 2))
        assert box.mbr().lo == (0.0, 0.0)
        assert box.mbr().hi == (1.0, 2.0)

    def test_distance_matches_mbr_distance(self):
        a = Box((0, 0), (1, 1))
        b = Box((4, 0), (5, 1))
        assert a.min_distance(b) == 3.0
