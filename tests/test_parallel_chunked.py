"""Chunked execution: the BlueGene/P decomposition must be lossless."""

import pytest

from repro.datasets.synthetic import clustered_boxes, uniform_boxes
from repro.joins.nested_loop import NestedLoopJoin
from repro.joins.registry import make_algorithm
from repro.parallel.chunked import ChunkedSpatialJoin, slab_bounds
from repro.validation import assert_matches_ground_truth

A = uniform_boxes(80, seed=121, side_range=(0.0, 30.0))
B = uniform_boxes(240, seed=122, side_range=(0.0, 30.0))


class TestSlabBounds:
    def test_even_split(self):
        assert slab_bounds(0.0, 10.0, 2) == [(0.0, 5.0), (5.0, 10.0)]

    def test_single_chunk(self):
        assert slab_bounds(0.0, 10.0, 1) == [(0.0, 10.0)]

    def test_last_slab_closed_at_hi(self):
        bounds = slab_bounds(0.0, 1.0, 3)
        assert bounds[-1][1] == 1.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError, match="n_chunks"):
            slab_bounds(0.0, 1.0, 0)
        with pytest.raises(ValueError, match="invalid interval"):
            slab_bounds(1.0, 0.0, 2)


class TestChunkedJoin:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="n_chunks"):
            ChunkedSpatialJoin(NestedLoopJoin, n_chunks=0)
        with pytest.raises(ValueError, match="axis"):
            ChunkedSpatialJoin(NestedLoopJoin, axis=-1)

    def test_name_reflects_base(self):
        join = ChunkedSpatialJoin(lambda: make_algorithm("TOUCH"), n_chunks=4)
        assert join.name == "Chunked[TOUCHx4]"

    @pytest.mark.parametrize("n_chunks", [1, 2, 3, 7])
    def test_equals_global_join(self, n_chunks):
        chunked = ChunkedSpatialJoin(NestedLoopJoin, n_chunks=n_chunks)
        result = chunked.join(A, B)
        assert_matches_ground_truth(result, A, B)

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_any_axis(self, axis):
        chunked = ChunkedSpatialJoin(NestedLoopJoin, n_chunks=4, axis=axis)
        assert_matches_ground_truth(chunked.join(A, B), A, B)

    def test_axis_out_of_range(self):
        chunked = ChunkedSpatialJoin(NestedLoopJoin, n_chunks=2, axis=9)
        with pytest.raises(ValueError, match="out of range"):
            chunked.join(A, B)

    def test_with_touch_base(self):
        chunked = ChunkedSpatialJoin(lambda: make_algorithm("TOUCH"), n_chunks=4)
        assert_matches_ground_truth(chunked.join(A, B), A, B)

    def test_with_pbsm_base(self):
        chunked = ChunkedSpatialJoin(
            lambda: make_algorithm("PBSM-100"), n_chunks=3
        )
        assert_matches_ground_truth(chunked.join(A, B), A, B)

    def test_boundary_straddlers_not_duplicated(self):
        """Objects crossing slab borders are seen twice, reported once."""
        from repro.geometry.objects import box_object

        # One object exactly astride the 2-chunk boundary of [0, 10].
        a = [box_object(0, (4.0, 0.0), (6.0, 1.0))]
        b = [box_object(0, (4.5, 0.0), (5.5, 1.0))]
        chunked = ChunkedSpatialJoin(NestedLoopJoin, n_chunks=2)
        result = chunked.join(a, b)
        assert result.pairs == [(0, 0)]
        assert result.stats.duplicates_suppressed >= 1

    def test_statistics_merged(self):
        chunked = ChunkedSpatialJoin(NestedLoopJoin, n_chunks=4)
        result = chunked.join(A, B)
        # Total comparisons across chunks at least cover the pairs found.
        assert result.stats.comparisons >= len(result.pairs)
        assert result.stats.extra["n_chunks"] == 4

    def test_memory_is_per_chunk_peak(self):
        one = ChunkedSpatialJoin(lambda: make_algorithm("TOUCH"), n_chunks=1).join(A, B)
        many = ChunkedSpatialJoin(lambda: make_algorithm("TOUCH"), n_chunks=8).join(A, B)
        # A single chunk holds everything; eight chunks each hold less.
        assert many.stats.memory_bytes <= one.stats.memory_bytes

    def test_clustered_data(self):
        clustered_a = clustered_boxes(60, seed=123, n_clusters=4)
        clustered_b = clustered_boxes(180, seed=124, n_clusters=4)
        chunked = ChunkedSpatialJoin(lambda: make_algorithm("TOUCH"), n_chunks=5)
        assert_matches_ground_truth(
            chunked.join(clustered_a, clustered_b), clustered_a, clustered_b
        )

    def test_empty_inputs(self):
        chunked = ChunkedSpatialJoin(NestedLoopJoin, n_chunks=4)
        assert chunked.join([], B).pairs == []
        assert chunked.join(A, []).pairs == []

    def test_accepts_algorithm_spec(self):
        from repro.joins.registry import AlgorithmSpec

        chunked = ChunkedSpatialJoin(AlgorithmSpec.create("TOUCH"), n_chunks=3)
        assert chunked.name == "Chunked[TOUCHx3]"
        assert_matches_ground_truth(chunked.join(A, B), A, B)

    def test_phase_timings_recorded(self):
        result = ChunkedSpatialJoin(NestedLoopJoin, n_chunks=4).join(A, B)
        extra = result.stats.extra
        assert extra["decompose"] == "slabs"
        assert extra["decompose_seconds"] >= 0.0
        assert extra["worker_join_seconds"] >= 0.0
        assert extra["merge_seconds"] >= 0.0


class TestTileChunking:
    def test_name_marks_tiles(self):
        join = ChunkedSpatialJoin(NestedLoopJoin, n_chunks=4, kind="tiles")
        assert join.name == "Chunked[NLx4:tiles]"

    @pytest.mark.parametrize("n_chunks", [1, 2, 4, 6])
    def test_equals_global_join(self, n_chunks):
        chunked = ChunkedSpatialJoin(NestedLoopJoin, n_chunks=n_chunks, kind="tiles")
        assert_matches_ground_truth(chunked.join(A, B), A, B)

    def test_with_touch_base(self):
        chunked = ChunkedSpatialJoin(
            lambda: make_algorithm("TOUCH"), n_chunks=4, kind="tiles"
        )
        assert_matches_ground_truth(chunked.join(A, B), A, B)


class TestBoundaryOwnership:
    """Regression: reference points exactly on an interior slab edge.

    The rule is shared with :mod:`repro.parallel.decompose`: ownership
    resolves by binary search over the global edge list, so an interior
    edge belongs to exactly one (the right-hand) slab — the historical
    per-slab interval test closed only the final slab.
    """

    def test_reference_point_on_interior_edge(self):
        from repro.geometry.objects import box_object

        # Universe [0, 10] (pinned by the A boxes), 2 slabs, edge at 5.0.
        # Both objects start exactly at the edge: reference == 5.0.
        a = [
            box_object(0, (0.0, 0.0), (1.0, 1.0)),  # pins universe lo
            box_object(1, (5.0, 0.0), (6.0, 1.0)),
            box_object(2, (9.0, 0.0), (10.0, 1.0)),  # pins universe hi
        ]
        b = [box_object(0, (5.0, 0.0), (5.5, 1.0))]
        result = ChunkedSpatialJoin(NestedLoopJoin, n_chunks=2).join(a, b)
        assert sorted(result.pairs) == [(1, 0)]

    def test_zero_extent_reference_on_interior_edge(self):
        from repro.geometry.objects import box_object, point_object

        # A point with zero extent sitting exactly on the slab edge of a
        # [0, 10] universe cut into 4: seen by both adjacent slabs, owned
        # by exactly one.
        a = [box_object(0, (0.0, 0.0), (10.0, 1.0))]
        b = [point_object(0, (2.5, 0.5)), point_object(1, (7.5, 0.5))]
        for n_chunks in (2, 4, 8):
            result = ChunkedSpatialJoin(NestedLoopJoin, n_chunks=n_chunks).join(a, b)
            assert sorted(result.pairs) == [(0, 0), (0, 1)], n_chunks

    def test_rule_shared_with_decompose_module(self):
        """Chunked and the decompose primitives agree edge-for-edge."""
        from repro.geometry.mbr import MBR
        from repro.parallel.decompose import Decomposition

        universe = MBR((0.0, 0.0), (10.0, 10.0))
        decomposition = Decomposition.slabs(universe, 4, axis=0)
        edge = MBR((5.0, 0.0), (5.0, 0.0))
        assert decomposition.owner_index(edge, edge) == 2  # right-hand slab
