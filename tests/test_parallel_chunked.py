"""Chunked execution: the BlueGene/P decomposition must be lossless."""

import pytest

from repro.datasets.synthetic import clustered_boxes, uniform_boxes
from repro.joins.nested_loop import NestedLoopJoin
from repro.joins.registry import make_algorithm
from repro.parallel.chunked import ChunkedSpatialJoin, slab_bounds
from repro.validation import assert_matches_ground_truth

A = uniform_boxes(80, seed=121, side_range=(0.0, 30.0))
B = uniform_boxes(240, seed=122, side_range=(0.0, 30.0))


class TestSlabBounds:
    def test_even_split(self):
        assert slab_bounds(0.0, 10.0, 2) == [(0.0, 5.0), (5.0, 10.0)]

    def test_single_chunk(self):
        assert slab_bounds(0.0, 10.0, 1) == [(0.0, 10.0)]

    def test_last_slab_closed_at_hi(self):
        bounds = slab_bounds(0.0, 1.0, 3)
        assert bounds[-1][1] == 1.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError, match="n_chunks"):
            slab_bounds(0.0, 1.0, 0)
        with pytest.raises(ValueError, match="invalid interval"):
            slab_bounds(1.0, 0.0, 2)


class TestChunkedJoin:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="n_chunks"):
            ChunkedSpatialJoin(NestedLoopJoin, n_chunks=0)
        with pytest.raises(ValueError, match="axis"):
            ChunkedSpatialJoin(NestedLoopJoin, axis=-1)

    def test_name_reflects_base(self):
        join = ChunkedSpatialJoin(lambda: make_algorithm("TOUCH"), n_chunks=4)
        assert join.name == "Chunked[TOUCHx4]"

    @pytest.mark.parametrize("n_chunks", [1, 2, 3, 7])
    def test_equals_global_join(self, n_chunks):
        chunked = ChunkedSpatialJoin(NestedLoopJoin, n_chunks=n_chunks)
        result = chunked.join(A, B)
        assert_matches_ground_truth(result, A, B)

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_any_axis(self, axis):
        chunked = ChunkedSpatialJoin(NestedLoopJoin, n_chunks=4, axis=axis)
        assert_matches_ground_truth(chunked.join(A, B), A, B)

    def test_axis_out_of_range(self):
        chunked = ChunkedSpatialJoin(NestedLoopJoin, n_chunks=2, axis=9)
        with pytest.raises(ValueError, match="out of range"):
            chunked.join(A, B)

    def test_with_touch_base(self):
        chunked = ChunkedSpatialJoin(lambda: make_algorithm("TOUCH"), n_chunks=4)
        assert_matches_ground_truth(chunked.join(A, B), A, B)

    def test_with_pbsm_base(self):
        chunked = ChunkedSpatialJoin(
            lambda: make_algorithm("PBSM-100"), n_chunks=3
        )
        assert_matches_ground_truth(chunked.join(A, B), A, B)

    def test_boundary_straddlers_not_duplicated(self):
        """Objects crossing slab borders are seen twice, reported once."""
        from repro.geometry.objects import box_object

        # One object exactly astride the 2-chunk boundary of [0, 10].
        a = [box_object(0, (4.0, 0.0), (6.0, 1.0))]
        b = [box_object(0, (4.5, 0.0), (5.5, 1.0))]
        chunked = ChunkedSpatialJoin(NestedLoopJoin, n_chunks=2)
        result = chunked.join(a, b)
        assert result.pairs == [(0, 0)]
        assert result.stats.duplicates_suppressed >= 1

    def test_statistics_merged(self):
        chunked = ChunkedSpatialJoin(NestedLoopJoin, n_chunks=4)
        result = chunked.join(A, B)
        # Total comparisons across chunks at least cover the pairs found.
        assert result.stats.comparisons >= len(result.pairs)
        assert result.stats.extra["n_chunks"] == 4

    def test_memory_is_per_chunk_peak(self):
        one = ChunkedSpatialJoin(lambda: make_algorithm("TOUCH"), n_chunks=1).join(A, B)
        many = ChunkedSpatialJoin(lambda: make_algorithm("TOUCH"), n_chunks=8).join(A, B)
        # A single chunk holds everything; eight chunks each hold less.
        assert many.stats.memory_bytes <= one.stats.memory_bytes

    def test_clustered_data(self):
        clustered_a = clustered_boxes(60, seed=123, n_clusters=4)
        clustered_b = clustered_boxes(180, seed=124, n_clusters=4)
        chunked = ChunkedSpatialJoin(lambda: make_algorithm("TOUCH"), n_chunks=5)
        assert_matches_ground_truth(
            chunked.join(clustered_a, clustered_b), clustered_a, clustered_b
        )

    def test_empty_inputs(self):
        chunked = ChunkedSpatialJoin(NestedLoopJoin, n_chunks=4)
        assert chunked.join([], B).pairs == []
        assert chunked.join(A, []).pairs == []
