"""Unit tests for the multiprocess engine: specs, merge, phase timings."""

import pickle

import pytest

from repro.datasets.synthetic import uniform_boxes
from repro.geometry.objects import box_object
from repro.joins.nested_loop import NestedLoopJoin
from repro.joins.registry import ALGORITHMS, AlgorithmSpec
from repro.parallel.engine import ParallelChunkedJoin, shutdown_pools
from repro.stats.counters import JoinStatistics
from repro.validation import assert_matches_ground_truth

A = uniform_boxes(60, seed=31, space=60.0, side_range=(0.0, 8.0))
B = uniform_boxes(150, seed=32, space=60.0, side_range=(0.0, 8.0))


class TestAlgorithmSpec:
    def test_round_trips_through_pickle(self):
        spec = AlgorithmSpec.create("TOUCH", fanout=4, backend="object")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        algorithm = clone.make()
        assert algorithm.name == "TOUCH"
        assert algorithm.describe()["fanout"] == 4

    def test_every_registered_algorithm_has_a_spec(self):
        for name in ALGORITHMS:
            algorithm = AlgorithmSpec.create(name).make()
            assert algorithm.name

    def test_unknown_name_rejected_eagerly(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            AlgorithmSpec.create("FASTJOIN")

    def test_override_order_is_normalised(self):
        assert AlgorithmSpec.create("TOUCH", b=1, a=2) == AlgorithmSpec.create(
            "TOUCH", a=2, b=1
        )


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelChunkedJoin("TOUCH", workers=0)
        with pytest.raises(ValueError, match="n_chunks"):
            ParallelChunkedJoin("TOUCH", workers=1, n_chunks=0)
        with pytest.raises(ValueError, match="axis"):
            ParallelChunkedJoin("TOUCH", workers=1, axis=-1)
        with pytest.raises(ValueError, match="kind"):
            ParallelChunkedJoin("TOUCH", workers=1, kind="shards")

    def test_rejects_unpicklable_factory(self):
        captured = NestedLoopJoin()
        with pytest.raises(TypeError, match="picklable"):
            ParallelChunkedJoin(lambda: captured, workers=1)

    def test_rejects_overrides_with_spec(self):
        with pytest.raises(TypeError, match="registry name"):
            ParallelChunkedJoin(AlgorithmSpec.create("TOUCH"), workers=1, fanout=4)

    def test_name_encodes_configuration(self):
        join = ParallelChunkedJoin("TOUCH", workers=2, n_chunks=4)
        assert join.name == "Parallel[TOUCHx4@2w]"
        join = ParallelChunkedJoin("NL", workers=3, kind="tiles")
        assert join.name == "Parallel[NLxauto:tiles@3w]"

    def test_accepts_picklable_class_factory(self):
        join = ParallelChunkedJoin(NestedLoopJoin, workers=1, n_chunks=2)
        assert_matches_ground_truth(join.join(A, B), A, B)


class TestExecution:
    def test_empty_inputs(self):
        join = ParallelChunkedJoin("NL", workers=2, n_chunks=2)
        assert join.join([], B).pairs == []
        assert join.join(A, []).pairs == []

    def test_result_matches_ground_truth(self):
        join = ParallelChunkedJoin("TOUCH", workers=2, n_chunks=4)
        assert_matches_ground_truth(join.join(A, B), A, B)

    def test_phase_timings_recorded(self):
        result = ParallelChunkedJoin("NL", workers=2, n_chunks=3).join(A, B)
        extra = result.stats.extra
        assert extra["workers"] == 2
        assert extra["n_chunks"] == 3
        assert extra["decompose"] == "slabs"
        assert extra["decompose_seconds"] >= 0.0
        assert extra["merge_seconds"] >= 0.0
        assert len(extra["per_chunk_seconds"]) == 3
        # The fan-out wall covers every chunk's in-worker time at 2
        # workers over 3 chunks (some chunks run back-to-back).
        assert extra["worker_join_seconds"] >= max(extra["per_chunk_seconds"])
        assert extra["worker_seconds_sum"] == pytest.approx(
            sum(extra["per_chunk_seconds"])
        )

    def test_adaptive_chunk_count_used(self):
        result = ParallelChunkedJoin("NL", workers=2).join(A, B)
        # 210 objects, well under one target chunk: one region per worker.
        assert result.stats.extra["n_chunks"] == 2

    def test_memory_is_per_chunk_peak(self):
        one = ParallelChunkedJoin("TOUCH", workers=1, n_chunks=1).join(A, B)
        many = ParallelChunkedJoin("TOUCH", workers=2, n_chunks=8).join(A, B)
        assert many.stats.memory_bytes <= one.stats.memory_bytes

    def test_boundary_straddler_reported_once(self):
        a = [box_object(0, (4.0, 0.0), (6.0, 1.0))]
        b = [box_object(0, (4.5, 0.0), (5.5, 1.0))]
        result = ParallelChunkedJoin("NL", workers=2, n_chunks=2).join(a, b)
        assert result.pairs == [(0, 0)]
        assert result.stats.duplicates_suppressed >= 1

    def test_geometry_objects_survive_the_round_trip(self):
        # The worker rebuilds objects from coordinate buffers; ids and
        # coordinates must round-trip exactly (float64 in, float64 out).
        a = [box_object(7, (0.1, 0.2), (0.30000000000000004, 0.4))]
        b = [box_object(9, (0.3, 0.2), (0.5, 0.4))]
        result = ParallelChunkedJoin("NL", workers=1, n_chunks=2).join(a, b)
        assert result.pairs == [(7, 9)]


class TestMergeSemantics:
    """Counters add, memory maxes — the documented merge contract."""

    def test_counters_add_and_memory_maxes(self):
        left = JoinStatistics(
            comparisons=10,
            node_tests=3,
            result_pairs=2,
            duplicates_suppressed=1,
            filtered=4,
            replicated_entries=5,
            memory_bytes=1000,
            build_seconds=0.5,
            assign_seconds=0.25,
            join_seconds=0.125,
            total_seconds=1.0,
        )
        right = JoinStatistics(
            comparisons=7,
            node_tests=2,
            result_pairs=3,
            duplicates_suppressed=2,
            filtered=1,
            replicated_entries=2,
            memory_bytes=600,
            build_seconds=0.5,
            assign_seconds=0.25,
            join_seconds=0.125,
            total_seconds=2.0,
        )
        left.merge(right)
        assert left.comparisons == 17
        assert left.node_tests == 5
        assert left.result_pairs == 5
        assert left.duplicates_suppressed == 3
        assert left.filtered == 5
        assert left.replicated_entries == 7
        assert left.memory_bytes == 1000  # max, not sum
        assert left.build_seconds == 1.0
        assert left.assign_seconds == 0.5
        assert left.join_seconds == 0.25
        assert left.total_seconds == 3.0

    def test_engine_merge_matches_manual_sum(self):
        result = ParallelChunkedJoin("NL", workers=2, n_chunks=4).join(A, B)
        # NL compares every A x B pair per chunk; the merged count is the
        # sum over chunks of |chunk_a| * |chunk_b|, never less than the
        # global pair count.
        assert result.stats.comparisons >= len(result.pairs)
        assert result.stats.result_pairs == len(result.pairs)


class TestPoolLifecycle:
    def test_shutdown_pools_is_idempotent(self):
        ParallelChunkedJoin("NL", workers=1, n_chunks=1).join(A, B)
        shutdown_pools()
        shutdown_pools()
        # Pools are recreated transparently after a shutdown.
        result = ParallelChunkedJoin("NL", workers=1, n_chunks=1).join(A, B)
        assert_matches_ground_truth(result, A, B)
