"""The cross-algorithm contract: every join returns exactly the truth.

This is the heart of the correctness suite (paper §4.6): for every
registered algorithm, on every distribution, in 2D and 3D, with and
without ε-inflation, the result must be complete, sound and
duplicate-free — i.e. identical to the nested-loop ground truth.
"""

import pytest

from repro.datasets.synthetic import clustered_boxes, uniform_boxes
from repro.datasets.transform import inflate
from repro.joins.registry import available, make_algorithm
from repro.validation import assert_matches_ground_truth

ALL_ALGORITHMS = [info.name for info in available()]


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
class TestContract3D:
    def test_uniform(self, algorithm, small_uniform_pair):
        dataset_a, dataset_b = small_uniform_pair
        result = make_algorithm(algorithm).join(dataset_a, dataset_b)
        assert_matches_ground_truth(result, dataset_a, dataset_b)

    def test_gaussian(self, algorithm, small_gaussian_pair):
        dataset_a, dataset_b = small_gaussian_pair
        result = make_algorithm(algorithm).join(dataset_a, dataset_b)
        assert_matches_ground_truth(result, dataset_a, dataset_b)

    def test_clustered(self, algorithm, small_clustered_pair):
        dataset_a, dataset_b = small_clustered_pair
        result = make_algorithm(algorithm).join(dataset_a, dataset_b)
        assert_matches_ground_truth(result, dataset_a, dataset_b)

    def test_with_epsilon_inflation(self, algorithm, small_uniform_pair):
        dataset_a, dataset_b = small_uniform_pair
        inflated = inflate(dataset_a, 25.0)
        result = make_algorithm(algorithm).join(inflated, dataset_b)
        assert_matches_ground_truth(result, inflated, dataset_b)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
class TestContract2D:
    def test_uniform_2d(self, algorithm):
        dataset_a = uniform_boxes(60, seed=31, dim=2, side_range=(0.0, 40.0))
        dataset_b = uniform_boxes(180, seed=32, dim=2, side_range=(0.0, 40.0))
        result = make_algorithm(algorithm).join(dataset_a, dataset_b)
        assert_matches_ground_truth(result, dataset_a, dataset_b)

    def test_clustered_2d(self, algorithm):
        dataset_a = clustered_boxes(60, seed=33, dim=2, n_clusters=5)
        dataset_b = clustered_boxes(180, seed=34, dim=2, n_clusters=5)
        result = make_algorithm(algorithm).join(dataset_a, dataset_b)
        assert_matches_ground_truth(result, dataset_a, dataset_b)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
class TestEdgeCases:
    def test_empty_a(self, algorithm, small_uniform_pair):
        _, dataset_b = small_uniform_pair
        result = make_algorithm(algorithm).join([], dataset_b)
        assert result.pairs == []
        assert result.stats.comparisons == 0

    def test_empty_b(self, algorithm, small_uniform_pair):
        dataset_a, _ = small_uniform_pair
        result = make_algorithm(algorithm).join(dataset_a, [])
        assert result.pairs == []

    def test_both_empty(self, algorithm):
        result = make_algorithm(algorithm).join([], [])
        assert result.pairs == []

    def test_single_objects_hit(self, algorithm):
        from repro.geometry.objects import box_object

        a = [box_object(1, (0, 0, 0), (2, 2, 2))]
        b = [box_object(9, (1, 1, 1), (3, 3, 3))]
        result = make_algorithm(algorithm).join(a, b)
        assert result.pairs == [(1, 9)]

    def test_single_objects_miss(self, algorithm):
        from repro.geometry.objects import box_object

        a = [box_object(1, (0, 0, 0), (1, 1, 1))]
        b = [box_object(9, (5, 5, 5), (6, 6, 6))]
        result = make_algorithm(algorithm).join(a, b)
        assert result.pairs == []

    def test_identical_datasets(self, algorithm):
        data = list(uniform_boxes(40, seed=35, side_range=(0.0, 60.0)))
        result = make_algorithm(algorithm).join(data, data)
        assert_matches_ground_truth(result, data, data)
        # Every object at least matches itself.
        assert len(result.pairs) >= len(data)

    def test_touching_boundaries(self, algorithm):
        """Boxes that share exactly one face/corner must still be found."""
        from repro.geometry.objects import box_object

        a = [box_object(0, (0, 0), (1, 1)), box_object(1, (5, 5), (6, 6))]
        b = [
            box_object(0, (1, 0), (2, 1)),  # shares a face with a0
            box_object(1, (6, 6), (7, 7)),  # shares a corner with a1
            box_object(2, (3, 3), (4, 4)),  # touches nothing
        ]
        result = make_algorithm(algorithm).join(a, b)
        assert result.pair_set() == {(0, 0), (1, 1)}


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_statistics_are_consistent(algorithm, small_uniform_pair):
    dataset_a, dataset_b = small_uniform_pair
    result = make_algorithm(algorithm).join(dataset_a, dataset_b)
    stats = result.stats
    assert stats.result_pairs == len(result.pairs)
    assert stats.total_seconds > 0.0
    assert stats.comparisons >= 0
    assert stats.memory_bytes >= 0
    # Phases never exceed the total (allowing small timer noise).
    assert stats.build_seconds + stats.assign_seconds + stats.join_seconds <= (
        stats.total_seconds + 0.05
    )
