"""Compiled kernel tier: availability modes and parity pins.

The container running these tests has no numba, which is exactly the
interesting configuration: ``REPRO_COMPILED=force`` runs the tier's
numpy twins (same algorithms, true-hit shortcut included), so every
compiled code path is exercised and parity-pinned here; the CI
``compiled-parity`` job repeats the same suite with numba installed,
where the jitted kernels must produce the same answers.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.core.local_join import (
    flatten_hierarchy,
    probe_assigned_nodes_columnar,
    probe_assigned_nodes_compiled,
)
from repro.core.touch import TouchJoin
from repro.datasets import uniform_boxes
from repro.geometry import compiled as compiled_mod
from repro.geometry.columnar import (
    BACKENDS,
    CoordinateTable,
    intersect_pairs,
    resolve_backend,
    sweep_pairs,
)
from repro.geometry.compiled import (
    compiled_available,
    compiled_mode,
    descend_ranges,
    intersect_pairs_compiled,
    sweep_pairs_compiled,
)
from repro.joins.nested_loop import NestedLoopJoin
from repro.joins.registry import make_algorithm
from repro.stats.counters import JoinStatistics


@pytest.fixture
def force_compiled(monkeypatch):
    monkeypatch.setenv("REPRO_COMPILED", "force")


def _random_table(n: int, seed: int, side: float = 1.5) -> CoordinateTable:
    rng = np.random.default_rng(seed)
    lo = rng.random((n, 3)) * 20.0
    hi = lo + rng.random((n, 3)) * side
    return CoordinateTable(np.hstack([lo, hi]), np.arange(n, dtype=np.int64))


def _pairs_set(idx_a, idx_b):
    return set(zip(idx_a.tolist(), idx_b.tolist()))


class TestAvailability:
    def test_mode_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED", "sometimes")
        with pytest.raises(ValueError, match="REPRO_COMPILED"):
            compiled_mode()

    def test_off_never_available(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED", "off")
        assert not compiled_available()

    def test_force_available_without_numba(self, force_compiled):
        assert compiled_available()

    def test_auto_tracks_numba(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILED", raising=False)
        assert compiled_available() == compiled_mod.HAVE_NUMBA

    def test_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED", "force")
        assert resolve_backend("compiled") == "compiled"
        # Partition-replicating algorithms opt out and land on columnar.
        assert resolve_backend("compiled", allow_compiled=False) == "columnar"
        # auto never drifts to compiled: opting in is explicit.
        assert resolve_backend("auto") == "columnar"
        # When the tier reports unavailable the request degrades.
        monkeypatch.setenv("REPRO_COMPILED", "off")
        assert resolve_backend("compiled") == "columnar"


class TestKernelParity:
    """Compiled intersect/sweep == columnar, pairs and candidate counts."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_intersect_matches_columnar(self, force_compiled, seed):
        table_a = _random_table(70, seed)
        table_b = _random_table(110, seed + 50)
        got_a, got_b = intersect_pairs_compiled(table_a, table_b)
        want_a, want_b = intersect_pairs(table_a, table_b)
        assert np.array_equal(got_a, want_a) and np.array_equal(got_b, want_b)

    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_sweep_matches_columnar(self, force_compiled, seed):
        table_a = _random_table(80, seed)
        table_b = _random_table(90, seed + 50)
        got_a, got_b, got_cand = sweep_pairs_compiled(table_a, table_b)
        want_a, want_b, want_cand = sweep_pairs(table_a, table_b)
        assert got_cand == want_cand
        assert _pairs_set(got_a, got_b) == _pairs_set(want_a, want_b)

    def test_sweep_tie_rule(self, force_compiled):
        # Identical lo[0] on both sides: the two-pass tie ownership must
        # count each pair exactly once, like the columnar sweep.
        coords = np.array([[0.0, 0.0, 0.0, 1.0, 1.0, 1.0]] * 3)
        table_a = CoordinateTable(coords.copy(), np.arange(3, dtype=np.int64))
        table_b = CoordinateTable(coords.copy(), np.arange(3, dtype=np.int64))
        got_a, got_b, got_cand = sweep_pairs_compiled(table_a, table_b)
        want_a, want_b, want_cand = sweep_pairs(table_a, table_b)
        assert len(got_a) == 9 and got_cand == want_cand
        assert _pairs_set(got_a, got_b) == _pairs_set(want_a, want_b)

    def test_empty_sides(self, force_compiled):
        empty = CoordinateTable.from_mbrs([])
        table = _random_table(5, 9)
        for a, b in ((empty, table), (table, empty), (empty, empty)):
            idx_a, idx_b = intersect_pairs_compiled(a, b)
            assert len(idx_a) == 0 and len(idx_b) == 0
            idx_a, idx_b, candidates = sweep_pairs_compiled(a, b)
            assert len(idx_a) == 0 and candidates == 0


class TestRangeDescent:
    """The flattened descent == the uncompiled probe walk, counters included."""

    @staticmethod
    def _build(n_a=300, seed=21):
        objects_a = list(
            uniform_boxes(n_a, space=20.0, side_range=(0.5, 2.0), seed=seed)
        )
        join = TouchJoin(backend="columnar")
        payload = join._build(objects_a, JoinStatistics())
        return payload["tree"], payload["table_a"], payload["leaf_slices"]

    def test_flat_aggregates(self, force_compiled):
        tree, table_a, leaf_slices = self._build()
        flat = flatten_hierarchy(tree, leaf_slices)
        root = flat.index[tree.root]
        # The root subtree spans all of A and aggregates every internal
        # node's child count.
        assert flat.sub_stop[root] - flat.sub_start[root] == len(table_a)
        internal_children = sum(
            len(node.children)
            for node in tree.iter_nodes()
            if not node.is_leaf
        )
        assert int(flat.sub_tests[root]) == internal_children

    @pytest.mark.parametrize("probe_side", [(0.5, 2.0), (6.0, 18.0)])
    def test_descent_matches_columnar_probe(self, force_compiled, probe_side):
        # Fat probes (second parametrization) cover whole subtrees, so
        # the true-hit shortcut fires; counters must not notice.
        tree, table_a, leaf_slices = self._build()
        from repro.core.assignment import assign_table_b

        table_b = CoordinateTable.from_objects(
            list(
                uniform_boxes(
                    200, space=20.0, side_range=probe_side, seed=77
                )
            )
        )
        stats_ref = JoinStatistics()
        assigned_ref = assign_table_b(tree, table_b, None, stats_ref)
        want = probe_assigned_nodes_columnar(
            table_a, leaf_slices, table_b, assigned_ref, stats_ref
        )

        stats_got = JoinStatistics()
        assigned_got = assign_table_b(tree, table_b, None, stats_got)
        flat = flatten_hierarchy(tree, leaf_slices)
        got = probe_assigned_nodes_compiled(
            flat, table_a, table_b, assigned_got, stats_got
        )
        assert sorted(got) == sorted(want)
        assert stats_got.comparisons == stats_ref.comparisons
        assert stats_got.node_tests == stats_ref.node_tests

    def test_universe_covering_probe_emits_every_row(self, force_compiled):
        tree, table_a, leaf_slices = self._build(n_a=120, seed=5)
        flat = flatten_hierarchy(tree, leaf_slices)
        universe_lo = table_a.lo.min(axis=0) - 1.0
        universe_hi = table_a.hi.max(axis=0) + 1.0
        b_lo = universe_lo[None, :]
        b_hi = universe_hi[None, :]
        root = flat.index[tree.root]
        hit_a, hit_b, comparisons, node_tests = descend_ranges(
            flat,
            table_a.lo,
            table_a.hi,
            b_lo,
            b_hi,
            np.array([root], dtype=np.int64),
            np.array([0], dtype=np.int64),
        )
        assert sorted(hit_a.tolist()) == list(range(len(table_a)))
        assert hit_b.tolist() == [0] * len(table_a)
        # True hit at the root: the charge equals a full descent of the
        # whole tree for one probe row.
        assert comparisons == len(table_a)
        assert node_tests == int(flat.sub_tests[root])


class TestAlgorithmsCompiled:
    def test_touch_one_shot_pairs(self, force_compiled):
        a = uniform_boxes(400, space=20.0, side_range=(0.5, 2.0), seed=11)
        b = uniform_boxes(600, space=20.0, side_range=(2.0, 10.0), seed=12)
        want = TouchJoin(backend="columnar").join(a, b)
        got = TouchJoin(backend="compiled").join(a, b)
        assert got.stats.extra["backend"] == "compiled"
        assert got.pair_set() == want.pair_set()

    @pytest.mark.parametrize("kernel", ["nested", "sweep"])
    def test_touch_local_kernels_exact(self, force_compiled, kernel):
        a = uniform_boxes(250, space=20.0, side_range=(0.5, 2.0), seed=13)
        b = uniform_boxes(350, space=20.0, side_range=(0.5, 3.0), seed=14)
        want = TouchJoin(backend="columnar", local_kernel=kernel).join(a, b)
        got = TouchJoin(backend="compiled", local_kernel=kernel).join(a, b)
        assert got.pair_set() == want.pair_set()
        assert got.stats.comparisons == want.stats.comparisons

    def test_touch_probe_counters_exact(self, force_compiled):
        a = list(uniform_boxes(300, space=20.0, side_range=(0.5, 2.0), seed=15))
        b = list(uniform_boxes(200, space=20.0, side_range=(4.0, 12.0), seed=16))
        outcomes = {}
        for backend in ("columnar", "compiled"):
            join = TouchJoin(backend=backend)
            index = join.prepare(a)
            result = join.probe(index, b)
            outcomes[backend] = (
                result.pair_set(),
                result.stats.comparisons,
                result.stats.node_tests,
            )
        assert outcomes["columnar"] == outcomes["compiled"]

    def test_nested_loop(self, force_compiled):
        a = uniform_boxes(150, space=20.0, side_range=(0.5, 2.0), seed=17)
        b = uniform_boxes(200, space=20.0, side_range=(0.5, 2.0), seed=18)
        want = NestedLoopJoin(backend="columnar").join(a, b)
        got = NestedLoopJoin(backend="compiled").join(a, b)
        assert got.pair_set() == want.pair_set()
        assert got.stats.comparisons == want.stats.comparisons

    @pytest.mark.parametrize("name", ["PBSM-500", "TwoLayer-500"])
    def test_partitioners_demote_to_columnar(self, force_compiled, name):
        a = uniform_boxes(200, space=20.0, side_range=(0.5, 2.0), seed=19)
        b = uniform_boxes(300, space=20.0, side_range=(0.5, 2.0), seed=20)
        want = make_algorithm(name, backend="columnar").join(a, b)
        got = make_algorithm(name, backend="compiled").join(a, b)
        assert got.pair_set() == want.pair_set()
        assert got.stats.comparisons == want.stats.comparisons
        assert got.stats.extra.get("backend") == "columnar"


class TestEmptySidesEveryBackend:
    """Empty-side joins through every backend (the from_objects fix)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "name", ["NL", "TOUCH", "PBSM-500", "TwoLayer-500"]
    )
    def test_empty_sides(self, force_compiled, backend, name):
        objects = list(
            uniform_boxes(40, space=20.0, side_range=(0.5, 2.0), seed=23)
        )
        algorithm = make_algorithm(name, backend=backend)
        assert algorithm.join([], objects).pairs == []
        assert algorithm.join(objects, []).pairs == []
        assert algorithm.join([], []).pairs == []
