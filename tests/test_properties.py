"""Property-based tests (hypothesis) for the core invariants.

These generate adversarial inputs — degenerate boxes, shared edges,
containment towers, duplicate coordinates — and check the paper's
theorems: every algorithm returns exactly the ground-truth pair set
(Theorem 1 + Lemma 3), plus structural invariants of the substrates.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.assignment import assign_dataset_b
from repro.core.touch import TouchJoin
from repro.core.tree import TouchTree
from repro.geometry.mbr import MBR, total_mbr
from repro.geometry.objects import SpatialObject
from repro.grid.uniform import UniformGrid
from repro.joins.registry import available, make_algorithm
from repro.rtree.rtree import RTree
from repro.rtree.str_pack import str_partition
from repro.validation import assert_matches_ground_truth, brute_force_pairs

# -- strategies -------------------------------------------------------------

coordinate = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False, width=32
)
side = st.floats(min_value=0.0, max_value=40.0, allow_nan=False, width=32)


@st.composite
def mbr_strategy(draw, dim=2):
    lo = [draw(coordinate) for _ in range(dim)]
    hi = [lo_c + draw(side) for lo_c in lo]
    return MBR(lo, hi)


@st.composite
def objects_strategy(draw, dim=2, max_size=24):
    mbrs = draw(st.lists(mbr_strategy(dim=dim), min_size=0, max_size=max_size))
    return [SpatialObject(i, mbr) for i, mbr in enumerate(mbrs)]


@st.composite
def dataset_pair(draw, dim=2):
    return draw(objects_strategy(dim=dim)), draw(objects_strategy(dim=dim))


# -- MBR algebra -----------------------------------------------------------


class TestMBRProperties:
    @given(mbr_strategy(), mbr_strategy())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(mbr_strategy(), mbr_strategy())
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains(a) and union.contains(b)

    @given(mbr_strategy(), mbr_strategy())
    def test_intersection_consistent_with_predicate(self, a, b):
        inter = a.intersection(b)
        assert (inter is not None) == a.intersects(b)
        if inter is not None:
            assert a.contains(inter) and b.contains(inter)

    @given(mbr_strategy(), st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    def test_expand_monotone(self, box, eps):
        assert box.expand(eps).contains(box)

    @given(mbr_strategy(), mbr_strategy())
    def test_min_distance_zero_iff_intersecting(self, a, b):
        if a.intersects(b):
            assert a.min_distance(b) == 0.0
        else:
            assert a.min_distance(b) > 0.0

    @given(mbr_strategy(), mbr_strategy())
    def test_epsilon_reduction_linf(self, a, b):
        """a.expand(eps) hits b  iff  per-axis gap <= eps (L-inf).

        The equivalence only holds up to float rounding: ``expand``
        computes ``lo - eps`` while the gap computes ``lo - hi``, and
        when the true gap sits within half an ulp of eps the two
        roundings can disagree (hypothesis found ``a.lo = 1.5``,
        ``b.hi = -9.3e-17`` with ``eps = 1.5``).  Razor-edge gaps are
        therefore excluded; everything farther than 1e-9 from eps —
        orders of magnitude above rounding error at these magnitudes —
        must match exactly.
        """
        gaps = [
            max(alo - bhi, blo - ahi, 0.0)
            for alo, ahi, blo, bhi in zip(a.lo, a.hi, b.lo, b.hi)
        ]
        eps = 1.5
        assume(all(abs(gap - eps) > 1e-9 for gap in gaps))
        assert a.expand(eps).intersects(b) == (max(gaps) <= eps)


# -- the grand join equivalence property -------------------------------------


class TestJoinEquivalence:
    @given(dataset_pair())
    @settings(max_examples=25)
    def test_touch_matches_truth_2d(self, pair):
        objects_a, objects_b = pair
        result = TouchJoin(num_partitions=8).join(objects_a, objects_b)
        assert_matches_ground_truth(result, objects_a, objects_b)

    @given(dataset_pair(dim=3))
    @settings(max_examples=15)
    def test_touch_matches_truth_3d(self, pair):
        objects_a, objects_b = pair
        result = TouchJoin(num_partitions=8).join(objects_a, objects_b)
        assert_matches_ground_truth(result, objects_a, objects_b)

    @given(dataset_pair(), st.sampled_from(sorted(info.name for info in available())))
    @settings(max_examples=30)
    def test_every_algorithm_matches_truth(self, pair, name):
        objects_a, objects_b = pair
        result = make_algorithm(name).join(objects_a, objects_b)
        assert_matches_ground_truth(result, objects_a, objects_b)


# -- substrate invariants -----------------------------------------------------


class TestStrProperties:
    @given(objects_strategy(max_size=40), st.integers(min_value=1, max_value=9))
    def test_partition_is_exact_cover(self, objects, capacity):
        groups = str_partition(
            objects, capacity, center_of=lambda o: o.mbr.center(), dim=2
        )
        flattened = sorted(o.oid for g in groups for o in g)
        assert flattened == sorted(o.oid for o in objects)
        assert all(len(g) <= capacity for g in groups)


class TestRTreeProperties:
    @given(objects_strategy(min_boxes := 1, max_size=30), mbr_strategy())
    @settings(max_examples=25)
    def test_query_equals_scan(self, objects, query):
        if not objects:
            return
        tree = RTree(objects, fanout=3)
        expected = {o.oid for o in objects if query.intersects(o.mbr)}
        assert {o.oid for o in tree.query(query)} == expected

    @given(objects_strategy(max_size=30))
    def test_mbr_containment_invariant(self, objects):
        if not objects:
            return
        tree = RTree(objects, fanout=2)
        for node in tree.iter_nodes():
            children_mbrs = (
                [o.mbr for o in node.objects]
                if node.is_leaf
                else [c.mbr for c in node.children]
            )
            assert node.mbr == total_mbr(children_mbrs)


class TestGridProperties:
    @given(objects_strategy(max_size=20), st.integers(min_value=1, max_value=9))
    def test_every_object_in_every_overlapped_cell(self, objects, resolution):
        if not objects:
            return
        universe = total_mbr(o.mbr for o in objects)
        grid = UniformGrid(universe, resolution=resolution)
        for obj in objects:
            grid.insert(obj, obj.mbr)
        for obj in objects:
            for coords in grid.cells_overlapping(obj.mbr):
                assert obj in grid.items_in_cell(coords)

    @given(mbr_strategy(), mbr_strategy(), st.integers(min_value=1, max_value=8))
    def test_reference_point_unique_owner(self, a, b, resolution):
        if not a.intersects(b):
            return
        universe = a.union(b)
        grid = UniformGrid(universe, resolution=resolution)
        common = set(grid.cells_overlapping(a)) & set(grid.cells_overlapping(b))
        owners = [c for c in common if grid.owns_pair(c, a, b)]
        assert len(owners) == 1


class TestTouchStructuralProperties:
    @given(objects_strategy(max_size=30), objects_strategy(max_size=30))
    @settings(max_examples=25)
    def test_single_assignment_and_overlap(self, objects_a, objects_b):
        if not objects_a:
            return
        tree = TouchTree(objects_a, fanout=2, num_partitions=6)
        assign_dataset_b(tree, objects_b)
        seen = set()
        for node in tree.iter_nodes():
            for obj in node.entities_b:
                assert obj.oid not in seen  # Lemma 3 precondition
                seen.add(obj.oid)
                assert node.mbr.intersects(obj.mbr)

    @given(objects_strategy(max_size=30), objects_strategy(max_size=30))
    @settings(max_examples=25)
    def test_filtered_objects_join_nothing(self, objects_a, objects_b):
        """Lemma 1: filtering never discards a joining object."""
        if not objects_a:
            return
        tree = TouchTree(objects_a, fanout=2, num_partitions=6)
        assign_dataset_b(tree, objects_b)
        assigned = {
            o.oid for node in tree.iter_nodes() for o in node.entities_b
        }
        truth = brute_force_pairs(objects_a, objects_b)
        joining_b = {oid_b for _, oid_b in truth}
        assert joining_b <= assigned
