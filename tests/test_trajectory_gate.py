"""The benchmark-trajectory comparison gate must never crash the run.

``benchmarks/trajectory.py`` compares a fresh run against a committed
``BENCH_PR<N>.json`` from an earlier PR.  That file is data from
another machine and another code revision: rows may be missing, keys
may be absent, entries may be malformed.  Every such case must degrade
to a printed "no baseline" note — only genuine regressions and pair
mismatches become warnings.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "trajectory",
    Path(__file__).resolve().parent.parent / "benchmarks" / "trajectory.py",
)
trajectory = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(trajectory)


def _row(seconds=1.0, pairs=10, algorithm="TOUCH", backend="columnar",
         workload="fig9/uniform/a1-b2/eps5"):
    return {
        "algorithm": algorithm,
        "backend": backend,
        "workload": workload,
        "seconds": seconds,
        "pairs": pairs,
    }


class TestCompareGate:
    def test_clean_match_no_warnings(self, capsys):
        warnings = trajectory.compare_points(
            [_row(seconds=1.0)], {"rows": [_row(seconds=1.0)]}, 0.25
        )
        assert warnings == []
        assert "no baseline" not in capsys.readouterr().out

    def test_regression_warns(self):
        warnings = trajectory.compare_points(
            [_row(seconds=2.0)], {"rows": [_row(seconds=1.0)]}, 0.25
        )
        assert len(warnings) == 1 and "regression threshold" in warnings[0]

    def test_pair_mismatch_warns(self):
        warnings = trajectory.compare_points(
            [_row(pairs=11)], {"rows": [_row(pairs=10)]}, 0.25
        )
        assert len(warnings) == 1 and "pairs changed" in warnings[0]

    def test_missing_row_skips_with_note(self, capsys):
        warnings = trajectory.compare_points(
            [_row(backend="compiled")], {"rows": [_row()]}, 0.25
        )
        assert warnings == []
        out = capsys.readouterr().out
        assert "no baseline for TOUCH [compiled]" in out
        assert "skipping comparison" in out

    def test_missing_seconds_key_skips_with_note(self, capsys):
        old = _row()
        del old["seconds"]
        warnings = trajectory.compare_points([_row()], {"rows": [old]}, 0.25)
        assert warnings == []
        assert "no baseline timing" in capsys.readouterr().out

    def test_missing_pairs_key_still_compares_timing(self):
        old = _row(seconds=1.0)
        del old["pairs"]
        warnings = trajectory.compare_points(
            [_row(seconds=5.0)], {"rows": [old]}, 0.25
        )
        assert len(warnings) == 1 and "regression threshold" in warnings[0]

    @pytest.mark.parametrize(
        "previous",
        [
            {},
            {"rows": None},
            {"rows": "not-a-list"[:0]},
            {"rows": [None, 42, {"algorithm": "TOUCH"}, []]},
            [],
            None,
        ],
    )
    def test_malformed_previous_never_crashes(self, previous, capsys):
        warnings = trajectory.compare_points([_row()], previous, 0.25)
        assert warnings == []
        assert "skipping comparison" in capsys.readouterr().out

    def test_nonnumeric_seconds_skips(self, capsys):
        warnings = trajectory.compare_points(
            [_row()], {"rows": [_row(seconds="fast")]}, 0.25
        )
        assert warnings == []
        assert "no baseline timing" in capsys.readouterr().out


class TestPreviousPoint:
    def test_picks_latest_older_pr(self, tmp_path):
        for pr, seconds in ((5, 3.0), (6, 2.0), (7, 1.0)):
            (tmp_path / f"BENCH_PR{pr}.json").write_text(
                json.dumps({"rows": [_row(seconds=seconds)]})
            )
        out = tmp_path / "BENCH_PR7.json"
        found = trajectory.previous_point(tmp_path, out, 7)
        assert found is not None
        name, data = found
        assert name == "BENCH_PR6.json"
        assert data["rows"][0]["seconds"] == 2.0

    def test_unreadable_previous_reports_and_continues(self, tmp_path, capsys):
        (tmp_path / "BENCH_PR6.json").write_text("{not json")
        found = trajectory.previous_point(
            tmp_path, tmp_path / "BENCH_PR7.json", 7
        )
        assert found is None
        assert "could not read previous point" in capsys.readouterr().out

    def test_no_candidates(self, tmp_path):
        assert trajectory.previous_point(
            tmp_path, tmp_path / "BENCH_PR7.json", 7
        ) is None
