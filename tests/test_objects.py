"""Unit tests for spatial objects."""


from repro.geometry.distance import Cylinder
from repro.geometry.mbr import MBR
from repro.geometry.objects import (
    SpatialObject,
    box_object,
    objects_from_mbrs,
    point_object,
)


class TestSpatialObject:
    def test_basic_fields(self):
        mbr = MBR((0, 0), (1, 1))
        obj = SpatialObject(7, mbr)
        assert obj.oid == 7
        assert obj.mbr is mbr
        assert obj.geometry is None

    def test_equality_ignores_geometry(self):
        mbr = MBR((0, 0), (1, 1))
        assert SpatialObject(1, mbr) == SpatialObject(1, mbr)
        assert SpatialObject(1, mbr) != SpatialObject(2, mbr)
        assert SpatialObject(1, mbr) != "something"

    def test_hashable(self):
        mbr = MBR((0, 0), (1, 1))
        assert len({SpatialObject(1, mbr), SpatialObject(1, mbr)}) == 1

    def test_inflated_expands_mbr(self):
        obj = box_object(1, (2, 2), (3, 3))
        fat = obj.inflated(1.0)
        assert fat.mbr == MBR((1, 1), (4, 4))
        assert fat.oid == 1

    def test_inflated_zero_returns_same_object(self):
        obj = box_object(1, (0, 0), (1, 1))
        assert obj.inflated(0.0) is obj

    def test_inflated_preserves_geometry(self):
        cyl = Cylinder((0, 0, 0), (1, 0, 0), 0.5)
        obj = SpatialObject(1, cyl.mbr(), geometry=cyl)
        assert obj.inflated(2.0).geometry is cyl

    def test_repr_contains_oid(self):
        assert "oid=3" in repr(box_object(3, (0,), (1,)))


class TestConstructors:
    def test_box_object(self):
        obj = box_object(5, (0, 0, 0), (1, 2, 3))
        assert obj.mbr.volume() == 6.0

    def test_point_object_is_degenerate(self):
        obj = point_object(5, (1.0, 2.0))
        assert obj.mbr.lo == obj.mbr.hi == (1.0, 2.0)

    def test_objects_from_mbrs_sequential_ids(self):
        mbrs = [MBR((i, i), (i + 1, i + 1)) for i in range(3)]
        objs = objects_from_mbrs(mbrs, start_oid=10)
        assert [o.oid for o in objs] == [10, 11, 12]
        assert objs[1].mbr == mbrs[1]
