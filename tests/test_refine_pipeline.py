"""Filter–refine pipeline: oracle parity, counters, CLI, engine modes.

The load-bearing contract of the geometry tier: for every registry
algorithm and every backend, the MBR filter stage followed by
:class:`~repro.refine.RefinePipeline` returns exactly the pair set of
the brute-force exact-predicate oracle, and the refine counters satisfy
``true_hits + exact_tests == candidate_pairs - false_hit_prunes``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.runner import run_algorithm, use_geometry
from repro.datasets.synthetic import clustered_linestrings, clustered_polygons
from repro.geometry.columnar import BACKENDS
from repro.geometry.objects import SpatialObject
from repro.geometry.shapes import LineString, Point, Polygon
from repro.geometry.vertex_table import shape_of
from repro.joins.registry import available, make_algorithm
from repro.refine import MissingShapesError, RefinePipeline
from repro.stats.counters import JoinStatistics
from repro.validation import brute_force_exact_pairs, brute_force_pairs

EPSILON = 3.0


def shaped_pair(n_a=40, n_b=60):
    a = list(clustered_polygons(n_a, seed=21))
    b = list(clustered_linestrings(n_b, seed=22))
    return a, b


def filter_refine(algorithm, objects_a, objects_b, epsilon, backend="auto"):
    """The full two-stage join: MBR filter, then exact refinement.

    Shapes attach *before* inflation, like the production path in
    ``run_algorithm``: an MBR-only build object must refine as a box of
    its original extent, not of the ε-inflated one (which would count ε
    twice and admit pairs up to 2ε apart).
    """
    overrides = {"backend": backend} if backend else {}
    shaped = [
        obj if obj.geometry is not None
        else SpatialObject(obj.oid, obj.mbr, shape_of(obj))
        for obj in objects_a
    ]
    build = [obj.inflated(epsilon) for obj in shaped]
    result = make_algorithm(algorithm, **overrides).join(build, list(objects_b))
    stats = JoinStatistics()
    refined = RefinePipeline(epsilon, backend=backend).refine(
        result.pairs, build, objects_b, stats=stats
    )
    return refined, stats


def assert_counter_identity(stats):
    assert (
        stats.true_hits + stats.exact_tests
        == stats.candidate_pairs - stats.false_hit_prunes
    )
    assert stats.refined_pairs <= stats.candidate_pairs


class TestOracleParityEveryAlgorithmAndBackend:
    @pytest.mark.parametrize("algorithm", [info.name for info in available()])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_brute_force_oracle(self, algorithm, backend):
        objects_a, objects_b = shaped_pair()
        oracle = brute_force_exact_pairs(objects_a, objects_b, EPSILON)
        refined, stats = filter_refine(
            algorithm, objects_a, objects_b, EPSILON, backend
        )
        assert set(refined) == oracle
        assert_counter_identity(stats)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_epsilon_zero_is_exact_intersection(self, backend):
        objects_a, objects_b = shaped_pair()
        oracle = brute_force_exact_pairs(objects_a, objects_b, 0.0)
        refined, stats = filter_refine(
            "TOUCH", objects_a, objects_b, 0.0, backend
        )
        assert set(refined) == oracle
        assert_counter_identity(stats)

    def test_backends_agree_pair_for_pair(self):
        objects_a, objects_b = shaped_pair()
        results = [
            filter_refine("TOUCH", objects_a, objects_b, EPSILON, backend)[0]
            for backend in BACKENDS
        ]
        for other in results[1:]:
            assert other == results[0]


class TestAdversarialGeometry:
    def test_mbr_only_build_object_near_threshold(self):
        # Regression (hypothesis-found): the box fallback for an
        # MBR-only build object must come from its *original* MBR, not
        # the ε-inflated copy the filter index was built from — the
        # inflated fallback counts ε twice and admits pairs up to 2ε
        # apart.  Two point-boxes sqrt(26) ≈ 5.099 apart at ε = 5.
        from repro.geometry.mbr import MBR

        a = SpatialObject(0, MBR((0.0, 30.0), (0.0, 30.0)))
        b = SpatialObject(0, MBR((1.0, 25.0), (1.0, 25.0)))
        assert brute_force_exact_pairs([a], [b], 5.0) == set()
        for backend in BACKENDS:
            refined, stats = filter_refine("INL", [a], [b], 5.0, backend)
            assert refined == []
            assert_counter_identity(stats)

    def test_mbr_overlap_but_shapes_far(self):
        # Two diagonal hairpins: MBRs coincide, shapes sit in opposite
        # corners > epsilon apart — the classic false hit the filter
        # stage cannot see and the refine stage must kill.
        a = LineString([(0.0, 0.0), (1.0, 1.0)], oid=0)
        b = LineString([(0.0, 10.0), (1.0, 9.0)], oid=0)
        box = a.mbr().union(b.mbr())
        obj_a = SpatialObject(0, box, a)
        obj_b = SpatialObject(0, box, b)
        refined, stats = filter_refine("NL", [obj_a], [obj_b], 1.0)
        assert refined == []
        assert stats.candidate_pairs == 1
        assert brute_force_exact_pairs([obj_a], [obj_b], 1.0) == set()

    def test_touching_mbrs_disjoint_shapes_at_epsilon_zero(self):
        a = Polygon([(0, 0), (2, 0), (0, 2)], oid=0)  # lower-left triangle
        b = Polygon([(2, 2), (0.1, 2), (2, 0.1)], oid=1)  # upper-right
        obj_a = SpatialObject(0, a.mbr(), a)
        obj_b = SpatialObject(1, b.mbr(), b)
        assert obj_a.mbr.intersects(obj_b.mbr)
        refined, _ = filter_refine("NL", [obj_a], [obj_b], 0.0)
        assert refined == []

    def test_true_hit_shortcut_counts(self):
        # Overlapping solid squares: the interior rectangles already
        # touch, so the pair must resolve without an exact test.
        a = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)], oid=0)
        b = Polygon([(1, 1), (5, 1), (5, 5), (1, 5)], oid=0)
        obj_a = SpatialObject(0, a.mbr(), a)
        obj_b = SpatialObject(0, b.mbr(), b)
        refined, stats = filter_refine("NL", [obj_a], [obj_b], 1.0)
        assert refined == [(0, 0)]
        assert stats.true_hits == 1
        assert stats.exact_tests == 0


coordinate = st.floats(
    min_value=-30.0, max_value=30.0, allow_nan=False, allow_infinity=False, width=32
)


@st.composite
def shaped_object(draw, oid):
    kind = draw(st.sampled_from(("point", "linestring", "polygon", "mbr")))
    if kind == "point":
        shape = Point([(draw(coordinate), draw(coordinate))], oid=oid)
    elif kind == "linestring":
        x, y = draw(coordinate), draw(coordinate)
        steps = draw(
            st.lists(
                st.tuples(
                    st.floats(min_value=-4, max_value=4, allow_nan=False, width=32),
                    st.floats(min_value=-4, max_value=4, allow_nan=False, width=32),
                ),
                min_size=1,
                max_size=4,
            )
        )
        verts = [(x, y)]
        for dx, dy in steps:
            x, y = x + dx, y + dy
            verts.append((x, y))
        verts.append((max(px for px, _ in verts) + 0.5, verts[0][1]))
        shape = LineString(verts, oid=oid)
    elif kind == "polygon":
        import math as _math

        cx, cy = draw(coordinate), draw(coordinate)
        n = draw(st.integers(min_value=3, max_value=6))
        radii = [
            draw(st.floats(min_value=0.5, max_value=6.0, allow_nan=False, width=32))
            for _ in range(n)
        ]
        shape = Polygon(
            [
                (
                    cx + r * _math.cos(2 * _math.pi * i / n),
                    cy + r * _math.sin(2 * _math.pi * i / n),
                )
                for i, r in enumerate(radii)
            ],
            oid=oid,
        )
    else:
        x, y = draw(coordinate), draw(coordinate)
        w = draw(st.floats(min_value=0, max_value=6, allow_nan=False, width=32))
        h = draw(st.floats(min_value=0, max_value=6, allow_nan=False, width=32))
        from repro.geometry.mbr import MBR

        return SpatialObject(oid, MBR((x, y), (x + w, y + h)))
    return SpatialObject(oid, shape.mbr(), shape)


@st.composite
def shaped_sets(draw):
    n_a = draw(st.integers(min_value=0, max_value=8))
    n_b = draw(st.integers(min_value=0, max_value=8))
    return (
        [draw(shaped_object(i)) for i in range(n_a)],
        [draw(shaped_object(i)) for i in range(n_b)],
    )


class TestPropertyOracle:
    @settings(max_examples=30, deadline=None)
    @given(
        data=shaped_sets(),
        epsilon=st.sampled_from((0.0, 1.0, 5.0)),
        algorithm=st.sampled_from(sorted(info.name for info in available())),
        backend=st.sampled_from(BACKENDS),
    )
    def test_pipeline_equals_oracle(self, data, epsilon, algorithm, backend):
        objects_a, objects_b = data
        oracle = brute_force_exact_pairs(objects_a, objects_b, epsilon)
        refined, stats = filter_refine(
            algorithm, objects_a, objects_b, epsilon, backend
        )
        assert set(refined) == oracle
        assert_counter_identity(stats)
        # Soundness of the stages separately: refined ⊆ MBR candidates.
        candidates = brute_force_pairs(
            [obj.inflated(epsilon) for obj in objects_a], objects_b
        )
        assert set(refined) <= candidates


class TestRunnerIntegration:
    def test_exact_record_counters(self):
        polys = clustered_polygons(30, seed=31)
        lines = clustered_linestrings(40, seed=32)
        with use_geometry("exact"):
            record = run_algorithm("TOUCH", polys, lines, EPSILON)
        extra = record.extra
        assert extra["geometry"] == "exact"
        assert (
            extra["true_hits"] + extra["exact_tests"]
            == extra["candidate_pairs"] - extra["false_hit_prunes"]
        )
        oracle = brute_force_exact_pairs(list(polys), list(lines), EPSILON)
        assert record.result_pairs == len(oracle)

    def test_mbr_mode_records_unchanged(self):
        polys = clustered_polygons(30, seed=31)
        lines = clustered_linestrings(40, seed=32)
        record = run_algorithm("TOUCH", polys, lines, EPSILON)
        for key in (
            "geometry",
            "candidate_pairs",
            "true_hits",
            "exact_tests",
            "false_hit_prunes",
            "refine_seconds",
        ):
            assert key not in record.extra

    def test_exact_requires_shapes(self):
        from repro.datasets.synthetic import uniform_boxes

        boxes_a = uniform_boxes(20, seed=41)
        boxes_b = uniform_boxes(20, seed=42)
        with use_geometry("exact"):
            with pytest.raises(MissingShapesError, match=boxes_a.name):
                run_algorithm("TOUCH", boxes_a, boxes_b, EPSILON)

    def test_workers_exact_matches_sequential(self):
        from repro.bench.config import RunOptions

        polys = clustered_polygons(30, seed=31)
        lines = clustered_linestrings(40, seed=32)
        with use_geometry("exact"):
            sequential = run_algorithm("TOUCH", polys, lines, EPSILON)
            parallel = run_algorithm(
                "TOUCH", polys, lines, EPSILON, options=RunOptions(workers=2)
            )
        assert parallel.result_pairs == sequential.result_pairs
        for key in ("candidate_pairs", "true_hits", "exact_tests"):
            assert parallel.extra[key] == sequential.extra[key]


class TestPipelineValidation:
    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValueError, match="epsilon"):
            RefinePipeline(-1.0)

    def test_rejects_infinite_epsilon(self):
        with pytest.raises(ValueError, match="epsilon"):
            RefinePipeline(float("inf"))

    def test_empty_candidates(self):
        stats = JoinStatistics()
        assert RefinePipeline(1.0).refine([], [], [], stats=stats) == []
        assert stats.candidate_pairs == 0

    def test_mbr_only_objects_refine_as_boxes(self):
        from repro.geometry.mbr import MBR

        a = SpatialObject(0, MBR((0, 0), (1, 1)))
        b = SpatialObject(0, MBR((3, 0), (4, 1)))
        pipeline = RefinePipeline(1.0)
        assert pipeline.refine([(0, 0)], [a], [b]) == []
        assert RefinePipeline(2.0).refine([(0, 0)], [a], [b]) == [(0, 0)]
        assert shape_of(a).vertices == ((0.0, 0.0), (1.0, 1.0))


class TestCliExitCodes:
    def test_run_exact_without_shapes_exits_2(self, capsys):
        from repro.bench.cli import main

        assert main(["run", "fig9", "--scale", "smoke", "--geometry", "exact"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "uniform" in err
        assert "shape payloads" in err

    def test_run_filter_refine_experiment(self, capsys):
        from repro.bench.cli import main

        assert main(["run", "filter_refine", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "filter" in out.lower()
