"""Unit tests for the bulk-loaded R-Tree substrate."""

import pytest

from repro.datasets.synthetic import uniform_boxes
from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject, box_object
from repro.rtree.rtree import RTree
from repro.stats.counters import JoinStatistics


class TestConstruction:
    def test_empty_tree(self):
        tree = RTree([])
        assert tree.root is None
        assert tree.height == 0
        assert tree.query(MBR((0, 0), (1, 1))) == []
        assert tree.memory_bytes() == 0

    def test_single_object(self):
        obj = box_object(1, (0, 0), (1, 1))
        tree = RTree([obj])
        assert tree.height == 1
        assert tree.root.is_leaf
        assert tree.root.mbr == obj.mbr

    def test_rejects_small_fanout(self):
        with pytest.raises(ValueError, match="fanout"):
            RTree([], fanout=1)

    def test_rejects_bad_leaf_capacity(self):
        with pytest.raises(ValueError, match="leaf_capacity"):
            RTree([], leaf_capacity=0)

    def test_rejects_unknown_method(self):
        objs = list(uniform_boxes(10, seed=1))
        with pytest.raises(ValueError, match="packing method"):
            RTree(objs, method="zorder")

    def test_leaf_capacity_defaults_to_fanout(self):
        objs = list(uniform_boxes(64, seed=1))
        tree = RTree(objs, fanout=4)
        assert all(
            len(node.objects) <= 4 for node in tree.iter_nodes() if node.is_leaf
        )

    @pytest.mark.parametrize("method", ["str", "hilbert"])
    def test_all_objects_in_leaves(self, method):
        objs = list(uniform_boxes(100, seed=2))
        tree = RTree(objs, fanout=4, method=method)
        stored = sorted(o.oid for o in tree.root.iter_leaf_objects())
        assert stored == list(range(100))

    @pytest.mark.parametrize("method", ["str", "hilbert"])
    def test_node_mbrs_enclose_children(self, method):
        objs = list(uniform_boxes(120, seed=3))
        tree = RTree(objs, fanout=3, method=method)
        for node in tree.iter_nodes():
            if node.is_leaf:
                for obj in node.objects:
                    assert node.mbr.contains(obj.mbr)
            else:
                for child in node.children:
                    assert node.mbr.contains(child.mbr)

    def test_fanout_bounds_children(self):
        objs = list(uniform_boxes(200, seed=4))
        tree = RTree(objs, fanout=5)
        for node in tree.iter_nodes():
            if not node.is_leaf:
                assert 1 <= len(node.children) <= 5

    def test_levels_decrease_towards_leaves(self):
        objs = list(uniform_boxes(50, seed=5))
        tree = RTree(objs, fanout=2)
        for node in tree.iter_nodes():
            for child in node.children:
                assert child.level == node.level - 1

    def test_height_grows_logarithmically(self):
        small = RTree(list(uniform_boxes(16, seed=6)), fanout=2)
        large = RTree(list(uniform_boxes(256, seed=7)), fanout=2)
        assert large.height > small.height

    def test_counts(self):
        objs = list(uniform_boxes(64, seed=8))
        tree = RTree(objs, fanout=2)
        assert tree.leaf_count() == 32
        assert tree.node_count() >= 63  # at least a full binary tree


class TestQuery:
    def test_query_finds_exactly_intersecting(self):
        objs = list(uniform_boxes(300, seed=9))
        tree = RTree(objs, fanout=4)
        query = MBR((100.0, 100.0, 100.0), (300.0, 300.0, 300.0))
        expected = {o.oid for o in objs if query.intersects(o.mbr)}
        got = {o.oid for o in tree.query(query)}
        assert got == expected

    def test_query_counts_statistics(self):
        objs = list(uniform_boxes(100, seed=10))
        tree = RTree(objs, fanout=2)
        stats = JoinStatistics()
        tree.query(MBR((0, 0, 0), (1000, 1000, 1000)), stats)
        # A full-universe query visits every leaf: one comparison per object.
        assert stats.comparisons == 100
        assert stats.node_tests > 0

    def test_query_empty_region(self):
        objs = list(uniform_boxes(100, seed=11))
        tree = RTree(objs, fanout=4)
        assert tree.query(MBR((2000, 2000, 2000), (2001, 2001, 2001))) == []

    def test_query_with_duplicated_mbrs(self):
        mbr = MBR((1.0, 1.0), (2.0, 2.0))
        objs = [SpatialObject(i, mbr) for i in range(10)]
        tree = RTree(objs, fanout=2)
        assert len(tree.query(mbr)) == 10


class TestMemory:
    def test_memory_grows_with_objects(self):
        small = RTree(list(uniform_boxes(32, seed=12)), fanout=2)
        large = RTree(list(uniform_boxes(512, seed=13)), fanout=2)
        assert large.memory_bytes() > small.memory_bytes()

    def test_smaller_fanout_means_more_nodes(self):
        objs = list(uniform_boxes(256, seed=14))
        assert RTree(objs, fanout=2).node_count() > RTree(objs, fanout=8).node_count()
