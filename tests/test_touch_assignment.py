"""TOUCH phase 2: hierarchical single assignment with filtering.

Covers the three cases of Algorithm 3 — no overlap (filter), exactly one
overlap (descend), several overlaps (assign to the current node) — plus
the single-assignment invariant behind Lemma 3.
"""

import pytest

from repro.core.assignment import assign_dataset_b, locate_node
from repro.core.tree import TouchTree
from repro.datasets.synthetic import uniform_boxes
from repro.geometry.mbr import MBR
from repro.geometry.objects import box_object
from repro.stats.counters import JoinStatistics


@pytest.fixture
def two_cluster_tree():
    """A tree with two well-separated leaf buckets.

    Bucket L: four unit boxes near the origin; bucket R: four near (100,
    100).  With fanout 2 the root has exactly these two leaves as
    children.
    """
    objs = [box_object(i, (i, 0), (i + 1, 1)) for i in range(4)]
    objs += [box_object(4 + i, (100 + i, 100), (101 + i, 101)) for i in range(4)]
    return TouchTree(objs, fanout=2, leaf_capacity=4)


class TestLocateNode:
    def test_object_inside_one_leaf(self, two_cluster_tree):
        node = locate_node(two_cluster_tree.root, MBR((1.0, 0.2), (1.5, 0.8)))
        assert node is not None and node.is_leaf

    def test_object_outside_everything_is_filtered(self, two_cluster_tree):
        assert locate_node(two_cluster_tree.root, MBR((500, 500), (501, 501))) is None

    def test_object_in_dead_space_is_filtered(self, two_cluster_tree):
        # Inside the root MBR but in the gap between the two clusters.
        node = locate_node(two_cluster_tree.root, MBR((50, 50), (51, 51)))
        assert node is None

    def test_object_spanning_both_clusters_assigned_to_root(self, two_cluster_tree):
        node = locate_node(two_cluster_tree.root, MBR((0, 0), (101, 101)))
        assert node is two_cluster_tree.root

    def test_counts_node_tests(self, two_cluster_tree):
        stats = JoinStatistics()
        locate_node(two_cluster_tree.root, MBR((1.0, 0.2), (1.5, 0.8)), stats)
        assert stats.node_tests >= 2  # root + at least its children

    def test_single_leaf_tree(self):
        tree = TouchTree([box_object(0, (0, 0), (1, 1))], leaf_capacity=4)
        assert locate_node(tree.root, MBR((0.2, 0.2), (0.4, 0.4))) is tree.root
        assert locate_node(tree.root, MBR((5, 5), (6, 6))) is None


class TestAssignDatasetB:
    def test_every_object_assigned_or_filtered(self, two_cluster_tree):
        b = list(uniform_boxes(300, seed=91, side_range=(0.0, 3.0), space=200.0))
        filtered = assign_dataset_b(two_cluster_tree, b)
        assert two_cluster_tree.assigned_b_count() + filtered == 300

    def test_single_assignment_invariant(self, two_cluster_tree):
        """Lemma 3's precondition: each b in at most one node."""
        b = list(uniform_boxes(300, seed=92, side_range=(0.0, 5.0), space=200.0))
        assign_dataset_b(two_cluster_tree, b)
        seen: set[int] = set()
        for node in two_cluster_tree.iter_nodes():
            for obj in node.entities_b:
                assert obj.oid not in seen
                seen.add(obj.oid)

    def test_assigned_node_overlaps_object(self, two_cluster_tree):
        b = list(uniform_boxes(200, seed=93, side_range=(0.0, 4.0), space=200.0))
        assign_dataset_b(two_cluster_tree, b)
        for node in two_cluster_tree.iter_nodes():
            for obj in node.entities_b:
                assert node.mbr.intersects(obj.mbr)

    def test_filtered_objects_overlap_no_leaf(self, two_cluster_tree):
        """Filter soundness: a filtered b intersects no leaf MBR."""
        b = list(uniform_boxes(300, seed=94, side_range=(0.0, 2.0), space=200.0))
        assigned_ids = set()
        filtered = assign_dataset_b(two_cluster_tree, b)
        for node in two_cluster_tree.iter_nodes():
            assigned_ids.update(o.oid for o in node.entities_b)
        leaves = two_cluster_tree.leaves()
        for obj in b:
            if obj.oid not in assigned_ids:
                assert not any(leaf.mbr.intersects(obj.mbr) for leaf in leaves)
        assert filtered == 300 - len(assigned_ids)

    def test_stats_filtered_counter(self, two_cluster_tree):
        b = [box_object(0, (500, 500), (501, 501))]
        stats = JoinStatistics()
        assign_dataset_b(two_cluster_tree, b, stats)
        assert stats.filtered == 1

    def test_deep_descent_prefers_lowest_node(self):
        """b overlapping a single deep bucket must land in that bucket."""
        objs = [box_object(i, (10 * i, 0), (10 * i + 1, 1)) for i in range(16)]
        tree = TouchTree(objs, fanout=2, leaf_capacity=1)
        target = locate_node(tree.root, MBR((40.2, 0.2), (40.8, 0.8)))
        assert target.is_leaf
        assert [o.oid for o in target.entities_a] == [4]
