"""Smoke tests: every shipped example must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert "neuroscience_touch_detection.py" in names
    assert "gis_collision_detection.py" in names
    assert "algorithm_shootout.py" in names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print their findings"
