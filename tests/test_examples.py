"""Smoke tests: every shipped example must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert "neuroscience_touch_detection.py" in names
    assert "gis_collision_detection.py" in names
    assert "algorithm_shootout.py" in names


def _example_param(path: Path):
    """The full-shootout example replays most of the evaluation; mark it
    slow so the CI matrix (``-m "not slow"``) stays fast."""
    if path.stem == "algorithm_shootout":
        return pytest.param(path, marks=pytest.mark.slow)
    return path


@pytest.mark.parametrize(
    "script", [_example_param(p) for p in EXAMPLES], ids=lambda p: p.stem
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print their findings"
