"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.datasets.synthetic import clustered_boxes, gaussian_boxes, uniform_boxes
from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject

# Keep property tests fast and deterministic enough for CI while still
# exploring a meaningful slice of the input space.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def small_uniform_pair():
    """A tiny uniform A x B pair used by many correctness tests."""
    return uniform_boxes(80, seed=11), uniform_boxes(240, seed=12)


@pytest.fixture(scope="session")
def small_gaussian_pair():
    return gaussian_boxes(80, seed=13), gaussian_boxes(240, seed=14)


@pytest.fixture(scope="session")
def small_clustered_pair():
    return clustered_boxes(80, seed=15, n_clusters=10), clustered_boxes(
        240, seed=16, n_clusters=10
    )


@pytest.fixture
def unit_objects():
    """A hand-crafted 2D configuration with known intersections.

    Layout (ids):  a0 = [0,2]x[0,2], a1 = [3,5]x[3,5], a2 = [10,11]x[10,11]
                   b0 = [1,3]x[1,3] (hits a0 and touches a1 at corner (3,3)),
                   b1 = [4,6]x[4,6] (hits a1), b2 = [20,21]x[20,21] (nothing).
    """
    a = [
        SpatialObject(0, MBR((0.0, 0.0), (2.0, 2.0))),
        SpatialObject(1, MBR((3.0, 3.0), (5.0, 5.0))),
        SpatialObject(2, MBR((10.0, 10.0), (11.0, 11.0))),
    ]
    b = [
        SpatialObject(0, MBR((1.0, 1.0), (3.0, 3.0))),
        SpatialObject(1, MBR((4.0, 4.0), (6.0, 6.0))),
        SpatialObject(2, MBR((20.0, 20.0), (21.0, 21.0))),
    ]
    expected = {(0, 0), (1, 0), (1, 1)}
    return a, b, expected
