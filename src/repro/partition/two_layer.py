"""Two-layer space-oriented partitioning join: duplicate-free by design.

The modern alternative to PBSM's reference-point machinery (Tsitsigkos
& Mamoulis, "Parallel In-Memory Evaluation of Spatial Joins", 2019;
Tsitsigkos et al., "Two-layer Space-oriented Partitioning for Non-point
Data", 2023).  Layer one overlays the universe with a uniform tile grid
and multiple-assigns both datasets, but classifies every replica by
which corner of its home tile it owns (the class masks of
:mod:`repro.partition.classes`).  Layer two joins each tile with the
reduced *mini-join matrix* — only class combinations whose begin
corners pin the pair to the current tile are compared — so the union of
all mini-joins contains every intersecting pair exactly once and **no
per-pair ownership test is ever executed** (``stats.dedup_checks`` is
asserted 0 by the bench harness and the test suite).

Two execution backends, mirroring PBSM:

- ``object`` — per-tile class buckets of
  :class:`~repro.geometry.objects.SpatialObject`, each allowed class
  pair joined with a local kernel from :mod:`repro.joins.local`
  (plane sweep by default);
- ``columnar`` — flat ``(object, tile-key, class-mask)`` entry arrays
  from :meth:`ColumnarGrid.entries(..., with_class_masks=True)
  <repro.grid.columnar.ColumnarGrid.entries>`, tile-merged by key sort
  + binary search and mask-filtered before one batched intersection
  test per chunk (:class:`~repro.geometry.columnar.CoordinateTable`
  kernels).
"""

from __future__ import annotations

import itertools
import time

from repro.geometry.columnar import (
    CoordinateTable,
    require_numpy,
    resolve_backend,
    validate_backend,
)
from repro.geometry.mbr import MBR, total_mbr
from repro.geometry.objects import SpatialObject
from repro.grid import UniformGrid, resolution_label
from repro.grid.columnar import ColumnarGrid, entry_join_candidates
from repro.joins.base import Pair, SpatialJoinAlgorithm
from repro.joins.local import LOCAL_KERNELS
from repro.partition.classes import full_mask, mini_join_masks
from repro.stats import memory as memmodel
from repro.stats.counters import JoinStatistics

try:  # pragma: no cover - optional dependency of the columnar path
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = ["TwoLayerJoin"]


class TwoLayerJoin(SpatialJoinAlgorithm):
    """Tile overlay + per-tile class lists + duplicate-free mini-joins.

    Parameters
    ----------
    resolution:
        Number of tiles per dimension.
    cell_size:
        Alternative, scale-invariant configuration: the tile edge length
        in space units (``TwoLayer-500`` is ``cell_size = 2.0`` over the
        paper's 1000-unit universe, like PBSM).  At most one of
        ``resolution`` / ``cell_size`` may be given; giving neither
        defaults to ``resolution = 100`` — two-layer tiles are normally
        coarser than PBSM cells because the mini-joins, not the tile
        granularity, bound the comparison count.
    local_kernel:
        Object-backend kernel joining two class lists of a tile:
        ``"sweep"`` (default, as in the source papers) or ``"nested"``.
        The ``"grid"`` kernel is rejected — it deduplicates internally
        with reference-point tests, which would break this algorithm's
        defining ``dedup_checks == 0`` guarantee.  The columnar backend
        always batch-tests the mask-filtered candidates (nested
        comparison semantics); the pair set is identical either way.
    universe:
        Optional fixed universe; defaults to the union of both datasets'
        extents.  Objects outside a fixed universe clamp into the edge
        tiles on both backends.
    backend:
        ``"auto"`` (columnar when numpy is importable), ``"object"`` or
        ``"columnar"``.
    """

    name = "TwoLayer"

    #: The paper universe edge used for familiar display names
    #: (cell 2.0 -> "TwoLayer-500"), shared with PBSM.
    PAPER_SPACE = 1000.0

    def __init__(
        self,
        resolution: int | None = None,
        cell_size: float | None = None,
        local_kernel: str = "sweep",
        universe: MBR | None = None,
        backend: str = "auto",
    ) -> None:
        if resolution is None and cell_size is None:
            resolution = 100
        if resolution is not None and cell_size is not None:
            raise ValueError("specify at most one of resolution and cell_size")
        if resolution is not None and resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        if cell_size is not None and cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        if local_kernel not in LOCAL_KERNELS:
            raise ValueError(f"unknown local kernel {local_kernel!r}")
        if local_kernel == "grid":
            raise ValueError(
                "the grid kernel deduplicates with per-pair reference-point "
                "tests; the two-layer join exists to perform none — use "
                "'sweep' or 'nested'"
            )
        self.resolution = resolution
        self.cell_size = cell_size
        self.local_kernel = local_kernel
        self.universe = universe
        self.backend = validate_backend(backend)
        self.name = "TwoLayer-" + resolution_label(
            resolution, cell_size, self.PAPER_SPACE
        )

    def describe(self) -> dict:
        return {
            "resolution": self.resolution,
            "cell_size": self.cell_size,
            "local_kernel": self.local_kernel,
            "backend": self.backend,
        }

    def estimate_bytes(self, n_a: int, n_b: int, dim: int) -> int:
        # Both tables plus the uniform grid: real replication is only
        # known after hashing, so price the assumed pre-build factor
        # (relative footprints are what the governor compares).
        refs = memmodel.GRID_REPLICATION_ESTIMATE * (n_a + n_b)
        return super().estimate_bytes(n_a, n_b, dim) + memmodel.grid_cells_bytes(
            refs, refs
        )

    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        if not objects_a or not objects_b:
            return []
        universe = self.universe
        if universe is None:
            universe = total_mbr(o.mbr for o in objects_a).union(
                total_mbr(o.mbr for o in objects_b)
            )
        backend = resolve_backend(self.backend, allow_compiled=False)
        stats.extra["backend"] = backend
        if backend == "columnar":
            return self._execute_columnar(objects_a, objects_b, universe, stats)
        return self._execute_object(objects_a, objects_b, universe, stats)

    # -- grid construction (shared by one-shot and lifecycle paths) -----
    def _make_grid(self, universe: MBR) -> UniformGrid:
        if self.resolution is not None:
            return UniformGrid(universe, resolution=self.resolution)
        return UniformGrid(universe, cell_size=self.cell_size)

    def _make_columnar_grid(self, universe: MBR) -> ColumnarGrid:
        if self.resolution is not None:
            return ColumnarGrid(universe.lo, universe.hi, resolution=self.resolution)
        return ColumnarGrid(universe.lo, universe.hi, cell_size=self.cell_size)

    # -- object backend -------------------------------------------------
    def _execute_object(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        universe: MBR,
        stats: JoinStatistics,
    ) -> list[Pair]:
        build_start = time.perf_counter()
        grid = self._make_grid(universe)
        dim = universe.dim
        n_classes = 1 << dim
        tiles_a, entries_a = self._assign_side(grid, objects_a, n_classes)
        tiles_b, entries_b = self._assign_side(grid, objects_b, n_classes)
        stats.build_seconds = time.perf_counter() - build_start
        stats.replicated_entries = (entries_a - len(objects_a)) + (
            entries_b - len(objects_b)
        )

        kernel = LOCAL_KERNELS[self.local_kernel]
        matrix = mini_join_masks(dim)
        pairs: list[Pair] = []

        def emit(a: SpatialObject, b: SpatialObject) -> None:
            pairs.append((a.oid, b.oid))

        join_start = time.perf_counter()
        for coords, groups_b in tiles_b.items():
            groups_a = tiles_a.get(coords)
            if groups_a is None:
                continue
            for mask_a, mask_b in matrix:
                tile_a = groups_a[mask_a]
                tile_b = groups_b[mask_b]
                if tile_a and tile_b:
                    kernel(tile_a, tile_b, stats, emit)
        stats.join_seconds = time.perf_counter() - join_start
        stats.memory_bytes = memmodel.grid_cells_bytes(
            len(tiles_a.keys() | tiles_b.keys()), entries_a + entries_b
        )
        return pairs

    # -- columnar backend -----------------------------------------------
    def _execute_columnar(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        universe: MBR,
        stats: JoinStatistics,
    ) -> list[Pair]:
        """Batched two-layer join over flat classified entry arrays."""
        require_numpy()
        build_start = time.perf_counter()
        table_a = CoordinateTable.from_objects(objects_a)
        table_b = CoordinateTable.from_objects(objects_b)
        if self.resolution is not None:
            grid = ColumnarGrid(universe.lo, universe.hi, resolution=self.resolution)
        else:
            grid = ColumnarGrid(universe.lo, universe.hi, cell_size=self.cell_size)
        a_obj, a_keys, a_masks = grid.entries(table_a, with_class_masks=True)
        b_obj, b_keys, b_masks = grid.entries(table_b, with_class_masks=True)
        stats.build_seconds = time.perf_counter() - build_start
        stats.replicated_entries = (len(a_obj) - len(objects_a)) + (
            len(b_obj) - len(objects_b)
        )
        # Like columnar PBSM, every surviving co-located candidate is
        # batch-tested (nested comparison semantics per tile).
        stats.extra["cell_join"] = "batch"

        join_start = time.perf_counter()
        pairs = self._masked_batch_join(
            entry_join_candidates(a_keys, b_keys),
            (a_obj, a_masks),
            (b_obj, b_masks),
            table_a,
            table_b,
            full_mask(grid.dim),
            stats,
        )
        stats.join_seconds = time.perf_counter() - join_start

        table_bytes = table_a.nbytes + table_b.nbytes
        mask_bytes = int(a_masks.nbytes + b_masks.nbytes)
        stats.extra["columnar_table_bytes"] = table_bytes
        stats.memory_bytes = (
            memmodel.grid_cells_bytes(
                len(np.unique(np.concatenate((a_keys, b_keys))))
                if len(a_keys) + len(b_keys)
                else 0,
                len(a_obj) + len(b_obj),
            )
            + table_bytes
            + mask_bytes
        )
        return pairs

    @staticmethod
    def _masked_batch_join(
        candidates,
        entries_a,
        entries_b,
        table_a: CoordinateTable,
        table_b: CoordinateTable,
        full: int,
        stats: JoinStatistics,
    ) -> list[Pair]:
        """Layer two in bulk: mask-filter candidate chunks, batch-test.

        ``candidates`` yields co-located ``(ent_a, ent_b)`` entry-index
        chunks (one-shot: :func:`entry_join_candidates`; probe:
        :func:`~repro.grid.columnar.probe_join_candidates` over the
        presorted build entries); ``entries_*`` carry the per-entry
        ``(object_index, class_mask)`` payloads.  Only pairs whose
        classes jointly own the tile's begin corner on every axis are
        intersection-tested — duplicate-free with zero ownership tests.
        """
        a_obj, a_masks = entries_a
        b_obj, b_masks = entries_b
        comparisons = 0
        out_a: list = []
        out_b: list = []
        a_lo, a_hi = table_a.lo, table_a.hi
        b_lo, b_hi = table_b.lo, table_b.hi
        for ent_a, ent_b in candidates:
            allowed = (a_masks[ent_a] | b_masks[ent_b]) == full
            ent_a, ent_b = ent_a[allowed], ent_b[allowed]
            comparisons += len(ent_a)
            cand_a, cand_b = a_obj[ent_a], b_obj[ent_b]
            hit = (
                (a_lo[cand_a] <= b_hi[cand_b]) & (b_lo[cand_b] <= a_hi[cand_a])
            ).all(axis=1)
            out_a.append(cand_a[hit])
            out_b.append(cand_b[hit])
        stats.comparisons += comparisons
        if not out_a:
            return []
        idx_a = np.concatenate(out_a)
        idx_b = np.concatenate(out_b)
        return list(zip(table_a.ids[idx_a].tolist(), table_b.ids[idx_b].tolist()))

    # -- build/probe lifecycle -----------------------------------------
    @staticmethod
    def _assign_side(
        grid: UniformGrid,
        objects: list[SpatialObject],
        n_classes: int,
        restrict: "set | None" = None,
    ) -> tuple[dict, int]:
        """Classified per-tile buckets of one dataset.

        Returns ``({tile coords: per-class object lists}, entries)``.
        With ``restrict`` given, only tiles in that set are populated —
        probes skip tiles holding no build objects, which cannot emit
        pairs (the owner tile of any pair contains both objects).
        """
        tiles: dict[tuple[int, ...], list] = {}
        entries = 0
        for obj in objects:
            ranges = grid.index_ranges(obj.mbr)
            for coords in itertools.product(
                *(range(lo, hi + 1) for lo, hi in ranges)
            ):
                if restrict is not None and coords not in restrict:
                    continue
                mask = 0
                for d, (lo, _hi) in enumerate(ranges):
                    if coords[d] == lo:
                        mask |= 1 << d
                bucket = tiles.get(coords)
                if bucket is None:
                    bucket = [[] for _ in range(n_classes)]
                    tiles[coords] = bucket
                bucket[mask].append(obj)
                entries += 1
        return tiles, entries

    def _build(self, objects_a, stats):
        """Layer one over A only; the tile grid is fixed to A's extent.

        Probe objects outside the build universe clamp into the edge
        tiles — the ownership algebra is unchanged under clamping (the
        same guarantee the one-shot join gives objects outside a fixed
        ``universe``), so pair sets match the one-shot path exactly.
        """
        if not objects_a:
            return None
        universe = self.universe
        if universe is None:
            universe = total_mbr(o.mbr for o in objects_a)
        backend = resolve_backend(self.backend, allow_compiled=False)
        if backend == "columnar":
            from repro.grid.columnar import sort_entries

            table_a = CoordinateTable.from_objects(objects_a)
            grid = self._make_columnar_grid(universe)
            a_obj, a_keys, a_masks = grid.entries(table_a, with_class_masks=True)
            order_a, sorted_keys_a = sort_entries(a_keys)
            stats.replicated_entries += len(a_obj) - len(objects_a)
            return {
                "backend": "columnar",
                "table_a": table_a,
                "grid": grid,
                "a_obj": a_obj,
                "a_keys": a_keys,
                "a_masks": a_masks,
                "order_a": order_a,
                "sorted_keys_a": sorted_keys_a,
                "unique_a_keys": np.unique(a_keys),
            }
        grid = self._make_grid(universe)
        n_classes = 1 << universe.dim
        tiles_a, entries_a = self._assign_side(grid, objects_a, n_classes)
        stats.replicated_entries += entries_a - len(objects_a)
        return {
            "backend": "object",
            "grid": grid,
            "dim": universe.dim,
            "tiles_a": tiles_a,
            "entries_a": entries_a,
        }

    def _probe(self, payload, objects_b, stats):
        if payload is None or not objects_b:
            return []
        if payload["backend"] == "columnar":
            return self._probe_table(
                payload, CoordinateTable.from_objects(objects_b), stats
            )
        stats.extra["backend"] = "object"
        grid = payload["grid"]
        tiles_a = payload["tiles_a"]
        n_classes = 1 << payload["dim"]

        build_start = time.perf_counter()
        tiles_b, entries_b = self._assign_side(
            grid, objects_b, n_classes, restrict=tiles_a.keys()
        )
        stats.build_seconds = time.perf_counter() - build_start
        stats.replicated_entries += entries_b - len(objects_b)

        kernel = LOCAL_KERNELS[self.local_kernel]
        matrix = mini_join_masks(payload["dim"])
        pairs: list[Pair] = []

        def emit(a: SpatialObject, b: SpatialObject) -> None:
            pairs.append((a.oid, b.oid))

        join_start = time.perf_counter()
        for coords, groups_b in tiles_b.items():
            groups_a = tiles_a[coords]
            for mask_a, mask_b in matrix:
                tile_a = groups_a[mask_a]
                tile_b = groups_b[mask_b]
                if tile_a and tile_b:
                    kernel(tile_a, tile_b, stats, emit)
        stats.join_seconds = time.perf_counter() - join_start
        # Same analytic model as the one-shot path (tiles + stored
        # entries of both sides) so cached-vs-rebuild memory columns
        # stay comparable; probe-side tiles are a subset of A's.
        stats.memory_bytes = memmodel.grid_cells_bytes(
            len(tiles_a), payload["entries_a"] + entries_b
        )
        return pairs

    def _probe_table(self, payload, table_b, stats):
        if payload is None or len(table_b) == 0:
            return []
        if payload["backend"] != "columnar":
            return self._probe(payload, table_b.to_objects(), stats)
        from repro.grid.columnar import probe_join_candidates

        stats.extra["backend"] = "columnar"
        stats.extra["cell_join"] = "batch"
        grid = payload["grid"]

        build_start = time.perf_counter()
        b_obj, b_keys, b_masks = grid.entries(table_b, with_class_masks=True)
        stats.build_seconds = time.perf_counter() - build_start
        stats.replicated_entries += len(b_obj) - len(table_b)

        join_start = time.perf_counter()
        pairs = self._masked_batch_join(
            probe_join_candidates(
                payload["order_a"], payload["sorted_keys_a"], b_keys
            ),
            (payload["a_obj"], payload["a_masks"]),
            (b_obj, b_masks),
            payload["table_a"],
            table_b,
            full_mask(grid.dim),
            stats,
        )
        stats.join_seconds = time.perf_counter() - join_start

        # Mirror the one-shot accounting: populated tiles + entries of
        # both sides, the resident coordinate tables and the class masks.
        table_bytes = payload["table_a"].nbytes + table_b.nbytes
        stats.extra["columnar_table_bytes"] = table_bytes
        populated = len(np.union1d(payload["unique_a_keys"], b_keys))
        stats.memory_bytes = (
            memmodel.grid_cells_bytes(
                populated, len(payload["a_obj"]) + len(b_obj)
            )
            + table_bytes
            + int(payload["a_masks"].nbytes + b_masks.nbytes)
        )
        return pairs
