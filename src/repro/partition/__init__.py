"""Two-layer space-oriented partitioning: duplicate-free partition joins.

The subsystem behind the registry's ``TwoLayer-*`` algorithms and the
multiprocess engine's ``dedup="partition"`` mode: corner-ownership
class masks, the reduced mini-join matrix, and the
:class:`~repro.partition.two_layer.TwoLayerJoin` algorithm itself.
Unlike every reference-point path in the library, nothing in here ever
performs a per-pair ownership test (``stats.dedup_checks == 0``).
"""

from repro.partition.classes import (
    class_label,
    full_mask,
    group_by_mask,
    mini_join_masks,
)
from repro.partition.two_layer import TwoLayerJoin

__all__ = [
    "TwoLayerJoin",
    "full_mask",
    "mini_join_masks",
    "class_label",
    "group_by_mask",
]
