"""Corner-ownership classes and the duplicate-free mini-join matrix.

The two-layer space-oriented partitioning scheme (Tsitsigkos &
Mamoulis 2019; Tsitsigkos et al. 2023) replaces reference-point
deduplication with a *classification* of every replica.  An object
assigned to the tiles its MBR overlaps gets, per tile, a **class
mask**: bit ``d`` is set iff the tile is the one containing the MBR's
low corner along dimension ``d``.  In the papers' 2-D notation:

=========== ====== =====================================================
mask (y, x) class  meaning
=========== ====== =====================================================
``11``      A      home tile — both low-corner coordinates begin here
``10``      B      replica entering from the x-neighbour (x began earlier)
``01``      C      replica entering from the y-neighbour (y began earlier)
``00``      D      replica entering from the diagonal neighbour
=========== ====== =====================================================

(bit 0 is the x axis, bit 1 the y axis, and so on.)

**Mini-join matrix.** Within one tile, a pair of replicas is joined
only when their masks *cover every dimension* (``mask_a | mask_b ==
full``): A×A, A×B, B×A, A×C, C×A, A×D, D×A, B×C and C×B in 2-D —
B×B, C×C and anything involving two D-sides are skipped.

**Why this is duplicate-free by construction.**  Cell indexing is
monotone, so the tile of the pair's reference point ``ref[d] =
max(a.lo[d], b.lo[d])`` (the minimum corner of the MBR intersection,
exactly Dittrich & Seeger's dedup point) has per-dimension index
``max(cell(a.lo[d]), cell(b.lo[d]))``.  In that tile — and only in
that tile — every dimension has at least one of the two masks' bits
set; in any other shared tile some dimension has both bits clear (both
objects began in an earlier tile) or a mask bit mismatch.  Running the
allowed mini-joins therefore reports each intersecting pair exactly
once *without any per-pair ownership test*: ``stats.dedup_checks``
stays 0.

The same algebra drives the ``dedup="partition"`` mode of the
multiprocess engine, with decomposition regions playing the tiles.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

__all__ = [
    "full_mask",
    "mini_join_masks",
    "class_label",
    "group_by_mask",
]


def full_mask(n_axes: int) -> int:
    """The home-tile (class A) mask: every dimension's begin bit set."""
    if n_axes < 1:
        raise ValueError(f"n_axes must be >= 1, got {n_axes}")
    return (1 << n_axes) - 1


@lru_cache(maxsize=None)
def mini_join_masks(n_axes: int) -> tuple[tuple[int, int], ...]:
    """All ``(mask_a, mask_b)`` combinations whose union covers every axis.

    This is the mini-join matrix: exactly the class pairs whose joint
    begin corners pin the pair's reference point to the current tile.
    3 combinations on one axis (A×A, A×B, B×A), 9 on two, 27 on three.
    """
    full = full_mask(n_axes)
    return tuple(
        (mask_a, mask_b)
        for mask_a in range(full + 1)
        for mask_b in range(full + 1)
        if mask_a | mask_b == full
    )


def class_label(mask: int, n_axes: int) -> str:
    """Human-readable class name: ``A``–``D`` in 2-D, bit string beyond."""
    full = full_mask(n_axes)
    if n_axes <= 2:
        return {full: "A", full & ~1: "B", full & ~2: "C", 0: "D"}.get(
            mask, format(mask, f"0{n_axes}b")
        )
    return format(mask, f"0{n_axes}b")


def group_by_mask(objects: Sequence, masks: Iterable[int]) -> dict[int, list]:
    """Bucket ``objects`` by their parallel class ``masks`` (order kept)."""
    groups: dict[int, list] = {}
    for obj, mask in zip(objects, masks):
        bucket = groups.get(mask)
        if bucket is None:
            groups[mask] = [obj]
        else:
            bucket.append(obj)
    return groups
