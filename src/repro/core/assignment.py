"""TOUCH assignment phase (paper §4.4, Algorithm 3).

Each object ``b`` of dataset B descends from the root of the phase-one
tree.  At the current node, ``b`` is tested against the children's MBRs:

- **no child overlaps** — ``b`` is *filtered*: it cannot intersect any A
  object and is dropped (this is the filtering the paper measures in
  Figures 13/14a; it also fires below the root when ``b`` falls into dead
  space inside a node's MBR);
- **exactly one child overlaps** — descend into it;
- **several children overlap** — ``b`` is assigned to the current node.

The walk therefore attaches ``b`` to the lowest node whose MBR overlaps
``b`` while no second sibling subtree does; reaching a leaf attaches ``b``
to that bucket.  Every B object lands in at most one node — the
*single-assignment* property behind Lemma 3 (no duplicate results).
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.columnar import CoordinateTable, require_numpy
from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject
from repro.core.tree import TouchNode, TouchTree
from repro.stats.counters import JoinStatistics

try:  # pragma: no cover - optional dependency of the columnar path
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = ["locate_node", "assign_dataset_b", "assign_table_b"]


def locate_node(root: TouchNode, mbr: MBR, stats: JoinStatistics | None = None) -> TouchNode | None:
    """Find the node ``mbr`` should be assigned to, or ``None`` to filter.

    Implements Algorithm 3 with the paper's evident intent (the published
    pseudocode resets its ``overlap`` flag per child and names the current
    node "parent of p" after ``p`` was advanced to the first overlapping
    child; both are transcription slips).
    """
    node_tests = 1
    if not root.mbr.intersects(mbr):
        if stats is not None:
            stats.node_tests += node_tests
        return None

    current = root
    result = current
    while not current.is_leaf:
        first_hit: TouchNode | None = None
        multiple = False
        for child in current.children:
            node_tests += 1
            if child.mbr.intersects(mbr):
                if first_hit is None:
                    first_hit = child
                else:
                    multiple = True
                    break
        if multiple:
            result = current
            break
        if first_hit is None:
            result = None  # dead space: filtered below the root
            break
        current = first_hit
        result = current
    if stats is not None:
        stats.node_tests += node_tests
    return result


def assign_dataset_b(
    tree: TouchTree,
    objects_b: Sequence[SpatialObject],
    stats: JoinStatistics | None = None,
) -> int:
    """Assign every object of B to the tree; returns the filtered count.

    Assigned objects are appended to their node's ``entities_b`` list;
    filtered objects are simply dropped (they can never produce a result
    pair — Lemma 1 still holds because a filtered object overlaps no
    node MBR and hence no A object).
    """
    filtered = 0
    root = tree.root
    for obj in objects_b:
        node = locate_node(root, obj.mbr, stats)
        if node is None:
            filtered += 1
        else:
            node.entities_b.append(obj)
    if stats is not None:
        stats.filtered += filtered
    return filtered


def assign_table_b(
    tree: TouchTree,
    table_b: CoordinateTable,
    objects_b: Sequence[SpatialObject] | None = None,
    stats: JoinStatistics | None = None,
) -> "dict[TouchNode, object]":
    """Columnar Algorithm 3: assign all of B level by level, in bulk.

    Instead of descending the tree once per object, whole batches of B
    descend together: at every node the pending batch is tested against
    all children's MBRs in one broadcasted comparison, and the three
    cases of the scalar walk are resolved per row — zero overlapping
    children filters the object, exactly one routes it to that child's
    batch, several pin it to the current node.  The decisions (and hence
    the ``filtered`` count and the node each object lands in) are
    identical to :func:`assign_dataset_b`; only the execution is batched.

    Returns ``{node: int64 row indices of table_b}`` for every node that
    received objects.  When ``objects_b`` is given, the corresponding
    objects are also appended to each node's ``entities_b`` so the tree
    stays inspectable exactly as after a scalar assignment.
    """
    require_numpy()
    n = len(table_b)
    assigned: dict[TouchNode, object] = {}
    if n == 0:
        return assigned
    lo, hi = table_b.lo, table_b.hi
    node_tests = n  # every object is tested against the root MBR
    root = tree.root
    root_lo = np.asarray(root.mbr.lo)
    root_hi = np.asarray(root.mbr.hi)
    in_root = (lo <= root_hi).all(axis=1) & (hi >= root_lo).all(axis=1)
    filtered = int(n - in_root.sum())

    stack: list[tuple[TouchNode, object]] = [(root, np.nonzero(in_root)[0])]
    while stack:
        node, rows = stack.pop()
        if len(rows) == 0:
            continue
        if node.is_leaf:
            assigned[node] = rows
            continue
        children = node.children
        child_lo = np.array([c.mbr.lo for c in children])
        child_hi = np.array([c.mbr.hi for c in children])
        overlap = (lo[rows][:, None, :] <= child_hi[None, :, :]).all(axis=2) & (
            hi[rows][:, None, :] >= child_lo[None, :, :]
        ).all(axis=2)
        node_tests += len(rows) * len(children)
        hits = overlap.sum(axis=1)
        filtered += int((hits == 0).sum())
        several = hits >= 2
        if several.any():
            assigned[node] = rows[several]
        single = hits == 1
        if single.any():
            child_of = overlap[single].argmax(axis=1)
            single_rows = rows[single]
            for index, child in enumerate(children):
                routed = single_rows[child_of == index]
                if len(routed):
                    stack.append((child, routed))

    if stats is not None:
        stats.node_tests += node_tests
        stats.filtered += filtered
    if objects_b is not None:
        for node, rows in assigned.items():
            node.entities_b.extend(objects_b[i] for i in rows.tolist())
    return assigned
