"""TOUCH assignment phase (paper §4.4, Algorithm 3).

Each object ``b`` of dataset B descends from the root of the phase-one
tree.  At the current node, ``b`` is tested against the children's MBRs:

- **no child overlaps** — ``b`` is *filtered*: it cannot intersect any A
  object and is dropped (this is the filtering the paper measures in
  Figures 13/14a; it also fires below the root when ``b`` falls into dead
  space inside a node's MBR);
- **exactly one child overlaps** — descend into it;
- **several children overlap** — ``b`` is assigned to the current node.

The walk therefore attaches ``b`` to the lowest node whose MBR overlaps
``b`` while no second sibling subtree does; reaching a leaf attaches ``b``
to that bucket.  Every B object lands in at most one node — the
*single-assignment* property behind Lemma 3 (no duplicate results).
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject
from repro.core.tree import TouchNode, TouchTree
from repro.stats.counters import JoinStatistics

__all__ = ["locate_node", "assign_dataset_b"]


def locate_node(root: TouchNode, mbr: MBR, stats: JoinStatistics | None = None) -> TouchNode | None:
    """Find the node ``mbr`` should be assigned to, or ``None`` to filter.

    Implements Algorithm 3 with the paper's evident intent (the published
    pseudocode resets its ``overlap`` flag per child and names the current
    node "parent of p" after ``p`` was advanced to the first overlapping
    child; both are transcription slips).
    """
    node_tests = 1
    if not root.mbr.intersects(mbr):
        if stats is not None:
            stats.node_tests += node_tests
        return None

    current = root
    result = current
    while not current.is_leaf:
        first_hit: TouchNode | None = None
        multiple = False
        for child in current.children:
            node_tests += 1
            if child.mbr.intersects(mbr):
                if first_hit is None:
                    first_hit = child
                else:
                    multiple = True
                    break
        if multiple:
            result = current
            break
        if first_hit is None:
            result = None  # dead space: filtered below the root
            break
        current = first_hit
        result = current
    if stats is not None:
        stats.node_tests += node_tests
    return result


def assign_dataset_b(
    tree: TouchTree,
    objects_b: Sequence[SpatialObject],
    stats: JoinStatistics | None = None,
) -> int:
    """Assign every object of B to the tree; returns the filtered count.

    Assigned objects are appended to their node's ``entities_b`` list;
    filtered objects are simply dropped (they can never produce a result
    pair — Lemma 1 still holds because a filtered object overlaps no
    node MBR and hence no A object).
    """
    filtered = 0
    root = tree.root
    for obj in objects_b:
        node = locate_node(root, obj.mbr, stats)
        if node is None:
            filtered += 1
        else:
            node.entities_b.append(obj)
    if stats is not None:
        stats.filtered += filtered
    return filtered
