"""Refinement phase: exact distance predicates over candidate pairs.

The filtering phase (any join in this library) approximates objects by
MBRs; "TOUCH can be combined with any off-the-shelf solution to the second
refinement phase, which takes into account the exact object shapes" (§4).
This module is that off-the-shelf solution: it evaluates the exact
geometry attached to each object (e.g. the neuroscience cylinders) and
keeps only pairs whose true distance is within ε.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.objects import SpatialObject
from repro.joins.base import Pair
from repro.stats.counters import JoinStatistics

__all__ = ["exact_distance", "refine_pairs"]


def exact_distance(a: SpatialObject, b: SpatialObject) -> float:
    """Exact distance between two objects.

    Uses the attached geometries when both objects carry one (any object
    with a ``min_distance`` method); otherwise falls back to the exact
    Euclidean distance between the MBRs, which is correct for box-shaped
    objects such as the synthetic workloads.
    """
    geometry_a = a.geometry
    geometry_b = b.geometry
    if geometry_a is not None and geometry_b is not None:
        return geometry_a.min_distance(geometry_b)
    return a.mbr.min_distance(b.mbr)


def refine_pairs(
    pairs: Sequence[Pair],
    objects_a: Sequence[SpatialObject],
    objects_b: Sequence[SpatialObject],
    epsilon: float,
    stats: JoinStatistics | None = None,
) -> list[Pair]:
    """Keep only candidate pairs whose exact distance is ≤ ``epsilon``.

    ``pairs`` refer to objects by oid; the datasets provide the oid →
    object mapping.  The number of exact tests is recorded in
    ``stats.extra["refinement_tests"]``.
    """
    by_oid_a = {obj.oid: obj for obj in objects_a}
    by_oid_b = {obj.oid: obj for obj in objects_b}
    refined: list[Pair] = []
    tests = 0
    for oid_a, oid_b in pairs:
        tests += 1
        if exact_distance(by_oid_a[oid_a], by_oid_b[oid_b]) <= epsilon:
            refined.append((oid_a, oid_b))
    if stats is not None:
        stats.extra["refinement_tests"] = stats.extra.get("refinement_tests", 0) + tests
    return refined
