"""TOUCH — the paper's contribution (§4, Algorithm 1).

The three phases:

1. **Tree building** (:class:`~repro.core.tree.TouchTree`): STR-bucket
   dataset A and build an R-Tree-like hierarchy over the buckets.
2. **Assignment** (:func:`~repro.core.assignment.assign_dataset_b`):
   attach every object of B to the lowest tree node whose MBR overlaps it
   with no overlapping sibling; objects overlapping nothing are filtered.
3. **Join** (:func:`~repro.core.local_join.join_assigned_nodes`): each
   node holding B objects is grid-joined against the A objects of its
   descendant leaves.

The combination gives data-oriented partitioning (small, tight buckets,
like an R-Tree) without replication of either dataset (unlike PBSM) and
without the rigid space-oriented grid of S3.

Phases two and three exist in two executions: the original per-object
walk (``backend="object"``) and a columnar one (``backend="columnar"``)
that stores both datasets as contiguous coordinate arrays and replaces
the per-object loops with batched numpy kernels — same tree, same
assignment decisions, same candidate tests, same pairs, just executed in
bulk (see ``docs/backends.md``).

Example
-------
>>> from repro.datasets import uniform_boxes
>>> from repro.core import TouchJoin
>>> a = uniform_boxes(1000, seed=1)
>>> b = uniform_boxes(5000, seed=2)
>>> result = TouchJoin().join(a, b)
>>> result.stats.comparisons < 1000 * 5000
True
"""

from __future__ import annotations

import time

from repro.core.assignment import assign_dataset_b, assign_table_b, locate_node
from repro.core.local_join import (
    flatten_hierarchy,
    join_assigned_nodes,
    join_assigned_nodes_columnar,
    leaf_order_table,
    probe_assigned_nodes_columnar,
    probe_assigned_nodes_compiled,
)
from repro.core.tree import DEFAULT_FANOUT, DEFAULT_PARTITIONS, TouchTree
from repro.geometry.columnar import (
    BACKENDS,
    CoordinateTable,
    resolve_backend,
    validate_backend,
)
from repro.geometry.objects import SpatialObject
from repro.joins.base import Pair, SpatialJoinAlgorithm
from repro.joins.local import COMPILED_KERNELS, LOCAL_KERNELS
from repro.stats.counters import JoinStatistics

__all__ = ["TouchJoin", "resolve_backend", "BACKENDS"]


class TouchJoin(SpatialJoinAlgorithm):
    """The TOUCH in-memory spatial join.

    Parameters
    ----------
    fanout:
        Tree fanout; smaller fanouts give taller trees, better-distributed
        B assignments and fewer comparisons (§5.2.1, Figure 14).  Paper
        default: 2.
    num_partitions:
        Number of leaf buckets ``p`` (paper default: 1024; the effective
        bucket capacity is ``ceil(|A| / p)``).  Pass ``None`` for
        Algorithm 2's literal coupling of bucket size to the fanout —
        used by the Figure 14 fanout sweep.
    leaf_capacity:
        Direct bucket-capacity override (bypasses ``num_partitions``).
    local_kernel:
        Local-join kernel: ``"grid"`` (Algorithm 4, default), ``"sweep"``
        or ``"nested"`` — exposed for the §5.2.2 ablation.  Both backends
        honour the selection.
    cell_size_factor:
        Local grid cell size as a multiple of the mean object side; the
        paper requires cells "considerably larger than the average size
        of the objects".
    max_cells_per_dim:
        Upper bound on local-grid resolution per dimension.
    backend:
        ``"auto"`` (default: columnar when numpy is importable),
        ``"object"`` (per-object Python loops), ``"columnar"``
        (contiguous coordinate arrays + batched kernels) or
        ``"compiled"`` (jitted kernels + flattened range descent with
        the true-hit shortcut; degrades to columnar when the tier is
        unavailable).  All produce the identical pair set; object and
        columnar also share identical ``comparisons`` counts.
    """

    name = "TOUCH"

    def __init__(
        self,
        fanout: int = DEFAULT_FANOUT,
        num_partitions: int | None = DEFAULT_PARTITIONS,
        leaf_capacity: int | None = None,
        local_kernel: str = "grid",
        cell_size_factor: float = 4.0,
        max_cells_per_dim: int = 64,
        backend: str = "auto",
    ) -> None:
        self.backend = validate_backend(backend)
        self.fanout = fanout
        self.num_partitions = num_partitions
        self.leaf_capacity = leaf_capacity
        self.local_kernel = local_kernel
        self.cell_size_factor = cell_size_factor
        self.max_cells_per_dim = max_cells_per_dim
        #: Tree of the most recent join, kept for inspection by tests,
        #: examples and the filtering experiments (Figures 13/14).
        self.last_tree: TouchTree | None = None

    def describe(self) -> dict:
        return {
            "fanout": self.fanout,
            "num_partitions": self.num_partitions,
            "leaf_capacity": self.leaf_capacity,
            "local_kernel": self.local_kernel,
            "cell_size_factor": self.cell_size_factor,
            "max_cells_per_dim": self.max_cells_per_dim,
            "backend": self.backend,
        }

    def estimate_bytes(self, n_a: int, n_b: int, dim: int) -> int:
        # Both tables plus the STR tree over A: L leaf buckets and the
        # ~L * f/(f-1) internal nodes of an f-ary hierarchy above them,
        # plus one stored reference per indexed object.
        from repro.stats import memory as memmodel

        base = super().estimate_bytes(n_a, n_b, dim)
        if n_a == 0:
            return base
        fanout = max(2, self.fanout)
        leaves = max(1, min(n_a, self.num_partitions or n_a))
        nodes = leaves * fanout // (fanout - 1) + 1
        return (
            base
            + nodes * memmodel.node_bytes(dim, fanout)
            + memmodel.reference_list_bytes(n_a)
        )

    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        if self.local_kernel not in LOCAL_KERNELS:
            raise ValueError(f"unknown local kernel {self.local_kernel!r}")
        if not objects_a or not objects_b:
            return []
        backend = resolve_backend(self.backend)
        stats.extra["backend"] = backend

        # Phase 1: hierarchical data-oriented partitioning of A.
        build_start = time.perf_counter()
        tree = TouchTree(
            objects_a,
            fanout=self.fanout,
            num_partitions=self.num_partitions,
            leaf_capacity=self.leaf_capacity,
        )
        stats.build_seconds = time.perf_counter() - build_start

        if backend in ("columnar", "compiled"):
            pairs = self._execute_columnar(
                tree, objects_b, stats, compiled=backend == "compiled"
            )
        else:
            pairs = self._execute_object(tree, objects_b, stats)

        stats.extra["tree_height"] = tree.height
        stats.extra["tree_nodes"] = tree.node_count()
        self.last_tree = tree
        return pairs

    # -- build/probe lifecycle -----------------------------------------
    def _build(self, objects_a, stats):
        """Phase 1 once: the hierarchy over A, reused by every probe.

        The columnar leaf-order table is precomputed alongside the tree
        so warm probes skip straight to assignment + local joins.
        """
        if self.local_kernel not in LOCAL_KERNELS:
            raise ValueError(f"unknown local kernel {self.local_kernel!r}")
        if not objects_a:
            return None
        backend = resolve_backend(self.backend)
        tree = TouchTree(
            objects_a,
            fanout=self.fanout,
            num_partitions=self.num_partitions,
            leaf_capacity=self.leaf_capacity,
        )
        payload = {"tree": tree, "backend": backend}
        if backend in ("columnar", "compiled"):
            table_a, leaf_slices = leaf_order_table(tree)
            payload["table_a"] = table_a
            payload["leaf_slices"] = leaf_slices
            if backend == "compiled":
                payload["flat"] = flatten_hierarchy(tree, leaf_slices)
        self.last_tree = tree
        return payload

    def _probe(self, payload, objects_b, stats):
        """Phase-2 walk + range continuation, never mutating the tree.

        Each probe object is *assigned* exactly as in phase 2
        (:func:`~repro.core.assignment.locate_node` — dead-space
        filtering included), then descends every overlapping branch of
        its assigned subtree down to the leaves, whose A objects it is
        intersection-tested against.  Leaves partition A, so the result
        is duplicate-free without ownership tests, and the pair set
        equals the one-shot join's; re-partitioning the whole A subtree
        with a per-call grid (the one-shot local join, O(|A|) per call)
        is exactly what the prepared lifecycle avoids.
        """
        if payload is None or not objects_b:
            return []
        if payload["backend"] in ("columnar", "compiled"):
            return self._probe_table(
                payload, CoordinateTable.from_objects(objects_b), stats
            )
        tree = payload["tree"]
        stats.extra["backend"] = "object"

        assign_start = time.perf_counter()
        assignments: dict = {}
        filtered = 0
        root = tree.root
        for obj in objects_b:
            node = locate_node(root, obj.mbr, stats)
            if node is None:
                filtered += 1
            else:
                assignments.setdefault(node, []).append(obj)
        stats.filtered += filtered
        stats.assign_seconds = time.perf_counter() - assign_start

        join_start = time.perf_counter()
        pairs: list[Pair] = []
        comparisons = 0
        node_tests = 0
        for node, assigned_objects in assignments.items():
            for obj in assigned_objects:
                mbr_b = obj.mbr
                stack = [node]
                while stack:
                    current = stack.pop()
                    if current.is_leaf:
                        for a in current.entities_a:
                            comparisons += 1
                            if a.mbr.intersects(mbr_b):
                                pairs.append((a.oid, obj.oid))
                        continue
                    for child in current.children:
                        node_tests += 1
                        if child.mbr.intersects(mbr_b):
                            stack.append(child)
        stats.comparisons += comparisons
        stats.node_tests += node_tests
        stats.join_seconds = time.perf_counter() - join_start
        stats.memory_bytes = tree.memory_bytes()
        self._probe_extras(tree, stats)
        return pairs

    def _probe_table(self, payload, table_b, stats):
        """Columnar probe: batched assignment + batched range descent."""
        if payload is None or len(table_b) == 0:
            return []
        backend = payload["backend"]
        if backend not in ("columnar", "compiled"):
            return self._probe(payload, table_b.to_objects(), stats)
        tree = payload["tree"]
        stats.extra["backend"] = backend

        assign_start = time.perf_counter()
        assigned = assign_table_b(tree, table_b, None, stats)
        stats.assign_seconds = time.perf_counter() - assign_start

        # The compiled probe runs the same range descent as the columnar
        # one (identical pairs *and* counters), just through the
        # flattened hierarchy and the jitted kernel.
        join_start = time.perf_counter()
        if backend == "compiled":
            pairs = probe_assigned_nodes_compiled(
                payload["flat"],
                payload["table_a"],
                table_b,
                assigned,
                stats,
            )
        else:
            pairs = probe_assigned_nodes_columnar(
                payload["table_a"],
                payload["leaf_slices"],
                table_b,
                assigned,
                stats,
            )
        stats.join_seconds = time.perf_counter() - join_start

        table_bytes = payload["table_a"].nbytes + table_b.nbytes
        if backend == "compiled":
            table_bytes += payload["flat"].nbytes
        stats.extra["columnar_table_bytes"] = table_bytes
        stats.memory_bytes = tree.memory_bytes() + table_bytes
        self._probe_extras(tree, stats)
        return pairs

    @staticmethod
    def _probe_extras(tree: TouchTree, stats: JoinStatistics) -> None:
        stats.extra["tree_height"] = tree.height
        stats.extra["tree_nodes"] = tree.node_count()

    def _execute_object(
        self,
        tree: TouchTree,
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        # Phase 2: single-assignment of B into the tree, with filtering.
        assign_start = time.perf_counter()
        assign_dataset_b(tree, objects_b, stats)
        stats.assign_seconds = time.perf_counter() - assign_start

        # Phase 3: grid-based local joins under every assigned node.
        join_start = time.perf_counter()
        pairs = join_assigned_nodes(
            tree,
            stats,
            kernel_name=self.local_kernel,
            cell_size_factor=self.cell_size_factor,
            max_cells_per_dim=self.max_cells_per_dim,
        )
        stats.join_seconds = time.perf_counter() - join_start

        stats.memory_bytes = tree.memory_bytes() + stats.extra.get(
            "local_grid_peak_bytes", 0
        )
        return pairs

    def _execute_columnar(
        self,
        tree: TouchTree,
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
        compiled: bool = False,
    ) -> list[Pair]:
        # Phase 2, batched: all of B descends the tree level by level.
        assign_start = time.perf_counter()
        table_b = CoordinateTable.from_objects(objects_b)
        assigned = assign_table_b(tree, table_b, objects_b, stats)
        stats.assign_seconds = time.perf_counter() - assign_start

        # Phase 3, batched: one columnar kernel call per assigned node.
        # The compiled backend swaps the kernel registry for the jitted
        # nested/sweep loops; its default "grid" kernel is replaced
        # wholesale by the flattened range descent with the true-hit
        # shortcut (identical pair set; the descent's comparison counters
        # reflect the hierarchy walk rather than grid candidates).
        join_start = time.perf_counter()
        table_a, leaf_slices = leaf_order_table(tree)
        flat_bytes = 0
        if compiled and self.local_kernel == "grid":
            flat = flatten_hierarchy(tree, leaf_slices)
            flat_bytes = flat.nbytes
            pairs = probe_assigned_nodes_compiled(
                flat, table_a, table_b, assigned, stats
            )
        else:
            pairs = join_assigned_nodes_columnar(
                table_a,
                leaf_slices,
                table_b,
                assigned,
                stats,
                kernel_name=self.local_kernel,
                cell_size_factor=self.cell_size_factor,
                max_cells_per_dim=self.max_cells_per_dim,
                kernels=COMPILED_KERNELS if compiled else None,
            )
        stats.join_seconds = time.perf_counter() - join_start

        # The coordinate tables are real allocations the columnar backend
        # keeps resident for the whole join: count them (arr.nbytes), on
        # top of the shared analytic tree + local-grid model, so the
        # figure-table memory numbers stay honest across backends.
        table_bytes = table_a.nbytes + table_b.nbytes + flat_bytes
        stats.extra["columnar_table_bytes"] = table_bytes
        stats.memory_bytes = (
            tree.memory_bytes()
            + stats.extra.get("local_grid_peak_bytes", 0)
            + table_bytes
        )
        return pairs
