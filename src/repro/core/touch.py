"""TOUCH — the paper's contribution (§4, Algorithm 1).

The three phases:

1. **Tree building** (:class:`~repro.core.tree.TouchTree`): STR-bucket
   dataset A and build an R-Tree-like hierarchy over the buckets.
2. **Assignment** (:func:`~repro.core.assignment.assign_dataset_b`):
   attach every object of B to the lowest tree node whose MBR overlaps it
   with no overlapping sibling; objects overlapping nothing are filtered.
3. **Join** (:func:`~repro.core.local_join.join_assigned_nodes`): each
   node holding B objects is grid-joined against the A objects of its
   descendant leaves.

The combination gives data-oriented partitioning (small, tight buckets,
like an R-Tree) without replication of either dataset (unlike PBSM) and
without the rigid space-oriented grid of S3.

Example
-------
>>> from repro.datasets import uniform_boxes
>>> from repro.core import TouchJoin
>>> a = uniform_boxes(1000, seed=1)
>>> b = uniform_boxes(5000, seed=2)
>>> result = TouchJoin().join(a, b)
>>> result.stats.comparisons < 1000 * 5000
True
"""

from __future__ import annotations

import time

from repro.core.assignment import assign_dataset_b
from repro.core.local_join import join_assigned_nodes
from repro.core.tree import DEFAULT_FANOUT, DEFAULT_PARTITIONS, TouchTree
from repro.geometry.objects import SpatialObject
from repro.joins.base import Pair, SpatialJoinAlgorithm
from repro.stats.counters import JoinStatistics

__all__ = ["TouchJoin"]


class TouchJoin(SpatialJoinAlgorithm):
    """The TOUCH in-memory spatial join.

    Parameters
    ----------
    fanout:
        Tree fanout; smaller fanouts give taller trees, better-distributed
        B assignments and fewer comparisons (§5.2.1, Figure 14).  Paper
        default: 2.
    num_partitions:
        Number of leaf buckets ``p`` (paper default: 1024; the effective
        bucket capacity is ``ceil(|A| / p)``).  Pass ``None`` for
        Algorithm 2's literal coupling of bucket size to the fanout —
        used by the Figure 14 fanout sweep.
    leaf_capacity:
        Direct bucket-capacity override (bypasses ``num_partitions``).
    local_kernel:
        Local-join kernel: ``"grid"`` (Algorithm 4, default), ``"sweep"``
        or ``"nested"`` — exposed for the §5.2.2 ablation.
    cell_size_factor:
        Local grid cell size as a multiple of the mean object side; the
        paper requires cells "considerably larger than the average size
        of the objects".
    max_cells_per_dim:
        Upper bound on local-grid resolution per dimension.
    """

    name = "TOUCH"

    def __init__(
        self,
        fanout: int = DEFAULT_FANOUT,
        num_partitions: int | None = DEFAULT_PARTITIONS,
        leaf_capacity: int | None = None,
        local_kernel: str = "grid",
        cell_size_factor: float = 4.0,
        max_cells_per_dim: int = 64,
    ) -> None:
        self.fanout = fanout
        self.num_partitions = num_partitions
        self.leaf_capacity = leaf_capacity
        self.local_kernel = local_kernel
        self.cell_size_factor = cell_size_factor
        self.max_cells_per_dim = max_cells_per_dim
        #: Tree of the most recent join, kept for inspection by tests,
        #: examples and the filtering experiments (Figures 13/14).
        self.last_tree: TouchTree | None = None

    def describe(self) -> dict:
        return {
            "fanout": self.fanout,
            "num_partitions": self.num_partitions,
            "leaf_capacity": self.leaf_capacity,
            "local_kernel": self.local_kernel,
            "cell_size_factor": self.cell_size_factor,
            "max_cells_per_dim": self.max_cells_per_dim,
        }

    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        if not objects_a or not objects_b:
            return []

        # Phase 1: hierarchical data-oriented partitioning of A.
        build_start = time.perf_counter()
        tree = TouchTree(
            objects_a,
            fanout=self.fanout,
            num_partitions=self.num_partitions,
            leaf_capacity=self.leaf_capacity,
        )
        stats.build_seconds = time.perf_counter() - build_start

        # Phase 2: single-assignment of B into the tree, with filtering.
        assign_start = time.perf_counter()
        assign_dataset_b(tree, objects_b, stats)
        stats.assign_seconds = time.perf_counter() - assign_start

        # Phase 3: grid-based local joins under every assigned node.
        join_start = time.perf_counter()
        pairs = join_assigned_nodes(
            tree,
            stats,
            kernel_name=self.local_kernel,
            cell_size_factor=self.cell_size_factor,
            max_cells_per_dim=self.max_cells_per_dim,
        )
        stats.join_seconds = time.perf_counter() - join_start

        stats.memory_bytes = tree.memory_bytes() + stats.extra.get(
            "local_grid_peak_bytes", 0
        )
        stats.extra["tree_height"] = tree.height
        stats.extra["tree_nodes"] = tree.node_count()
        self.last_tree = tree
        return pairs
