"""TOUCH's hierarchical data-oriented partitioning tree (paper §4.3).

Phase one of TOUCH: the objects of dataset A are grouped into ``p``
spatially coherent buckets with STR packing (the paper's choice, §5.1);
every bucket becomes a leaf node, and the hierarchy is built bottom-up by
repeatedly STR-grouping ``fanout`` nodes under a parent whose MBR encloses
them.  Unlike a disk R-Tree, the fanout and bucket size are free
parameters — "we no longer have to align the data structures for the disk
page size" (§4.1).

Nodes carry two entity lists: leaf nodes hold their bucket of A objects
(``entities_a``); any node may later receive B objects (``entities_b``)
during the assignment phase.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

from repro.geometry.mbr import MBR, total_mbr
from repro.geometry.objects import SpatialObject
from repro.rtree.str_pack import str_partition
from repro.stats import memory as memmodel

__all__ = ["TouchNode", "TouchTree", "DEFAULT_FANOUT", "DEFAULT_PARTITIONS"]

DEFAULT_FANOUT = 2  # the paper's best setting (§6.1)
DEFAULT_PARTITIONS = 1024  # the paper's bucket count (§6.1)


class TouchNode:
    """A node of the TOUCH tree.

    Attributes
    ----------
    mbr:
        Tight bound of the A objects below this node (assignment never
        enlarges MBRs: B objects are attached, not bounded).
    level:
        0 for leaves (buckets), increasing towards the root.
    children:
        Child nodes (empty for leaves).
    entities_a:
        The bucket of A objects (leaves only).
    entities_b:
        B objects assigned to this node during phase two.
    """

    __slots__ = ("mbr", "level", "children", "entities_a", "entities_b")

    def __init__(
        self,
        mbr: MBR,
        level: int,
        children: "list[TouchNode] | None" = None,
        entities_a: list[SpatialObject] | None = None,
    ) -> None:
        self.mbr = mbr
        self.level = level
        self.children = children if children is not None else []
        self.entities_a = entities_a if entities_a is not None else []
        self.entities_b: list[SpatialObject] = []

    @property
    def is_leaf(self) -> bool:
        """Whether this node is a bucket of A objects."""
        return self.level == 0

    def __repr__(self) -> str:
        return (
            f"TouchNode(level={self.level}, |A|={len(self.entities_a)}, "
            f"|B|={len(self.entities_b)}, children={len(self.children)})"
        )

    def iter_subtree(self) -> Iterator["TouchNode"]:
        """This node and all descendants, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def iter_leaf_objects(self) -> Iterator[SpatialObject]:
        """All A objects in the leaves of this subtree."""
        for node in self.iter_subtree():
            if node.is_leaf:
                yield from node.entities_a


class TouchTree:
    """The phase-one hierarchy built on dataset A.

    Parameters
    ----------
    objects_a:
        Dataset A (non-empty).
    fanout:
        Children per internal node (paper default: 2).
    num_partitions:
        Number of leaf buckets ``p`` (paper §6.1 setting: 1024).  The
        bucket capacity is ``ceil(|A| / p)``.  When ``None``, Algorithm
        2's literal rule applies instead: buckets have ``fanout`` objects
        ("partition objs into partitions of size fo"), which couples the
        leaf MBR size to the fanout — the mechanism behind the Figure 14
        filtering/comparison trends.  Ignored when ``leaf_capacity`` is
        given.
    leaf_capacity:
        Direct bucket capacity override.
    """

    def __init__(
        self,
        objects_a: Sequence[SpatialObject],
        fanout: int = DEFAULT_FANOUT,
        num_partitions: int | None = DEFAULT_PARTITIONS,
        leaf_capacity: int | None = None,
    ) -> None:
        if not objects_a:
            raise ValueError("cannot build a TOUCH tree on an empty dataset")
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")

        n = len(objects_a)
        if leaf_capacity is None:
            if num_partitions is None:
                leaf_capacity = fanout  # Algorithm 2: buckets of size fo
            else:
                if num_partitions < 1:
                    raise ValueError(
                        f"num_partitions must be >= 1, got {num_partitions}"
                    )
                leaf_capacity = max(1, math.ceil(n / num_partitions))
        if leaf_capacity < 1:
            raise ValueError(f"leaf_capacity must be >= 1, got {leaf_capacity}")

        self.fanout = fanout
        self.leaf_capacity = leaf_capacity
        self.dim = objects_a[0].mbr.dim
        self.n_objects_a = n
        self.root = self._build(list(objects_a))

    def _build(self, objects: list[SpatialObject]) -> TouchNode:
        buckets = str_partition(
            objects,
            self.leaf_capacity,
            center_of=lambda o: o.mbr.center(),
            dim=self.dim,
        )
        nodes = [
            TouchNode(total_mbr(o.mbr for o in bucket), level=0, entities_a=bucket)
            for bucket in buckets
        ]
        level = 0
        while len(nodes) > 1:
            level += 1
            groups = str_partition(
                nodes,
                self.fanout,
                center_of=lambda node: node.mbr.center(),
                dim=self.dim,
            )
            nodes = [
                TouchNode(total_mbr(n.mbr for n in group), level=level, children=group)
                for group in groups
            ]
        return nodes[0]

    # -- inspection -------------------------------------------------------
    def iter_nodes(self) -> Iterator[TouchNode]:
        """All nodes, pre-order."""
        yield from self.root.iter_subtree()

    def leaves(self) -> list[TouchNode]:
        """All leaf buckets."""
        return [node for node in self.iter_nodes() if node.is_leaf]

    def node_count(self) -> int:
        """Total number of nodes."""
        return sum(1 for _ in self.iter_nodes())

    @property
    def height(self) -> int:
        """Number of levels (1 for a single-bucket tree)."""
        return self.root.level + 1

    def assigned_b_count(self) -> int:
        """B objects currently attached anywhere in the tree."""
        return sum(len(node.entities_b) for node in self.iter_nodes())

    def memory_bytes(self) -> int:
        """Analytic footprint: nodes, bucket references, B references.

        TOUCH "keeps the buckets constructed based on dataset A in
        addition to the tree" (§6.4), which is why its footprint sits
        slightly above INL's single tree.
        """
        nodes = self.node_count()
        return (
            nodes * memmodel.node_bytes(self.dim, self.fanout)
            + memmodel.reference_list_bytes(self.n_objects_a)
            + memmodel.reference_list_bytes(self.assigned_b_count())
        )
