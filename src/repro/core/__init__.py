"""TOUCH core: the paper's contribution and the distance-join front end."""

from repro.core.assignment import assign_dataset_b, locate_node
from repro.core.distance_join import distance_join, inflate_dataset, spatial_join
from repro.core.local_join import join_assigned_nodes
from repro.core.refine import exact_distance, refine_pairs
from repro.core.touch import TouchJoin
from repro.core.tree import TouchNode, TouchTree

__all__ = [
    "TouchJoin",
    "TouchTree",
    "TouchNode",
    "assign_dataset_b",
    "locate_node",
    "join_assigned_nodes",
    "distance_join",
    "spatial_join",
    "inflate_dataset",
    "exact_distance",
    "refine_pairs",
]
