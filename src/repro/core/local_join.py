"""TOUCH join phase (paper §4.5, Algorithm 4).

Every node holding B entities is joined against the A objects stored in
its descendant leaves.  The paper performs this *local join* with a
space-oriented uniform grid: the node's B objects are hashed into cells,
each A object probes the cells it overlaps, and candidate pairs found in a
shared cell are tested for intersection.  Pairs replicated across cells
are owned by exactly one cell (reference-point rule), so the local join is
duplicate-free, preserving Lemma 3 end-to-end.

The grid kernel is shared with the rest of the library
(:func:`repro.joins.local.grid_kernel`); the nested-loop and plane-sweep
kernels can be substituted for the local-join ablation (§5.2.2).
"""

from __future__ import annotations

from typing import Callable

from repro.core.tree import TouchTree
from repro.geometry.objects import SpatialObject
from repro.joins.base import Pair
from repro.joins.local import LOCAL_KERNELS, grid_kernel
from repro.stats.counters import JoinStatistics

__all__ = ["join_assigned_nodes"]


def join_assigned_nodes(
    tree: TouchTree,
    stats: JoinStatistics,
    kernel_name: str = "grid",
    cell_size_factor: float = 4.0,
    max_cells_per_dim: int = 64,
    emit: Callable[[SpatialObject, SpatialObject], None] | None = None,
) -> list[Pair]:
    """Run the local join under every node that received B entities.

    Parameters
    ----------
    tree:
        The phase-one tree after assignment.
    kernel_name:
        ``"grid"`` (Algorithm 4, default), ``"sweep"`` or ``"nested"``.
    cell_size_factor / max_cells_per_dim:
        Grid-kernel tuning (§5.2.2): cells are sized a multiple of the
        average object side, bounded in count per dimension.
    emit:
        Optional callback invoked per result pair *in addition to* the
        returned pair list (used by streaming consumers).
    """
    if kernel_name not in LOCAL_KERNELS:
        raise ValueError(f"unknown local kernel {kernel_name!r}")
    pairs: list[Pair] = []

    if emit is None:
        def sink(a: SpatialObject, b: SpatialObject) -> None:
            pairs.append((a.oid, b.oid))
    else:
        def sink(a: SpatialObject, b: SpatialObject) -> None:
            pairs.append((a.oid, b.oid))
            emit(a, b)

    for node in tree.iter_nodes():
        entities_b = node.entities_b
        if not entities_b:
            continue
        objects_a = (
            node.entities_a if node.is_leaf else list(node.iter_leaf_objects())
        )
        if not objects_a:
            continue
        if kernel_name == "grid":
            grid_kernel(
                objects_a,
                entities_b,
                stats,
                sink,
                cell_size_factor=cell_size_factor,
                max_cells_per_dim=max_cells_per_dim,
                universe=None,
            )
        else:
            LOCAL_KERNELS[kernel_name](objects_a, entities_b, stats, sink)
    return pairs
