"""TOUCH join phase (paper §4.5, Algorithm 4).

Every node holding B entities is joined against the A objects stored in
its descendant leaves.  The paper performs this *local join* with a
space-oriented uniform grid: the node's B objects are hashed into cells,
each A object probes the cells it overlaps, and candidate pairs found in a
shared cell are tested for intersection.  Pairs replicated across cells
are owned by exactly one cell (reference-point rule), so the local join is
duplicate-free, preserving Lemma 3 end-to-end.

The grid kernel is shared with the rest of the library
(:func:`repro.joins.local.grid_kernel`); the nested-loop and plane-sweep
kernels can be substituted for the local-join ablation (§5.2.2).
"""

from __future__ import annotations

from typing import Callable

from repro.core.tree import TouchNode, TouchTree
from repro.geometry.columnar import CoordinateTable, require_numpy
from repro.geometry.objects import SpatialObject
from repro.joins.base import Pair
from repro.geometry.compiled import FlatHierarchy, descend_ranges
from repro.joins.local import (
    COLUMNAR_KERNELS,
    LOCAL_KERNELS,
    grid_kernel,
)
from repro.stats.counters import JoinStatistics

try:  # pragma: no cover - optional dependency of the columnar path
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = [
    "join_assigned_nodes",
    "join_assigned_nodes_columnar",
    "probe_assigned_nodes_columnar",
    "flatten_hierarchy",
    "probe_assigned_nodes_compiled",
]


def join_assigned_nodes(
    tree: TouchTree,
    stats: JoinStatistics,
    kernel_name: str = "grid",
    cell_size_factor: float = 4.0,
    max_cells_per_dim: int = 64,
    emit: Callable[[SpatialObject, SpatialObject], None] | None = None,
) -> list[Pair]:
    """Run the local join under every node that received B entities.

    Parameters
    ----------
    tree:
        The phase-one tree after assignment.
    kernel_name:
        ``"grid"`` (Algorithm 4, default), ``"sweep"`` or ``"nested"``.
    cell_size_factor / max_cells_per_dim:
        Grid-kernel tuning (§5.2.2): cells are sized a multiple of the
        average object side, bounded in count per dimension.
    emit:
        Optional callback invoked per result pair *in addition to* the
        returned pair list (used by streaming consumers).
    """
    if kernel_name not in LOCAL_KERNELS:
        raise ValueError(f"unknown local kernel {kernel_name!r}")
    pairs: list[Pair] = []

    if emit is None:
        def sink(a: SpatialObject, b: SpatialObject) -> None:
            pairs.append((a.oid, b.oid))
    else:
        def sink(a: SpatialObject, b: SpatialObject) -> None:
            pairs.append((a.oid, b.oid))
            emit(a, b)

    for node in tree.iter_nodes():
        entities_b = node.entities_b
        if not entities_b:
            continue
        objects_a = (
            node.entities_a if node.is_leaf else list(node.iter_leaf_objects())
        )
        if not objects_a:
            continue
        if kernel_name == "grid":
            grid_kernel(
                objects_a,
                entities_b,
                stats,
                sink,
                cell_size_factor=cell_size_factor,
                max_cells_per_dim=max_cells_per_dim,
                universe=None,
            )
        else:
            LOCAL_KERNELS[kernel_name](objects_a, entities_b, stats, sink)
    return pairs


def join_assigned_nodes_columnar(
    table_a: CoordinateTable,
    leaf_slices: "dict[TouchNode, tuple[int, int]]",
    table_b: CoordinateTable,
    assigned: "dict[TouchNode, object]",
    stats: JoinStatistics,
    kernel_name: str = "grid",
    cell_size_factor: float = 4.0,
    max_cells_per_dim: int = 64,
    kernels: "dict | None" = None,
) -> list[Pair]:
    """Columnar Algorithm 4 driver: one batched kernel call per node.

    ``table_a`` holds dataset A in leaf order (``leaf_slices`` maps each
    leaf to its contiguous row range, see :func:`leaf_order_table`);
    ``assigned`` maps nodes to row indices of ``table_b`` as produced by
    :func:`repro.core.assignment.assign_table_b`.  For every node holding
    B rows, the A rows of its descendant leaves are gathered and the two
    sub-tables are joined with the selected columnar kernel.  Disjoint
    single-assignment batches keep the result duplicate-free (Lemma 3),
    exactly as in the object path.

    ``kernels`` selects the kernel registry (default
    :data:`~repro.joins.local.COLUMNAR_KERNELS`; the compiled backend
    passes :data:`~repro.joins.local.COMPILED_KERNELS`).
    """
    require_numpy()
    kernel_table = COLUMNAR_KERNELS if kernels is None else kernels
    if kernel_name not in kernel_table:
        raise ValueError(f"unknown local kernel {kernel_name!r}")
    pairs: list[Pair] = []
    ids_a, ids_b = table_a.ids, table_b.ids
    for node, b_rows in assigned.items():
        if len(b_rows) == 0:
            continue
        a_rows = _subtree_rows(node, leaf_slices)
        if len(a_rows) == 0:
            continue
        sub_a = table_a.take(a_rows)
        sub_b = table_b.take(b_rows)
        if kernel_name == "grid":
            hit_a, hit_b = kernel_table["grid"](
                sub_a,
                sub_b,
                stats,
                cell_size_factor=cell_size_factor,
                max_cells_per_dim=max_cells_per_dim,
            )
        else:
            hit_a, hit_b = kernel_table[kernel_name](sub_a, sub_b, stats)
        if len(hit_a):
            oid_a = ids_a[a_rows[hit_a]]
            oid_b = ids_b[np.asarray(b_rows)[hit_b]]
            pairs.extend(zip(oid_a.tolist(), oid_b.tolist()))
    return pairs


def probe_assigned_nodes_columnar(
    table_a: CoordinateTable,
    leaf_slices: "dict[TouchNode, tuple[int, int]]",
    table_b: CoordinateTable,
    assigned: "dict[TouchNode, object]",
    stats: JoinStatistics,
) -> list[Pair]:
    """Probe-shaped phase 3: continue the assignment descent to the leaves.

    The one-shot local join re-partitions the whole A subtree under each
    assigned node with a fresh grid — the right shape when all of B is
    joined at once, but O(|A|) per call, which would erase the point of
    build-once/probe-many for small query batches.  Here the hierarchy
    itself serves as the probe index: the B rows assigned to a node
    descend *every* overlapping child (a batched range descent, not the
    single-path assignment walk) and are batch-intersection-tested
    against the contiguous A slices of the leaves they reach.  Leaves
    partition A, so the result is duplicate-free without any ownership
    tests; the pair set equals the one-shot join's (both report exactly
    the intersecting pairs under each assigned node) while the work per
    batch is proportional to the branches the queries actually touch.
    """
    require_numpy()
    pairs: list[Pair] = []
    ids_a, ids_b = table_a.ids, table_b.ids
    lo_b, hi_b = table_b.lo, table_b.hi
    comparisons = 0
    node_tests = 0
    for node, b_rows in assigned.items():
        stack = [(node, np.asarray(b_rows))]
        while stack:
            current, rows = stack.pop()
            if len(rows) == 0:
                continue
            if current.is_leaf:
                start, stop = leaf_slices[current]
                if stop == start:
                    continue
                comparisons += (stop - start) * len(rows)
                hit = np.nonzero(
                    (table_a.lo[start:stop, None, :] <= hi_b[rows][None, :, :]).all(
                        axis=2
                    )
                    & (table_a.hi[start:stop, None, :] >= lo_b[rows][None, :, :]).all(
                        axis=2
                    )
                )
                if len(hit[0]):
                    oid_a = ids_a[start + hit[0]]
                    oid_b = ids_b[rows[hit[1]]]
                    pairs.extend(zip(oid_a.tolist(), oid_b.tolist()))
                continue
            children = current.children
            child_lo = np.array([c.mbr.lo for c in children])
            child_hi = np.array([c.mbr.hi for c in children])
            overlap = (lo_b[rows][:, None, :] <= child_hi[None, :, :]).all(axis=2) & (
                hi_b[rows][:, None, :] >= child_lo[None, :, :]
            ).all(axis=2)
            node_tests += len(rows) * len(children)
            for index, child in enumerate(children):
                stack.append((child, rows[overlap[:, index]]))
    stats.comparisons += comparisons
    stats.node_tests += node_tests
    return pairs


def flatten_hierarchy(
    tree: TouchTree,
    leaf_slices: "dict[TouchNode, tuple[int, int]]",
) -> FlatHierarchy:
    """Lower the TOUCH tree to flat arrays for the compiled descent.

    Nodes are numbered in the same traversal order that built
    ``leaf_slices`` (:func:`leaf_order_table` iterates ``tree.leaves()``,
    which filters ``iter_nodes()``), so every subtree's A rows form one
    contiguous ``[sub_start, sub_stop)`` range — the property the
    true-hit shortcut emits from.  ``sub_tests`` aggregates the child
    counts of each subtree's internal nodes, letting the shortcut charge
    skipped node tests exactly as a full descent would.
    """
    require_numpy()
    nodes = list(tree.iter_nodes())
    count = len(nodes)
    index = {node: position for position, node in enumerate(nodes)}
    node_lo = np.array([node.mbr.lo for node in nodes], dtype=np.float64)
    node_hi = np.array([node.mbr.hi for node in nodes], dtype=np.float64)
    children_ptr = np.zeros(count + 1, dtype=np.int64)
    child_ids: list[int] = []
    for position, node in enumerate(nodes):
        kids = () if node.is_leaf else node.children
        children_ptr[position + 1] = children_ptr[position] + len(kids)
        child_ids.extend(index[child] for child in kids)
    children_idx = np.asarray(child_ids, dtype=np.int64)
    sub_start = np.zeros(count, dtype=np.int64)
    sub_stop = np.zeros(count, dtype=np.int64)
    sub_tests = np.zeros(count, dtype=np.int64)
    # Pre-order puts every child after its parent, so a reverse scan is
    # a bottom-up aggregation.
    for position in range(count - 1, -1, -1):
        node = nodes[position]
        if node.is_leaf:
            start, stop = leaf_slices[node]
            sub_start[position], sub_stop[position] = start, stop
            continue
        kids = children_idx[children_ptr[position] : children_ptr[position + 1]]
        if len(kids) == 0:  # pragma: no cover - trees never build these
            continue
        sub_start[position] = sub_start[kids].min()
        sub_stop[position] = sub_stop[kids].max()
        sub_tests[position] = sub_tests[kids].sum() + len(kids)
        if sub_stop[position] - sub_start[position] != (
            sub_stop[kids] - sub_start[kids]
        ).sum():  # pragma: no cover - traversal-order regression guard
            raise AssertionError(
                "subtree rows are not contiguous in leaf order; "
                "flatten_hierarchy must use the leaf_order_table traversal"
            )
    return FlatHierarchy(
        node_lo,
        node_hi,
        children_ptr,
        children_idx,
        sub_start,
        sub_stop,
        sub_tests,
        index,
    )


def probe_assigned_nodes_compiled(
    flat: FlatHierarchy,
    table_a: CoordinateTable,
    table_b: CoordinateTable,
    assigned: "dict[TouchNode, object]",
    stats: JoinStatistics,
) -> list[Pair]:
    """Compiled twin of :func:`probe_assigned_nodes_columnar`.

    Every assigned B row descends the flattened hierarchy from its
    phase-2 node in one kernel call, true-hit shortcut included; the
    ``comparisons`` / ``node_tests`` counters equal the uncompiled
    descent bit-for-bit (the shortcut charges skipped work from the
    subtree aggregates).
    """
    require_numpy()
    seeds: list = []
    row_blocks: list = []
    for node, b_rows in assigned.items():
        b_rows = np.asarray(b_rows, dtype=np.int64)
        if len(b_rows) == 0:
            continue
        seeds.append(np.full(len(b_rows), flat.index[node], dtype=np.int64))
        row_blocks.append(b_rows)
    if not seeds:
        return []
    hit_a, hit_b, comparisons, node_tests = descend_ranges(
        flat,
        table_a.lo,
        table_a.hi,
        table_b.lo,
        table_b.hi,
        np.concatenate(seeds),
        np.concatenate(row_blocks),
    )
    stats.comparisons += comparisons
    stats.node_tests += node_tests
    if len(hit_a) == 0:
        return []
    return list(
        zip(table_a.ids[hit_a].tolist(), table_b.ids[hit_b].tolist())
    )


def leaf_order_table(tree: TouchTree):
    """Dataset A as a coordinate table in leaf order, plus leaf slices.

    Building the table leaf-by-leaf makes every leaf a contiguous row
    range, so gathering the A objects under any node is a concatenation
    of ranges rather than a scattered copy.
    """
    require_numpy()
    objects: list[SpatialObject] = []
    slices: dict[TouchNode, tuple[int, int]] = {}
    for leaf in tree.leaves():
        start = len(objects)
        objects.extend(leaf.entities_a)
        slices[leaf] = (start, len(objects))
    return CoordinateTable.from_objects(objects), slices


def _subtree_rows(node: TouchNode, leaf_slices: "dict[TouchNode, tuple[int, int]]"):
    """Row indices of ``table_a`` for all A objects under ``node``."""
    if node.is_leaf:
        start, stop = leaf_slices[node]
        return np.arange(start, stop, dtype=np.int64)
    ranges = [
        leaf_slices[child]
        for child in node.iter_subtree()
        if child.is_leaf
    ]
    if not ranges:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(
        [np.arange(start, stop, dtype=np.int64) for start, stop in ranges]
    )
