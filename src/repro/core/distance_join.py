"""Distance-join front end: ε-reduction, join order, optional refinement.

The paper's motivating problem is a *distance* join — find all pairs
within distance ε — which is reduced to an intersection join by
Minkowski-inflating the MBRs of one dataset by ε (§4).  This module adds
the two pragmatic decisions around that reduction:

- **join order** (§5.2.3): the smaller dataset is used as the build
  (first/indexed/inflated) side, which both speeds up structure building
  and improves filtering;
- **refinement**: the filter produces candidate pairs on MBRs; when the
  objects carry exact geometries the candidates can be refined against
  the true distance predicate.
"""

from __future__ import annotations

from typing import Literal, Sequence

from repro.core.refine import refine_pairs
from repro.geometry.objects import SpatialObject
from repro.joins.base import JoinResult, SpatialJoinAlgorithm

__all__ = ["distance_join", "spatial_join", "inflate_dataset"]

JoinOrder = Literal["auto", "keep", "swap"]


def inflate_dataset(objects: Sequence[SpatialObject], epsilon: float) -> list[SpatialObject]:
    """Minkowski-inflate every object's MBR by ``epsilon``."""
    return [obj.inflated(epsilon) for obj in objects]


def _resolve_order(
    objects_a: Sequence[SpatialObject],
    objects_b: Sequence[SpatialObject],
    order: JoinOrder,
) -> bool:
    """Return ``True`` when the datasets should be swapped (B built first)."""
    if order == "keep":
        return False
    if order == "swap":
        return True
    if order == "auto":
        return len(objects_b) < len(objects_a)
    raise ValueError(f"unknown join order {order!r}")


def spatial_join(
    objects_a: Sequence[SpatialObject],
    objects_b: Sequence[SpatialObject],
    algorithm: SpatialJoinAlgorithm,
    order: JoinOrder = "auto",
) -> JoinResult:
    """Intersection join with the paper's join-order heuristic.

    With ``order="auto"`` the smaller dataset becomes the build side
    (§5.2.3).  Result pairs are always reported in ``(oid_a, oid_b)``
    orientation regardless of the internal order.
    """
    swap = _resolve_order(objects_a, objects_b, order)
    if not swap:
        return algorithm.join(objects_a, objects_b)
    result = algorithm.join(objects_b, objects_a)
    result.pairs = [(a, b) for (b, a) in result.pairs]
    result.parameters = {**result.parameters, "swapped": True}
    return result


def distance_join(
    objects_a: Sequence[SpatialObject],
    objects_b: Sequence[SpatialObject],
    epsilon: float,
    algorithm: SpatialJoinAlgorithm | None = None,
    order: JoinOrder = "auto",
    refine: bool = False,
    workers: int | None = None,
    decompose: str = "slabs",
) -> JoinResult:
    """Find all pairs within distance ``epsilon``.

    Parameters
    ----------
    epsilon:
        Distance threshold (the paper evaluates ε ∈ {5, 10}).
    algorithm:
        A live join instance, a registry name (``"TOUCH"``), or an
        :class:`~repro.joins.registry.AlgorithmSpec`; defaults to
        :class:`~repro.core.touch.TouchJoin`.  With ``workers`` set only
        names and specs are accepted (worker processes rebuild the
        algorithm from the picklable spec).
    order:
        ``"auto"`` applies the smaller-dataset-first heuristic.
    refine:
        When ``True``, candidate pairs are checked against the exact
        geometry (or exact MBR distance when no geometry is attached).
    workers:
        When >= 1, execute through the multiprocess
        :class:`~repro.parallel.engine.ParallelChunkedJoin` — the
        paper's §3 per-core decomposition — over a ``decompose``
        (``"slabs"`` | ``"tiles"``) cutting of the universe.  The pair
        set is identical to sequential execution.

    Notes
    -----
    The *build* side is inflated by ε, exactly as §4 prescribes
    ("increase the size of all objects of one dataset, say DS1, by ε").
    Inflation is symmetric in effect: a's inflated MBR intersects b's MBR
    iff their MBRs are within L∞ distance ε of each other.
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    if workers:
        # Imported lazily: repro.core must not require multiprocessing
        # machinery for plain sequential joins.
        from repro.joins.registry import AlgorithmSpec
        from repro.parallel.engine import ParallelChunkedJoin

        if algorithm is None:
            algorithm = AlgorithmSpec.create("TOUCH")
        if not isinstance(algorithm, (str, AlgorithmSpec)):
            raise TypeError(
                "workers requires a registry name or AlgorithmSpec (live "
                f"algorithm instances cannot cross process boundaries), "
                f"got {type(algorithm).__name__}"
            )
        algorithm = ParallelChunkedJoin(algorithm, workers=workers, kind=decompose)
    elif algorithm is None:
        from repro.core.touch import TouchJoin

        algorithm = TouchJoin()
    else:
        from repro.joins.registry import AlgorithmSpec, make_algorithm

        if isinstance(algorithm, str):
            algorithm = make_algorithm(algorithm)
        elif isinstance(algorithm, AlgorithmSpec):
            algorithm = algorithm.make()

    swap = _resolve_order(objects_a, objects_b, order)
    if swap:
        build, probe = inflate_dataset(objects_b, epsilon), list(objects_a)
    else:
        build, probe = inflate_dataset(objects_a, epsilon), list(objects_b)

    result = algorithm.join(build, probe)
    if swap:
        result.pairs = [(a, b) for (b, a) in result.pairs]
        result.parameters = {**result.parameters, "swapped": True}
    result.parameters = {**result.parameters, "epsilon": epsilon}

    if refine:
        result.pairs = refine_pairs(
            result.pairs, objects_a, objects_b, epsilon, result.stats
        )
        result.stats.result_pairs = len(result.pairs)
    return result
