"""TOUCH: in-memory spatial join by hierarchical data-oriented partitioning.

A complete reproduction of Nobari et al., SIGMOD 2013: the TOUCH
algorithm, every baseline of the paper's evaluation (nested loop, plane
sweep, PBSM, S3, indexed nested loop, synchronous R-Tree traversal), the
substrates they need (MBR geometry, STR/Hilbert bulk-loaded R-Trees,
uniform hash grids), workload generators, and a benchmark harness that
regenerates every table and figure of the paper.

Quickstart
----------
>>> from repro import TouchJoin, distance_join, uniform_boxes
>>> a = uniform_boxes(1_000, seed=1)
>>> b = uniform_boxes(5_000, seed=2)
>>> result = distance_join(a, b, epsilon=10.0)
>>> result.stats.comparisons < len(a) * len(b)
True
"""

from repro.core import TouchJoin, distance_join, spatial_join
from repro.datasets import (
    Dataset,
    clustered_boxes,
    gaussian_boxes,
    neuroscience_datasets,
    uniform_boxes,
)
from repro.joins import (
    ALGORITHMS,
    AlgorithmInfo,
    IndexedNestedLoopJoin,
    JoinResult,
    NestedLoopJoin,
    PBSMJoin,
    PlaneSweepJoin,
    RTreeSyncJoin,
    S3Join,
    SeededTreeJoin,
    algorithm_names,
    available,
    make_algorithm,
)
from repro.joins.registry import AlgorithmSpec
from repro.parallel.chunked import ChunkedSpatialJoin
from repro.partition import TwoLayerJoin
from repro.stats import JoinStatistics


def __getattr__(name: str):
    # The multiprocess engine is exported lazily: resolving it imports
    # multiprocessing machinery sequential users never need.
    if name == "ParallelChunkedJoin":
        from repro.parallel.engine import ParallelChunkedJoin

        return ParallelChunkedJoin
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__version__ = "1.0.0"

__all__ = [
    "TouchJoin",
    "distance_join",
    "spatial_join",
    "Dataset",
    "uniform_boxes",
    "gaussian_boxes",
    "clustered_boxes",
    "neuroscience_datasets",
    "JoinResult",
    "JoinStatistics",
    "NestedLoopJoin",
    "PlaneSweepJoin",
    "PBSMJoin",
    "S3Join",
    "IndexedNestedLoopJoin",
    "RTreeSyncJoin",
    "SeededTreeJoin",
    "TwoLayerJoin",
    "ALGORITHMS",
    "AlgorithmInfo",
    "available",
    "algorithm_names",
    "make_algorithm",
    "AlgorithmSpec",
    "ChunkedSpatialJoin",
    "ParallelChunkedJoin",
    "__version__",
]
