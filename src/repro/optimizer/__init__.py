"""The adaptive optimizer: dataset sketches, cost model, query plans.

``algorithm="auto"`` anywhere in the stack (``run_algorithm``, the
query service, the sharded tier, the CLI) routes through here:

>>> from repro.optimizer import sketch_dataset, choose_plan
>>> plan = choose_plan(sketch_dataset(a), sketch_dataset(b), epsilon=5.0)
>>> plan.algorithm, plan.backend          # doctest: +SKIP
('TOUCH', 'columnar')

The pieces: :mod:`~repro.optimizer.sketch` computes cheap per-dataset
statistics (cached by fingerprint), :mod:`~repro.optimizer.cost` scores
every registry variant with analytic formulas priced by the calibration
constants in :mod:`~repro.optimizer.calibration`, and the decision is a
frozen JSON-safe :class:`~repro.optimizer.plan.Plan` that every layer
reports verbatim (``stats.extra["plan"]``, ``explain()``, the serving
protocol).
"""

from repro.optimizer.calibration import DEFAULT_CALIBRATION, fit_from_trajectory
from repro.optimizer.cost import (
    choose_plan,
    expected_pairs,
    score_candidates,
    work_units,
)
from repro.optimizer.plan import CandidateScore, Plan
from repro.optimizer.sketch import (
    HIST_BINS,
    DatasetSketch,
    clear_sketch_cache,
    sketch_dataset,
    sketch_table,
)

__all__ = [
    "DatasetSketch",
    "sketch_dataset",
    "sketch_table",
    "clear_sketch_cache",
    "HIST_BINS",
    "CandidateScore",
    "Plan",
    "choose_plan",
    "score_candidates",
    "work_units",
    "expected_pairs",
    "DEFAULT_CALIBRATION",
    "fit_from_trajectory",
]
