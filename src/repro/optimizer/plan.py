"""The first-class query plan: what ``algorithm="auto"`` decided and why.

A :class:`Plan` is a frozen, JSON-safe record of one optimizer decision:
the chosen algorithm/backend/workers/decompose, the full scored
candidate list, and the input sketches.  The same object flows through
every surface — ``explain()`` returns it without executing,
``stats.extra["plan"]`` records it on the executed join, and the sharded
tier ships it over the JSON-lines protocol — so a plan produced anywhere
can be compared for equality with a plan produced anywhere else.

Nothing in a plan is timing- or environment-dependent beyond the
calibration constants (named by ``calibration`` version), which is what
makes ``explain() == executed plan`` a testable contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.optimizer.sketch import DatasetSketch

__all__ = ["CandidateScore", "Plan"]


@dataclass(frozen=True)
class CandidateScore:
    """One scored registry variant inside a :class:`Plan`.

    ``cost_seconds`` is the calibrated total for the planned context
    (``build_seconds`` amortised over the expected probe count);
    ``comparisons`` is the analytic candidate-pair workload driving it.
    ``note`` carries human-readable penalties ("over memory budget",
    "rebuilds per probe") that explain a surprising ranking.
    """

    algorithm: str
    backend: str
    cost_seconds: float
    build_seconds: float
    probe_seconds: float
    comparisons: float
    chosen: bool = False
    note: str = ""

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "backend": self.backend,
            "cost_seconds": self.cost_seconds,
            "build_seconds": self.build_seconds,
            "probe_seconds": self.probe_seconds,
            "comparisons": self.comparisons,
            "chosen": self.chosen,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CandidateScore":
        return cls(
            algorithm=str(payload["algorithm"]),
            backend=str(payload["backend"]),
            cost_seconds=float(payload["cost_seconds"]),
            build_seconds=float(payload["build_seconds"]),
            probe_seconds=float(payload["probe_seconds"]),
            comparisons=float(payload["comparisons"]),
            chosen=bool(payload.get("chosen", False)),
            note=str(payload.get("note", "")),
        )


@dataclass(frozen=True)
class Plan:
    """The optimizer's decision for one join (or probe stream).

    Attributes
    ----------
    algorithm, backend, workers, decompose, geometry:
        The execution choice.  ``workers == 0`` means sequential;
        ``decompose`` is only consulted when ``workers > 0``.
    epsilon, probes, reuse_index:
        The planned context: distance threshold, how many probes the
        build is expected to serve, and whether an index cache is in
        play (amortising build cost for prepare-aware algorithms).
    cost_seconds, est_result_pairs:
        The winning candidate's calibrated estimate and the analytic
        expected result size.
    candidates:
        Every scored variant, sorted cheapest first, exactly one with
        ``chosen=True``.
    sketch_a, sketch_b:
        The input sketches the scores were computed from.
    reason:
        One-line human-readable summary of the decision.
    calibration:
        Version tag of the constants used (see
        :mod:`repro.optimizer.calibration`).
    """

    algorithm: str
    backend: str
    workers: int
    decompose: str
    geometry: str
    epsilon: float
    probes: int
    reuse_index: bool
    cost_seconds: float
    est_result_pairs: float
    candidates: tuple[CandidateScore, ...]
    sketch_a: DatasetSketch
    sketch_b: DatasetSketch
    reason: str = ""
    calibration: str = ""
    pinned: tuple[str, ...] = field(default_factory=tuple)

    def chosen(self) -> CandidateScore:
        """The winning candidate record."""
        for candidate in self.candidates:
            if candidate.chosen:
                return candidate
        raise ValueError("plan has no chosen candidate")

    def as_dict(self) -> dict:
        """Exact JSON-safe view; :meth:`from_dict` restores equality."""
        return {
            "algorithm": self.algorithm,
            "backend": self.backend,
            "workers": self.workers,
            "decompose": self.decompose,
            "geometry": self.geometry,
            "epsilon": self.epsilon,
            "probes": self.probes,
            "reuse_index": self.reuse_index,
            "cost_seconds": self.cost_seconds,
            "est_result_pairs": self.est_result_pairs,
            "candidates": [c.as_dict() for c in self.candidates],
            "sketch_a": self.sketch_a.as_dict(),
            "sketch_b": self.sketch_b.as_dict(),
            "reason": self.reason,
            "calibration": self.calibration,
            "pinned": list(self.pinned),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Plan":
        return cls(
            algorithm=str(payload["algorithm"]),
            backend=str(payload["backend"]),
            workers=int(payload["workers"]),
            decompose=str(payload["decompose"]),
            geometry=str(payload["geometry"]),
            epsilon=float(payload["epsilon"]),
            probes=int(payload["probes"]),
            reuse_index=bool(payload["reuse_index"]),
            cost_seconds=float(payload["cost_seconds"]),
            est_result_pairs=float(payload["est_result_pairs"]),
            candidates=tuple(
                CandidateScore.from_dict(c) for c in payload["candidates"]
            ),
            sketch_a=DatasetSketch.from_dict(payload["sketch_a"]),
            sketch_b=DatasetSketch.from_dict(payload["sketch_b"]),
            reason=str(payload.get("reason", "")),
            calibration=str(payload.get("calibration", "")),
            pinned=tuple(payload.get("pinned", ())),
        )
