"""Calibration constants: work units → seconds, fit from BENCH data.

The analytic formulas in :mod:`repro.optimizer.cost` count elementary
operations; these constants price them in wall-clock seconds per
algorithm.  :data:`DEFAULT_CALIBRATION` ships values fit against the
committed ``BENCH_PR9.json`` medium-scale trajectory (the
:func:`fit_from_trajectory` output on that file, rounded): the one-shot
Fig-9/Fig-11 rows pin each algorithm's ``seconds_per_unit`` and the
repeated-probe cached rows pin the fixed per-probe overhead the grid
algorithms pay when a small batch re-scans their partitioning.

Algorithms never measured by a trajectory row fall back to
``default_seconds_per_unit``, deliberately pessimistic — an unmeasured
variant has to win by a wide analytic margin before auto risks it.

Refit after recording a new trajectory point with::

    from repro.optimizer.calibration import fit_from_trajectory
    fit_from_trajectory(["BENCH_PR10.json"])
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterable

__all__ = ["DEFAULT_CALIBRATION", "fit_from_trajectory"]


DEFAULT_CALIBRATION: dict = {
    "version": "pr10-fit-bench9",
    # Seconds per analytic work unit, per algorithm (columnar baseline).
    # Fit from the BENCH_PR9.json one-shot Fig-9/Fig-11 rows (mean over
    # the uniform and clustered workloads).
    "seconds_per_unit": {
        "TOUCH": 6.5e-07,
        "TwoLayer-500": 4.1e-07,
        "PBSM-500": 3.3e-07,
        "PBSM-100": 3.3e-07,
        "TwoLayer-100": 4.1e-07,
    },
    # Unmeasured variants: pessimistic so auto only picks them on a
    # wide analytic margin (pure-python tree descents are slow).
    "default_seconds_per_unit": 2.0e-06,
    # Fixed seconds per probe batch beyond the generic service
    # dispatch, per algorithm.  Fit from the repeated_probe cached rows:
    # a small batch probing a grid re-derives its partition mapping, so
    # the grid family pays ~0.17s/probe (TwoLayer-500 measured; the
    # same machinery backs the other grid variants) while TOUCH's tree
    # descent pays nothing measurable.
    "probe_overhead_extra": {
        "TwoLayer-500": 0.17,
        "TwoLayer-100": 0.17,
        "PBSM-500": 0.17,
        "PBSM-100": 0.17,
    },
    # Generic service dispatch + merge cost per probe batch.
    "probe_overhead_seconds": 0.03,
    # Object loops measured ~3x the columnar kernels across the
    # backend-parity smokes; the compiled tier shaves ~10% when numba
    # is importable (BENCH_PR7/PR9 compiled rows).
    "backend_factor": {"object": 3.0, "columnar": 1.0, "compiled": 0.9, "auto": 1.0},
    # Process spawn + shared-memory hand-off per worker, and how much
    # of ideal linear speedup the engine typically achieves.
    "worker_spawn_seconds": 0.35,
    "parallel_efficiency": 0.6,
    # Over-budget joins spill partitions to disk and join in passes.
    "spill_penalty": 2.0,
    # Exact-geometry refinement per surviving candidate pair.
    "refine_seconds_per_pair": 2.0e-06,
}


_ONE_SHOT = re.compile(
    r"^fig\d+/(?P<dist>\w+)/a(?P<na>\d+)-b(?P<nb>\d+)/eps(?P<eps>[\d.]+)$"
)
_REPEATED = re.compile(
    r"^repeated_probe/(?P<dist>\w+)/a(?P<na>\d+)-b(?P<nb>\d+)"
    r"/eps(?P<eps>[\d.]+)/q(?P<q>\d+)/(?P<mode>cached|rebuild)$"
)


def _workload_units(match: re.Match, algorithm: str, scale_name: str):
    """Sketches + work units for a parsed trajectory workload."""
    from repro.bench.config import current_scale
    from repro.bench.workloads import synthetic_pair
    from repro.optimizer.cost import work_units
    from repro.optimizer.sketch import sketch_dataset

    scale = current_scale(scale_name)
    dataset_a, dataset_b = synthetic_pair(
        match["dist"], int(match["na"]), int(match["nb"]), scale
    )
    sketch_a = sketch_dataset(dataset_a)
    sketch_b = sketch_dataset(dataset_b)
    return work_units(algorithm, sketch_a, sketch_b, float(match["eps"]))


def fit_from_trajectory(
    paths: Iterable[str | Path], scale_name: str = "medium"
) -> dict:
    """Fit per-algorithm constants from committed trajectory points.

    Regenerates each row's workload at ``scale_name`` (the seeds are
    scale-stable, so the sketches match what was measured), computes the
    analytic unit counts, and solves ``seconds = units x constant``:

    - one-shot figure rows give ``seconds_per_unit`` (averaged when an
      algorithm appears on several workloads);
    - ``repeated_probe`` cached rows give ``probe_overhead_extra`` —
      the fixed per-probe residual after the modelled kernel work and
      the generic dispatch overhead are subtracted.

    Returns a full calibration dict (unfitted algorithms keep the
    shipped defaults); notable refits get committed into
    :data:`DEFAULT_CALIBRATION`.
    """
    generic_overhead = float(DEFAULT_CALIBRATION["probe_overhead_seconds"])
    unit_samples: dict[str, list[float]] = {}
    cached: dict[str, tuple[float, float, float, int]] = {}

    for path in paths:
        payload = json.loads(Path(path).read_text())
        for row in payload.get("rows", []):
            workload = row.get("workload", "")
            algorithm = row.get("algorithm")
            seconds = row.get("seconds")
            if not algorithm or not isinstance(seconds, (int, float)):
                continue
            if row.get("backend") not in (None, "auto", "columnar"):
                continue
            match = _ONE_SHOT.match(workload)
            if match:
                build_units, probe_units, _ = _workload_units(
                    match, algorithm, scale_name
                )
                unit_samples.setdefault(algorithm, []).append(
                    seconds / max(1.0, build_units + probe_units)
                )
                continue
            match = _REPEATED.match(workload)
            if match and match["mode"] == "cached":
                build_units, probe_units, _ = _workload_units(
                    match, algorithm, scale_name
                )
                cached[algorithm] = (
                    seconds,
                    build_units,
                    probe_units,
                    int(match["q"]),
                )

    constants = dict(DEFAULT_CALIBRATION["seconds_per_unit"])
    constants.update(
        (algorithm, sum(samples) / len(samples))
        for algorithm, samples in unit_samples.items()
    )
    overhead_extra = dict(DEFAULT_CALIBRATION["probe_overhead_extra"])
    for algorithm, (seconds, build_units, probe_units, q) in cached.items():
        constant = constants.get(
            algorithm, float(DEFAULT_CALIBRATION["default_seconds_per_unit"])
        )
        kernel = (build_units + probe_units) * constant
        overhead_extra[algorithm] = (
            max(0.0, seconds - kernel - q * generic_overhead) / q
        )

    fitted = dict(DEFAULT_CALIBRATION)
    fitted["seconds_per_unit"] = constants
    fitted["probe_overhead_extra"] = overhead_extra
    fitted["version"] = f"fit:{'+'.join(Path(p).name for p in paths)}"
    return fitted
