"""Analytic-plus-calibrated cost model over the algorithm registry.

Each registered variant gets an analytic *work-unit* count — how many
elementary operations (comparisons, grid insertions, tree descents) the
uniform-assumption model predicts for the sketched workload — split into
a build and a probe component.  Calibration constants
(:mod:`repro.optimizer.calibration`, fit against the committed
``BENCH_PR*.json`` trajectories) convert units to seconds per algorithm
and backend, and :func:`choose_plan` turns the scored candidate list
into a first-class :class:`~repro.optimizer.plan.Plan`.

The formulas follow the paper's own phase analysis:

- NL is the full ``|A| · |B|`` comparison matrix;
- PS/SSSJ sort both sides then compare only pairs whose sweep-dimension
  windows overlap (the Minkowski window of Equation 1 along dim 0);
- PBSM/TwoLayer replicate boxes into ``cell_size`` tiles — replication
  is ``prod_d (side_d / cell + 1)``, comparisons are per-cell products
  under uniformity;
- the R-Tree family (INL, RTree, S3, SeededTree, Quadtree) pays
  ``n log n`` build and per-probe logarithmic descents plus output cost;
- TOUCH pays the same hierarchical build, then assignment-guided probes
  (its filtering keeps the output term near the true result size).

More objects, larger ε, or denser data can only increase every unit
count — the monotonicity the test suite pins.
"""

from __future__ import annotations

import math
import os

from repro.geometry.columnar import resolve_backend
from repro.joins.registry import ALGORITHMS, available, make_algorithm
from repro.optimizer.calibration import DEFAULT_CALIBRATION
from repro.optimizer.plan import CandidateScore, Plan
from repro.optimizer.sketch import DatasetSketch
from repro.stats.estimate import estimate_pair_probability

__all__ = [
    "work_units",
    "score_candidates",
    "choose_plan",
    "SKEW_TILES_THRESHOLD",
]

#: Histogram skew above which the parallel decompose switches from
#: contiguous slabs to a tile grid (clustered data piles into one slab).
SKEW_TILES_THRESHOLD = 4.0

#: Worker counts considered by the parallel-speedup heuristic.
_WORKER_CHOICES = (2, 4, 8)

#: Tree descent/output fudge: expected tree nodes visited per reported
#: pair beyond the pure logarithmic descent.
_OUTPUT_UNITS_PER_PAIR = 4.0

#: Probe stream assumed behind a ``reuse_index`` plan with no explicit
#: probe count: a caller asking for the index cache expects to probe
#: repeatedly, so the build amortises and the fixed per-probe overhead
#: (which the grid family pays every batch) dominates the ranking.
_REUSE_ASSUMED_PROBES = 16

_GRID_ALGORITHMS = ("PBSM-500", "PBSM-100", "TwoLayer-500", "TwoLayer-100")
_SWEEP_ALGORITHMS = ("PS", "SSSJ")


def _union_extents(
    sketch_a: DatasetSketch, sketch_b: DatasetSketch
) -> tuple[float, ...]:
    dim = min(sketch_a.dim, sketch_b.dim)
    return tuple(
        max(sketch_a.hi[d], sketch_b.hi[d]) - min(sketch_a.lo[d], sketch_b.lo[d])
        for d in range(dim)
    )


def expected_pairs(
    sketch_a: DatasetSketch, sketch_b: DatasetSketch, epsilon: float
) -> float:
    """Uniform-model expected result pairs for the sketched workload."""
    if sketch_a.n == 0 or sketch_b.n == 0:
        return 0.0
    probability = estimate_pair_probability(
        sketch_a.mean_sides,
        sketch_b.mean_sides,
        _union_extents(sketch_a, sketch_b),
        epsilon,
    )
    return probability * sketch_a.n * sketch_b.n


def work_units(
    name: str,
    sketch_a: DatasetSketch,
    sketch_b: DatasetSketch,
    epsilon: float,
) -> tuple[float, float, float]:
    """``(build_units, probe_units, comparisons)`` for one variant.

    Build covers indexing the A side; probe covers streaming the B side
    through it (the service's per-query cost).  ``comparisons`` is the
    analytic candidate-pair count, reported in candidate scores.
    """
    n_a, n_b = sketch_a.n, sketch_b.n
    if n_a == 0 or n_b == 0:
        return (float(n_a), float(n_b), 0.0)
    pairs = expected_pairs(sketch_a, sketch_b, epsilon)
    log_a = math.log2(n_a + 2)

    if name == "NL":
        comparisons = float(n_a) * n_b
        return (float(n_a), comparisons, comparisons)

    if name in _SWEEP_ALGORITHMS:
        extents = _union_extents(sketch_a, sketch_b)
        window = sketch_a.mean_sides[0] + sketch_b.mean_sides[0] + 2.0 * epsilon
        p_sweep = min(1.0, window / extents[0]) if extents[0] > 0 else 1.0
        comparisons = float(n_a) * n_b * p_sweep
        sort = (n_a + n_b) * math.log2(n_a + n_b + 2)
        return (sort, sort + comparisons, comparisons)

    if name in _GRID_ALGORITHMS:
        cell = float(dict(_info(name).config).get("cell_size", 10.0))
        extents = _union_extents(sketch_a, sketch_b)
        cells = 1.0
        replication_a = 1.0
        replication_b = 1.0
        for d, extent in enumerate(extents):
            if extent <= 0:
                continue
            cells *= max(1.0, math.ceil(extent / cell))
            # The A side is ε-inflated before partitioning (the paper's
            # L∞ distance-join reduction).
            replication_a *= (sketch_a.mean_sides[d] + 2.0 * epsilon) / cell + 1.0
            replication_b *= sketch_b.mean_sides[d] / cell + 1.0
        entries_a = n_a * replication_a
        entries_b = n_b * replication_b
        comparisons = entries_a * entries_b / cells
        return (entries_a, entries_b + comparisons, comparisons)

    # The tree family (INL, RTree, S3, SeededTree, Quadtree) and TOUCH:
    # hierarchical build over A, per-object descents for B plus output.
    build = n_a * log_a
    probe = n_b * log_a + pairs * _OUTPUT_UNITS_PER_PAIR
    return (build, probe, pairs)


def _info(name: str):
    for info in available():
        if info.name == name:
            return info
    raise KeyError(f"unknown algorithm {name!r}; known: {', '.join(ALGORITHMS)}")


def _seconds_per_unit(calibration: dict, name: str) -> float:
    return float(
        calibration["seconds_per_unit"].get(
            name, calibration["default_seconds_per_unit"]
        )
    )


def _backend_factor(calibration: dict, backend: str) -> float:
    return float(calibration["backend_factor"].get(backend, 1.0))


def score_candidates(
    sketch_a: DatasetSketch,
    sketch_b: DatasetSketch,
    epsilon: float,
    *,
    backend: str | None = None,
    geometry: str = "mbr",
    probes: int = 1,
    reuse_index: bool = False,
    max_bytes: int | None = None,
    calibration: dict | None = None,
) -> list[CandidateScore]:
    """Score every registry variant for the sketched workload.

    Returns the full list sorted cheapest-first (no ``chosen`` flag set;
    :func:`choose_plan` marks the winner).  ``backend`` pins the
    execution backend for backend-aware algorithms; ``None`` or
    ``"auto"`` lets the model pick the best resolvable one.
    """
    cal = calibration or DEFAULT_CALIBRATION
    pinned_backend = backend if backend not in (None, "auto") else None
    best_backend = (
        resolve_backend(pinned_backend)
        if pinned_backend is not None
        else resolve_backend("compiled")
    )
    pairs = expected_pairs(sketch_a, sketch_b, epsilon)
    scores: list[CandidateScore] = []
    for info in available():
        exec_backend = best_backend if info.backend_aware else "object"
        factor = _backend_factor(cal, exec_backend)
        build_units, probe_units, comparisons = work_units(
            info.name, sketch_a, sketch_b, epsilon
        )
        constant = _seconds_per_unit(cal, info.name)
        build_seconds = build_units * constant * factor
        probe_seconds = probe_units * constant * factor
        notes = []
        per_probe = float(cal["probe_overhead_seconds"]) + float(
            cal["probe_overhead_extra"].get(info.name, 0.0)
        )
        overhead = probes * per_probe if probes > 1 else 0.0
        if probes > 1 and not info.prepare_aware:
            # The service's fallback rebuilds per probe for these.
            total = probes * build_seconds + probe_seconds + overhead
            notes.append("rebuilds per probe")
        elif probes == 1 and reuse_index:
            # Build-once/probe-many context with no explicit probe
            # count: score the amortised per-probe cost.  Prepare-aware
            # variants spread the build over the assumed stream; the
            # rest rebuild every call, and everyone pays the fixed
            # per-probe dispatch overhead each time.
            if info.prepare_aware:
                total = (
                    build_seconds / _REUSE_ASSUMED_PROBES
                    + probe_seconds
                    + per_probe
                )
                notes.append("build amortised over cached reuse")
            else:
                total = build_seconds + probe_seconds + per_probe
                notes.append("rebuilds per probe")
        else:
            total = build_seconds + probe_seconds + overhead
        if geometry == "exact":
            total += pairs * float(cal["refine_seconds_per_pair"])
        if max_bytes is not None:
            footprint = make_algorithm(info.name).estimate_bytes(
                sketch_a.n, sketch_b.n, max(sketch_a.dim, sketch_b.dim)
            )
            if footprint > max_bytes:
                total *= float(cal["spill_penalty"])
                notes.append("over memory budget; spill passes priced in")
        scores.append(
            CandidateScore(
                algorithm=info.name,
                backend=exec_backend,
                cost_seconds=total,
                build_seconds=build_seconds,
                probe_seconds=probe_seconds,
                comparisons=comparisons,
                note="; ".join(notes),
            )
        )
    scores.sort(key=lambda s: s.cost_seconds)
    return scores


def _pick_workers(
    sequential_seconds: float, calibration: dict
) -> tuple[int, float]:
    """Worker count minimising the parallel-overhead model.

    Returns ``(0, sequential_seconds)`` unless some worker count beats
    sequential execution by a clear margin — process spawn and hand-off
    cost real fractions of a second, so small joins always stay
    sequential.
    """
    spawn = float(calibration["worker_spawn_seconds"])
    efficiency = float(calibration["parallel_efficiency"])
    cpus = os.cpu_count() or 1
    best = (0, sequential_seconds)
    for workers in _WORKER_CHOICES:
        if workers > cpus:
            break
        parallel = spawn * workers + sequential_seconds / (workers * efficiency)
        if parallel < best[1] * 0.8:
            best = (workers, parallel)
    return best


def choose_plan(
    sketch_a: DatasetSketch,
    sketch_b: DatasetSketch,
    epsilon: float,
    *,
    algorithm: str | None = None,
    backend: str | None = None,
    workers: int | None = None,
    decompose: str | None = None,
    geometry: str | None = None,
    probes: int = 1,
    reuse_index: bool = False,
    max_bytes: int | None = None,
    calibration: dict | None = None,
) -> Plan:
    """Pick an execution plan for the sketched workload.

    Keyword arguments that are not ``None`` are *pins* — caller
    decisions the optimizer must respect (an explicitly requested
    backend, worker count, or even algorithm; pinning the algorithm
    still scores every candidate, which is how ``explain`` works for
    named algorithms).  Everything unpinned is chosen by the calibrated
    cost model.
    """
    cal = calibration or DEFAULT_CALIBRATION
    geometry_mode = geometry or "mbr"
    pinned = tuple(
        name
        for name, value in (
            ("algorithm", algorithm),
            ("backend", backend if backend not in (None, "auto") else None),
            ("workers", workers),
            ("decompose", decompose),
            ("geometry", geometry),
        )
        if value is not None
    )
    scores = score_candidates(
        sketch_a,
        sketch_b,
        epsilon,
        backend=backend,
        geometry=geometry_mode,
        probes=probes,
        reuse_index=reuse_index,
        max_bytes=max_bytes,
        calibration=cal,
    )
    if algorithm is not None:
        _info(algorithm)  # eager unknown-name error, same as make_algorithm
        winner = next(s for s in scores if s.algorithm == algorithm)
    else:
        winner = scores[0]
    candidates = tuple(
        CandidateScore(
            algorithm=s.algorithm,
            backend=s.backend,
            cost_seconds=s.cost_seconds,
            build_seconds=s.build_seconds,
            probe_seconds=s.probe_seconds,
            comparisons=s.comparisons,
            chosen=s is winner,
            note=s.note,
        )
        for s in scores
    )
    if workers is not None:
        chosen_workers = workers
        parallel_seconds = winner.cost_seconds
    else:
        chosen_workers, parallel_seconds = _pick_workers(winner.cost_seconds, cal)
    if decompose is not None:
        chosen_decompose = decompose
    else:
        skew = max(sketch_a.skew(), sketch_b.skew())
        chosen_decompose = "tiles" if skew > SKEW_TILES_THRESHOLD else "slabs"
    reason_bits = [
        f"{winner.algorithm} ({winner.backend}) est {winner.cost_seconds:.4g}s"
    ]
    runner_up = next((s for s in scores if s is not winner), None)
    if runner_up is not None:
        reason_bits.append(
            f"runner-up {runner_up.algorithm} {runner_up.cost_seconds:.4g}s"
        )
    if algorithm is not None:
        reason_bits.append("algorithm pinned by caller")
    reason_bits.append(
        f"{chosen_workers} workers" if chosen_workers else "sequential"
    )
    return Plan(
        algorithm=winner.algorithm,
        backend=winner.backend,
        workers=chosen_workers,
        decompose=chosen_decompose,
        geometry=geometry_mode,
        epsilon=float(epsilon),
        probes=int(probes),
        reuse_index=bool(reuse_index),
        cost_seconds=parallel_seconds,
        est_result_pairs=expected_pairs(sketch_a, sketch_b, epsilon),
        candidates=candidates,
        sketch_a=sketch_a,
        sketch_b=sketch_b,
        reason="; ".join(reason_bits),
        calibration=str(cal.get("version", "")),
        pinned=pinned,
    )
