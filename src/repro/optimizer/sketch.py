"""Cheap dataset sketches: the statistics the cost model runs on.

A :class:`DatasetSketch` condenses a dataset into a few hundred bytes —
cardinality, extent, per-dimension mean MBR sides, density, shape
fraction and small per-dimension center histograms — computed in one
columnar pass over the ``(N, 2D)`` coordinate block (with a pure-Python
fallback when numpy is unavailable).  Sketches are cached process-wide
by dataset fingerprint, so the optimizer prices a repeatedly-probed
dataset once, not per query.

The histogram bins drive the skew metric that picks the parallel
decompose kind; everything else feeds the per-algorithm cost formulas in
:mod:`repro.optimizer.cost`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence, Union

from repro.geometry.columnar import HAVE_NUMPY, CoordinateTable
from repro.geometry.objects import SpatialObject

__all__ = [
    "DatasetSketch",
    "sketch_dataset",
    "sketch_table",
    "clear_sketch_cache",
    "HIST_BINS",
]

#: Bins per dimension of the center histograms.  16 is enough to expose
#: cluster-level skew (the decompose heuristic only needs "is one slab
#: much fuller than the mean") while keeping a sketch trivially small.
HIST_BINS = 16

#: Sketches retained in the process-wide fingerprint cache.
_CACHE_CAPACITY = 256


@dataclass(frozen=True)
class DatasetSketch:
    """Summary statistics of one dataset, keyed by its fingerprint.

    Attributes
    ----------
    n, dim:
        Cardinality and spatial dimensionality.
    lo, hi:
        Tight per-dimension bounds over all MBRs.
    mean_sides:
        Per-dimension mean MBR side length (the Aref & Samet input).
    density:
        Total MBR volume over the extent volume — the expected number of
        datasets objects covering a random point (degenerate dimensions
        are skipped, matching the selectivity model).
    shape_fraction:
        Fraction of objects carrying an exact refinement shape.
    histograms:
        Per-dimension counts of MBR centers over :data:`HIST_BINS`
        equal-width bins spanning ``[lo[d], hi[d]]``.
    fingerprint:
        The :func:`~repro.service.fingerprint.dataset_fingerprint` the
        sketch was computed from (cache key and provenance).
    """

    n: int
    dim: int
    lo: tuple[float, ...]
    hi: tuple[float, ...]
    mean_sides: tuple[float, ...]
    density: float
    shape_fraction: float
    histograms: tuple[tuple[int, ...], ...]
    fingerprint: str

    def extents(self) -> tuple[float, ...]:
        """Per-dimension extent of the bounding box."""
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    def skew(self) -> float:
        """Max histogram-bin occupancy relative to the uniform mean.

        1.0 means perfectly even; a clustered dataset where one of the
        :data:`HIST_BINS` bins holds half the centers scores ≈ 8.  The
        parallel engine's decompose heuristic switches from slabs to
        tiles above :data:`repro.optimizer.cost.SKEW_TILES_THRESHOLD`.
        """
        if self.n == 0:
            return 1.0
        expected = self.n / HIST_BINS
        worst = max((max(h) for h in self.histograms), default=0)
        return worst / expected if expected > 0 else 1.0

    def as_dict(self) -> dict:
        """Exact JSON-safe view (round-trips through :meth:`from_dict`)."""
        return {
            "n": self.n,
            "dim": self.dim,
            "lo": list(self.lo),
            "hi": list(self.hi),
            "mean_sides": list(self.mean_sides),
            "density": self.density,
            "shape_fraction": self.shape_fraction,
            "histograms": [list(h) for h in self.histograms],
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DatasetSketch":
        """Rebuild a sketch from :meth:`as_dict` output (wire payloads)."""
        return cls(
            n=int(payload["n"]),
            dim=int(payload["dim"]),
            lo=tuple(float(v) for v in payload["lo"]),
            hi=tuple(float(v) for v in payload["hi"]),
            mean_sides=tuple(float(v) for v in payload["mean_sides"]),
            density=float(payload["density"]),
            shape_fraction=float(payload["shape_fraction"]),
            histograms=tuple(
                tuple(int(c) for c in h) for h in payload["histograms"]
            ),
            fingerprint=str(payload["fingerprint"]),
        )


_cache_lock = threading.Lock()
_sketch_cache: "OrderedDict[str, DatasetSketch]" = OrderedDict()


def clear_sketch_cache() -> None:
    """Drop every cached sketch (tests and long-lived servers)."""
    with _cache_lock:
        _sketch_cache.clear()


def _shape_fraction(objects: Sequence[SpatialObject]) -> float:
    from repro.geometry.shapes import Shape

    if not objects:
        return 0.0
    shaped = sum(1 for obj in objects if isinstance(obj.geometry, Shape))
    return shaped / len(objects)


def _empty_sketch(dim: int, fingerprint: str) -> DatasetSketch:
    return DatasetSketch(
        n=0,
        dim=dim,
        lo=(0.0,) * dim,
        hi=(0.0,) * dim,
        mean_sides=(0.0,) * dim,
        density=0.0,
        shape_fraction=0.0,
        histograms=((0,) * HIST_BINS,) * dim,
        fingerprint=fingerprint,
    )


def _sketch_columnar(
    table: CoordinateTable, shape_fraction: float, fingerprint: str
) -> DatasetSketch:
    import numpy as np

    dim = table.dim
    lo_all = table.lo.min(axis=0)
    hi_all = table.hi.max(axis=0)
    sides = table.hi - table.lo
    mean_sides = sides.mean(axis=0)
    extents = hi_all - lo_all
    live = extents > 0
    if live.any():
        volumes = np.prod(sides[:, live], axis=1)
        density = float(volumes.sum() / np.prod(extents[live]))
    else:
        density = 0.0
    centers = (table.lo + table.hi) * 0.5
    histograms = []
    for d in range(dim):
        if extents[d] > 0:
            counts, _ = np.histogram(
                centers[:, d], bins=HIST_BINS, range=(lo_all[d], hi_all[d])
            )
        else:
            counts = np.zeros(HIST_BINS, dtype=np.int64)
            counts[0] = len(table)
        histograms.append(tuple(int(c) for c in counts))
    return DatasetSketch(
        n=len(table),
        dim=dim,
        lo=tuple(float(v) for v in lo_all),
        hi=tuple(float(v) for v in hi_all),
        mean_sides=tuple(float(v) for v in mean_sides),
        density=density,
        shape_fraction=shape_fraction,
        histograms=tuple(histograms),
        fingerprint=fingerprint,
    )


def _sketch_objects(
    objects: Sequence[SpatialObject], shape_fraction: float, fingerprint: str
) -> DatasetSketch:
    dim = objects[0].mbr.dim
    lo_all = list(objects[0].mbr.lo)
    hi_all = list(objects[0].mbr.hi)
    side_totals = [0.0] * dim
    volume_total = 0.0
    centers: list[tuple[float, ...]] = []
    for obj in objects:
        mbr = obj.mbr
        volume = 1.0
        for d in range(dim):
            lo_all[d] = min(lo_all[d], mbr.lo[d])
            hi_all[d] = max(hi_all[d], mbr.hi[d])
            side = mbr.hi[d] - mbr.lo[d]
            side_totals[d] += side
            volume *= side
        volume_total += volume
        centers.append(
            tuple((mbr.lo[d] + mbr.hi[d]) * 0.5 for d in range(dim))
        )
    n = len(objects)
    extents = [hi_all[d] - lo_all[d] for d in range(dim)]
    live = [d for d in range(dim) if extents[d] > 0]
    if live:
        # Recompute volumes over live dimensions only, mirroring the
        # columnar path's degenerate-extent handling.
        volume_total = 0.0
        extent_volume = 1.0
        for obj in objects:
            volume = 1.0
            for d in live:
                volume *= obj.mbr.hi[d] - obj.mbr.lo[d]
            volume_total += volume
        for d in live:
            extent_volume *= extents[d]
        density = volume_total / extent_volume
    else:
        density = 0.0
    histograms = []
    for d in range(dim):
        counts = [0] * HIST_BINS
        if extents[d] > 0:
            width = extents[d] / HIST_BINS
            for center in centers:
                index = int((center[d] - lo_all[d]) / width)
                counts[min(index, HIST_BINS - 1)] += 1
        else:
            counts[0] = n
        histograms.append(tuple(counts))
    return DatasetSketch(
        n=n,
        dim=dim,
        lo=tuple(lo_all),
        hi=tuple(hi_all),
        mean_sides=tuple(total / n for total in side_totals),
        density=density,
        shape_fraction=shape_fraction,
        histograms=tuple(histograms),
        fingerprint=fingerprint,
    )


def sketch_table(table: CoordinateTable) -> DatasetSketch:
    """Sketch a raw coordinate table (the MBR-batch probe fast path).

    Tables have no object identities, so the cache key is a digest of
    the coordinate block itself (prefixed to keep it disjoint from
    object-dataset fingerprints).
    """
    import hashlib

    import numpy as np

    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(table.lo, dtype=np.float64).tobytes())
    digest.update(np.ascontiguousarray(table.hi, dtype=np.float64).tobytes())
    fingerprint = "table:" + digest.hexdigest()
    with _cache_lock:
        cached = _sketch_cache.get(fingerprint)
        if cached is not None:
            _sketch_cache.move_to_end(fingerprint)
            return cached
    if len(table) == 0:
        sketch = _empty_sketch(table.dim, fingerprint)
    else:
        sketch = _sketch_columnar(table, 0.0, fingerprint)
    with _cache_lock:
        _sketch_cache[fingerprint] = sketch
        while len(_sketch_cache) > _CACHE_CAPACITY:
            _sketch_cache.popitem(last=False)
    return sketch


def sketch_dataset(
    dataset: Union[Sequence[SpatialObject], "object"],
    fingerprint: str | None = None,
) -> DatasetSketch:
    """Sketch a dataset (or ``Dataset``), cached by fingerprint.

    ``fingerprint`` may be passed by callers that already computed it
    (the query service keys its index cache on the same digest); when
    omitted it is computed here, sharing one columnar conversion with
    the stats pass so a cold sketch scans the coordinates once, not
    twice.  Hits return the cached sketch without touching the
    coordinates again.  A raw :class:`CoordinateTable` routes through
    :func:`sketch_table`.
    """
    from repro.service.fingerprint import dataset_fingerprint

    if isinstance(dataset, CoordinateTable):
        return sketch_table(dataset)
    objects = dataset if isinstance(dataset, (list, tuple)) else list(dataset)
    table = None
    if fingerprint is None:
        if objects and HAVE_NUMPY:
            table = CoordinateTable.from_objects(objects)
        fingerprint = dataset_fingerprint(objects, table=table)
    with _cache_lock:
        cached = _sketch_cache.get(fingerprint)
        if cached is not None:
            _sketch_cache.move_to_end(fingerprint)
            return cached
    if not objects:
        from repro.geometry.columnar import DEFAULT_DIM

        sketch = _empty_sketch(DEFAULT_DIM, fingerprint)
    else:
        shape_fraction = _shape_fraction(objects)
        if HAVE_NUMPY:
            if table is None:
                table = CoordinateTable.from_objects(objects)
            sketch = _sketch_columnar(table, shape_fraction, fingerprint)
        else:
            sketch = _sketch_objects(objects, shape_fraction, fingerprint)
    with _cache_lock:
        _sketch_cache[fingerprint] = sketch
        while len(_sketch_cache) > _CACHE_CAPACITY:
            _sketch_cache.popitem(last=False)
    return sketch
