"""Experiment definitions: one per table and figure of the paper's §6.

Each ``experiment_*`` function regenerates the rows/series of one paper
artifact at a configurable scale and returns an :class:`ExperimentResult`
whose ``rows`` hold exactly the quantities the paper plots (comparisons,
execution time, memory, filtered objects, selectivity).  The ``notes``
field records the paper's qualitative claim that the experiment is meant
to reproduce; ``EXPERIMENTS.md`` tracks paper-vs-measured per claim.
"""

from __future__ import annotations

import contextlib
import gc
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.bench.config import RunOptions, Scale, current_scale
from repro.bench.runner import (
    RunRecord,
    current_backend,
    record_from_result,
    run_algorithm,
    use_backend,
    use_geometry,
    use_max_bytes,
    use_parallel,
)
from repro.bench.workloads import (
    FIG8_ALGORITHMS,
    LARGE_ALGORITHMS,
    LARGE_DISTRIBUTIONS,
    SHAPE_DISTRIBUTIONS,
    neuro_pair,
    synthetic_pair,
)
from repro.core.distance_join import distance_join
from repro.datasets.io import read_dataset, write_dataset
from repro.datasets.neuroscience import density_subsets
from repro.datasets.transform import inflate
from repro.joins.registry import make_algorithm
from repro.parallel.chunked import ChunkedSpatialJoin

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment"]


@dataclass
class ExperimentResult:
    """Rows regenerating one paper table/figure, plus provenance."""

    experiment: str
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: str = ""
    scale: str = ""
    backend: str | None = None

    def add(self, record: RunRecord, **extra) -> None:
        row = record.as_dict()
        row.update(extra)
        self.rows.append(row)


# --------------------------------------------------------------------------
# Table 1 — dataset selectivity
# --------------------------------------------------------------------------
def experiment_table1(scale: Scale) -> ExperimentResult:
    """Selectivity (Equation 1, ×1e-6) of every dataset pair and ε."""
    out = ExperimentResult(
        "table1",
        "Table 1: join selectivity of the datasets (x1e-6)",
        notes=(
            "Paper ordering at fixed epsilon: gaussian > clustered > uniform "
            "for the synthetic datasets; selectivity grows with epsilon."
        ),
        scale=scale.name,
    )
    for distribution in LARGE_DISTRIBUTIONS:
        dataset_a, dataset_b = synthetic_pair(
            distribution, scale.table1_a, scale.table1_b, scale, space=scale.table1_space
        )
        for epsilon in scale.epsilons:
            record = run_algorithm("TOUCH", dataset_a, dataset_b, epsilon)
            out.add(record, selectivity_e6=record.selectivity * 1e6)
    axons, dendrites = neuro_pair(scale)
    for epsilon in scale.epsilons:
        record = run_algorithm("TOUCH", axons, dendrites, epsilon)
        out.add(record, selectivity_e6=record.selectivity * 1e6)
    return out


# --------------------------------------------------------------------------
# §6.3 — loading the data
# --------------------------------------------------------------------------
def experiment_loading(scale: Scale) -> ExperimentResult:
    """Load time vs the fastest state-of-the-art join (PBSM-500)."""
    out = ExperimentResult(
        "loading",
        "Sec. 6.3: loading time is dwarfed by the join time",
        notes=(
            "Paper: loading never exceeds 2s while PBSM-500 takes 334-1512s; "
            "the measured ratio join/load should be >> 1 at every size."
        ),
        scale=scale.name,
    )
    dataset_a, _ = synthetic_pair("uniform", scale.large_a, scale.large_a, scale)
    with tempfile.TemporaryDirectory(prefix="repro-loading-") as tmp:
        for n_b in scale.large_b_steps:
            _, dataset_b = synthetic_pair("uniform", scale.large_a, n_b, scale)
            path = Path(tmp) / f"b-{n_b}.bin"
            write_dataset(dataset_b, path)
            # Collect before timing: at the small reproduction scales a
            # load takes ~1ms, so a generational GC pause from earlier
            # allocations landing inside the window would dominate the
            # measurement (observed: a gen-2 pass made the first load
            # look 10x slower than the join at smoke scale).
            gc.collect()
            start = time.perf_counter()
            loaded = read_dataset(path)
            load_seconds = time.perf_counter() - start
            record = run_algorithm("PBSM-500", dataset_a, loaded, scale.large_epsilon)
            out.add(
                record,
                load_seconds=load_seconds,
                join_over_load=(
                    record.total_seconds / load_seconds if load_seconds > 0 else float("inf")
                ),
            )
    return out


# --------------------------------------------------------------------------
# Figure 8 — small uniform datasets, all eight algorithms
# --------------------------------------------------------------------------
def experiment_fig8(scale: Scale) -> ExperimentResult:
    """Comparisons and execution time, small uniform datasets, ε = 10."""
    out = ExperimentResult(
        "fig8",
        "Figure 8: small uniform datasets, increasing |B|, eps=10",
        notes=(
            "Paper: TOUCH and both PBSM configurations drastically outperform "
            "NL and PS in comparisons and time; execution time tracks the "
            "number of comparisons; PBSM-500 beats PBSM-100 on comparisons."
        ),
        scale=scale.name,
    )
    for n_b in scale.fig8_b_steps:
        dataset_a, dataset_b = synthetic_pair(
            "uniform", scale.fig8_a, n_b, scale, space=scale.fig8_space
        )
        for algorithm in FIG8_ALGORITHMS:
            out.add(run_algorithm(algorithm, dataset_a, dataset_b, scale.fig8_epsilon))
    return out


# --------------------------------------------------------------------------
# Figures 9/10/11 — large datasets per distribution
# --------------------------------------------------------------------------
def _experiment_large(distribution: str, figure: str, scale: Scale) -> ExperimentResult:
    out = ExperimentResult(
        figure,
        f"Figure {figure[3:]}: large {distribution} datasets, increasing |B|, eps=5",
        notes=(
            "Paper: TOUCH is ~1 order of magnitude faster than PBSM-500, which "
            "is ~1 order faster than S3/INL/RTree; PBSM-500 uses ~2 orders of "
            "magnitude more memory; comparisons follow gaussian > clustered > "
            "uniform across the figures."
        ),
        scale=scale.name,
    )
    for n_b in scale.large_b_steps:
        dataset_a, dataset_b = synthetic_pair(distribution, scale.large_a, n_b, scale)
        for algorithm in LARGE_ALGORITHMS:
            out.add(run_algorithm(algorithm, dataset_a, dataset_b, scale.large_epsilon))
    return out


def experiment_fig9(scale: Scale) -> ExperimentResult:
    """Large uniform datasets (comparisons / time / memory)."""
    return _experiment_large("uniform", "fig9", scale)


def experiment_fig10(scale: Scale) -> ExperimentResult:
    """Large Gaussian datasets (comparisons / time / memory)."""
    return _experiment_large("gaussian", "fig10", scale)


def experiment_fig11(scale: Scale) -> ExperimentResult:
    """Large clustered datasets (comparisons / time / memory)."""
    return _experiment_large("clustered", "fig11", scale)


# --------------------------------------------------------------------------
# Figure 12 — varying the distance threshold ε
# --------------------------------------------------------------------------
def experiment_fig12(scale: Scale) -> ExperimentResult:
    """Execution time for ε = 5 vs ε = 10 on all distributions."""
    out = ExperimentResult(
        "fig12",
        "Figure 12: impact of doubling eps on execution time (|A| = |B|)",
        notes=(
            "Paper: doubling eps roughly doubles execution time for most "
            "approaches; both PBSM configurations grow super-linearly because "
            "replication increases with eps."
        ),
        scale=scale.name,
    )
    for distribution in LARGE_DISTRIBUTIONS:
        dataset_a, dataset_b = synthetic_pair(
            distribution, scale.large_a, scale.large_a, scale
        )
        for algorithm in LARGE_ALGORITHMS:
            for epsilon in scale.epsilons:
                out.add(run_algorithm(algorithm, dataset_a, dataset_b, epsilon))
    return out


# --------------------------------------------------------------------------
# Figure 13 — TOUCH's filtering capability
# --------------------------------------------------------------------------
def experiment_fig13(scale: Scale) -> ExperimentResult:
    """Objects of B filtered by TOUCH per distribution and |B|."""
    out = ExperimentResult(
        "fig13",
        "Figure 13: filtering capability of TOUCH, eps=5",
        notes=(
            "Paper: the less uniform the distribution, the more objects are "
            "filtered — none for uniform, some for gaussian, most for "
            "clustered (e.g. 440K of 9.6M)."
        ),
        scale=scale.name,
    )
    for distribution in LARGE_DISTRIBUTIONS:
        for n_b in scale.large_b_steps:
            dataset_a, dataset_b = synthetic_pair(distribution, scale.large_a, n_b, scale)
            record = run_algorithm("TOUCH", dataset_a, dataset_b, scale.large_epsilon)
            out.add(record, filtered_fraction=record.filtered / max(1, record.n_b))
    return out


# --------------------------------------------------------------------------
# Figure 14 — impact of the fanout
# --------------------------------------------------------------------------
def experiment_fig14(scale: Scale) -> ExperimentResult:
    """Fanout sweep: filtered objects (14a) and comparisons (14b)."""
    out = ExperimentResult(
        "fig14",
        "Figure 14: impact of TOUCH's fanout on filtering and comparisons",
        notes=(
            "Paper: smaller fanouts filter more (gaussian/clustered; uniform "
            "filters nothing) and need fewer comparisons — about 1.5x fewer "
            "at fanout 2 than at fanout 20."
        ),
        scale=scale.name,
    )
    n_b = scale.large_b_steps[-1]
    for distribution in LARGE_DISTRIBUTIONS:
        dataset_a, dataset_b = synthetic_pair(distribution, scale.large_a, n_b, scale)
        for fanout in scale.fanout_sweep:
            # num_partitions=None selects Algorithm 2's literal rule
            # (leaf buckets of size `fanout`), the mechanism behind the
            # paper's Figure 14 trends (see repro.core.tree.TouchTree).
            record = run_algorithm(
                "TOUCH",
                dataset_a,
                dataset_b,
                scale.large_epsilon,
                fanout=fanout,
                num_partitions=None,
            )
            out.add(record, fanout=fanout)
    return out


# --------------------------------------------------------------------------
# Figure 15 — increasingly dense neuroscience datasets
# --------------------------------------------------------------------------
def experiment_fig15(scale: Scale) -> ExperimentResult:
    """Execution time vs density (% subsets of the neuro model), ε = 5."""
    out = ExperimentResult(
        "fig15",
        "Figure 15: execution time for increasingly dense neuroscience data",
        notes=(
            "Paper: at full density TOUCH is ~8x faster than PBSM-500 and "
            "~50x faster than the best of S3/RTree/INL, with ~12x less "
            "memory than PBSM-500."
        ),
        scale=scale.name,
    )
    axons, dendrites = neuro_pair(scale)
    for fraction, subset_a, subset_b in density_subsets(
        axons, dendrites, fractions=scale.density_fractions, seed=scale.seed
    ):
        for algorithm in LARGE_ALGORITHMS:
            record = run_algorithm(algorithm, subset_a, subset_b, scale.large_epsilon)
            out.add(record, density_fraction=fraction)
    return out


# --------------------------------------------------------------------------
# Figure 16 — neuroscience datasets, both ε
# --------------------------------------------------------------------------
def experiment_fig16(scale: Scale) -> ExperimentResult:
    """Time / comparisons / memory on the neuro pair for ε ∈ {5, 10}."""
    out = ExperimentResult(
        "fig16",
        "Figure 16: neuroscience datasets, eps in {5, 10}",
        notes=(
            "Paper: TOUCH outperforms all approaches in time and memory; "
            "PBSM-500 is second-fastest but needs far more memory; filtering "
            "removes 26.58% of B at eps=5 and 21.23% at eps=10 (dense centre, "
            "sparse rim)."
        ),
        scale=scale.name,
    )
    axons, dendrites = neuro_pair(scale)
    for algorithm in LARGE_ALGORITHMS:
        for epsilon in scale.epsilons:
            record = run_algorithm(algorithm, axons, dendrites, epsilon)
            out.add(record, filtered_fraction=record.filtered / max(1, record.n_b))
    return out


# --------------------------------------------------------------------------
# Ablations (design choices discussed in §5.2)
# --------------------------------------------------------------------------
def experiment_ablation_localjoin(scale: Scale) -> ExperimentResult:
    """TOUCH local-join kernel and grid cell-size factor (§5.2.2)."""
    out = ExperimentResult(
        "ablation_localjoin",
        "Ablation: TOUCH local-join kernel and cell size (Sec. 5.2.2)",
        notes=(
            "The grid kernel should beat the nested kernel; cells much "
            "smaller than the objects inflate replication, much larger cells "
            "inflate comparisons."
        ),
        scale=scale.name,
    )
    n_b = scale.large_b_steps[len(scale.large_b_steps) // 2]
    dataset_a, dataset_b = synthetic_pair("uniform", scale.large_a, n_b, scale)
    for kernel in ("grid", "sweep", "nested"):
        record = run_algorithm(
            "TOUCH", dataset_a, dataset_b, scale.large_epsilon, local_kernel=kernel
        )
        out.add(record, local_kernel=kernel, cell_size_factor=None)
    for factor in (1.0, 2.0, 4.0, 8.0, 16.0):
        record = run_algorithm(
            "TOUCH", dataset_a, dataset_b, scale.large_epsilon, cell_size_factor=factor
        )
        out.add(record, local_kernel="grid", cell_size_factor=factor)
    return out


def experiment_ablation_joinorder(scale: Scale) -> ExperimentResult:
    """Build-side choice: smaller dataset first vs larger first (§5.2.3)."""
    out = ExperimentResult(
        "ablation_joinorder",
        "Ablation: join order — build on the smaller vs the larger dataset",
        notes=(
            "Paper heuristic: building on the smaller dataset speeds up tree "
            "construction and improves filtering."
        ),
        scale=scale.name,
    )
    n_b = scale.large_b_steps[-1]
    dataset_a, dataset_b = synthetic_pair("clustered", scale.large_a, n_b, scale)
    for order in ("keep", "swap"):
        algorithm = make_algorithm("TOUCH")
        result = distance_join(
            dataset_a, dataset_b, scale.large_epsilon, algorithm=algorithm, order=order
        )
        record = record_from_result(
            result, dataset_a.name, len(dataset_a), len(dataset_b), scale.large_epsilon
        )
        out.add(record, order="small-first" if order == "keep" else "large-first")
    return out


def experiment_ablation_partitions(scale: Scale) -> ExperimentResult:
    """Leaf bucket count sweep (§5.2.1; the paper fixes p = 1024)."""
    out = ExperimentResult(
        "ablation_partitions",
        "Ablation: number of leaf partitions p",
        notes="More partitions give tighter leaves (fewer comparisons) at "
        "the cost of a taller tree and longer assignment.",
        scale=scale.name,
    )
    n_b = scale.large_b_steps[len(scale.large_b_steps) // 2]
    dataset_a, dataset_b = synthetic_pair("uniform", scale.large_a, n_b, scale)
    for partitions in (64, 256, 1024, 4096):
        record = run_algorithm(
            "TOUCH",
            dataset_a,
            dataset_b,
            scale.large_epsilon,
            num_partitions=partitions,
        )
        out.add(record, num_partitions=partitions)
    return out


def experiment_ablation_chunked(scale: Scale) -> ExperimentResult:
    """Chunked execution (§3's per-core decomposition): result parity."""
    out = ExperimentResult(
        "ablation_chunked",
        "Ablation: BlueGene/P-style contiguous chunking",
        notes=(
            "The union of per-chunk joins must equal the global join; "
            "per-chunk memory (the per-core footprint) shrinks with more "
            "chunks while total comparisons stay near-constant."
        ),
        scale=scale.name,
    )
    n_b = scale.large_b_steps[len(scale.large_b_steps) // 2]
    dataset_a, dataset_b = synthetic_pair("uniform", scale.large_a, n_b, scale)
    build = inflate(dataset_a, scale.large_epsilon)
    for n_chunks in (1, 2, 4, 8):
        algorithm = ChunkedSpatialJoin(
            lambda: make_algorithm("TOUCH"), n_chunks=n_chunks
        )
        result = algorithm.join(build, dataset_b)
        record = record_from_result(
            result, dataset_a.name, len(dataset_a), len(dataset_b), scale.large_epsilon
        )
        out.add(record, n_chunks=n_chunks)
    return out


# --------------------------------------------------------------------------
# Two-layer partition join vs the reference-point baselines
# --------------------------------------------------------------------------
#: The duplicate-free join, its grid-overlay twin and the paper's champion.
TWO_LAYER_ALGORITHMS = ("TwoLayer-500", "PBSM-500", "TOUCH")


def experiment_two_layer(scale: Scale) -> ExperimentResult:
    """TwoLayer vs PBSM-500/TOUCH on the Figures 9–11 workloads.

    For every workload the three algorithms must return the *identical*
    pair set (asserted — the comparison is worthless otherwise) and the
    TwoLayer rows must report ``dedup_checks == 0``: the two-layer
    mini-join matrix is duplicate-free by construction, so not a single
    reference-point test may execute anywhere in its path.

    Joins run sequentially and in-process on purpose — the assertions
    need the raw pair sets and the inner algorithms' own counters — so
    the ambient ``--workers`` / ``--decompose`` / ``--dedup`` engine
    selection does not apply here (the ambient ``--backend`` does).
    """
    out = ExperimentResult(
        "two_layer",
        "Two-layer partition join vs PBSM-500/TOUCH (Figs. 9-11 workloads)",
        notes=(
            "Tsitsigkos & Mamoulis: per-tile class mini-joins avoid every "
            "per-pair dedup test of the reference-point method while "
            "reporting the same pair set; replication matches PBSM at the "
            "same tile size, comparisons drop with the skipped class "
            "combinations."
        ),
        scale=scale.name,
    )
    ambient = current_backend()
    overrides = {"backend": ambient} if ambient else {}
    for distribution in LARGE_DISTRIBUTIONS:
        for n_b in scale.large_b_steps:
            dataset_a, dataset_b = synthetic_pair(
                distribution, scale.large_a, n_b, scale
            )
            build = inflate(dataset_a, scale.large_epsilon)
            probe = list(dataset_b)
            reference_pairs = None
            for algorithm in TWO_LAYER_ALGORITHMS:
                result = make_algorithm(algorithm, **overrides).join(build, probe)
                record = record_from_result(
                    result,
                    dataset_a.name,
                    len(dataset_a),
                    len(dataset_b),
                    scale.large_epsilon,
                )
                if algorithm.startswith("TwoLayer"):
                    if result.stats.dedup_checks != 0:
                        raise AssertionError(
                            f"{algorithm} on {dataset_a.name}/|B|={n_b} performed "
                            f"{result.stats.dedup_checks} dedup checks; the "
                            "two-layer join must perform none"
                        )
                if reference_pairs is None:
                    reference_pairs = result.pair_set()
                elif result.pair_set() != reference_pairs:
                    raise AssertionError(
                        f"{algorithm} on {dataset_a.name}/|B|={n_b} diverges "
                        f"from {TWO_LAYER_ALGORITHMS[0]}: "
                        f"{len(reference_pairs - result.pair_set())} missing, "
                        f"{len(result.pair_set() - reference_pairs)} spurious"
                    )
                out.add(record, distribution=distribution)
    return out


# --------------------------------------------------------------------------
# §3 — speedup vs workers (the BlueGene/P deployment, on multicore)
# --------------------------------------------------------------------------
#: Worker counts of the scaling sweep (the Fig-9-style speedup curve).
PARALLEL_WORKER_STEPS = (1, 2, 4)


def experiment_parallel_scaling(scale: Scale) -> ExperimentResult:
    """Speedup-vs-workers on the Figure 9 uniform workload, both cuttings.

    One sequential baseline, then the multiprocess engine at 1/2/4
    workers over slabs and tiles; every run must return the baseline's
    pair set (asserted — the curve is worthless if parity breaks).
    """
    out = ExperimentResult(
        "parallel_scaling",
        "Sec. 3: multiprocess speedup vs workers, Figure-9 uniform workload",
        notes=(
            "The paper's deployment joins contiguous subsets independently "
            "per core; with partition-granular parallelism the speedup "
            "should grow near-linearly until the core count (Tsitsigkos & "
            "Mamoulis) while pair sets stay identical to sequential."
        ),
        scale=scale.name,
    )
    n_b = scale.large_b_steps[len(scale.large_b_steps) // 2]
    dataset_a, dataset_b = synthetic_pair("uniform", scale.large_a, n_b, scale)
    baseline = run_algorithm(
        "TOUCH", dataset_a, dataset_b, scale.large_epsilon,
        options=RunOptions(workers=0),
    )
    out.add(baseline, engine="sequential", workers=0, speedup=1.0)
    for decompose in ("slabs", "tiles"):
        for workers in PARALLEL_WORKER_STEPS:
            record = run_algorithm(
                "TOUCH",
                dataset_a,
                dataset_b,
                scale.large_epsilon,
                options=RunOptions(workers=workers, decompose=decompose),
            )
            if record.result_pairs != baseline.result_pairs:
                raise AssertionError(
                    f"parallel({workers}, {decompose}) returned "
                    f"{record.result_pairs} pairs, sequential returned "
                    f"{baseline.result_pairs}"
                )
            out.add(
                record,
                engine="parallel",
                speedup=(
                    baseline.total_seconds / record.total_seconds
                    if record.total_seconds > 0
                    else float("inf")
                ),
            )
    return out


# --------------------------------------------------------------------------
# Build-once/probe-many: the query service vs rebuild-per-query
# --------------------------------------------------------------------------
#: Algorithms of the repeated-probe comparison: the paper's champion and
#: the duplicate-free two-layer join, both with reusable indexes.
REPEATED_PROBE_ALGORITHMS = ("TOUCH", "TwoLayer-500")

#: Query count of the serve loop (the acceptance workload probes the
#: cached index 100 times).
REPEATED_PROBE_QUERIES = 100


def experiment_repeated_probe(scale: Scale) -> ExperimentResult:
    """100 query batches: cached index vs index rebuilt per query.

    The Figure-9 uniform A side is indexed once per algorithm through
    the :class:`~repro.service.SpatialQueryService`; B is cut into
    :data:`REPEATED_PROBE_QUERIES` batches, each issued as one query.
    The identical batches are then joined by fresh one-shot instances
    (the rebuild-per-query shape every ``run_algorithm`` call had before
    the service existed).  Pair-set parity between the two paths is
    **hard-asserted per batch** inside the driver — a speedup that
    dropped pairs would be worthless.

    Joins run sequentially and in-process (the ambient ``--backend``
    applies; ``--workers`` does not — the service is an in-process
    engine).
    """
    out = ExperimentResult(
        "repeated_probe",
        "Build-once/probe-many: cached index vs rebuild-per-query",
        notes=(
            "Amortising index construction across probes is where "
            "real-world speedups live (Tsitsigkos et al.; Kipf et al.): "
            "the cached path must return the identical pairs at a "
            "fraction of the rebuild-per-query wall-clock — >= 5x on the "
            "medium Fig. 9 workload."
        ),
        scale=scale.name,
    )
    from repro.service import SpatialQueryService
    from repro.service.driver import run_serve_workload

    n_b = scale.large_b_steps[len(scale.large_b_steps) // 2]
    dataset_a, dataset_b = synthetic_pair("uniform", scale.large_a, n_b, scale)
    ambient = current_backend()
    overrides = {"backend": ambient} if ambient else {}
    for algorithm in REPEATED_PROBE_ALGORITHMS:
        summary = run_serve_workload(
            dataset_a,
            dataset_b,
            scale.large_epsilon,
            algorithm=algorithm,
            probes=REPEATED_PROBE_QUERIES,
            compare_rebuild=True,
            service=SpatialQueryService(capacity=4),
            **overrides,
        )
        common = dict(
            algorithm=summary["algorithm"],
            dataset=dataset_a.name,
            n_a=len(dataset_a),
            n_b=n_b,
            epsilon=scale.large_epsilon,
            node_tests=0,
            filtered=0,
            replicated_entries=0,
            duplicates_suppressed=0,
            dedup_checks=0,
            memory_bytes=0,
            build_seconds=0.0,
            assign_seconds=0.0,
            join_seconds=0.0,
        )
        out.add(
            RunRecord(
                **common,
                result_pairs=summary["rebuild_pairs"],
                comparisons=summary["rebuild_comparisons"],
                total_seconds=summary["rebuild_seconds"],
                extra={
                    "mode": "rebuild",
                    "probes": summary["probes"],
                    "batch": summary["batch"],
                },
            )
        )
        out.add(
            RunRecord(
                **common,
                result_pairs=summary["result_pairs"],
                comparisons=summary["comparisons"],
                total_seconds=summary["serve_seconds"],
                extra={
                    "mode": "cached",
                    "probes": summary["probes"],
                    "batch": summary["batch"],
                    "index_build_seconds": summary["build_seconds"],
                    "warm_queries": summary["warm_queries"],
                    "speedup": summary["speedup"],
                },
            )
        )
    return out


#: Shard counts swept by the serve_load experiment (1 = scatter-gather
#: machinery over a single worker, the overhead floor).
SERVE_LOAD_SHARDS = (1, 2, 4)

#: Query batches issued per shard count, and how many fly concurrently.
SERVE_LOAD_PROBES = 40
SERVE_LOAD_CONCURRENCY = 8


def experiment_serve_load(scale: Scale) -> ExperimentResult:
    """Concurrent scatter-gather serving: qps and tail latency per shard count.

    The Figure-9 uniform pair is served through the sharded tier
    (:mod:`repro.serving`) at each :data:`SERVE_LOAD_SHARDS` count:
    build side sharded by the slab cutting, probe batches fanned out
    concurrently and merged scatter-gather.  Every batch's pair set is
    hard-asserted against the single-process service inside the load
    generator, so the qps / p50 / p99 rows can never hide dropped
    pairs.  One row per shard count lands in the benchmark trajectory.
    """
    out = ExperimentResult(
        "serve_load",
        "Sharded serving tier: throughput and tail latency vs shard count",
        notes=(
            "The ROADMAP north star is serving heavy traffic: N shard "
            "workers each own a spatial cut of the build dataset "
            "(two-layer masks keep merges duplicate-free) and an asyncio "
            "router scatter-gathers every probe to its overlapping "
            "shards only.  Parity vs the single-process service is "
            "asserted on every batch."
        ),
        scale=scale.name,
    )
    from repro.serving import run_scatter_workload

    n_b = scale.large_b_steps[len(scale.large_b_steps) // 2]
    dataset_a, dataset_b = synthetic_pair("uniform", scale.large_a, n_b, scale)
    ambient = current_backend()
    overrides = {"backend": ambient} if ambient else {}
    for shards in SERVE_LOAD_SHARDS:
        summary = run_scatter_workload(
            list(dataset_a),
            list(dataset_b),
            scale.large_epsilon,
            algorithm="TOUCH",
            shards=shards,
            probes=SERVE_LOAD_PROBES,
            concurrency=SERVE_LOAD_CONCURRENCY,
            **overrides,
        )
        out.add(
            RunRecord(
                algorithm=summary["algorithm"],
                dataset=dataset_a.name,
                n_a=len(dataset_a),
                n_b=n_b,
                epsilon=scale.large_epsilon,
                result_pairs=summary["result_pairs"],
                comparisons=0,
                node_tests=0,
                filtered=0,
                replicated_entries=summary["replicas"] - len(dataset_a),
                duplicates_suppressed=0,
                dedup_checks=0,
                memory_bytes=0,
                build_seconds=summary["build_seconds"],
                assign_seconds=0.0,
                join_seconds=0.0,
                total_seconds=summary["serve_seconds"],
                extra={
                    "mode": "sharded",
                    "shards": shards,
                    "probes": summary["probes"],
                    "batch": summary["batch"],
                    "concurrency": summary["concurrency"],
                    "qps": summary["qps"],
                    "p50_ms": summary["p50_ms"],
                    "p99_ms": summary["p99_ms"],
                    "max_ms": summary["max_ms"],
                    "fanout_avg": summary["fanout_avg"],
                    "parity": summary.get("parity", False),
                },
            )
        )
    return out


# --------------------------------------------------------------------------
# Memory governor — budgeted joins with partition spilling
# --------------------------------------------------------------------------
#: Algorithms tracked by the spill benchmark: the paper's champion and
#: the duplicate-free two-layer join.
SPILL_ALGORITHMS = ("TOUCH", "TwoLayer-500")

#: Budget fractions of the unbudgeted footprint the sweep shrinks to.
SPILL_BUDGET_DIVISORS = (2, 4, 8)


def experiment_bench_spill(scale: Scale) -> ExperimentResult:
    """Budgeted joins at shrinking byte budgets, parity hard-asserted.

    For each algorithm the Figure-9 uniform workload runs unbudgeted
    first, then through :class:`~repro.memory.BudgetedSpatialJoin` at
    1/2, 1/4 and 1/8 of the estimated footprint.  Three invariants are
    *asserted*, not reported: every budgeted run returns the baseline's
    exact pair set, every budgeted run actually spills
    (``spilled_partitions > 0`` — otherwise the sweep measures
    nothing), and the per-join spill directory is gone by the time the
    join returns.  Rows carry the spill counters and the wall-clock
    cost of trading memory for disk.
    """
    from repro.joins.base import dimensionality
    from repro.memory import BudgetedSpatialJoin

    out = ExperimentResult(
        "bench_spill",
        "Memory-budgeted joins: spill counters and cost vs byte budget",
        notes=(
            "TOUCH assumes both datasets fit in RAM; the memory governor "
            "removes that assumption by spilling over-budget partitions "
            "to disk and unspilling them in passes (AsterixDB-style "
            "build/probe spill lifecycle).  Pair parity with the "
            "in-memory join is exact at every budget."
        ),
        scale=scale.name,
    )
    ambient = current_backend()
    overrides = {"backend": ambient} if ambient else {}
    n_b = scale.large_b_steps[len(scale.large_b_steps) // 2]
    dataset_a, dataset_b = synthetic_pair("uniform", scale.large_a, n_b, scale)
    build = inflate(dataset_a, scale.large_epsilon)
    probe = list(dataset_b)
    dim = dimensionality(build, probe)
    for algorithm in SPILL_ALGORITHMS:
        baseline = make_algorithm(algorithm, **overrides).join(build, probe)
        baseline_pairs = baseline.pair_set()
        footprint = make_algorithm(algorithm, **overrides).estimate_bytes(
            len(build), len(probe), dim
        )
        record = record_from_result(
            baseline, dataset_a.name, len(dataset_a), len(dataset_b),
            scale.large_epsilon,
        )
        out.add(record, budget="unbounded", footprint_bytes=footprint)
        for divisor in SPILL_BUDGET_DIVISORS:
            budget = max(1, footprint // divisor)
            joiner = BudgetedSpatialJoin(
                lambda: make_algorithm(algorithm, **overrides),
                max_bytes=budget,
            )
            result = joiner.join(build, probe)
            if result.pair_set() != baseline_pairs:
                raise AssertionError(
                    f"{algorithm} at budget 1/{divisor} diverges from the "
                    f"unbudgeted join: "
                    f"{len(baseline_pairs - result.pair_set())} missing, "
                    f"{len(result.pair_set() - baseline_pairs)} spurious"
                )
            if result.stats.extra.get("spilled_partitions", 0) <= 0:
                raise AssertionError(
                    f"{algorithm} at budget 1/{divisor} spilled nothing — "
                    "the sweep must exercise the spill path to measure it"
                )
            if joiner.last_spill_dir and Path(joiner.last_spill_dir).exists():
                raise AssertionError(
                    f"{algorithm} at budget 1/{divisor} left spill files "
                    f"behind in {joiner.last_spill_dir}"
                )
            record = record_from_result(
                result, dataset_a.name, len(dataset_a), len(dataset_b),
                scale.large_epsilon,
            )
            out.add(record, budget=f"1/{divisor}", footprint_bytes=footprint)
    return out


#: Algorithms the filter-refine experiment drives the pipeline through —
#: one per index family (the spatial-partitioning hierarchy, a
#: space-partitioner, an index-probe join).
REFINE_ALGORITHMS = ("TOUCH", "PBSM-500", "RTree")


def experiment_filter_refine(scale: Scale) -> ExperimentResult:
    """Exact joins over non-point workloads, oracle parity hard-asserted.

    For each shape workload (clustered polygons, linestrings) and each
    algorithm in :data:`REFINE_ALGORITHMS`, the candidate join runs
    filter-only (``geometry="mbr"``) and through the full filter–refine
    pipeline.  Three invariants are *asserted*, not reported: the
    refined pair set equals the brute-force exact-predicate oracle
    (:func:`~repro.validation.brute_force_exact_pairs`), the counter
    identity ``true_hits + exact_tests == candidate_pairs -
    false_hit_prunes`` holds, and the refined set is a subset of the
    candidates.  Rows carry refine selectivity (refined / candidates)
    and the true-hit shortcut rate, so the sweep shows what the exact
    predicate costs on top of the MBR filter.
    """
    from repro.refine import RefinePipeline
    from repro.validation import brute_force_exact_pairs

    out = ExperimentResult(
        "filter_refine",
        "Filter-refine exact joins over polygon/linestring workloads",
        notes=(
            "The MBR join is only the filter stage for non-point "
            "geometry; the refine stage evaluates the exact distance "
            "predicate on the candidates, with interior-rectangle "
            "true-hit and MBR-gap false-hit shortcuts bounding the "
            "exact tests.  Every refined pair set is asserted equal to "
            "the brute-force exact oracle."
        ),
        scale=scale.name,
    )
    ambient = current_backend()
    overrides = {"backend": ambient} if ambient else {}
    epsilon = scale.large_epsilon
    n_b = scale.large_b_steps[len(scale.large_b_steps) // 2]
    for distribution in SHAPE_DISTRIBUTIONS:
        dataset_a, dataset_b = synthetic_pair(
            distribution, scale.large_a, n_b, scale
        )
        oracle = brute_force_exact_pairs(dataset_a, dataset_b, epsilon)
        # inflate() carries each object's exact shape through unchanged,
        # so the refine stage below sees original (uninflated) extents.
        build = inflate(dataset_a, epsilon)
        probe = list(dataset_b)
        for algorithm in REFINE_ALGORITHMS:
            candidates = make_algorithm(algorithm, **overrides).join(
                build, probe
            )
            record = record_from_result(
                candidates, dataset_a.name, len(dataset_a), len(dataset_b),
                epsilon,
            )
            out.add(record, geometry="mbr")

            exact = make_algorithm(algorithm, **overrides).join(build, probe)
            stats = exact.stats
            refine_start = time.perf_counter()
            refined = RefinePipeline(
                epsilon, backend=ambient or "auto"
            ).refine(exact.pairs, build, probe, stats=stats)
            refine_seconds = time.perf_counter() - refine_start
            refined_set = set(refined)
            if refined_set != oracle:
                raise AssertionError(
                    f"{algorithm} on {dataset_a.name} diverges from the "
                    f"exact oracle: {len(oracle - refined_set)} missing, "
                    f"{len(refined_set - oracle)} spurious"
                )
            if not refined_set <= exact.pair_set():
                raise AssertionError(
                    f"{algorithm} on {dataset_a.name} refined pairs "
                    "outside the candidate set"
                )
            if (
                stats.true_hits + stats.exact_tests
                != stats.candidate_pairs - stats.false_hit_prunes
            ):
                raise AssertionError(
                    f"{algorithm} on {dataset_a.name} breaks the refine "
                    f"counter identity: {stats.true_hits} true hits + "
                    f"{stats.exact_tests} exact tests != "
                    f"{stats.candidate_pairs} candidates - "
                    f"{stats.false_hit_prunes} false-hit prunes"
                )
            stats.join_seconds += refine_seconds
            stats.total_seconds += refine_seconds
            stats.result_pairs = len(refined)
            record = record_from_result(
                exact, dataset_a.name, len(dataset_a), len(dataset_b),
                epsilon,
            )
            out.add(
                record,
                geometry="exact",
                candidate_pairs=stats.candidate_pairs,
                false_hit_prunes=stats.false_hit_prunes,
                true_hits=stats.true_hits,
                exact_tests=stats.exact_tests,
                refined_pairs=len(refined),
                refine_seconds=refine_seconds,
                refine_selectivity=(
                    len(refined) / stats.candidate_pairs
                    if stats.candidate_pairs
                    else 1.0
                ),
                true_hit_rate=(
                    stats.true_hits / stats.candidate_pairs
                    if stats.candidate_pairs
                    else 0.0
                ),
            )
    return out


# --------------------------------------------------------------------------
# Adaptive optimizer — algorithm="auto" vs the per-workload oracle
# --------------------------------------------------------------------------
#: Explicit variants raced against auto: the tracked headline algorithms
#: plus the finer-grid variants the cost model tends to pick one-shot.
AUTO_ORACLE_ALGORITHMS = (
    "TOUCH", "TwoLayer-500", "PBSM-500", "PBSM-100", "TwoLayer-100",
)

#: Fraction of the oracle's wall-clock auto may exceed before the row is
#: flagged (``within_margin=False``); never an assertion — CI hardware
#: timing is too noisy for a hard gate, and the trajectory script owns
#: the warn-level gating.
AUTO_ORACLE_MARGIN = 0.10


def experiment_auto_oracle(scale: Scale) -> ExperimentResult:
    """``algorithm="auto"`` vs every explicit variant, parity asserted.

    For each Figure-9/11 workload auto runs first (its row's
    ``total_seconds`` includes planning — sketching both datasets and
    scoring the registry), then every :data:`AUTO_ORACLE_ALGORITHMS`
    member joins the identical datasets.  Pair-count parity across all
    runs is **hard-asserted** — an optimizer that changes the answer is
    broken, full stop.  Each auto row records the chosen plan, the
    per-workload oracle (the fastest explicit variant of the same run)
    and the auto/oracle wall-clock ratio; ``within_margin`` flags rows
    beyond :data:`AUTO_ORACLE_MARGIN`, reported rather than asserted
    because shared CI hardware makes sub-10% timing a coin flip.
    """
    out = ExperimentResult(
        "auto_oracle",
        'Adaptive optimizer: algorithm="auto" vs the per-workload oracle',
        notes=(
            "The cost model must pick a near-oracle variant from dataset "
            "sketches alone: identical pairs always, wall-clock within "
            f"{AUTO_ORACLE_MARGIN:.0%} of the fastest explicit variant "
            "(planning overhead included in auto's time)."
        ),
        scale=scale.name,
    )
    ambient = current_backend()
    overrides = {"backend": ambient} if ambient else {}
    n_b = scale.large_b_steps[len(scale.large_b_steps) // 2]
    for distribution in ("uniform", "clustered"):
        dataset_a, dataset_b = synthetic_pair(
            distribution, scale.large_a, n_b, scale
        )
        start = time.perf_counter()
        auto_record = run_algorithm(
            "auto", dataset_a, dataset_b, scale.large_epsilon, **overrides
        )
        auto_seconds = time.perf_counter() - start
        references = []
        for algorithm in AUTO_ORACLE_ALGORITHMS:
            start = time.perf_counter()
            record = run_algorithm(
                algorithm, dataset_a, dataset_b, scale.large_epsilon, **overrides
            )
            wall = time.perf_counter() - start
            if record.result_pairs != auto_record.result_pairs:
                raise AssertionError(
                    f"auto ({auto_record.algorithm}) disagrees with "
                    f"{algorithm} on {distribution}/|B|={n_b}: "
                    f"{auto_record.result_pairs} vs {record.result_pairs} pairs"
                )
            references.append((algorithm, wall, record))
        oracle_name, oracle_seconds, _ = min(references, key=lambda r: r[1])
        ratio = auto_seconds / oracle_seconds if oracle_seconds > 0 else 1.0
        out.add(
            auto_record,
            distribution=distribution,
            mode="auto",
            chosen=auto_record.algorithm,
            auto_seconds=auto_seconds,
            oracle_algorithm=oracle_name,
            oracle_seconds=oracle_seconds,
            oracle_ratio=ratio,
            within_margin=ratio <= 1.0 + AUTO_ORACLE_MARGIN,
        )
        for algorithm, wall, record in references:
            out.add(
                record,
                distribution=distribution,
                mode="explicit",
                wall_seconds=wall,
            )
    return out


#: experiment id → definition, in paper order.
EXPERIMENTS: dict[str, Callable[[Scale], ExperimentResult]] = {
    "table1": experiment_table1,
    "loading": experiment_loading,
    "fig8": experiment_fig8,
    "fig9": experiment_fig9,
    "fig10": experiment_fig10,
    "fig11": experiment_fig11,
    "fig12": experiment_fig12,
    "fig13": experiment_fig13,
    "fig14": experiment_fig14,
    "fig15": experiment_fig15,
    "fig16": experiment_fig16,
    "ablation_localjoin": experiment_ablation_localjoin,
    "ablation_joinorder": experiment_ablation_joinorder,
    "ablation_partitions": experiment_ablation_partitions,
    "ablation_chunked": experiment_ablation_chunked,
    "two_layer": experiment_two_layer,
    "parallel_scaling": experiment_parallel_scaling,
    "repeated_probe": experiment_repeated_probe,
    "serve_load": experiment_serve_load,
    "bench_spill": experiment_bench_spill,
    "filter_refine": experiment_filter_refine,
    "auto_oracle": experiment_auto_oracle,
}


def run_experiment(
    name: str,
    scale: Scale | str | None = None,
    backend: str | None = None,
    workers: int | None = None,
    decompose: str | None = None,
    dedup: str | None = None,
    max_bytes: int | None = None,
    geometry: str | None = None,
) -> ExperimentResult:
    """Run one experiment by id at the given (or ambient) scale.

    ``backend`` scopes a geometry-backend override over every join of
    the experiment (object-only algorithms ignore it), so the ablation
    scripts and the CLI ``--backend`` flag can sweep backends without
    touching the experiment definitions.  ``workers`` / ``decompose`` /
    ``dedup`` likewise scope the multiprocess engine (CLI ``--workers``
    / ``--decompose`` / ``--dedup``), and ``max_bytes`` scopes a memory
    budget (CLI ``--max-bytes``) routing over-budget joins through the
    spilling budgeted engine, over every join; experiments that
    pick their own engine per run (``parallel_scaling``), compare
    sequential algorithms pair-for-pair (``two_layer``) or run through
    the in-process query service (``repeated_probe``) are unaffected.
    ``geometry`` scopes the join mode (CLI ``--geometry``):
    ``"exact"`` routes every :func:`run_algorithm` join through the
    filter–refine pipeline, which requires shape-carrying datasets —
    experiments over MBR-only workloads raise
    :class:`~repro.refine.MissingShapesError` naming the dataset.
    """
    if not isinstance(scale, Scale):
        scale = current_scale(scale)
    try:
        definition = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
    with contextlib.ExitStack() as stack:
        if backend is not None:
            stack.enter_context(use_backend(backend))
        if workers is not None:
            stack.enter_context(
                use_parallel(workers, decompose or "slabs", dedup or "reference")
            )
        if max_bytes is not None:
            stack.enter_context(use_max_bytes(max_bytes))
        if geometry is not None:
            stack.enter_context(use_geometry(geometry))
        # With no override the caller's ambient use_backend()/
        # REPRO_BACKEND/use_parallel() selections stay in effect.
        result = definition(scale)
    if backend is not None:
        result.backend = backend
    return result
