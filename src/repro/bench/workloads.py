"""Workload construction for the experiments, with per-process caching.

Every experiment draws its datasets from here so that (a) the same seeds
produce the same data across the CLI harness and the pytest benchmarks
and (b) repeated calls within one process reuse the generated objects.
"""

from __future__ import annotations

from functools import lru_cache

from repro.bench.config import Scale
from repro.datasets.base import Dataset
from repro.datasets.neuroscience import NeuronModelGenerator
from repro.datasets.synthetic import make_distribution

__all__ = [
    "synthetic_pair",
    "neuro_pair",
    "named_pair",
    "LARGE_DISTRIBUTIONS",
    "SHAPE_DISTRIBUTIONS",
    "WORKLOAD_DATASETS",
    "FIG8_ALGORITHMS",
    "LARGE_ALGORITHMS",
]

#: The three synthetic distributions of §6.2, in the paper's figure order.
LARGE_DISTRIBUTIONS = ("uniform", "gaussian", "clustered")

#: Figure 8 compares all approaches, including NL and PS.
FIG8_ALGORITHMS = ("NL", "PS", "PBSM-500", "PBSM-100", "S3", "INL", "RTree", "TOUCH")

#: Figures 9-12 and 15-16 "exclude the nested loop join and plane-sweep
#: join" due to their execution time.
LARGE_ALGORITHMS = ("PBSM-500", "PBSM-100", "S3", "INL", "RTree", "TOUCH")


@lru_cache(maxsize=64)
def _synthetic(distribution: str, n: int, seed: int, space: float) -> Dataset:
    return make_distribution(distribution, n, seed=seed, space=space)


def synthetic_pair(
    distribution: str,
    n_a: int,
    n_b: int,
    scale: Scale,
    space: float | None = None,
) -> tuple[Dataset, Dataset]:
    """Dataset pair of one distribution ("we always join datasets of the
    same type only", §6.2) with scale-stable seeds.

    ``space`` defaults to the scale's density-preserving universe for the
    large (Figures 9-14) workloads.
    """
    if space is None:
        space = scale.large_space
    dataset_a = _synthetic(distribution, n_a, scale.seed, space)
    dataset_b = _synthetic(distribution, n_b, scale.seed + 1, space)
    return dataset_a, dataset_b


#: The non-point (shape-carrying) workloads of the filter-refine tier.
SHAPE_DISTRIBUTIONS = ("polygons", "lines")

#: Dataset names accepted by ``repro-touch serve --dataset`` and
#: :func:`named_pair`: the three synthetic box distributions, the
#: non-point polygon/linestring workloads, plus the neuroscience model.
WORKLOAD_DATASETS = LARGE_DISTRIBUTIONS + SHAPE_DISTRIBUTIONS + ("neuro",)


def named_pair(name: str, scale: Scale) -> tuple[Dataset, Dataset]:
    """The (build, probe) dataset pair registered under ``name``.

    Synthetic names use the scale's large-workload cardinalities (A
    fixed, B at the middle sweep step); the polygon/linestring workloads
    carry exact shape payloads for ``geometry="exact"`` joins;
    ``"neuro"`` is the (axons, dendrites) pair.  Raises
    :class:`KeyError` naming the known datasets for anything else —
    callers (the serve CLI) surface that list instead of a traceback.
    """
    if name in LARGE_DISTRIBUTIONS + SHAPE_DISTRIBUTIONS:
        n_b = scale.large_b_steps[len(scale.large_b_steps) // 2]
        return synthetic_pair(name, scale.large_a, n_b, scale)
    if name == "neuro":
        return neuro_pair(scale)
    raise KeyError(
        f"unknown dataset {name!r}; known: {', '.join(WORKLOAD_DATASETS)}"
    )


@lru_cache(maxsize=8)
def _neuro(n_neurons: int, seed: int) -> tuple[Dataset, Dataset]:
    generator = NeuronModelGenerator(n_neurons=n_neurons, seed=seed)
    return generator.generate()


def neuro_pair(scale: Scale) -> tuple[Dataset, Dataset]:
    """The (axons, dendrites) pair at the scale's model size."""
    return _neuro(scale.neuro_neurons, scale.seed + 2)
