"""Benchmark harness: scales, workloads, per-figure experiments, CLI."""

from repro.bench.config import DEFAULT_SCALE, SCALES, Scale, current_scale
from repro.bench.experiments import EXPERIMENTS, ExperimentResult, run_experiment
from repro.bench.reporting import format_table, print_experiment, save_json
from repro.bench.runner import RunRecord, explain, run_algorithm

__all__ = [
    "Scale",
    "SCALES",
    "DEFAULT_SCALE",
    "current_scale",
    "EXPERIMENTS",
    "ExperimentResult",
    "run_experiment",
    "RunRecord",
    "run_algorithm",
    "explain",
    "format_table",
    "print_experiment",
    "save_json",
]
