"""ASCII rendering of experiment series — the paper's figures, in text.

The paper presents its evaluation as line charts (comparisons, execution
time and memory versus |B|, often log-scale).  This module renders the
same series from experiment rows as fixed-width ASCII charts so the CLI
can reproduce the *figures*, not just the tables, without any plotting
dependency:

    repro-touch run fig9 --chart total_seconds
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.bench.reporting import summarize_series

__all__ = ["render_chart", "chart_for_experiment"]

_MARKERS = "ox+*#@%&$~"


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.1e}"
    return f"{value:.3g}"


def render_chart(
    series: dict[str, list[tuple]],
    width: int = 64,
    height: int = 16,
    log_y: bool = True,
    title: str = "",
) -> str:
    """Render ``{name: [(x, y), ...]}`` as an ASCII scatter/line chart.

    Points with non-positive y are dropped in log mode.  Each series gets
    a distinct marker; a legend is appended below the axes.
    """
    points: list[tuple[float, float, str]] = []
    markers: dict[str, str] = {}
    for index, (name, xy) in enumerate(sorted(series.items())):
        marker = _MARKERS[index % len(_MARKERS)]
        markers[name] = marker
        for x, y in xy:
            if x is None or y is None:
                continue
            if log_y and y <= 0:
                continue
            points.append((float(x), float(y), marker))
    if not points:
        return "(no data to chart)"

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    if log_y:
        y_values = [math.log10(y) for y in ys]
    else:
        y_values = ys
    y_lo, y_hi = min(y_values), max(y_values)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    cells = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        column = int((x - x_lo) / x_span * (width - 1))
        value = math.log10(y) if log_y else y
        row = int((value - y_lo) / y_span * (height - 1))
        cells[height - 1 - row][column] = marker

    top_label = _format_tick(10**y_hi if log_y else y_hi)
    bottom_label = _format_tick(10**y_lo if log_y else y_lo)
    gutter = max(len(top_label), len(bottom_label))

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(cells):
        if row_index == 0:
            label = top_label.rjust(gutter)
        elif row_index == height - 1:
            label = bottom_label.rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * gutter + " +" + "-" * width)
    x_axis = f"{_format_tick(x_lo)}{' ' * max(1, width - 12)}{_format_tick(x_hi)}"
    lines.append(" " * (gutter + 2) + x_axis)
    scale_note = "log10(y)" if log_y else "y"
    legend = "   ".join(f"{marker}={name}" for name, marker in sorted(markers.items()))
    lines.append(f"{' ' * (gutter + 2)}[{scale_note}]  {legend}")
    return "\n".join(lines)


def chart_for_experiment(
    rows: Sequence[dict],
    y_key: str = "total_seconds",
    x_key: str = "n_b",
    series_key: str = "algorithm",
    log_y: bool = True,
    title: str = "",
) -> str:
    """Convenience wrapper: group experiment rows, then render."""
    series = summarize_series(rows, series_key, x_key, y_key)
    return render_chart(series, log_y=log_y, title=title)
