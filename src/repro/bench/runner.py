"""Single-join runner shared by the CLI harness and the pytest benches.

Runs one algorithm on one (A, B, ε) workload with the paper's conventions:
dataset A (the smaller / "first" dataset) is the build side and is
Minkowski-inflated by ε; index-construction time counts towards the total.
The outcome is a flat :class:`RunRecord` convenient for tabulation.
"""

from __future__ import annotations

import contextlib
import warnings
from dataclasses import dataclass, field
from typing import Sequence

from repro.bench.config import RunOptions, env_choice, env_int
from repro.datasets.base import Dataset
from repro.datasets.transform import inflate
from repro.joins.base import JoinResult
from repro.joins.registry import AlgorithmSpec, make_algorithm

__all__ = [
    "RunRecord",
    "RunOptions",
    "run_algorithm",
    "explain",
    "use_backend",
    "current_backend",
    "use_parallel",
    "current_parallel",
    "use_max_bytes",
    "current_max_bytes",
    "use_geometry",
    "current_geometry",
    "current_options",
]

#: Ambient geometry-backend selection for backend sweeps.  ``None``
#: leaves every algorithm at its own default (``"auto"``).  Set per
#: process with the ``REPRO_BACKEND`` environment variable, or scoped
#: with :func:`use_backend` (what the CLI ``--backend`` flag does).
_ACTIVE_BACKEND: str | None = None

#: Ambient parallel-execution selection, mirroring the backend override:
#: ``(workers, decompose_kind, dedup_mode)`` or ``None`` for sequential
#: execution.  Set per process with ``REPRO_WORKERS`` /
#: ``REPRO_DECOMPOSE`` / ``REPRO_DEDUP``, or scoped with
#: :func:`use_parallel` (what the CLI ``--workers`` / ``--decompose`` /
#: ``--dedup`` flags do).
_ACTIVE_PARALLEL: tuple[int, str, str] | None = None


# Environment parsing lives in repro.bench.config next to RunOptions;
# the historical private names stay importable for callers that used them.
_env_choice = env_choice
_env_int = env_int


def current_backend() -> str | None:
    """The ambient backend override, if any."""
    if _ACTIVE_BACKEND is not None:
        return _ACTIVE_BACKEND
    from repro.geometry.columnar import BACKENDS

    return _env_choice("REPRO_BACKEND", tuple(BACKENDS))


@contextlib.contextmanager
def use_backend(backend: str | None):
    """Scope an ambient backend for every :func:`run_algorithm` call.

    Threads a benchmark-wide ``--backend`` selection through experiment
    definitions without widening every experiment signature; explicit
    per-call ``backend=...`` overrides still win.
    """
    global _ACTIVE_BACKEND
    previous = _ACTIVE_BACKEND
    _ACTIVE_BACKEND = backend
    try:
        yield
    finally:
        _ACTIVE_BACKEND = previous


def current_parallel() -> tuple[int, str, str] | None:
    """The ambient ``(workers, decompose, dedup)`` override, if any."""
    if _ACTIVE_PARALLEL is not None:
        return _ACTIVE_PARALLEL
    workers = _env_int("REPRO_WORKERS", minimum=0)
    if workers:
        from repro.parallel.decompose import DECOMPOSE_KINDS

        return (
            workers,
            _env_choice("REPRO_DECOMPOSE", tuple(DECOMPOSE_KINDS)) or "slabs",
            _env_choice("REPRO_DEDUP", ("reference", "partition")) or "reference",
        )
    return None


@contextlib.contextmanager
def use_parallel(
    workers: int | None, decompose: str = "slabs", dedup: str = "reference"
):
    """Scope an ambient parallel engine for :func:`run_algorithm` calls.

    Every joined algorithm is wrapped in a
    :class:`~repro.parallel.engine.ParallelChunkedJoin` with ``workers``
    processes over a ``decompose`` (``slabs`` | ``tiles``) cutting and
    the given ``dedup`` mode (``reference`` | ``partition``).
    ``workers=None`` (or ``0``) clears the override.  Explicit per-call
    ``workers=...`` arguments still win.
    """
    global _ACTIVE_PARALLEL
    previous = _ACTIVE_PARALLEL
    _ACTIVE_PARALLEL = (workers, decompose, dedup) if workers else None
    try:
        yield
    finally:
        _ACTIVE_PARALLEL = previous


#: Ambient memory-budget selection, mirroring the backend override:
#: a byte budget or ``None`` for unbudgeted joins.  Set per process with
#: ``REPRO_MAX_BYTES``, or scoped with :func:`use_max_bytes` (what the
#: CLI ``--max-bytes`` flag does).
_ACTIVE_MAX_BYTES: int | None = None


def current_max_bytes() -> int | None:
    """The ambient memory budget, if any."""
    if _ACTIVE_MAX_BYTES is not None:
        return _ACTIVE_MAX_BYTES
    return _env_int("REPRO_MAX_BYTES", minimum=1)


@contextlib.contextmanager
def use_max_bytes(max_bytes: int | None):
    """Scope an ambient byte budget for every :func:`run_algorithm` call.

    Joins whose priced footprint exceeds the budget run through the
    spilling :class:`~repro.memory.budgeted.BudgetedSpatialJoin` (or get
    per-worker budget shares under the multiprocess engine).  ``None``
    clears the override; explicit ``options=RunOptions(max_bytes=...)``
    still wins.
    """
    global _ACTIVE_MAX_BYTES
    previous = _ACTIVE_MAX_BYTES
    _ACTIVE_MAX_BYTES = max_bytes
    try:
        yield
    finally:
        _ACTIVE_MAX_BYTES = previous


#: Ambient geometry-mode selection, mirroring the backend override:
#: ``"mbr"`` / ``"exact"`` or ``None`` for the default MBR join.  Set
#: per process with ``REPRO_GEOMETRY``, or scoped with
#: :func:`use_geometry` (what the CLI ``--geometry`` flag does).
_ACTIVE_GEOMETRY: str | None = None


def current_geometry() -> str | None:
    """The ambient geometry mode, if any."""
    if _ACTIVE_GEOMETRY is not None:
        return _ACTIVE_GEOMETRY
    from repro.bench.config import GEOMETRY_MODES

    return _env_choice("REPRO_GEOMETRY", GEOMETRY_MODES)


@contextlib.contextmanager
def use_geometry(geometry: str | None):
    """Scope an ambient geometry mode for every :func:`run_algorithm` call.

    ``"exact"`` routes joins through the filter-refine pipeline (MBR
    candidates refined against the datasets' exact shapes); ``None``
    clears the override.  Explicit ``options=RunOptions(geometry=...)``
    still wins.
    """
    global _ACTIVE_GEOMETRY
    previous = _ACTIVE_GEOMETRY
    _ACTIVE_GEOMETRY = geometry
    try:
        yield
    finally:
        _ACTIVE_GEOMETRY = previous


def current_options() -> RunOptions:
    """The ambient execution options: scoped overrides first, then env.

    One :class:`~repro.bench.config.RunOptions` view over the
    :func:`use_backend` / :func:`use_parallel` scopes and the
    ``REPRO_WORKERS`` / ``REPRO_DECOMPOSE`` / ``REPRO_DEDUP`` /
    ``REPRO_BACKEND`` environment variables — the lowest precedence
    layer of :func:`run_algorithm` (explicit call kwargs and an explicit
    ``options=`` object both win over it).
    """
    parallel = current_parallel()
    backend = current_backend()
    handoff = _env_choice("REPRO_HANDOFF", ("auto", "shm", "pickle"))
    max_bytes = current_max_bytes()
    geometry = current_geometry()
    if parallel is None:
        return RunOptions(
            backend=backend, handoff=handoff, max_bytes=max_bytes, geometry=geometry
        )
    workers, decompose, dedup = parallel
    return RunOptions(
        workers=workers,
        decompose=decompose,
        dedup=dedup,
        backend=backend,
        handoff=handoff,
        max_bytes=max_bytes,
        geometry=geometry,
    )


@dataclass
class RunRecord:
    """One algorithm × workload measurement."""

    algorithm: str
    dataset: str
    n_a: int
    n_b: int
    epsilon: float
    result_pairs: int
    comparisons: int
    node_tests: int
    filtered: int
    replicated_entries: int
    duplicates_suppressed: int
    dedup_checks: int
    memory_bytes: int
    build_seconds: float
    assign_seconds: float
    join_seconds: float
    total_seconds: float
    extra: dict = field(default_factory=dict)

    @property
    def selectivity(self) -> float:
        """Equation 1 of the paper."""
        if self.n_a == 0 or self.n_b == 0:
            return 0.0
        return self.result_pairs / (self.n_a * self.n_b)

    def as_dict(self) -> dict:
        out = {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "n_a": self.n_a,
            "n_b": self.n_b,
            "epsilon": self.epsilon,
            "result_pairs": self.result_pairs,
            "selectivity": self.selectivity,
            "comparisons": self.comparisons,
            "node_tests": self.node_tests,
            "filtered": self.filtered,
            "replicated_entries": self.replicated_entries,
            "duplicates_suppressed": self.duplicates_suppressed,
            "dedup_checks": self.dedup_checks,
            "memory_bytes": self.memory_bytes,
            "build_seconds": self.build_seconds,
            "assign_seconds": self.assign_seconds,
            "join_seconds": self.join_seconds,
            "total_seconds": self.total_seconds,
        }
        out.update(self.extra)
        return out


def record_from_result(
    result: JoinResult,
    dataset_name: str,
    n_a: int,
    n_b: int,
    epsilon: float,
) -> RunRecord:
    """Flatten a :class:`JoinResult` into a :class:`RunRecord`."""
    stats = result.stats
    extra = {
        key: value
        for key, value in stats.extra.items()
        if isinstance(value, (int, float, str))
    }
    return RunRecord(
        algorithm=result.algorithm,
        dataset=dataset_name,
        n_a=n_a,
        n_b=n_b,
        epsilon=epsilon,
        result_pairs=stats.result_pairs,
        comparisons=stats.comparisons,
        node_tests=stats.node_tests,
        filtered=stats.filtered,
        replicated_entries=stats.replicated_entries,
        duplicates_suppressed=stats.duplicates_suppressed,
        dedup_checks=stats.dedup_checks,
        memory_bytes=stats.memory_bytes,
        build_seconds=stats.build_seconds,
        assign_seconds=stats.assign_seconds,
        join_seconds=stats.join_seconds,
        total_seconds=stats.total_seconds,
        extra=extra,
    )


def _legacy_overlay(
    workers: int | None,
    decompose: str | None,
    dedup: str | None,
    reuse_index: "bool | object | None",
) -> RunOptions | None:
    """The deprecation shim for the pre-RunOptions call kwargs.

    Historical calls spelled the engine selection as individual kwargs
    (``workers=2, decompose="tiles"``); they keep working — with a
    :class:`DeprecationWarning` — by folding into the highest-precedence
    :class:`~repro.bench.config.RunOptions` layer.  ``reuse_index=False``
    was the old default, so a literal ``False`` (unlike ``workers=0``,
    which explicitly forces sequential execution) reads as *unspecified*
    rather than as an override.
    """
    provided = {}
    if workers is not None:
        provided["workers"] = workers
    if decompose is not None:
        provided["decompose"] = decompose
    if dedup is not None:
        provided["dedup"] = dedup
    if reuse_index:
        provided["reuse_index"] = reuse_index
    if not provided:
        return None
    warnings.warn(
        f"run_algorithm({', '.join(sorted(provided))}=...) kwargs are "
        "deprecated; pass options=RunOptions(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return RunOptions(**provided)


def _check_shapes(dataset) -> None:
    """Fail fast when ``geometry="exact"`` meets an MBR-only dataset."""
    if isinstance(dataset, Dataset) and not dataset.has_shapes:
        from repro.refine import MissingShapesError

        raise MissingShapesError(dataset.name)


def _shaped(objects):
    """Objects with exact shapes attached (box fallback over ``obj.mbr``).

    Refinement evaluates shapes, never MBRs, so attaching the box
    *before* any epsilon inflation pins the original extents — this is
    what lets the refine stage receive the inflated build side and still
    be correct.
    """
    from repro.geometry.objects import SpatialObject
    from repro.geometry.shapes import Shape
    from repro.geometry.vertex_table import shape_of

    return [
        obj
        if isinstance(obj.geometry, Shape)
        else SpatialObject(obj.oid, obj.mbr, shape_of(obj))
        for obj in objects
    ]


def _plan_run(
    algorithm_name: str,
    dataset_a,
    dataset_b,
    epsilon: float,
    resolved: RunOptions,
    overrides: dict,
):
    """One optimizer call shared by ``run_algorithm("auto")`` / :func:`explain`.

    Resolved options that are set act as *pins* the optimizer must
    respect; everything left ``None`` (backend, workers, decompose,
    geometry) is chosen by the cost model.
    """
    from repro.optimizer import choose_plan, sketch_dataset

    return choose_plan(
        sketch_dataset(dataset_a),
        sketch_dataset(dataset_b),
        float(epsilon),
        algorithm=None if algorithm_name == "auto" else algorithm_name,
        backend=overrides.get("backend") or resolved.backend,
        workers=resolved.workers,
        decompose=resolved.decompose,
        geometry=resolved.geometry,
        reuse_index=bool(resolved.reuse_index),
        max_bytes=resolved.max_bytes,
    )


def explain(
    algorithm_name: str,
    dataset_a: Dataset | Sequence,
    dataset_b: Dataset | Sequence,
    epsilon: float,
    options: RunOptions | None = None,
    **algorithm_overrides,
):
    """The :class:`~repro.optimizer.plan.Plan` for a join, without running it.

    Mirrors :func:`run_algorithm`'s resolution exactly — the same
    options layering, the same service hand-off under ``reuse_index`` —
    so the returned plan equals the one an actual
    ``run_algorithm("auto", ...)`` records in ``extra["plan"]``.
    ``algorithm_name="auto"`` lets the optimizer choose; a concrete
    registry name pins the algorithm but still scores every candidate.
    """
    resolved = (options or RunOptions()).over(current_options())
    if resolved.backend is not None and "backend" not in algorithm_overrides:
        algorithm_overrides = {**algorithm_overrides, "backend": resolved.backend}
    if resolved.reuse_index:
        from repro.service import SpatialQueryService, default_service

        service = (
            resolved.reuse_index
            if isinstance(resolved.reuse_index, SpatialQueryService)
            else default_service()
        )
        return service.explain(
            list(dataset_a),
            list(dataset_b),
            epsilon,
            algorithm=algorithm_name,
            max_bytes=resolved.max_bytes,
            geometry=resolved.geometry or "mbr",
            **algorithm_overrides,
        )
    return _plan_run(
        algorithm_name, dataset_a, dataset_b, epsilon, resolved,
        algorithm_overrides,
    )


def run_algorithm(
    algorithm_name: str,
    dataset_a: Dataset | Sequence,
    dataset_b: Dataset | Sequence,
    epsilon: float,
    options: RunOptions | None = None,
    workers: int | None = None,
    decompose: str | None = None,
    dedup: str | None = None,
    reuse_index: "bool | object | None" = None,
    **algorithm_overrides,
) -> RunRecord:
    """Execute one distance join per the paper's methodology.

    The build side A is inflated by ε (the ε-reduction of §4); the probe
    side B is joined as is.  ``algorithm_overrides`` are forwarded to the
    registry factory (e.g. ``fanout=8`` for the fanout sweep).

    Execution is selected by one :class:`~repro.bench.config.RunOptions`
    resolved across three precedence layers — explicit call kwargs, then
    the ``options`` object, then the ambient scopes/environment
    (:func:`current_options`):

    - ``options.workers``: ``0`` forces sequential execution; ``>= 1``
      runs the algorithm through the multiprocess
      :class:`~repro.parallel.engine.ParallelChunkedJoin` over an
      ``options.decompose`` (``slabs`` | ``tiles``) cutting with an
      ``options.dedup`` (``reference`` | ``partition``)
      boundary-duplicate policy;
    - ``options.backend`` feeds backend-aware algorithms unless the call
      passes its own ``backend=`` override;
    - ``options.reuse_index`` routes the join through the
      build-once/probe-many query service instead: ``True`` for the
      process-wide :func:`repro.service.default_service` or a live
      :class:`~repro.service.SpatialQueryService`.  Repeated calls with
      the same (dataset A, algorithm, config, backend, ε) probe a
      cached index (``extra["cache"]`` reports ``"warm"`` / ``"cold"``);
      the multiprocess engine cannot be combined with it.

    The individual ``workers=`` / ``decompose=`` / ``dedup=`` /
    ``reuse_index=`` kwargs are a deprecated spelling of the same
    options (they win over ``options``, and warn).
    """
    resolved = (options or RunOptions()).over(current_options())
    legacy = _legacy_overlay(workers, decompose, dedup, reuse_index)
    if legacy is not None:
        resolved = legacy.over(resolved)
    plan = None
    if algorithm_name == "auto" and not resolved.reuse_index:
        # The reuse_index path plans inside the query service instead
        # (the service owns the fingerprints and pins sequential probes).
        plan = _plan_run(
            algorithm_name, dataset_a, dataset_b, epsilon, resolved,
            algorithm_overrides,
        )
        algorithm_name = plan.algorithm
        if "backend" not in algorithm_overrides:
            algorithm_overrides = {**algorithm_overrides, "backend": plan.backend}
        resolved = RunOptions(
            workers=plan.workers, decompose=plan.decompose
        ).over(resolved)
    if resolved.backend is not None and "backend" not in algorithm_overrides:
        algorithm_overrides = {**algorithm_overrides, "backend": resolved.backend}
    exact = (resolved.geometry or "mbr") == "exact"
    if exact:
        _check_shapes(dataset_a)
        _check_shapes(dataset_b)
    if resolved.reuse_index:
        if resolved.workers:
            raise ValueError(
                "reuse_index joins run through the in-process query service "
                "and cannot be combined with the multiprocess engine "
                f"(workers={resolved.workers})"
            )
        # Imported lazily, like the parallel engine below.
        from repro.service import SpatialQueryService, default_service

        service = (
            resolved.reuse_index
            if isinstance(resolved.reuse_index, SpatialQueryService)
            else default_service()
        )
        result = service.probe(
            list(dataset_a),
            list(dataset_b),
            epsilon,
            algorithm=algorithm_name,
            max_bytes=resolved.max_bytes,
            geometry=resolved.geometry or "mbr",
            **algorithm_overrides,
        )
        dataset_name = (
            dataset_a.name if isinstance(dataset_a, Dataset) else "adhoc"
        )
        record = record_from_result(
            result, dataset_name, len(dataset_a), len(dataset_b), epsilon
        )
        record.extra["cache"] = result.parameters.get("cache", "")
        record.extra["index_build_seconds"] = result.parameters.get(
            "build_seconds", 0.0
        )
        if "plan" in result.stats.extra:
            # The service records the plan as a nested dict, which the
            # scalar filter in record_from_result drops; restore it.
            record.extra["plan"] = result.stats.extra["plan"]
        if exact:
            _add_refine_extras(record, result)
        return record
    if resolved.workers:
        # Imported lazily: repro.parallel pulls in multiprocessing
        # machinery the sequential harness never needs.
        from repro.parallel.engine import ParallelChunkedJoin

        spec = AlgorithmSpec.create(algorithm_name, **algorithm_overrides)
        algorithm = ParallelChunkedJoin(
            spec,
            workers=resolved.workers,
            kind=resolved.decompose or "slabs",
            dedup=resolved.dedup or "reference",
            handoff=resolved.handoff or "auto",
            max_bytes=resolved.max_bytes,
            geometry=resolved.geometry or "mbr",
            refine_epsilon=epsilon if exact else None,
        )
    elif resolved.max_bytes is not None:
        # Imported lazily, like the engines: the memory governor pulls in
        # the decomposition machinery sequential runs never need.
        from repro.memory import BudgetedSpatialJoin

        algorithm = BudgetedSpatialJoin(
            AlgorithmSpec.create(algorithm_name, **algorithm_overrides),
            max_bytes=resolved.max_bytes,
            kind=resolved.decompose or "tiles",
        )
    else:
        algorithm = make_algorithm(algorithm_name, **algorithm_overrides)
    if exact:
        # Shapes attach before inflation so refinement sees original
        # extents even through the inflated build side.
        probe_b = _shaped(dataset_b)
        build = [obj.inflated(epsilon) for obj in _shaped(dataset_a)]
    else:
        probe_b = dataset_b
        build = (
            inflate(dataset_a, epsilon)
            if isinstance(dataset_a, Dataset)
            else [obj.inflated(epsilon) for obj in dataset_a]
        )
    result = algorithm.join(build, probe_b)
    if exact and not resolved.workers:
        # The multiprocess engine refines inside its workers; every
        # other execution path refines the candidate join here.
        result = _refine_result(
            result, build, probe_b, epsilon, resolved.backend or "auto"
        )
    if plan is not None:
        result.stats.extra["plan"] = plan.as_dict()
    dataset_name = dataset_a.name if isinstance(dataset_a, Dataset) else "adhoc"
    record = record_from_result(
        result, dataset_name, len(dataset_a), len(dataset_b), epsilon
    )
    if plan is not None:
        record.extra["plan"] = result.stats.extra["plan"]
    if exact:
        _add_refine_extras(record, result)
    return record


def _refine_result(
    result: JoinResult,
    build,
    probe_b,
    epsilon: float,
    backend: str,
) -> JoinResult:
    """Run the refine stage over a filter result, folding in counters."""
    import time

    from repro.refine import RefinePipeline

    stats = result.stats
    start = time.perf_counter()
    refined = RefinePipeline(epsilon, backend=backend).refine(
        result.pairs, build, probe_b, stats=stats
    )
    refine_seconds = time.perf_counter() - start
    stats.join_seconds += refine_seconds
    stats.total_seconds += refine_seconds
    stats.extra["refine_seconds"] = refine_seconds
    stats.result_pairs = len(refined)
    return JoinResult(
        result.algorithm,
        refined,
        stats,
        {**result.parameters, "geometry": "exact"},
    )


def _add_refine_extras(record: RunRecord, result: JoinResult) -> None:
    """Surface filter-refine accounting on exact-mode run records.

    Only exact runs get these keys, which keeps ``geometry="mbr"``
    records byte-identical to the pre-pipeline harness.
    """
    stats = result.stats
    record.extra.update(
        geometry="exact",
        candidate_pairs=stats.candidate_pairs,
        false_hit_prunes=stats.false_hit_prunes,
        true_hits=stats.true_hits,
        exact_tests=stats.exact_tests,
        refined_pairs=stats.refined_pairs,
    )
