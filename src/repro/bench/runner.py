"""Single-join runner shared by the CLI harness and the pytest benches.

Runs one algorithm on one (A, B, ε) workload with the paper's conventions:
dataset A (the smaller / "first" dataset) is the build side and is
Minkowski-inflated by ε; index-construction time counts towards the total.
The outcome is a flat :class:`RunRecord` convenient for tabulation.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field
from typing import Sequence

from repro.datasets.base import Dataset
from repro.datasets.transform import inflate
from repro.joins.base import JoinResult
from repro.joins.registry import AlgorithmSpec, make_algorithm

__all__ = [
    "RunRecord",
    "run_algorithm",
    "use_backend",
    "current_backend",
    "use_parallel",
    "current_parallel",
]

#: Ambient geometry-backend selection for backend sweeps.  ``None``
#: leaves every algorithm at its own default (``"auto"``).  Set per
#: process with the ``REPRO_BACKEND`` environment variable, or scoped
#: with :func:`use_backend` (what the CLI ``--backend`` flag does).
_ACTIVE_BACKEND: str | None = None

#: Ambient parallel-execution selection, mirroring the backend override:
#: ``(workers, decompose_kind, dedup_mode)`` or ``None`` for sequential
#: execution.  Set per process with ``REPRO_WORKERS`` /
#: ``REPRO_DECOMPOSE`` / ``REPRO_DEDUP``, or scoped with
#: :func:`use_parallel` (what the CLI ``--workers`` / ``--decompose`` /
#: ``--dedup`` flags do).
_ACTIVE_PARALLEL: tuple[int, str, str] | None = None


def _env_choice(name: str, choices: tuple[str, ...]) -> str | None:
    """Read an enumerated environment variable, or fail naming it.

    Junk values used to propagate deep into the engines before blowing
    up with a context-free traceback; every ambient ``REPRO_*`` read now
    validates here and raises a :class:`ValueError` that names the
    variable and the accepted values.
    """
    raw = os.environ.get(name)
    if not raw:
        return None
    if raw not in choices:
        raise ValueError(
            f"invalid {name}={raw!r}: expected one of {', '.join(choices)}"
        )
    return raw


def _env_int(name: str, minimum: int = 0) -> int | None:
    """Read an integer environment variable, or fail naming it."""
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid {name}={raw!r}: expected an integer"
        ) from None
    if value < minimum:
        raise ValueError(f"invalid {name}={raw!r}: must be >= {minimum}")
    return value


def current_backend() -> str | None:
    """The ambient backend override, if any."""
    if _ACTIVE_BACKEND is not None:
        return _ACTIVE_BACKEND
    from repro.geometry.columnar import BACKENDS

    return _env_choice("REPRO_BACKEND", tuple(BACKENDS))


@contextlib.contextmanager
def use_backend(backend: str | None):
    """Scope an ambient backend for every :func:`run_algorithm` call.

    Threads a benchmark-wide ``--backend`` selection through experiment
    definitions without widening every experiment signature; explicit
    per-call ``backend=...`` overrides still win.
    """
    global _ACTIVE_BACKEND
    previous = _ACTIVE_BACKEND
    _ACTIVE_BACKEND = backend
    try:
        yield
    finally:
        _ACTIVE_BACKEND = previous


def current_parallel() -> tuple[int, str, str] | None:
    """The ambient ``(workers, decompose, dedup)`` override, if any."""
    if _ACTIVE_PARALLEL is not None:
        return _ACTIVE_PARALLEL
    workers = _env_int("REPRO_WORKERS", minimum=0)
    if workers:
        from repro.parallel.decompose import DECOMPOSE_KINDS

        return (
            workers,
            _env_choice("REPRO_DECOMPOSE", tuple(DECOMPOSE_KINDS)) or "slabs",
            _env_choice("REPRO_DEDUP", ("reference", "partition")) or "reference",
        )
    return None


@contextlib.contextmanager
def use_parallel(
    workers: int | None, decompose: str = "slabs", dedup: str = "reference"
):
    """Scope an ambient parallel engine for :func:`run_algorithm` calls.

    Every joined algorithm is wrapped in a
    :class:`~repro.parallel.engine.ParallelChunkedJoin` with ``workers``
    processes over a ``decompose`` (``slabs`` | ``tiles``) cutting and
    the given ``dedup`` mode (``reference`` | ``partition``).
    ``workers=None`` (or ``0``) clears the override.  Explicit per-call
    ``workers=...`` arguments still win.
    """
    global _ACTIVE_PARALLEL
    previous = _ACTIVE_PARALLEL
    _ACTIVE_PARALLEL = (workers, decompose, dedup) if workers else None
    try:
        yield
    finally:
        _ACTIVE_PARALLEL = previous


@dataclass
class RunRecord:
    """One algorithm × workload measurement."""

    algorithm: str
    dataset: str
    n_a: int
    n_b: int
    epsilon: float
    result_pairs: int
    comparisons: int
    node_tests: int
    filtered: int
    replicated_entries: int
    duplicates_suppressed: int
    dedup_checks: int
    memory_bytes: int
    build_seconds: float
    assign_seconds: float
    join_seconds: float
    total_seconds: float
    extra: dict = field(default_factory=dict)

    @property
    def selectivity(self) -> float:
        """Equation 1 of the paper."""
        if self.n_a == 0 or self.n_b == 0:
            return 0.0
        return self.result_pairs / (self.n_a * self.n_b)

    def as_dict(self) -> dict:
        out = {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "n_a": self.n_a,
            "n_b": self.n_b,
            "epsilon": self.epsilon,
            "result_pairs": self.result_pairs,
            "selectivity": self.selectivity,
            "comparisons": self.comparisons,
            "node_tests": self.node_tests,
            "filtered": self.filtered,
            "replicated_entries": self.replicated_entries,
            "duplicates_suppressed": self.duplicates_suppressed,
            "dedup_checks": self.dedup_checks,
            "memory_bytes": self.memory_bytes,
            "build_seconds": self.build_seconds,
            "assign_seconds": self.assign_seconds,
            "join_seconds": self.join_seconds,
            "total_seconds": self.total_seconds,
        }
        out.update(self.extra)
        return out


def record_from_result(
    result: JoinResult,
    dataset_name: str,
    n_a: int,
    n_b: int,
    epsilon: float,
) -> RunRecord:
    """Flatten a :class:`JoinResult` into a :class:`RunRecord`."""
    stats = result.stats
    extra = {
        key: value
        for key, value in stats.extra.items()
        if isinstance(value, (int, float, str))
    }
    return RunRecord(
        algorithm=result.algorithm,
        dataset=dataset_name,
        n_a=n_a,
        n_b=n_b,
        epsilon=epsilon,
        result_pairs=stats.result_pairs,
        comparisons=stats.comparisons,
        node_tests=stats.node_tests,
        filtered=stats.filtered,
        replicated_entries=stats.replicated_entries,
        duplicates_suppressed=stats.duplicates_suppressed,
        dedup_checks=stats.dedup_checks,
        memory_bytes=stats.memory_bytes,
        build_seconds=stats.build_seconds,
        assign_seconds=stats.assign_seconds,
        join_seconds=stats.join_seconds,
        total_seconds=stats.total_seconds,
        extra=extra,
    )


def run_algorithm(
    algorithm_name: str,
    dataset_a: Dataset | Sequence,
    dataset_b: Dataset | Sequence,
    epsilon: float,
    workers: int | None = None,
    decompose: str | None = None,
    dedup: str | None = None,
    reuse_index: "bool | object" = False,
    **algorithm_overrides,
) -> RunRecord:
    """Execute one distance join per the paper's methodology.

    The build side A is inflated by ε (the ε-reduction of §4); the probe
    side B is joined as is.  ``algorithm_overrides`` are forwarded to the
    registry factory (e.g. ``fanout=8`` for the fanout sweep).  An
    ambient backend (:func:`use_backend` / ``REPRO_BACKEND``) is applied
    unless the call passes its own ``backend``.

    ``workers`` selects the execution engine: ``None`` defers to the
    ambient :func:`use_parallel` / ``REPRO_WORKERS`` setting, ``0``
    forces sequential execution, and ``>= 1`` runs the algorithm through
    the multiprocess :class:`~repro.parallel.engine.ParallelChunkedJoin`
    over a ``decompose`` (``slabs`` | ``tiles``) cutting with a
    ``dedup`` (``reference`` | ``partition``) boundary-duplicate policy.

    ``reuse_index`` routes the join through the build-once/probe-many
    query service instead: pass ``True`` for the process-wide
    :func:`repro.service.default_service` or a live
    :class:`~repro.service.SpatialQueryService`.  Repeated calls with
    the same (dataset A, algorithm, config, backend, ε) probe a cached
    index (``extra["cache"]`` reports ``"warm"`` / ``"cold"``); the
    multiprocess engine cannot be combined with it.
    """
    ambient = current_backend()
    if ambient is not None and "backend" not in algorithm_overrides:
        algorithm_overrides = {**algorithm_overrides, "backend": ambient}
    if reuse_index:
        if workers:
            raise ValueError(
                "reuse_index joins run through the in-process query service "
                "and cannot be combined with the multiprocess engine "
                f"(workers={workers})"
            )
        # Imported lazily, like the parallel engine below.
        from repro.service import SpatialQueryService, default_service

        service = (
            reuse_index
            if isinstance(reuse_index, SpatialQueryService)
            else default_service()
        )
        result = service.query(
            list(dataset_a),
            list(dataset_b),
            epsilon,
            algorithm=algorithm_name,
            **algorithm_overrides,
        )
        dataset_name = (
            dataset_a.name if isinstance(dataset_a, Dataset) else "adhoc"
        )
        record = record_from_result(
            result, dataset_name, len(dataset_a), len(dataset_b), epsilon
        )
        record.extra["cache"] = result.parameters.get("cache", "")
        record.extra["index_build_seconds"] = result.parameters.get(
            "build_seconds", 0.0
        )
        return record
    if workers is None:
        ambient_parallel = current_parallel()
        if ambient_parallel is not None:
            workers, ambient_decompose, ambient_dedup = ambient_parallel
            decompose = decompose or ambient_decompose
            dedup = dedup or ambient_dedup
    if workers:
        # Imported lazily: repro.parallel pulls in multiprocessing
        # machinery the sequential harness never needs.
        from repro.parallel.engine import ParallelChunkedJoin

        spec = AlgorithmSpec.create(algorithm_name, **algorithm_overrides)
        algorithm = ParallelChunkedJoin(
            spec,
            workers=workers,
            kind=decompose or "slabs",
            dedup=dedup or "reference",
        )
    else:
        algorithm = make_algorithm(algorithm_name, **algorithm_overrides)
    build = (
        inflate(dataset_a, epsilon)
        if isinstance(dataset_a, Dataset)
        else [obj.inflated(epsilon) for obj in dataset_a]
    )
    result = algorithm.join(build, dataset_b)
    dataset_name = dataset_a.name if isinstance(dataset_a, Dataset) else "adhoc"
    return record_from_result(result, dataset_name, len(dataset_a), len(dataset_b), epsilon)
