"""Benchmark scales.

The paper joins 160K–9.6M objects on a 2.7 GHz Opteron in C++; CPython
needs smaller cardinalities to keep the full suite in benchmark-friendly
time.  Each :class:`Scale` keeps the paper's *structure* — the same
universe (1000 units per dimension), object sizes (sides uniform in
[0, 1]), ε ∈ {5, 10}, the B : A ratios of every sweep — and scales the
cardinalities by a constant factor (≈ 1/800 at the default ``small``
scale).

**Density preservation.**  The paper's qualitative results (who wins,
filtering rates, the fanout trends, PBSM's replication blow-up) are all
driven by the ratio between the ε-inflated object size and the
inter-object spacing.  Scaling the cardinality down inside the original
1000-unit universe would change that ratio by ~10× and invert several
trends, so each scale also shrinks the universe edge to
``1000 · (n / n_paper)^(1/3)``, keeping the paper's object density — and
with it every size-driven effect — intact.  Grid-based algorithms are
configured in *cell units* (scale-invariant), see
:mod:`repro.joins.registry`.

Select a scale with the ``REPRO_SCALE`` environment variable
(``smoke`` | ``small`` | ``medium`` | ``paper``) or per call.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

__all__ = [
    "Scale",
    "SCALES",
    "current_scale",
    "DEFAULT_SCALE",
    "RunOptions",
    "env_choice",
    "env_int",
]

DEFAULT_SCALE = "small"

# The paper's reference cardinalities, used for density-preserving
# universe scaling.
PAPER_SPACE = 1000.0
PAPER_LARGE_A = 1_600_000
PAPER_FIG8_TOTAL = 10_000 + 640_000  # A plus the largest B of Figure 8
PAPER_TABLE1_TOTAL = 160_000 + 1_600_000


@dataclass(frozen=True)
class Scale:
    """Cardinalities for every experiment at one scale.

    Attributes mirror the paper's workloads:

    - Figure 8 ("small datasets"): ``fig8_a`` fixed, B sweeps
      ``fig8_b_steps`` (paper: 10K × 160K..640K, ε = 10).
    - Figures 9-14 ("large datasets"): ``large_a`` fixed, B sweeps
      ``large_b_steps`` (paper: 1.6M × 1.6M..9.6M, ε = 5).
    - Neuroscience (Figures 15/16): ``neuro_neurons`` controls the
      generated model size (axons ≈ half the dendrites, as in the paper's
      644K × 1.285M subset).
    - Table 1 selectivity: ``table1_a`` × ``table1_b`` (paper:
      160K × 1600K).
    """

    name: str
    fig8_a: int
    fig8_b_steps: tuple[int, ...]
    large_a: int
    large_b_steps: tuple[int, ...]
    table1_a: int
    table1_b: int
    neuro_neurons: int
    density_fractions: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)
    epsilons: tuple[float, float] = (5.0, 10.0)
    fanout_sweep: tuple[int, ...] = (2, 4, 6, 8, 10, 12, 14, 16, 18, 20)
    seed: int = 20130622  # SIGMOD'13 opening day

    @property
    def fig8_epsilon(self) -> float:
        """Figure 8 uses the larger ε (paper: 10)."""
        return self.epsilons[1]

    @property
    def large_epsilon(self) -> float:
        """Figures 9-11 and 13-15 use the smaller ε (paper: 5)."""
        return self.epsilons[0]

    # -- density-preserving universes ---------------------------------
    @staticmethod
    def _space_for(n_scaled: int, n_paper: int) -> float:
        return PAPER_SPACE * (n_scaled / n_paper) ** (1.0 / 3.0)

    @property
    def large_space(self) -> float:
        """Universe edge for the Figure 9-14 workloads (paper: 1000)."""
        return self._space_for(self.large_a, PAPER_LARGE_A)

    @property
    def fig8_space(self) -> float:
        """Universe edge for the Figure 8 workload."""
        return self._space_for(self.fig8_a + self.fig8_b_steps[-1], PAPER_FIG8_TOTAL)

    @property
    def table1_space(self) -> float:
        """Universe edge for the Table 1 workload."""
        return self._space_for(self.table1_a + self.table1_b, PAPER_TABLE1_TOTAL)


SCALES: dict[str, Scale] = {
    "smoke": Scale(
        name="smoke",
        fig8_a=120,
        fig8_b_steps=(240, 480),
        large_a=300,
        large_b_steps=(300, 600),
        table1_a=150,
        table1_b=600,
        neuro_neurons=6,
        density_fractions=(0.5, 1.0),
        fanout_sweep=(2, 8, 20),
    ),
    "small": Scale(
        name="small",
        fig8_a=500,
        fig8_b_steps=(800, 1600, 2400, 3200),
        large_a=2000,
        large_b_steps=(2000, 4000, 6000, 8000, 10000, 12000),
        table1_a=800,
        table1_b=8000,
        neuro_neurons=16,
    ),
    "medium": Scale(
        name="medium",
        fig8_a=2000,
        fig8_b_steps=(3200, 6400, 9600, 12800),
        large_a=8000,
        large_b_steps=(8000, 16000, 24000, 32000, 40000, 48000),
        table1_a=3200,
        table1_b=32000,
        neuro_neurons=60,
    ),
    "paper": Scale(
        name="paper",
        fig8_a=10_000,
        fig8_b_steps=(160_000, 320_000, 480_000, 640_000),
        large_a=1_600_000,
        large_b_steps=(1_600_000, 3_200_000, 4_800_000, 6_400_000, 8_000_000, 9_600_000),
        table1_a=160_000,
        table1_b=1_600_000,
        neuro_neurons=12_000,
    ),
}


# --------------------------------------------------------------------------
# Execution options (the consolidated run_algorithm front door)
# --------------------------------------------------------------------------
def env_choice(name: str, choices: tuple[str, ...]) -> str | None:
    """Read an enumerated environment variable, or fail naming it.

    Junk values used to propagate deep into the engines before blowing
    up with a context-free traceback; every ambient ``REPRO_*`` read now
    validates here and raises a :class:`ValueError` that names the
    variable and the accepted values.
    """
    raw = os.environ.get(name)
    if not raw:
        return None
    if raw not in choices:
        raise ValueError(
            f"invalid {name}={raw!r}: expected one of {', '.join(choices)}"
        )
    return raw


def env_int(name: str, minimum: int = 0) -> int | None:
    """Read an integer environment variable, or fail naming it."""
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid {name}={raw!r}: expected an integer"
        ) from None
    if value < minimum:
        raise ValueError(f"invalid {name}={raw!r}: must be >= {minimum}")
    return value


def _decompose_kinds() -> tuple[str, ...]:
    # Imported lazily: config must stay importable without dragging the
    # engine modules (and numpy) in.
    from repro.parallel.decompose import DECOMPOSE_KINDS

    return tuple(DECOMPOSE_KINDS)


def _backend_names() -> tuple[str, ...]:
    from repro.geometry.columnar import BACKENDS

    return tuple(BACKENDS)


#: Valid values of the ``dedup`` execution option.
DEDUP_MODES = ("reference", "partition")

#: Valid values of the ``handoff`` execution option (mirrors
#: :data:`repro.parallel.engine.HANDOFF_MODES` without importing the
#: engine — config must stay importable without numpy).
HANDOFF_MODES = ("auto", "shm", "pickle")

#: Valid values of the ``geometry`` execution option: ``"mbr"`` joins
#: bounding boxes exactly as every PR before the filter-refine split,
#: ``"exact"`` refines MBR candidates against the true shapes.
GEOMETRY_MODES = ("mbr", "exact")


@dataclass(frozen=True)
class RunOptions:
    """Execution options of one :func:`repro.bench.runner.run_algorithm` call.

    The consolidated front door replacing the historical sprawl of
    ``workers=`` / ``decompose=`` / ``dedup=`` / ``reuse_index=`` call
    kwargs and the ``REPRO_WORKERS`` / ``REPRO_DECOMPOSE`` /
    ``REPRO_DEDUP`` / ``REPRO_BACKEND`` ambient environment variables.
    ``None`` means *unspecified* — the next precedence layer decides
    (explicit call kwarg > options object > ambient scope/env > default).

    Attributes
    ----------
    workers:
        ``None`` defers to the ambient layer, ``0`` forces sequential
        execution, ``>= 1`` routes the join through the multiprocess
        :class:`~repro.parallel.engine.ParallelChunkedJoin`.
    decompose:
        Universe cutting for the multiprocess engine (``"slabs"`` |
        ``"tiles"``; engine default ``"slabs"``).
    dedup:
        Boundary-duplicate policy (``"reference"`` | ``"partition"``;
        engine default ``"reference"``).
    backend:
        Geometry backend forwarded to backend-aware algorithms
        (``"object"`` | ``"columnar"`` | ``"compiled"`` | ``"auto"``;
        ``"compiled"`` degrades to columnar when numba is missing and
        ``REPRO_COMPILED`` is not ``force``).
    handoff:
        Worker hand-off of the multiprocess engine (``"auto"`` |
        ``"shm"`` | ``"pickle"``; engine default ``"auto"`` — shared
        memory when available).
    reuse_index:
        Route the join through the build-once/probe-many query service:
        ``True`` for the process-wide default service, a live
        :class:`~repro.service.SpatialQueryService` for a private one,
        ``False`` for a one-shot join.  Not environment-settable.
    max_bytes:
        Memory budget in bytes (``REPRO_MAX_BYTES``).  Joins whose
        priced footprint exceeds it run through the spilling
        :class:`~repro.memory.budgeted.BudgetedSpatialJoin`; with
        ``workers >= 1`` each worker gets an equal share, and with
        ``reuse_index`` the budget governs the service's probes and
        byte-accounted index cache.  ``None`` (default) means
        unbudgeted.
    geometry:
        Join predicate (``"mbr"`` | ``"exact"``; ``REPRO_GEOMETRY``).
        ``"mbr"`` (the default) joins bounding boxes under the paper's
        L∞ ε-reduction, bit-identical to the pre-pipeline behaviour.
        ``"exact"`` adds the refinement stage: MBR candidates are
        filtered down to pairs whose exact Euclidean shape distance is
        within ε, using the datasets' shape payloads.
    """

    workers: int | None = None
    decompose: str | None = None
    dedup: str | None = None
    backend: str | None = None
    handoff: str | None = None
    reuse_index: "bool | object | None" = None
    max_bytes: int | None = None
    geometry: str | None = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.max_bytes is not None and (
            isinstance(self.max_bytes, bool)
            or not isinstance(self.max_bytes, int)
            or self.max_bytes <= 0
        ):
            raise ValueError(
                f"max_bytes must be a positive integer byte count, "
                f"got {self.max_bytes!r}"
            )
        if self.decompose is not None and self.decompose not in _decompose_kinds():
            raise ValueError(
                f"unknown decompose kind {self.decompose!r}; expected one of "
                f"{', '.join(_decompose_kinds())}"
            )
        if self.dedup is not None and self.dedup not in DEDUP_MODES:
            raise ValueError(
                f"unknown dedup mode {self.dedup!r}; expected one of "
                f"{', '.join(DEDUP_MODES)}"
            )
        if self.backend is not None and self.backend not in _backend_names():
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{', '.join(_backend_names())}"
            )
        if self.handoff is not None and self.handoff not in HANDOFF_MODES:
            raise ValueError(
                f"unknown handoff mode {self.handoff!r}; expected one of "
                f"{', '.join(HANDOFF_MODES)}"
            )
        if self.geometry is not None and self.geometry not in GEOMETRY_MODES:
            raise ValueError(
                f"unknown geometry mode {self.geometry!r}; expected one of "
                f"{', '.join(GEOMETRY_MODES)}"
            )

    @classmethod
    def from_env(cls) -> "RunOptions":
        """The options encoded in the ``REPRO_*`` environment variables.

        ``REPRO_WORKERS=0`` (like an explicit ``workers=0``) reads as
        sequential execution; unset variables stay ``None`` so higher
        precedence layers and engine defaults apply.  Values are
        validated eagerly with errors naming the variable.
        """
        workers = env_int("REPRO_WORKERS", minimum=0)
        return cls(
            workers=workers,
            decompose=env_choice("REPRO_DECOMPOSE", _decompose_kinds()),
            dedup=env_choice("REPRO_DEDUP", DEDUP_MODES),
            backend=env_choice("REPRO_BACKEND", _backend_names()),
            handoff=env_choice("REPRO_HANDOFF", HANDOFF_MODES),
            max_bytes=env_int("REPRO_MAX_BYTES", minimum=1),
            geometry=env_choice("REPRO_GEOMETRY", GEOMETRY_MODES),
        )

    def over(self, base: "RunOptions") -> "RunOptions":
        """Layer these options over ``base``: set fields win, ``None`` defers."""
        updates = {
            field: value
            for field, value in (
                ("workers", self.workers),
                ("decompose", self.decompose),
                ("dedup", self.dedup),
                ("backend", self.backend),
                ("handoff", self.handoff),
                ("reuse_index", self.reuse_index),
                ("max_bytes", self.max_bytes),
                ("geometry", self.geometry),
            )
            if value is not None
        }
        return replace(base, **updates) if updates else base

    def describe(self) -> dict:
        """The non-default fields, for reports and reprs."""
        out = {}
        for field in (
            "workers",
            "decompose",
            "dedup",
            "backend",
            "handoff",
            "max_bytes",
            "geometry",
        ):
            value = getattr(self, field)
            if value is not None:
                out[field] = value
        if self.reuse_index:
            out["reuse_index"] = True
        return out


def current_scale(name: str | None = None) -> Scale:
    """Resolve a scale by name, ``REPRO_SCALE``, or the default."""
    resolved = name or os.environ.get("REPRO_SCALE", DEFAULT_SCALE)
    try:
        return SCALES[resolved]
    except KeyError:
        raise KeyError(
            f"unknown scale {resolved!r}; known: {', '.join(SCALES)}"
        ) from None
