"""Tabulation of experiment results: paper-style rows on stdout or JSON."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.bench.experiments import ExperimentResult

__all__ = ["format_table", "print_experiment", "save_json", "summarize_series"]

#: Default column order for printed experiment tables.
DEFAULT_COLUMNS = (
    "algorithm",
    "dataset",
    "n_b",
    "epsilon",
    "result_pairs",
    "comparisons",
    "memory_bytes",
    "filtered",
    "total_seconds",
)

#: Parallel-engine columns, surfaced (in this order) right after the
#: default columns whenever rows carry them: the decomposition, the
#: worker count, and the three phase wall-clocks recorded by the
#: chunked/multiprocess engines in ``JoinStatistics.extra``.
PARALLEL_COLUMNS = (
    "workers",
    "n_chunks",
    "decompose",
    "dedup",
    "decompose_seconds",
    "worker_join_seconds",
    "merge_seconds",
)


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None) -> str:
    """Fixed-width text table of the selected columns."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = [c for c in DEFAULT_COLUMNS if any(c in row for row in rows)]
        columns += [c for c in PARALLEL_COLUMNS if any(c in row for row in rows)]
        extras = sorted(
            {key for row in rows for key in row}
            - set(columns)
            - set(DEFAULT_COLUMNS)
            - set(PARALLEL_COLUMNS)
            - {
                "n_a",
                "selectivity",
                "node_tests",
                "replicated_entries",
                "duplicates_suppressed",
                "dedup_checks",
                "build_seconds",
                "assign_seconds",
                "join_seconds",
            }
        )
        columns = list(columns) + extras
    cells = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(row[i]) for row in cells)) for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in cells
    )
    return "\n".join([header, rule, body])


def print_experiment(result: ExperimentResult, columns: Sequence[str] | None = None) -> None:
    """Print one experiment in the paper's row/series layout."""
    print(f"== {result.title} (scale={result.scale}) ==")
    if result.notes:
        print(f"   paper expectation: {result.notes}")
    print(format_table(result.rows, columns))
    print()


def save_json(result: ExperimentResult, path: str | Path) -> Path:
    """Persist an experiment result as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "experiment": result.experiment,
        "title": result.title,
        "notes": result.notes,
        "scale": result.scale,
        "backend": result.backend,
        "rows": result.rows,
    }
    path.write_text(json.dumps(payload, indent=2, default=str))
    return path


def summarize_series(
    rows: Sequence[dict], series_key: str, x_key: str, y_key: str
) -> dict[str, list[tuple]]:
    """Group rows into ``{series: [(x, y), ...]}`` — one paper curve each."""
    series: dict[str, list[tuple]] = {}
    for row in rows:
        series.setdefault(str(row.get(series_key)), []).append(
            (row.get(x_key), row.get(y_key))
        )
    for points in series.values():
        points.sort(key=lambda xy: (xy[0] is None, xy[0]))
    return series
