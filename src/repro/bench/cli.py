"""Command-line harness: regenerate any table/figure of the paper.

Usage::

    repro-touch list
    repro-touch run fig9 --scale small
    repro-touch run table1 --json results/table1.json
    repro-touch all --scale smoke --out-dir results/

(Equivalently: ``python -m repro.bench.cli ...``.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.config import DEFAULT_SCALE, GEOMETRY_MODES, SCALES
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import print_experiment, save_json
from repro.geometry.columnar import BACKENDS
from repro.joins.registry import available
from repro.parallel.decompose import DECOMPOSE_KINDS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="repro-touch",
        description="Regenerate the tables and figures of the TOUCH paper (SIGMOD'13).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and scales")

    backend_kwargs = dict(
        choices=BACKENDS,
        default=None,
        help="geometry backend for every join of the experiment "
        "(object | columnar | compiled | auto); compiled degrades to "
        "columnar without numba; algorithms without a columnar port "
        "run unchanged — used for backend ablation sweeps",
    )
    workers_kwargs = dict(
        type=int,
        default=None,
        metavar="N",
        help="run every join through the multiprocess engine with N "
        "worker processes (the paper's §3 per-core decomposition); "
        "omit for sequential execution",
    )
    decompose_kwargs = dict(
        choices=DECOMPOSE_KINDS,
        default=None,
        help="universe cutting for --workers: contiguous 1-D slabs "
        "(default, the paper's BlueGene/P layout) or a 2-D tile grid",
    )
    dedup_kwargs = dict(
        choices=("reference", "partition"),
        default=None,
        help="boundary-duplicate policy for --workers: per-pair "
        "reference-point tests in the workers (default) or the "
        "duplicate-free two-layer class mini-joins (no dedup pass)",
    )
    max_bytes_kwargs = dict(
        type=int,
        default=None,
        metavar="BYTES",
        help="memory budget per join (env REPRO_MAX_BYTES): joins whose "
        "priced footprint exceeds it spill over-budget partitions to "
        "disk and join them in passes; pair sets are identical to the "
        "unbudgeted run",
    )
    geometry_kwargs = dict(
        choices=GEOMETRY_MODES,
        default=None,
        help="join geometry (env REPRO_GEOMETRY): mbr (default) joins "
        "bounding boxes only; exact runs the filter-refine pipeline — "
        "MBR candidates refined against true polygon/linestring "
        "extents — and requires a shape-carrying dataset (polygons | "
        "lines | neuro)",
    )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--scale", choices=sorted(SCALES), default=None)
    run.add_argument("--backend", **backend_kwargs)
    run.add_argument("--workers", **workers_kwargs)
    run.add_argument("--decompose", **decompose_kwargs)
    run.add_argument("--dedup", **dedup_kwargs)
    run.add_argument("--max-bytes", **max_bytes_kwargs)
    run.add_argument("--geometry", **geometry_kwargs)
    run.add_argument("--json", type=Path, default=None, help="also write rows as JSON")
    run.add_argument(
        "--chart",
        metavar="METRIC",
        default=None,
        help="also render an ASCII chart of METRIC vs |B| per algorithm "
        "(e.g. total_seconds, comparisons, memory_bytes)",
    )

    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--scale", choices=sorted(SCALES), default=None)
    everything.add_argument("--backend", **backend_kwargs)
    everything.add_argument("--workers", **workers_kwargs)
    everything.add_argument("--decompose", **decompose_kwargs)
    everything.add_argument("--dedup", **dedup_kwargs)
    everything.add_argument("--max-bytes", **max_bytes_kwargs)
    everything.add_argument("--geometry", **geometry_kwargs)
    everything.add_argument(
        "--out-dir", type=Path, default=None, help="write one JSON per experiment"
    )

    explain_cmd = sub.add_parser(
        "explain",
        help="show the optimizer's plan for a workload without running "
        "the join (what algorithm=auto would execute, with the full "
        "scored candidate list)",
    )
    explain_cmd.add_argument("--scale", choices=sorted(SCALES), default=None)
    explain_cmd.add_argument(
        "--dataset",
        default=None,
        metavar="NAME",
        help="named workload dataset (uniform | gaussian | clustered | "
        "polygons | lines | neuro)",
    )
    explain_cmd.add_argument(
        "--distribution",
        choices=("uniform", "gaussian", "clustered"),
        default="uniform",
        help="synthetic workload distribution when --dataset is omitted",
    )
    explain_cmd.add_argument(
        "--algorithm",
        default="auto",
        choices=[info.name for info in available()] + ["auto"],
        help="auto (default) lets the optimizer choose; a concrete name "
        "pins the algorithm but still shows every candidate's score",
    )
    explain_cmd.add_argument(
        "--epsilon",
        type=float,
        default=None,
        help="distance threshold (default: scale's eps)",
    )
    explain_cmd.add_argument("--backend", **backend_kwargs)
    explain_cmd.add_argument("--workers", **workers_kwargs)
    explain_cmd.add_argument("--decompose", **decompose_kwargs)
    explain_cmd.add_argument("--max-bytes", **max_bytes_kwargs)
    explain_cmd.add_argument("--geometry", **geometry_kwargs)
    explain_cmd.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="K",
        help="candidates shown in the score table (all are in --json)",
    )
    explain_cmd.add_argument(
        "--json", type=Path, default=None, help="also write the plan as JSON"
    )

    serve = sub.add_parser(
        "serve",
        help="drive the build-once/probe-many query service on a "
        "repeated-query workload (add --shards for the scatter-gather "
        "tier, --port to keep serving)",
    )
    serve.add_argument("--scale", choices=sorted(SCALES), default=None)
    serve.add_argument(
        "--dataset",
        default=None,
        metavar="NAME",
        help="named workload dataset (uniform | gaussian | clustered | "
        "polygons | lines | neuro); unknown names list the registry "
        "instead of crashing",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="serve through N shard-worker processes with scatter-gather "
        "probe routing (omit for the single-process service)",
    )
    serve.add_argument(
        "--concurrency",
        type=int,
        default=8,
        metavar="C",
        help="probe batches kept in flight against the sharded tier",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="P",
        help="after loading the dataset, keep serving the JSON-lines "
        "protocol on this port until interrupted (implies --shards 2 "
        "unless given)",
    )
    serve.add_argument(
        "--algorithm",
        default="TOUCH",
        choices=[info.name for info in available()] + ["auto"],
        help="join algorithm whose index the service builds and probes "
        "(auto lets the cost-model optimizer choose per workload)",
    )
    serve.add_argument(
        "--distribution",
        choices=("uniform", "gaussian", "clustered"),
        default="uniform",
        help="synthetic workload distribution (Figure 9/10/11 data)",
    )
    serve.add_argument(
        "--probes",
        type=int,
        default=100,
        metavar="N",
        help="number of query batches issued against the cached index",
    )
    serve.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="M",
        help="objects per query batch (default: |B| / probes)",
    )
    serve.add_argument(
        "--epsilon", type=float, default=None, help="distance threshold (default: scale's eps)"
    )
    serve.add_argument(
        "--shard-layout",
        choices=DECOMPOSE_KINDS,
        default="slabs",
        help="universe cutting for --shards: contiguous 1-D slabs or a "
        "2-D tile grid",
    )
    serve.add_argument("--backend", **backend_kwargs)
    serve.add_argument("--geometry", **geometry_kwargs)
    serve.add_argument(
        "--compare-rebuild",
        action="store_true",
        help="also join every batch with rebuild-per-query one-shot "
        "instances, hard-assert pair parity and report the speedup",
    )
    serve.add_argument("--json", type=Path, default=None, help="also write the summary as JSON")
    return parser


def _cmd_list() -> int:
    print("experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print(f"scales: {', '.join(SCALES)} (default: {DEFAULT_SCALE}, env REPRO_SCALE)")
    return 0


def _cmd_run(
    experiment: str,
    scale: str | None,
    json_path: Path | None,
    chart_metric: str | None,
    backend: str | None = None,
    workers: int | None = None,
    decompose: str | None = None,
    dedup: str | None = None,
    max_bytes: int | None = None,
    geometry: str | None = None,
) -> int:
    from repro.refine import MissingShapesError

    try:
        result = run_experiment(
            experiment,
            scale,
            backend=backend,
            workers=workers,
            decompose=decompose,
            dedup=dedup,
            max_bytes=max_bytes,
            geometry=geometry,
        )
    except MissingShapesError as exc:
        # ``--geometry exact`` over an MBR-only workload: name the
        # dataset and exit cleanly instead of dumping a traceback, the
        # same contract as ``serve`` with an unknown dataset name.
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print_experiment(result)
    if chart_metric is not None:
        from repro.bench.charts import chart_for_experiment

        print(
            chart_for_experiment(
                result.rows,
                y_key=chart_metric,
                title=f"{result.title} — {chart_metric}",
            )
        )
        print()
    if json_path is not None:
        save_json(result, json_path)
        print(f"wrote {json_path}")
    return 0


def _cmd_all(
    scale: str | None,
    out_dir: Path | None,
    backend: str | None = None,
    workers: int | None = None,
    decompose: str | None = None,
    dedup: str | None = None,
    max_bytes: int | None = None,
    geometry: str | None = None,
) -> int:
    from repro.refine import MissingShapesError

    for name in EXPERIMENTS:
        try:
            result = run_experiment(
                name,
                scale,
                backend=backend,
                workers=workers,
                decompose=decompose,
                dedup=dedup,
                max_bytes=max_bytes,
                geometry=geometry,
            )
        except MissingShapesError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        print_experiment(result)
        if out_dir is not None:
            save_json(result, out_dir / f"{name}.json")
    return 0


def _serve_forever(service, dataset_name: str, port: int) -> int:
    """Keep a sharded tier answering the JSON-lines protocol on a port."""
    import asyncio
    import time

    from repro.serving.router import serve_front

    server = asyncio.run_coroutine_threadsafe(
        serve_front(service.router, port=port), service._loop
    ).result()
    host, bound_port = server.sockets[0].getsockname()[:2]
    print(
        f"serving dataset {dataset_name!r} on {host}:{bound_port} "
        f"({service.cluster.shards} shards) — Ctrl-C to stop"
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
    return 0


def _cmd_serve_sharded(args, dataset_a, dataset_b, epsilon, overrides) -> int:
    """Scatter-gather path of ``serve``: boot shards, drive or listen."""
    import json

    from repro.serving import ShardedQueryService, run_scatter_workload

    shards = args.shards or 2
    if args.port is not None:
        with ShardedQueryService(
            shards=shards, kind=args.shard_layout, backend=args.backend
        ) as service:
            service.register(args.dataset or args.distribution, list(dataset_a))
            return _serve_forever(
                service, args.dataset or args.distribution, args.port
            )
    summary = run_scatter_workload(
        list(dataset_a),
        list(dataset_b),
        epsilon,
        algorithm=args.algorithm,
        shards=shards,
        kind=args.shard_layout,
        probes=args.probes,
        batch=args.batch,
        concurrency=args.concurrency,
        geometry=args.geometry,
        **overrides,
    )
    print(
        f"== sharded query service: {summary['algorithm']} x {shards} shards "
        f"({summary['kind']}, eps={epsilon}) =="
    )
    print(
        f"   {summary['n_build']} build objects -> {summary['replicas']} shard "
        f"replicas; {summary['probes']} batches of {summary['batch']} at "
        f"concurrency {summary['concurrency']}"
    )
    print(
        f"   {summary['result_pairs']} pairs, {summary['qps']:.1f} qps, "
        f"p50 {summary['p50_ms']:.2f} ms, p99 {summary['p99_ms']:.2f} ms, "
        f"avg fan-out {summary['fanout_avg']:.2f} shards/probe"
    )
    if summary.get("parity"):
        print("   pair parity vs single-process service: asserted on every batch")
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(summary, indent=2, default=str))
        print(f"wrote {args.json}")
    return 0


def _cmd_explain(args) -> int:
    """Print the optimizer's plan for a named workload, execution-free."""
    import json

    from repro.bench.config import RunOptions, current_scale
    from repro.bench.runner import explain
    from repro.bench.workloads import named_pair

    scale = current_scale(args.scale)
    try:
        dataset_a, dataset_b = named_pair(
            args.dataset or args.distribution, scale
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    epsilon = args.epsilon if args.epsilon is not None else scale.large_epsilon
    options = RunOptions(
        backend=args.backend,
        workers=args.workers,
        decompose=args.decompose,
        max_bytes=args.max_bytes,
        geometry=args.geometry,
    )
    plan = explain(args.algorithm, dataset_a, dataset_b, epsilon, options=options)
    name = args.dataset or args.distribution
    print(
        f"== plan: {name} a{plan.sketch_a.n}-b{plan.sketch_b.n} "
        f"(scale={scale.name}, eps={epsilon}) =="
    )
    execution = (
        f"{plan.workers} workers over {plan.decompose}"
        if plan.workers
        else "sequential"
    )
    print(f"   choose {plan.algorithm} [{plan.backend}], {execution}")
    print(
        f"   est {plan.cost_seconds:.4g}s, ~{plan.est_result_pairs:.4g} "
        f"result pairs (calibration {plan.calibration})"
    )
    print(f"   {plan.reason}")
    if plan.pinned:
        print(f"   pinned by caller: {', '.join(plan.pinned)}")
    shown = plan.candidates[: args.top] if args.top > 0 else plan.candidates
    print(f"   candidates (top {len(shown)} of {len(plan.candidates)}):")
    for candidate in shown:
        marker = "->" if candidate.chosen else "  "
        note = f"  ({candidate.note})" if candidate.note else ""
        print(
            f"   {marker} {candidate.algorithm:<14} {candidate.backend:<9}"
            f" {candidate.cost_seconds:12.4g}s{note}"
        )
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(plan.as_dict(), indent=2))
        print(f"wrote {args.json}")
    return 0


def _cmd_serve(args) -> int:
    """Run a repeated-query workload through the query service."""
    import json

    from repro.bench.config import current_scale
    from repro.bench.workloads import named_pair

    scale = current_scale(args.scale)
    try:
        dataset_a, dataset_b = named_pair(
            args.dataset or args.distribution, scale
        )
    except KeyError as exc:
        # The registry names the known datasets; surface that instead of
        # the historical bare traceback, with a non-zero exit.
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    epsilon = args.epsilon if args.epsilon is not None else scale.large_epsilon
    overrides = {"backend": args.backend} if args.backend else {}
    if args.shards is not None or args.port is not None:
        return _cmd_serve_sharded(args, dataset_a, dataset_b, epsilon, overrides)

    from repro.service.driver import run_serve_workload

    summary = run_serve_workload(
        dataset_a,
        dataset_b,
        epsilon,
        algorithm=args.algorithm,
        probes=args.probes,
        batch=args.batch,
        compare_rebuild=args.compare_rebuild,
        geometry=args.geometry,
        **overrides,
    )
    print(
        f"== query service: {summary['algorithm']} on "
        f"{args.dataset or args.distribution} (scale={scale.name}, "
        f"eps={epsilon}) =="
    )
    print(
        f"   indexed {summary['n_build']} objects once "
        f"({summary['build_seconds']:.4f}s), served {summary['probes']} "
        f"query batches of {summary['batch']} ({summary['warm_queries']} warm)"
    )
    per_query = summary["serve_seconds"] / summary["probes"]
    print(
        f"   {summary['result_pairs']} pairs in {summary['serve_seconds']:.4f}s "
        f"({per_query * 1000:.2f} ms/query, "
        f"{summary['probes'] / summary['serve_seconds']:.0f} queries/s)"
        if summary["serve_seconds"] > 0
        else f"   {summary['result_pairs']} pairs (too fast to time)"
    )
    if args.compare_rebuild:
        print(
            f"   rebuild-per-query: {summary['rebuild_seconds']:.4f}s -> "
            f"speedup {summary['speedup']:.1f}x (pair parity asserted on "
            "every batch)"
        )
    stats = summary["service_stats"]
    print(
        f"   cache: {stats['warm_hits']} hits, {stats['cold_builds']} builds, "
        f"{stats['evictions']} evictions, {stats['cached_indexes']} resident"
    )
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(summary, indent=2, default=str))
        print(f"wrote {args.json}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "run":
        return _cmd_run(
            args.experiment,
            args.scale,
            args.json,
            args.chart,
            args.backend,
            args.workers,
            args.decompose,
            args.dedup,
            args.max_bytes,
            args.geometry,
        )
    if args.command == "all":
        return _cmd_all(
            args.scale,
            args.out_dir,
            args.backend,
            args.workers,
            args.decompose,
            args.dedup,
            args.max_bytes,
            args.geometry,
        )
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
