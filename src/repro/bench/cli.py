"""Command-line harness: regenerate any table/figure of the paper.

Usage::

    repro-touch list
    repro-touch run fig9 --scale small
    repro-touch run table1 --json results/table1.json
    repro-touch all --scale smoke --out-dir results/

(Equivalently: ``python -m repro.bench.cli ...``.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.config import DEFAULT_SCALE, SCALES
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import print_experiment, save_json
from repro.geometry.columnar import BACKENDS
from repro.parallel.decompose import DECOMPOSE_KINDS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="repro-touch",
        description="Regenerate the tables and figures of the TOUCH paper (SIGMOD'13).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and scales")

    backend_kwargs = dict(
        choices=BACKENDS,
        default=None,
        help="geometry backend for every join of the experiment "
        "(object | columnar | auto); algorithms without a columnar "
        "port run unchanged — used for backend ablation sweeps",
    )
    workers_kwargs = dict(
        type=int,
        default=None,
        metavar="N",
        help="run every join through the multiprocess engine with N "
        "worker processes (the paper's §3 per-core decomposition); "
        "omit for sequential execution",
    )
    decompose_kwargs = dict(
        choices=DECOMPOSE_KINDS,
        default=None,
        help="universe cutting for --workers: contiguous 1-D slabs "
        "(default, the paper's BlueGene/P layout) or a 2-D tile grid",
    )
    dedup_kwargs = dict(
        choices=("reference", "partition"),
        default=None,
        help="boundary-duplicate policy for --workers: per-pair "
        "reference-point tests in the workers (default) or the "
        "duplicate-free two-layer class mini-joins (no dedup pass)",
    )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--scale", choices=sorted(SCALES), default=None)
    run.add_argument("--backend", **backend_kwargs)
    run.add_argument("--workers", **workers_kwargs)
    run.add_argument("--decompose", **decompose_kwargs)
    run.add_argument("--dedup", **dedup_kwargs)
    run.add_argument("--json", type=Path, default=None, help="also write rows as JSON")
    run.add_argument(
        "--chart",
        metavar="METRIC",
        default=None,
        help="also render an ASCII chart of METRIC vs |B| per algorithm "
        "(e.g. total_seconds, comparisons, memory_bytes)",
    )

    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--scale", choices=sorted(SCALES), default=None)
    everything.add_argument("--backend", **backend_kwargs)
    everything.add_argument("--workers", **workers_kwargs)
    everything.add_argument("--decompose", **decompose_kwargs)
    everything.add_argument("--dedup", **dedup_kwargs)
    everything.add_argument(
        "--out-dir", type=Path, default=None, help="write one JSON per experiment"
    )
    return parser


def _cmd_list() -> int:
    print("experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print(f"scales: {', '.join(SCALES)} (default: {DEFAULT_SCALE}, env REPRO_SCALE)")
    return 0


def _cmd_run(
    experiment: str,
    scale: str | None,
    json_path: Path | None,
    chart_metric: str | None,
    backend: str | None = None,
    workers: int | None = None,
    decompose: str | None = None,
    dedup: str | None = None,
) -> int:
    result = run_experiment(
        experiment,
        scale,
        backend=backend,
        workers=workers,
        decompose=decompose,
        dedup=dedup,
    )
    print_experiment(result)
    if chart_metric is not None:
        from repro.bench.charts import chart_for_experiment

        print(
            chart_for_experiment(
                result.rows,
                y_key=chart_metric,
                title=f"{result.title} — {chart_metric}",
            )
        )
        print()
    if json_path is not None:
        save_json(result, json_path)
        print(f"wrote {json_path}")
    return 0


def _cmd_all(
    scale: str | None,
    out_dir: Path | None,
    backend: str | None = None,
    workers: int | None = None,
    decompose: str | None = None,
    dedup: str | None = None,
) -> int:
    for name in EXPERIMENTS:
        result = run_experiment(
            name,
            scale,
            backend=backend,
            workers=workers,
            decompose=decompose,
            dedup=dedup,
        )
        print_experiment(result)
        if out_dir is not None:
            save_json(result, out_dir / f"{name}.json")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(
            args.experiment,
            args.scale,
            args.json,
            args.chart,
            args.backend,
            args.workers,
            args.decompose,
            args.dedup,
        )
    if args.command == "all":
        return _cmd_all(
            args.scale,
            args.out_dir,
            args.backend,
            args.workers,
            args.decompose,
            args.dedup,
        )
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
