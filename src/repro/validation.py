"""Cross-algorithm validation utilities.

The contract every algorithm must satisfy (paper §4.6: completeness,
soundness, no duplication) is checked against the nested-loop ground
truth.  These helpers are used by the test suite and are available to
library users who want to sanity-check a configuration on their data.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry.objects import SpatialObject
from repro.joins.base import JoinResult, Pair

__all__ = [
    "brute_force_pairs",
    "brute_force_exact_pairs",
    "find_duplicates",
    "assert_no_duplicates",
    "assert_matches_ground_truth",
    "assert_all_equivalent",
]


def brute_force_pairs(
    objects_a: Sequence[SpatialObject], objects_b: Sequence[SpatialObject]
) -> set[Pair]:
    """Ground-truth intersecting pair set, computed without instrumentation."""
    pairs: set[Pair] = set()
    for a in objects_a:
        mbr_a = a.mbr
        for b in objects_b:
            if mbr_a.intersects(b.mbr):
                pairs.add((a.oid, b.oid))
    return pairs


def brute_force_exact_pairs(
    objects_a: Sequence[SpatialObject],
    objects_b: Sequence[SpatialObject],
    epsilon: float,
) -> set[Pair]:
    """Ground truth of the exact distance predicate (filter-refine oracle).

    Every pair whose *shapes* lie within Euclidean distance ``epsilon``
    (``epsilon=0`` degenerates to intersection), evaluated scalar-wise
    with no MBR filter, no shortcuts and no candidate stage — the set
    :class:`~repro.refine.RefinePipeline` must reproduce through any
    registry algorithm and backend.  MBR-only objects count as solid
    boxes over their MBR (:func:`~repro.geometry.vertex_table.shape_of`).
    """
    from repro.geometry.shapes import shape_distance_sq
    from repro.geometry.vertex_table import shape_of

    threshold = float(epsilon) ** 2
    shapes_b = [(b.oid, shape_of(b)) for b in objects_b]
    pairs: set[Pair] = set()
    for a in objects_a:
        shape_a = shape_of(a)
        for oid_b, shape_b in shapes_b:
            if shape_distance_sq(shape_a, shape_b) <= threshold:
                pairs.add((a.oid, oid_b))
    return pairs


def find_duplicates(pairs: Iterable[Pair]) -> list[Pair]:
    """Pairs reported more than once."""
    seen: set[Pair] = set()
    duplicates: list[Pair] = []
    for pair in pairs:
        if pair in seen:
            duplicates.append(pair)
        else:
            seen.add(pair)
    return duplicates


def assert_no_duplicates(result: JoinResult) -> None:
    """Raise ``AssertionError`` when a pair appears twice (Lemma 3)."""
    duplicates = find_duplicates(result.pairs)
    if duplicates:
        raise AssertionError(
            f"{result.algorithm}: {len(duplicates)} duplicated pairs, e.g. {duplicates[:5]}"
        )


def assert_matches_ground_truth(
    result: JoinResult,
    objects_a: Sequence[SpatialObject],
    objects_b: Sequence[SpatialObject],
) -> None:
    """Raise ``AssertionError`` unless the result is exactly the truth.

    Reports missing pairs (completeness violations, Lemma 1) and spurious
    pairs (soundness violations, Lemma 2) separately.
    """
    assert_no_duplicates(result)
    truth = brute_force_pairs(objects_a, objects_b)
    got = result.pair_set()
    missing = truth - got
    spurious = got - truth
    problems = []
    if missing:
        problems.append(f"{len(missing)} missing pairs, e.g. {sorted(missing)[:5]}")
    if spurious:
        problems.append(f"{len(spurious)} spurious pairs, e.g. {sorted(spurious)[:5]}")
    if problems:
        raise AssertionError(f"{result.algorithm}: " + "; ".join(problems))


def assert_all_equivalent(results: Sequence[JoinResult]) -> None:
    """Raise unless all results contain exactly the same pair set."""
    if not results:
        return
    reference = results[0]
    ref_set = reference.pair_set()
    for other in results[1:]:
        other_set = other.pair_set()
        if other_set != ref_set:
            missing = ref_set - other_set
            extra = other_set - ref_set
            raise AssertionError(
                f"{other.algorithm} differs from {reference.algorithm}: "
                f"{len(missing)} missing, {len(extra)} extra"
            )
