"""Shard assignment and probe routing for the serving tier.

The sharded tier reuses the two-layer decomposition machinery of
:mod:`repro.parallel.decompose` to cut a registered *build* dataset into
N spatial shards whose scatter-gather merges are duplicate-free without
any cross-shard coordination:

- **membership** — a build object belongs to every shard its *raw* MBR
  covers under :meth:`~repro.parallel.decompose.Decomposition.covers`
  (index-range membership on the shared-edge ruler).  Raw — not
  ε-inflated — so shard contents are independent of any query's ε and
  one registration serves every distance threshold;
- **masks** — each replica carries its two-layer class mask
  (:meth:`~repro.parallel.decompose.Decomposition.class_mask` of the raw
  MBR): bit ``i`` set iff the shard owns the object's low corner along
  partitioned coordinate ``i``;
- **routing** — a probe MBR, inflated by the request's ε, is routed to
  exactly the shards it covers
  (:meth:`~repro.parallel.decompose.Decomposition.covering_indices`),
  carrying its own class mask per routed shard.

A result pair ``(a, q)`` produced inside a shard survives the merge iff
``mask_a | mask_q == full_mask`` — the allowed-class rule of the
two-layer partition join (:mod:`repro.partition.classes`).  Because the
distance predicate ``a.inflated(ε) ∩ q  ⇔  a ∩ q.inflated(ε)`` for axis-
aligned boxes, this is exactly the duplicate-free two-layer scheme
applied to the pair (raw build side, inflated probe side): every
intersecting pair has exactly one *home* shard — per axis, the cell
owning ``max(a.lo, q_inflated.lo)`` — which lies in both cover ranges
and is the unique shard where the mask union is full.  The union of the
per-shard filtered results is therefore complete and duplicate-free, and
matches the single-process :class:`~repro.service.SpatialQueryService`
pair-for-pair.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry.mbr import MBR, total_mbr
from repro.geometry.objects import SpatialObject
from repro.parallel.decompose import DECOMPOSE_KINDS, Decomposition

__all__ = ["ShardMap"]


class ShardMap:
    """The geometry of one sharded deployment: N shards over a universe.

    Parameters
    ----------
    universe:
        The MBR the decomposition cuts.  Objects and probes outside it
        are still handled correctly — ownership clamps to the boundary
        shards — the universe only steers load balance.
    n_shards:
        Shard count (>= 1); each shard is one region of the cutting.
    kind:
        ``"slabs"`` (1-D contiguous, the paper's §3 layout) or
        ``"tiles"`` (2-D grid).
    """

    __slots__ = ("decomposition", "full_mask")

    def __init__(
        self, universe: MBR, n_shards: int, kind: str = "slabs"
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if kind not in DECOMPOSE_KINDS:
            raise ValueError(
                f"unknown shard layout {kind!r}; expected one of "
                f"{', '.join(DECOMPOSE_KINDS)}"
            )
        self.decomposition = Decomposition.build(
            universe, kind=kind, n_chunks=n_shards, axis=0
        )
        self.full_mask = (1 << len(self.decomposition.axes)) - 1

    @classmethod
    def for_objects(
        cls,
        objects: Sequence[SpatialObject],
        n_shards: int,
        kind: str = "slabs",
    ) -> "ShardMap":
        """A shard map whose universe bounds the given objects."""
        if not objects:
            raise ValueError("cannot derive a shard universe from zero objects")
        return cls(total_mbr(o.mbr for o in objects), n_shards, kind)

    # -- protocol ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.decomposition)

    def __repr__(self) -> str:
        return (
            f"ShardMap({self.decomposition.kind}, "
            f"shape={self.decomposition.shape})"
        )

    def describe(self) -> dict:
        return {"shards": len(self), **self.decomposition.describe()}

    # -- build-side membership -----------------------------------------
    def shard_members(
        self, objects: Iterable[SpatialObject]
    ) -> list[list[tuple[SpatialObject, int]]]:
        """Per-shard ``(object, class_mask)`` replicas of a build dataset.

        Membership and masks are resolved on the *raw* MBRs so the
        assignment is ε-independent; replication mirrors the two-layer
        multiple assignment (an object straddling a shard boundary
        appears in every shard it covers, each copy with its own mask).
        """
        decomposition = self.decomposition
        out: list[list[tuple[SpatialObject, int]]] = [[] for _ in decomposition.regions]
        for obj in objects:
            for flat in decomposition.covering_indices(obj.mbr):
                region = decomposition.regions[flat]
                out[flat].append((obj, decomposition.class_mask(region, obj.mbr)))
        return out

    # -- probe routing -------------------------------------------------
    def route(self, inflated: MBR) -> list[tuple[int, int]]:
        """Shards an ε-inflated probe MBR must visit, with its masks.

        Returns ``(shard_index, class_mask)`` for every shard the
        inflated box covers — never empty (ownership clamps at the
        universe boundary), so every probe reaches at least one shard.
        """
        decomposition = self.decomposition
        return [
            (flat, decomposition.class_mask(decomposition.regions[flat], inflated))
            for flat in decomposition.covering_indices(inflated)
        ]
