"""Scatter-gather router: the front door of the sharded serving tier.

:class:`ShardRouter` is the asyncio core — it knows the
:class:`~repro.serving.shards.ShardMap`, keeps a small pool of
persistent connections per shard worker, routes every probe only to the
shards its ε-inflated MBR covers, fans the sub-probes out concurrently
and merges the responses into one
:class:`~repro.joins.base.JoinResult`.  The merge is a plain union: the
workers' two-layer ownership filter already guarantees each pair arrives
from exactly one shard (see :mod:`repro.serving.shards`).

:class:`ShardedQueryService` is the synchronous facade most callers
want: it boots a :class:`~repro.serving.cluster.ServingCluster`, runs a
private event loop on a daemon thread, and exposes the *identical*
``register`` / ``probe`` / ``query`` / ``probe_mbrs`` / ``stats`` /
``datasets`` surface as the single-process
:class:`~repro.service.SpatialQueryService` — swapping tiers is a
constructor change, not a call-site change.

:func:`serve_front` exposes a router over the same JSON-lines protocol
the workers speak, which is what ``repro-touch serve --shards N
--port P`` listens on.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import threading
from typing import Iterable, Sequence

from repro.bench.config import GEOMETRY_MODES
from repro.datasets.base import Dataset
from repro.geometry.columnar import CoordinateTable
from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject
from repro.geometry.shapes import Shape
from repro.joins.base import JoinResult, Pair
from repro.serving.cluster import ServingCluster
from repro.serving.protocol import (
    MAX_LINE_BYTES,
    RemoteError,
    encode_boxes,
    encode_shapes,
    recv_message,
    send_message,
)
from repro.serving.shards import ShardMap
from repro.stats.counters import JoinStatistics

__all__ = ["ShardRouter", "ShardedQueryService", "serve_front"]

#: Persistent connections kept per shard worker (more are opened on
#: demand under concurrency and the surplus closed on release).
POOL_SIZE = 4


def _shape_or_none(obj: SpatialObject) -> "Shape | None":
    """The object's exact shape, if it carries one."""
    return obj.geometry if isinstance(obj.geometry, Shape) else None


class _Pool:
    """A tiny per-endpoint pool of persistent stream connections."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def acquire(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self.idle:
            return self.idle.pop()
        # Default stream limit is 64 KiB — too small for a probe
        # response's pair list; raise it to the protocol backstop.
        return await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES
        )

    def release(
        self, conn: tuple[asyncio.StreamReader, asyncio.StreamWriter]
    ) -> None:
        if len(self.idle) < POOL_SIZE:
            self.idle.append(conn)
        else:
            conn[1].close()

    async def close(self) -> None:
        while self.idle:
            _reader, writer = self.idle.pop()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()


class ShardRouter:
    """Async scatter-gather routing over a set of shard-worker endpoints.

    Parameters
    ----------
    endpoints:
        ``(host, port)`` of every shard worker, in shard order (the
        endpoint at position ``i`` must serve shard ``i`` of
        ``shard_map``).
    shard_map:
        The deployment geometry; ``None`` defers it to the first
        :meth:`register` call (derived from that dataset's bounds).
    shards / kind:
        Used only when ``shard_map`` is deferred.
    """

    def __init__(
        self,
        endpoints: Sequence[tuple[str, int]],
        shard_map: ShardMap | None = None,
        kind: str = "slabs",
    ) -> None:
        if not endpoints:
            raise ValueError("a router needs at least one shard endpoint")
        self.endpoints = list(endpoints)
        self.shard_map = shard_map
        self.kind = kind
        if shard_map is not None and len(shard_map) != len(self.endpoints):
            raise ValueError(
                f"shard map has {len(shard_map)} shards but "
                f"{len(self.endpoints)} endpoints were given"
            )
        self._pools = [_Pool(host, port) for host, port in self.endpoints]
        #: Per dataset: global cardinality and per-shard replica counts.
        self._datasets: dict[str, dict] = {}
        self._probes = 0
        self._subprobes = 0

    # -- wire plumbing -------------------------------------------------
    async def _request(self, shard: int, message: dict) -> dict:
        pool = self._pools[shard]
        conn = await pool.acquire()
        reader, writer = conn
        try:
            await send_message(writer, message)
            response = await recv_message(reader)
        except BaseException:
            writer.close()
            raise
        pool.release(conn)
        if not response.get("ok"):
            raise RemoteError(
                f"shard {shard}: {response.get('error', 'unknown failure')}",
                response.get("error_type", "RuntimeError"),
            )
        return response

    async def close(self) -> None:
        """Close every pooled connection (workers keep running)."""
        for pool in self._pools:
            await pool.close()

    # -- registration --------------------------------------------------
    async def register(
        self, name: str, dataset: Sequence[SpatialObject]
    ) -> dict:
        """Cut a build dataset into shard replicas and ship them out.

        The first registration fixes the shard map's universe when none
        was supplied.  Every shard receives its ``covers`` members with
        their two-layer class masks; shards covering no member get an
        empty registration (so they answer probes for the name instead
        of erroring) and are skipped at probe time.
        """
        objects = list(dataset)
        if self.shard_map is None:
            self.shard_map = ShardMap.for_objects(
                objects, len(self.endpoints), self.kind
            )
        members = self.shard_map.shard_members(objects)
        # Shape-carrying datasets ship vertex payloads as a fifth member
        # element so workers can refine exact-mode probes; box-only
        # datasets keep the original four-element frames byte-for-byte.
        shaped = any(isinstance(obj.geometry, Shape) for obj in objects)
        payloads = [
            [
                [obj.oid, list(obj.mbr.lo), list(obj.mbr.hi), mask]
                + (encode_shapes([_shape_or_none(obj)]) if shaped else [])
                for obj, mask in shard_members
            ]
            for shard_members in members
        ]
        responses = await asyncio.gather(
            *(
                self._request(
                    shard,
                    {"op": "register", "dataset": name, "members": payload},
                )
                for shard, payload in enumerate(payloads)
            )
        )
        counts = [response["count"] for response in responses]
        info = {
            "objects": len(objects),
            "replicas": sum(counts),
            "per_shard": counts,
        }
        self._datasets[name] = info
        return info

    def datasets(self) -> dict[str, int]:
        """Registered dataset names and their (global) cardinalities."""
        return {name: info["objects"] for name, info in self._datasets.items()}

    # -- probes --------------------------------------------------------
    def _normalize(
        self,
        probe: "MBR | Iterable[MBR] | Sequence[SpatialObject] | CoordinateTable",
    ) -> "tuple[list[int], list[MBR], list[Shape | None] | None]":
        """Any accepted probe shape -> parallel (ids, boxes, shapes) lists.

        Mirrors the single-process :meth:`SpatialQueryService.probe`
        dispatch exactly, so pair identifiers match tier-for-tier: raw
        MBR batches pair against 0-based batch positions, object probes
        against their ``oid``.  ``shapes`` is ``None`` unless at least
        one probe object carries an exact shape — box-only probes keep
        their wire frames unchanged.
        """
        if isinstance(probe, MBR):
            return [0], [probe], None
        if isinstance(probe, CoordinateTable):
            ids = [int(i) for i in probe.ids]
            return ids, [o.mbr for o in probe.to_objects()], None
        items = list(probe)
        if not items:
            raise ValueError("cannot probe with an empty batch")
        if isinstance(items[0], MBR):
            return list(range(len(items))), items, None
        shapes = [_shape_or_none(obj) for obj in items]
        if all(shape is None for shape in shapes):
            shapes = None
        return [obj.oid for obj in items], [obj.mbr for obj in items], shapes

    def _scatter(
        self,
        dataset: str,
        probe,
        epsilon: float,
        geometry: str | None,
    ) -> "tuple[float, list[Shape | None] | None, dict[int, dict], list[int]]":
        """Validate a probe call and bucket it per covering shard.

        Shared by :meth:`probe` and :meth:`explain` so both route the
        identical per-shard slices — the precondition for a plan
        explained over the wire matching the plan a probe executes.
        """
        if dataset not in self._datasets:
            known = ", ".join(sorted(self._datasets)) or "(none)"
            raise KeyError(f"unknown dataset {dataset!r}; registered: {known}")
        epsilon = float(epsilon)
        if not math.isfinite(epsilon) or epsilon < 0:
            raise ValueError(
                f"epsilon must be finite and non-negative, got {epsilon!r}"
            )
        if geometry is not None and geometry not in GEOMETRY_MODES:
            raise ValueError(
                f"geometry must be one of {GEOMETRY_MODES}, got {geometry!r}"
            )
        ids, boxes, shapes = self._normalize(probe)
        per_shard_counts = self._datasets[dataset]["per_shard"]
        scatter: dict[int, dict] = {}
        for position, (probe_id, box) in enumerate(zip(ids, boxes)):
            inflated = box.expand(epsilon) if epsilon else box
            for shard, mask in self.shard_map.route(inflated):
                if not per_shard_counts[shard]:
                    continue  # shard owns no build members: no pairs there
                bucket = scatter.setdefault(
                    shard, {"ids": [], "boxes": [], "masks": [], "shapes": []}
                )
                bucket["ids"].append(probe_id)
                bucket["boxes"].append(box)
                bucket["masks"].append(mask)
                if shapes is not None:
                    bucket["shapes"].append(shapes[position])
        return epsilon, shapes, scatter, sorted(scatter)

    async def probe(
        self,
        dataset: str,
        probe: "MBR | Iterable[MBR] | Sequence[SpatialObject] | CoordinateTable",
        epsilon: float,
        algorithm: str = "TOUCH",
        geometry: str | None = None,
        **config,
    ) -> JoinResult:
        """Scatter a probe batch to its covering shards and merge.

        Accepts the same probe shapes as the single-process service and
        returns a :class:`~repro.joins.base.JoinResult` whose pair set
        is identical to it.  ``geometry="exact"`` ships each probe's
        exact shape (vertex arrays over the wire) alongside its box and
        the workers refine locally; routing stays by ε-inflated MBR, so
        the shard map's ownership guarantees are untouched.
        ``parameters`` reports the scatter shape: ``shards_contacted``,
        aggregate ``cache`` (``"warm"`` only when every contacted shard
        probed warm) and the summed ``build_seconds``.
        """
        epsilon, shapes, scatter, contacted = self._scatter(
            dataset, probe, epsilon, geometry
        )

        def _frame(shard: int) -> dict:
            frame = {
                "op": "probe",
                "dataset": dataset,
                "epsilon": epsilon,
                "algorithm": algorithm,
                "config": config,
                "ids": scatter[shard]["ids"],
                "boxes": encode_boxes(scatter[shard]["boxes"]),
                "masks": scatter[shard]["masks"],
                "full_mask": self.shard_map.full_mask,
            }
            # Only opted-in probes grow fields, keeping plain MBR
            # frames byte-identical to the pre-refinement protocol.
            if geometry is not None:
                frame["geometry"] = geometry
            if shapes is not None:
                frame["shapes"] = encode_shapes(scatter[shard]["shapes"])
            return frame

        responses = await asyncio.gather(
            *(self._request(shard, _frame(shard)) for shard in contacted)
        )
        self._probes += 1
        self._subprobes += len(contacted)
        pairs: list[Pair] = []
        stats = JoinStatistics()
        build_seconds = 0.0
        all_warm = bool(responses)
        plans: dict[str, dict] = {}
        for response in responses:
            pairs.extend((a, b) for a, b in response["pairs"])
            stats.merge(JoinStatistics(**response["stats"]))
            build_seconds += response["build_seconds"]
            all_warm = all_warm and response["cache"] == "warm"
            if response.get("plan") is not None:
                plans[str(response["shard"])] = response["plan"]
        stats.result_pairs = len(pairs)
        parameters = {
            "cache": "warm" if all_warm else "cold",
            "build_seconds": build_seconds,
            "epsilon": epsilon,
            "shards_contacted": len(contacted),
            "shards": len(self.endpoints),
        }
        if plans:
            # ``algorithm="auto"``: each shard planned from its own
            # slice sketch; surface every decision, keyed by shard.
            parameters["plans"] = plans
            stats.extra["plans"] = plans
        return JoinResult(algorithm, pairs, stats, parameters)

    async def explain(
        self,
        dataset: str,
        probe: "MBR | Iterable[MBR] | Sequence[SpatialObject] | CoordinateTable",
        epsilon: float,
        algorithm: str = "auto",
        geometry: str | None = None,
        **config,
    ) -> dict:
        """Per-shard plans for a probe batch, without executing it.

        Routes exactly like :meth:`probe` and asks each covering shard
        for the :class:`~repro.optimizer.plan.Plan` its local service
        would execute on its slice of the batch — shards see different
        slices, so their choices may legitimately differ.  Returns
        ``{shard_index: Plan}``.
        """
        from repro.optimizer import Plan

        epsilon, shapes, scatter, contacted = self._scatter(
            dataset, probe, epsilon, geometry
        )

        def _frame(shard: int) -> dict:
            frame = {
                "op": "explain",
                "dataset": dataset,
                "epsilon": epsilon,
                "algorithm": algorithm,
                "config": config,
                "ids": scatter[shard]["ids"],
                "boxes": encode_boxes(scatter[shard]["boxes"]),
            }
            if geometry is not None:
                frame["geometry"] = geometry
            if shapes is not None:
                frame["shapes"] = encode_shapes(scatter[shard]["shapes"])
            return frame

        responses = await asyncio.gather(
            *(self._request(shard, _frame(shard)) for shard in contacted)
        )
        return {
            response["shard"]: Plan.from_dict(response["plan"])
            for response in responses
        }

    # -- introspection -------------------------------------------------
    async def stats(self) -> dict:
        """Router counters plus every worker's service stats."""
        responses = await asyncio.gather(
            *(
                self._request(shard, {"op": "stats"})
                for shard in range(len(self.endpoints))
            )
        )
        per_shard = [response["stats"] for response in responses]
        # .get(): a router may front workers from an older build whose
        # stats frames predate the byte-accounting counters.
        aggregated = {
            key: sum(s.get(key, 0) for s in per_shard)
            for key in (
                "resident_bytes",
                "spilled_joins",
                "spilled_partitions",
                "spill_bytes_written",
                "spill_bytes_read",
                "unspills",
            )
        }
        return {
            "shards": len(self.endpoints),
            "probes": self._probes,
            "subprobes": self._subprobes,
            "fanout_avg": self._subprobes / self._probes if self._probes else 0.0,
            "queries": sum(s["queries"] for s in per_shard),
            "warm_hits": sum(s["warm_hits"] for s in per_shard),
            "cold_builds": sum(s["cold_builds"] for s in per_shard),
            "registered_datasets": len(self._datasets),
            **aggregated,
            "per_shard": per_shard,
        }

    async def health(self) -> list[dict]:
        """One health record per shard worker."""
        responses = await asyncio.gather(
            *(
                self._request(shard, {"op": "health"})
                for shard in range(len(self.endpoints))
            )
        )
        return [
            {"shard": r["shard"], "datasets": r["datasets"]} for r in responses
        ]


class ShardedQueryService:
    """Synchronous sharded drop-in for :class:`SpatialQueryService`.

    Owns the whole topology: a :class:`ServingCluster` of worker
    processes, a private event loop on a daemon thread, and a
    :class:`ShardRouter` on top.  The query surface (``register`` /
    ``probe`` / ``query`` / ``probe_mbrs`` / ``stats`` / ``datasets``)
    matches the single-process service, so swapping tiers needs no
    call-site changes.  Use as a context manager, or call :meth:`close`.
    """

    def __init__(
        self,
        shards: int = 2,
        kind: str = "slabs",
        backend: str | None = None,
        capacity: int = 8,
        max_bytes: int | None = None,
        start_method: str | None = None,
    ) -> None:
        self.cluster = ServingCluster(
            shards,
            backend=backend,
            capacity=capacity,
            max_bytes=max_bytes,
            start_method=start_method,
        )
        self.kind = kind
        self.router: ShardRouter | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ShardedQueryService":
        """Boot the workers and the router loop (idempotent)."""
        if self.router is not None:
            return self
        endpoints = self.cluster.start()
        try:
            self._loop = asyncio.new_event_loop()
            self._thread = threading.Thread(
                target=self._loop.run_forever,
                name="repro-shard-router",
                daemon=True,
            )
            self._thread.start()
            self.router = ShardRouter(endpoints, kind=self.kind)
        except BaseException:
            self.close()
            raise
        return self

    def close(self) -> None:
        """Stop the router loop and shut the worker processes down."""
        if self._loop is not None:
            if self.router is not None:
                with contextlib.suppress(Exception):
                    self._call(self.router.close())
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=10.0)
            self._loop.close()
        self.router = None
        self._loop = None
        self._thread = None
        self.cluster.stop()

    def __enter__(self) -> "ShardedQueryService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _call(self, coroutine):
        if self.router is None or self._loop is None:
            raise RuntimeError(
                "sharded service is not running; call start() first"
            )
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result()

    # -- the SpatialQueryService surface -------------------------------
    def register(self, name: str, dataset: Sequence[SpatialObject]) -> dict:
        """Shard a dataset across the workers; returns the replica map."""
        self.start()
        if isinstance(dataset, Dataset):
            dataset = list(dataset)
        return self._call(self.router.register(name, dataset))

    def probe(
        self,
        dataset: str,
        probe: "MBR | Iterable[MBR] | Sequence[SpatialObject] | CoordinateTable",
        epsilon: float,
        algorithm: str = "TOUCH",
        geometry: str | None = None,
        **config,
    ) -> JoinResult:
        """Scatter-gather probe; same shapes and pairs as the 1-process tier."""
        if isinstance(probe, Dataset):
            probe = list(probe)
        return self._call(
            self.router.probe(
                dataset,
                probe,
                epsilon,
                algorithm=algorithm,
                geometry=geometry,
                **config,
            )
        )

    def explain(
        self,
        dataset: str,
        probe: "MBR | Iterable[MBR] | Sequence[SpatialObject] | CoordinateTable",
        epsilon: float,
        algorithm: str = "auto",
        geometry: str | None = None,
        **config,
    ) -> dict:
        """Per-shard ``{shard: Plan}`` for a probe, without executing it."""
        if isinstance(probe, Dataset):
            probe = list(probe)
        return self._call(
            self.router.explain(
                dataset,
                probe,
                epsilon,
                algorithm=algorithm,
                geometry=geometry,
                **config,
            )
        )

    def query(
        self,
        dataset: str,
        probe: "Sequence[SpatialObject] | CoordinateTable",
        epsilon: float,
        algorithm: str = "TOUCH",
        geometry: str | None = None,
        **config,
    ) -> JoinResult:
        """Alias for :meth:`probe` (historical single-process name)."""
        return self.probe(
            dataset, probe, epsilon, algorithm=algorithm, geometry=geometry, **config
        )

    def probe_mbrs(
        self,
        dataset: str,
        mbrs: Iterable[MBR],
        epsilon: float,
        algorithm: str = "TOUCH",
        geometry: str | None = None,
        **config,
    ) -> JoinResult:
        """Alias for :meth:`probe` with a raw MBR batch (historical name)."""
        boxes = list(mbrs)
        if not boxes:
            raise ValueError("probe_mbrs requires at least one query MBR")
        return self.probe(
            dataset, boxes, epsilon, algorithm=algorithm, geometry=geometry, **config
        )

    def stats(self) -> dict:
        """Aggregated router + per-shard service statistics."""
        return self._call(self.router.stats())

    def health(self) -> list[dict]:
        """Per-shard health records."""
        return self._call(self.router.health())

    def datasets(self) -> dict[str, int]:
        """Registered dataset names and their (global) cardinalities."""
        if self.router is None:
            return {}
        return self.router.datasets()


async def serve_front(
    router: ShardRouter, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Expose a router over the JSON-lines protocol (the CLI front-end).

    Clients speak the same frames as the shard workers: ``probe`` (with
    ``ids`` + ``boxes``; masks are the router's business), ``stats``,
    ``health`` and ``datasets``.  Returns the listening server; callers
    own its lifetime.
    """

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await recv_message(reader)
                except Exception:
                    break
                try:
                    op = request.get("op")
                    if op == "probe":
                        from repro.serving.protocol import (
                            decode_boxes,
                            decode_shapes,
                        )

                        probe = decode_boxes(request["boxes"])
                        shape_rows = request.get("shapes")
                        if shape_rows is not None:
                            # Exact probes arrive as vertex payloads
                            # parallel to the boxes; rebuild position-
                            # numbered objects so pair ids keep the raw
                            # MBR-batch numbering.
                            shapes = decode_shapes(shape_rows)
                            probe = [
                                SpatialObject(position, box, shape)
                                for position, (box, shape) in enumerate(
                                    zip(probe, shapes)
                                )
                            ]
                        result = await router.probe(
                            request["dataset"],
                            probe,
                            request["epsilon"],
                            algorithm=request.get("algorithm", "TOUCH"),
                            geometry=request.get("geometry"),
                            **request.get("config", {}),
                        )
                        ids = request.get("ids")
                        pairs = (
                            [[a, ids[b]] for a, b in result.pairs]
                            if ids is not None
                            else [[a, b] for a, b in result.pairs]
                        )
                        response = {
                            "ok": True,
                            "pairs": pairs,
                            "stats": result.stats.as_dict(),
                            "parameters": result.parameters,
                        }
                    elif op == "explain":
                        from repro.serving.protocol import decode_boxes

                        plans = await router.explain(
                            request["dataset"],
                            decode_boxes(request["boxes"]),
                            request["epsilon"],
                            algorithm=request.get("algorithm", "auto"),
                            geometry=request.get("geometry"),
                            **request.get("config", {}),
                        )
                        response = {
                            "ok": True,
                            "plans": {
                                str(shard): plan.as_dict()
                                for shard, plan in plans.items()
                            },
                        }
                    elif op == "stats":
                        response = {"ok": True, "stats": await router.stats()}
                    elif op == "health":
                        response = {"ok": True, "shards": await router.health()}
                    elif op == "datasets":
                        response = {"ok": True, "datasets": router.datasets()}
                    else:
                        response = {
                            "ok": False,
                            "error": f"unknown op {op!r}",
                            "error_type": "ProtocolError",
                        }
                except Exception as exc:
                    response = {
                        "ok": False,
                        "error": str(exc),
                        "error_type": type(exc).__name__,
                    }
                await send_message(writer, response)
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    return await asyncio.start_server(
        handle, host=host, port=port, limit=MAX_LINE_BYTES
    )
