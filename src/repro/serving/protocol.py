"""Wire protocol of the serving tier: newline-delimited JSON messages.

One request line in, one response line out, over any stream transport —
stdlib ``asyncio`` streams inside the tier, a plain blocking socket for
simple clients (:class:`SyncConnection`).  No third-party HTTP stack is
required; the framing is a single JSON object per line (LF-terminated,
UTF-8), which keeps the protocol greppable and `nc`-able.

Requests carry an ``op`` field; responses carry ``ok`` (``true`` with
the op's payload, or ``false`` with ``error`` / ``error_type``).  Ops
understood by shard workers and the router front-end:

========  ==========================================================
op        request payload
========  ==========================================================
probe     ``dataset``, ``epsilon``, ``algorithm``, ``config``,
          ``ids`` (probe identifiers), ``boxes`` (``[lo..., hi...]``
          flat corner lists), ``masks`` + ``full_mask`` (two-layer
          ownership filter; shard workers only); optionally
          ``geometry`` (``"exact"`` refines against registered
          shapes) and ``shapes`` (exact probe payloads parallel to
          ``boxes``, ``null`` for box-only entries)
explain   same fields as ``probe`` minus ``masks``/``full_mask``;
          returns the optimizer :class:`~repro.optimizer.plan.Plan`
          the identical probe would execute (``plan`` from a shard
          worker, per-shard ``plans`` from the router front-end)
          without executing it
register  ``dataset``, ``members`` (``[oid, [lo...], [hi...], mask]``
          with an optional fifth element: the member's exact shape
          payload)
stats     —
health    —
shutdown  —
========  ==========================================================

Exact shapes travel as :func:`~repro.geometry.shapes.shape_to_payload`
rows — ``[kind, dim, [x0, y0, ...]]`` — so polygon and linestring
probes cross the wire as plain vertex arrays; routing stays by
ε-inflated MBR either way.  Coordinates travel as JSON numbers;
Python's ``json`` emits the shortest round-tripping ``repr`` of every
float, so corner and vertex values survive the wire bit-for-bit and
the scatter-gather parity against the in-process service is exact, not
approximate.
"""

from __future__ import annotations

import asyncio
import json
import socket

from repro.geometry.mbr import MBR
from repro.geometry.shapes import Shape, shape_from_payload, shape_to_payload

__all__ = [
    "ProtocolError",
    "RemoteError",
    "encode_message",
    "decode_message",
    "encode_boxes",
    "decode_boxes",
    "encode_shapes",
    "decode_shapes",
    "send_message",
    "recv_message",
    "SyncConnection",
]

#: A request/response line larger than this is refused (64 MiB) — a
#: backstop against unframed garbage, far above any real probe batch.
MAX_LINE_BYTES = 64 * 1024 * 1024


class ProtocolError(RuntimeError):
    """Malformed frame on the wire (bad JSON, missing fields, EOF)."""


class RemoteError(RuntimeError):
    """The peer answered ``ok: false``; carries its error text."""

    def __init__(self, message: str, error_type: str = "RuntimeError") -> None:
        super().__init__(message)
        self.error_type = error_type


def encode_message(message: dict) -> bytes:
    """One LF-terminated JSON line, compact separators."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> dict:
    """Parse one frame; raise :class:`ProtocolError` on junk."""
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


def encode_boxes(boxes: "list[MBR]") -> list[list[float]]:
    """MBRs as flat ``[lo..., hi...]`` rows (the coordinate-table layout)."""
    return [list(box.lo) + list(box.hi) for box in boxes]


def decode_boxes(rows: list[list[float]]) -> "list[MBR]":
    """Rebuild MBRs from flat corner rows."""
    out = []
    for row in rows:
        dim = len(row) // 2
        if dim < 1 or len(row) != 2 * dim:
            raise ProtocolError(f"box row of length {len(row)} is not 2*D")
        out.append(MBR(row[:dim], row[dim:]))
    return out


def encode_shapes(shapes: "list[Shape | None]") -> list:
    """Exact shapes as wire payload rows (``None`` entries pass through)."""
    return [
        None if shape is None else shape_to_payload(shape) for shape in shapes
    ]


def decode_shapes(rows: list, ids: "list[int] | None" = None) -> "list[Shape | None]":
    """Rebuild exact shapes from payload rows.

    ``ids`` (parallel to ``rows``, optional) labels validation errors
    with the shape's object id.
    """
    out = []
    for position, row in enumerate(rows):
        if row is None:
            out.append(None)
            continue
        oid = ids[position] if ids is not None else position
        try:
            out.append(shape_from_payload(row, oid=oid))
        except (ValueError, TypeError, KeyError, IndexError) as exc:
            raise ProtocolError(f"bad shape payload: {exc}") from None
    return out


async def send_message(writer: asyncio.StreamWriter, message: dict) -> None:
    """Write one frame and drain the transport."""
    writer.write(encode_message(message))
    await writer.drain()


async def recv_message(reader: asyncio.StreamReader) -> dict:
    """Read one frame; raise :class:`ProtocolError` on EOF mid-stream."""
    try:
        line = await reader.readline()
    except asyncio.LimitOverrunError:  # pragma: no cover - limit guards
        raise ProtocolError("frame exceeds the stream limit") from None
    if not line:
        raise ProtocolError("connection closed by peer")
    if not line.endswith(b"\n"):
        raise ProtocolError("truncated frame (no trailing newline)")
    return decode_message(line)


class SyncConnection:
    """A blocking request/response client for the JSON-lines protocol.

    Used where no event loop is running — the cluster's shutdown path
    and ad-hoc scripting against a live ``repro-touch serve`` front-end.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")

    def request(self, message: dict) -> dict:
        """Send one op and return the decoded response payload.

        Raises :class:`RemoteError` when the peer reports failure.
        """
        self._sock.sendall(encode_message(message))
        line = self._file.readline()
        if not line:
            raise ProtocolError("connection closed by peer")
        response = decode_message(line)
        if not response.get("ok"):
            raise RemoteError(
                response.get("error", "unknown remote failure"),
                response.get("error_type", "RuntimeError"),
            )
        return response

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SyncConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
