"""Shard worker process: one spatial shard behind an asyncio endpoint.

Each worker owns one region of the :class:`~repro.serving.shards.ShardMap`
cutting and wraps a private single-process
:class:`~repro.service.SpatialQueryService` — the same build-once/
probe-many engine the non-sharded tier uses, so cached-index semantics
(cold build on first probe, warm afterwards, LRU eviction) carry over
shard-locally unchanged.

The worker is deliberately geometry-blind: it never sees the
decomposition.  The router ships build replicas *with* their two-layer
class masks at registration and probe boxes *with* their per-shard masks
at query time; the worker joins locally and keeps a result pair
``(a, q)`` iff ``mask_a | mask_q == full_mask`` — the allowed-class rule
that makes the scatter-gather merge duplicate-free (see
:mod:`repro.serving.shards` for the proof sketch).

Joins run on the default thread-pool executor so the event loop keeps
accepting frames while a probe computes; concurrent probes against one
built index are safe (probes never mutate, racing cold builds build
once — the service contract).

``run_shard_worker`` is the module-level process entry point (picklable
under every ``multiprocessing`` start method).  It binds an ephemeral
port on loopback and reports ``("ready", port)`` — or ``("error",
reason)`` — through the handshake pipe before serving.
"""

from __future__ import annotations

import asyncio
import contextlib

from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject
from repro.service.service import SpatialQueryService
from repro.serving.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_boxes,
    decode_shapes,
    recv_message,
    send_message,
)

__all__ = ["ShardWorker", "run_shard_worker"]


class ShardWorker:
    """Protocol handler + local query service of one shard."""

    def __init__(
        self,
        shard_index: int,
        backend: str | None = None,
        capacity: int = 8,
        max_bytes: int | None = None,
    ) -> None:
        self.shard_index = shard_index
        self.service = SpatialQueryService(
            capacity=capacity, backend=backend, max_bytes=max_bytes
        )
        #: Per dataset: build oid -> two-layer class mask of its replica.
        self.masks: dict[str, dict[int, int]] = {}
        self.stop_event = asyncio.Event()

    # -- ops -----------------------------------------------------------
    def op_register(self, request: dict) -> dict:
        name = request["dataset"]
        members = request.get("members", [])
        # Members are [oid, lo, hi, mask] with an optional fifth
        # element: the replica's exact shape payload (vertex arrays),
        # kept so exact-mode probes refine against true extents — the
        # replica MBRs are never inflated, so box fallbacks stay sound.
        objects = []
        for member in members:
            oid, lo, hi, mask = member[:4]
            shape = None
            if len(member) > 4 and member[4] is not None:
                shape = decode_shapes([member[4]], ids=[oid])[0]
            objects.append(SpatialObject(oid, MBR(lo, hi), shape))
        self.service.register(name, objects)
        self.masks[name] = {member[0]: member[3] for member in members}
        return {"ok": True, "shard": self.shard_index, "count": len(objects)}

    def _decode_probe(self, request: dict):
        """The request's probe payload as the service consumes it.

        Shared by ``op_probe`` and ``op_explain`` so a plan explained
        over the wire sees exactly the probe the executed probe sees
        (same boxes, same shape attachment, same position numbering).
        """
        boxes = decode_boxes(request["boxes"])
        ids = request["ids"]
        if len(boxes) != len(ids):
            raise ProtocolError(
                f"probe arity mismatch: {len(boxes)} boxes, {len(ids)} ids"
            )
        probe = boxes
        shape_rows = request.get("shapes")
        if shape_rows is not None:
            # Exact probe payloads ride parallel to the boxes; entries
            # without one (null) refine as solid boxes.  Probe objects
            # take their batch *position* as oid so result pairs keep
            # the same ``ids[position]`` mapping as raw MBR batches.
            if len(shape_rows) != len(boxes):
                raise ProtocolError(
                    f"probe arity mismatch: {len(boxes)} boxes, "
                    f"{len(shape_rows)} shapes"
                )
            shapes = decode_shapes(shape_rows, ids=ids)
            probe = [
                SpatialObject(position, box, shape)
                for position, (box, shape) in enumerate(zip(boxes, shapes))
            ]
        return probe, boxes, ids

    def op_probe(self, request: dict) -> dict:
        name = request["dataset"]
        probe, boxes, ids = self._decode_probe(request)
        probe_masks = request["masks"]
        full_mask = request["full_mask"]
        if len(boxes) != len(probe_masks):
            raise ProtocolError(
                f"probe arity mismatch: {len(boxes)} boxes, "
                f"{len(probe_masks)} masks"
            )
        result = self.service.probe(
            name,
            probe,
            request["epsilon"],
            algorithm=request.get("algorithm", "TOUCH"),
            geometry=request.get("geometry"),
            **request.get("config", {}),
        )
        build_masks = self.masks[name]
        # The ownership filter: local positions map back to the caller's
        # probe ids, and only pairs whose mask union is full survive —
        # every other replica pair is owned by (and reported from) a
        # different shard.
        pairs = [
            [oid_a, ids[position]]
            for oid_a, position in result.pairs
            if build_masks[oid_a] | probe_masks[position] == full_mask
        ]
        response = {
            "ok": True,
            "shard": self.shard_index,
            "pairs": pairs,
            "stats": result.stats.as_dict(),
            "cache": result.parameters.get("cache", ""),
            "build_seconds": result.parameters.get("build_seconds", 0.0),
        }
        # ``algorithm="auto"`` probes grow two fields (the shard-local
        # choice and its plan); named-algorithm frames stay byte-stable.
        if "plan" in result.stats.extra:
            response["algorithm"] = result.algorithm
            response["plan"] = result.stats.extra["plan"]
        return response

    def op_explain(self, request: dict) -> dict:
        """The shard-local plan an identical ``probe`` frame would execute."""
        probe, _boxes, _ids = self._decode_probe(request)
        plan = self.service.explain(
            request["dataset"],
            probe,
            request["epsilon"],
            algorithm=request.get("algorithm", "auto"),
            geometry=request.get("geometry"),
            **request.get("config", {}),
        )
        return {
            "ok": True,
            "shard": self.shard_index,
            "plan": plan.as_dict(),
        }

    def op_stats(self, _request: dict) -> dict:
        return {
            "ok": True,
            "shard": self.shard_index,
            "stats": self.service.stats(),
            "datasets": self.service.datasets(),
        }

    def op_health(self, _request: dict) -> dict:
        return {
            "ok": True,
            "shard": self.shard_index,
            "datasets": self.service.datasets(),
        }

    def op_shutdown(self, _request: dict) -> dict:
        self.stop_event.set()
        return {"ok": True, "shard": self.shard_index}

    def dispatch(self, request: dict) -> dict:
        op = request.get("op")
        handler = getattr(self, f"op_{op}", None) if isinstance(op, str) else None
        if handler is None or op.startswith("_"):
            raise ProtocolError(f"unknown op {op!r}")
        return handler(request)

    # -- the connection loop -------------------------------------------
    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            while not self.stop_event.is_set():
                try:
                    request = await recv_message(reader)
                except ProtocolError:
                    break  # client went away / sent garbage framing
                try:
                    if request.get("op") == "shutdown":
                        # On-loop: asyncio.Event is not thread-safe, and
                        # the waiter must observe the set immediately.
                        response = self.op_shutdown(request)
                    else:
                        # Joins are CPU-bound: run them off-loop so other
                        # connections keep being served meanwhile.
                        response = await loop.run_in_executor(
                            None, self.dispatch, request
                        )
                except Exception as exc:
                    response = {
                        "ok": False,
                        "shard": self.shard_index,
                        "error": str(exc),
                        "error_type": type(exc).__name__,
                    }
                await send_message(writer, response)
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()


async def _serve_shard(
    shard_index: int,
    ready_conn,
    host: str,
    backend: str | None,
    capacity: int,
    max_bytes: int | None,
) -> None:
    worker = ShardWorker(
        shard_index, backend=backend, capacity=capacity, max_bytes=max_bytes
    )
    # The default asyncio stream limit (64 KiB) is far below a real
    # register/probe frame; raise it to the protocol's own backstop.
    server = await asyncio.start_server(
        worker.handle, host=host, port=0, limit=MAX_LINE_BYTES
    )
    port = server.sockets[0].getsockname()[1]
    ready_conn.send(("ready", port))
    ready_conn.close()
    async with server:
        await worker.stop_event.wait()


def run_shard_worker(
    shard_index: int,
    ready_conn,
    host: str = "127.0.0.1",
    backend: str | None = None,
    capacity: int = 8,
    max_bytes: int | None = None,
) -> None:
    """Process entry point: serve one shard until a ``shutdown`` op."""
    try:
        asyncio.run(
            _serve_shard(
                shard_index, ready_conn, host, backend, capacity, max_bytes
            )
        )
    except Exception as exc:  # pragma: no cover - handshake failure path
        with contextlib.suppress(Exception):
            ready_conn.send(("error", f"{type(exc).__name__}: {exc}"))
