"""Sharded async serving tier over the build-once/probe-many service.

ROADMAP item 1: an asyncio front-end in front of N worker processes,
each owning one spatial shard of every registered dataset, with probes
routed only to overlapping shards and merged scatter-gather — exactly
duplicate-free thanks to the two-layer ownership masks the parallel
engine already uses (see ``docs/serving.md``):

- :mod:`repro.serving.shards` — shard membership + probe routing
  (:class:`ShardMap`) on the shared slab/tile decomposition;
- :mod:`repro.serving.protocol` — newline-delimited JSON frames over
  asyncio streams (stdlib-only, no HTTP stack);
- :mod:`repro.serving.worker` — the shard-worker process: a private
  :class:`~repro.service.SpatialQueryService` behind an asyncio
  endpoint, filtering pairs by ownership mask;
- :mod:`repro.serving.cluster` — process topology (spawn, ready
  handshake, graceful shutdown);
- :mod:`repro.serving.router` — the async scatter-gather
  :class:`ShardRouter`, the synchronous :class:`ShardedQueryService`
  facade (same surface as the single-process service), and the
  ``repro-touch serve --shards N --port P`` front-end;
- :mod:`repro.serving.loadgen` — the measured concurrent workload
  behind the ``serve_load`` experiment (qps, p50/p99, parity-asserted).
"""

from repro.serving.cluster import ServingCluster
from repro.serving.loadgen import percentile, run_scatter_workload
from repro.serving.protocol import ProtocolError, RemoteError, SyncConnection
from repro.serving.router import ShardedQueryService, ShardRouter, serve_front
from repro.serving.shards import ShardMap

__all__ = [
    "ProtocolError",
    "RemoteError",
    "ServingCluster",
    "ShardMap",
    "ShardRouter",
    "ShardedQueryService",
    "SyncConnection",
    "percentile",
    "run_scatter_workload",
    "serve_front",
]
