"""Serve-load generator: concurrent scatter-gather probes, measured.

Drives a :class:`~repro.serving.router.ShardedQueryService` with the
same batched probe workload the single-process ``repro-touch serve``
driver plays, but issued *concurrently* (a bounded-parallelism asyncio
client mix), and reports throughput and tail latency — the numbers the
``serve_load`` experiment feeds into the benchmark trajectory
(``BENCH_PR6.json``).

Every batch's pair set is hard-asserted against the single-process
:class:`~repro.service.SpatialQueryService` ground truth (unless
disabled), so a qps/latency figure can never come from dropped or
duplicated pairs.
"""

from __future__ import annotations

import asyncio
import time
from typing import Sequence

from repro.geometry.objects import SpatialObject
from repro.service.driver import probe_batches
from repro.service.service import SpatialQueryService
from repro.serving.router import ShardedQueryService

__all__ = ["percentile", "run_scatter_workload"]


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in [0, 1]) of a sample set."""
    if not samples:
        raise ValueError("cannot take a percentile of zero samples")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def run_scatter_workload(
    dataset_a: Sequence[SpatialObject],
    dataset_b: Sequence[SpatialObject],
    epsilon: float,
    algorithm: str = "TOUCH",
    shards: int = 2,
    kind: str = "slabs",
    probes: int = 50,
    batch: int | None = None,
    concurrency: int = 8,
    compare_single: bool = True,
    service: ShardedQueryService | None = None,
    geometry: str | None = None,
    **config,
) -> dict:
    """Play a concurrent probe workload through the sharded tier.

    Registers ``dataset_a`` (sharded), cuts ``dataset_b`` into
    ``probes`` batches, warms every shard with one untimed pass of the
    first batch (index builds are a one-off cost the steady-state
    serving numbers should not absorb — the build time is reported
    separately), then issues all batches with at most ``concurrency``
    in flight and measures per-batch latency.

    With ``compare_single`` the identical batches also run through a
    single-process :class:`SpatialQueryService` and each batch's sorted
    pair list is asserted identical — the scatter-gather merge must be
    exact, not approximate.  ``geometry="exact"`` threads the
    filter–refine mode through both tiers (probe shapes cross the wire
    as vertex payloads), so the parity assertion compares refined pair
    sets on both sides.

    Returns a flat summary: ``qps``, ``p50_ms`` / ``p99_ms`` /
    ``max_ms``, pair totals, shard fan-out and both tiers' service
    stats.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    batches = probe_batches(dataset_b, probes, batch)
    owns_service = service is None
    if owns_service:
        service = ShardedQueryService(shards=shards, kind=kind)
    try:
        service.start()
        shard_info = service.register("build", dataset_a)

        # Untimed warm-up: every shard builds its index once, off-clock.
        warmup = service.probe(
            "build",
            batches[0],
            epsilon,
            algorithm=algorithm,
            geometry=geometry,
            **config,
        )

        latencies = [0.0] * len(batches)
        results: list = [None] * len(batches)

        async def drive() -> float:
            semaphore = asyncio.Semaphore(concurrency)
            loop = asyncio.get_running_loop()
            router = service.router

            async def one(index: int) -> None:
                async with semaphore:
                    started = loop.time()
                    results[index] = await router.probe(
                        "build",
                        batches[index],
                        epsilon,
                        algorithm=algorithm,
                        geometry=geometry,
                        **config,
                    )
                    latencies[index] = loop.time() - started

            started = loop.time()
            await asyncio.gather(*(one(i) for i in range(len(batches))))
            return loop.time() - started

        # Run the driver coroutine on the facade's own router loop so
        # the measured path is exactly the production one.
        elapsed = asyncio.run_coroutine_threadsafe(
            drive(), service._loop
        ).result()

        summary = {
            "algorithm": algorithm,
            "shards": shards,
            "kind": kind,
            "n_build": len(dataset_a),
            "n_probe_total": sum(len(chunk) for chunk in batches),
            "probes": len(batches),
            "batch": len(batches[0]),
            "concurrency": concurrency,
            "epsilon": epsilon,
            "result_pairs": sum(len(r) for r in results),
            "serve_seconds": elapsed,
            "qps": len(batches) / elapsed if elapsed > 0 else float("inf"),
            "p50_ms": percentile(latencies, 0.50) * 1000.0,
            "p99_ms": percentile(latencies, 0.99) * 1000.0,
            "max_ms": max(latencies) * 1000.0,
            "build_seconds": warmup.parameters.get("build_seconds", 0.0),
            "replicas": shard_info["replicas"],
            "fanout_avg": sum(
                r.parameters["shards_contacted"] for r in results
            )
            / len(results),
            "service_stats": service.stats(),
        }

        if compare_single:
            reference = SpatialQueryService(capacity=4)
            reference.register("build", dataset_a)
            single_start = time.perf_counter()
            for index, chunk in enumerate(batches):
                expected = reference.probe(
                    "build",
                    chunk,
                    epsilon,
                    algorithm=algorithm,
                    geometry=geometry,
                    **config,
                )
                got = results[index]
                if expected.pair_set() != got.pair_set():
                    missing = len(expected.pair_set() - got.pair_set())
                    spurious = len(got.pair_set() - expected.pair_set())
                    raise AssertionError(
                        f"{algorithm} batch {index} diverges between tiers: "
                        f"{missing} missing, {spurious} spurious pairs "
                        f"(shards={shards})"
                    )
            summary["single_seconds"] = time.perf_counter() - single_start
            summary["parity"] = True
        return summary
    finally:
        if owns_service:
            service.close()
