"""Process topology of the serving tier: spawn/stop N shard workers.

:class:`ServingCluster` owns the ``multiprocessing`` side of the tier —
it spawns one :func:`~repro.serving.worker.run_shard_worker` process per
shard (fork-preferred, like the parallel join engine), waits for each
worker's ``("ready", port)`` handshake over a private pipe, and exposes
the resulting loopback endpoints for the router to connect to.

Shutdown is cooperative first (a ``shutdown`` op over the wire lets the
event loop drain in-flight responses), then escalates to
``terminate()`` for any worker that does not exit in time.  Workers are
daemonic, so an abandoned cluster cannot outlive its parent process.
"""

from __future__ import annotations

import contextlib
import multiprocessing

from repro.parallel.engine import _default_start_method
from repro.serving.protocol import SyncConnection
from repro.serving.worker import run_shard_worker

__all__ = ["ServingCluster"]

#: Seconds to wait for each worker's ready handshake / graceful exit.
HANDSHAKE_TIMEOUT = 60.0
SHUTDOWN_TIMEOUT = 10.0


class ServingCluster:
    """N shard-worker processes with ready-handshaked endpoints.

    Parameters
    ----------
    shards:
        Worker-process count (>= 1), one spatial shard each.
    backend:
        Default geometry backend of every worker's local service.
    capacity:
        Per-worker index-cache capacity (LRU beyond it).
    max_bytes:
        Optional per-worker byte budget, forwarded to each worker's
        local :class:`~repro.service.SpatialQueryService` (bounds the
        index cache's resident footprint and spills oversized joins).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``.
    host:
        Interface the workers bind (loopback by default).
    """

    def __init__(
        self,
        shards: int,
        backend: str | None = None,
        capacity: int = 8,
        max_bytes: int | None = None,
        start_method: str | None = None,
        host: str = "127.0.0.1",
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.backend = backend
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.start_method = start_method or _default_start_method()
        self.host = host
        self.processes: list[multiprocessing.Process] = []
        self.endpoints: list[tuple[str, int]] = []

    @property
    def running(self) -> bool:
        return bool(self.processes)

    def start(self) -> list[tuple[str, int]]:
        """Spawn every worker; returns their ``(host, port)`` endpoints.

        Raises :class:`RuntimeError` (after tearing down whatever did
        come up) if any worker fails to hand back a bound port within
        the handshake timeout.
        """
        if self.running:
            return self.endpoints
        context = multiprocessing.get_context(self.start_method)
        try:
            for index in range(self.shards):
                parent_conn, child_conn = context.Pipe(duplex=False)
                process = context.Process(
                    target=run_shard_worker,
                    args=(
                        index,
                        child_conn,
                        self.host,
                        self.backend,
                        self.capacity,
                        self.max_bytes,
                    ),
                    name=f"repro-shard-{index}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self.processes.append(process)
                if not parent_conn.poll(HANDSHAKE_TIMEOUT):
                    raise RuntimeError(
                        f"shard worker {index} did not report ready within "
                        f"{HANDSHAKE_TIMEOUT:.0f}s"
                    )
                status, value = parent_conn.recv()
                parent_conn.close()
                if status != "ready":
                    raise RuntimeError(f"shard worker {index} failed: {value}")
                self.endpoints.append((self.host, value))
        except BaseException:
            self.stop()
            raise
        return self.endpoints

    def stop(self) -> None:
        """Graceful shutdown op per worker, then terminate stragglers."""
        for host, port in self.endpoints:
            with contextlib.suppress(Exception):
                with SyncConnection(host, port, timeout=SHUTDOWN_TIMEOUT) as conn:
                    conn.request({"op": "shutdown"})
        for process in self.processes:
            process.join(timeout=SHUTDOWN_TIMEOUT)
            if process.is_alive():  # pragma: no cover - stuck-worker path
                process.terminate()
                process.join(timeout=SHUTDOWN_TIMEOUT)
        self.processes = []
        self.endpoints = []

    def __enter__(self) -> "ServingCluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
