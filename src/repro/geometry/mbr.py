"""Minimum bounding rectangles (MBRs) in arbitrary dimension.

The MBR is the workhorse of the filtering phase of every spatial join in
this library: objects are approximated by axis-aligned boxes and all
object-object "comparisons" counted by the paper are intersection tests
between two MBRs.

An :class:`MBR` is immutable.  Its ``lo`` and ``hi`` corners are plain
tuples of floats, which keeps the hot intersection test free of numpy
overhead for the small dimensionalities (2-3) used throughout the paper.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

__all__ = ["MBR", "mbr_of_points", "total_mbr"]


class MBR:
    """An axis-aligned minimum bounding rectangle in ``D`` dimensions.

    Parameters
    ----------
    lo:
        Coordinates of the minimum corner, one per dimension.
    hi:
        Coordinates of the maximum corner.  ``hi[d] >= lo[d]`` must hold
        in every dimension ``d``.

    Examples
    --------
    >>> box = MBR((0.0, 0.0), (2.0, 1.0))
    >>> box.volume()
    2.0
    >>> box.intersects(MBR((1.0, 0.5), (3.0, 3.0)))
    True
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]) -> None:
        lo = tuple(float(c) for c in lo)
        hi = tuple(float(c) for c in hi)
        if len(lo) != len(hi):
            raise ValueError(f"corner dimensionality mismatch: {len(lo)} vs {len(hi)}")
        if not lo:
            raise ValueError("MBR must have at least one dimension")
        for d, (lo_c, hi_c) in enumerate(zip(lo, hi)):
            if hi_c < lo_c:
                raise ValueError(f"hi < lo in dimension {d}: {hi_c} < {lo_c}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # -- immutability -------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("MBR is immutable")

    def __reduce__(self):
        # Default slot pickling would call __setattr__ (blocked above);
        # rebuild through the constructor instead so MBRs can cross
        # process boundaries (multiprocessing-based chunked execution).
        return (MBR, (self.lo, self.hi))

    # -- basic protocol ----------------------------------------------
    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return len(self.lo)

    def __repr__(self) -> str:
        return f"MBR({self.lo!r}, {self.hi!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __iter__(self) -> Iterator[tuple[float, float]]:
        """Iterate over ``(lo, hi)`` intervals, one per dimension."""
        return iter(zip(self.lo, self.hi))

    # -- predicates ----------------------------------------------------
    def intersects(self, other: "MBR") -> bool:
        """Return ``True`` iff the two boxes share at least one point.

        Touching boundaries count as intersecting, matching the closed-box
        semantics of the paper's overlap definition ("intersection and
        containment").
        """
        for slo, shi, olo, ohi in zip(self.lo, self.hi, other.lo, other.hi):
            if shi < olo or ohi < slo:
                return False
        return True

    def contains(self, other: "MBR") -> bool:
        """Return ``True`` iff ``other`` lies entirely inside this box."""
        for slo, shi, olo, ohi in zip(self.lo, self.hi, other.lo, other.hi):
            if olo < slo or ohi > shi:
                return False
        return True

    def contains_point(self, point: Sequence[float]) -> bool:
        """Return ``True`` iff ``point`` lies inside this (closed) box."""
        for lo_c, hi_c, p in zip(self.lo, self.hi, point):
            if p < lo_c or p > hi_c:
                return False
        return True

    # -- constructive operations ---------------------------------------
    def union(self, other: "MBR") -> "MBR":
        """Smallest box enclosing both inputs."""
        lo = tuple(min(s, o) for s, o in zip(self.lo, other.lo))
        hi = tuple(max(s, o) for s, o in zip(self.hi, other.hi))
        return MBR(lo, hi)

    def intersection(self, other: "MBR") -> "MBR | None":
        """The overlap box, or ``None`` when the boxes are disjoint."""
        lo = tuple(max(s, o) for s, o in zip(self.lo, other.lo))
        hi = tuple(min(s, o) for s, o in zip(self.hi, other.hi))
        for lo_c, hi_c in zip(lo, hi):
            if hi_c < lo_c:
                return None
        return MBR(lo, hi)

    def expand(self, epsilon: float) -> "MBR":
        """Minkowski-inflate the box by ``epsilon`` on every side.

        This is the reduction used by the paper (after Jacox & Samet) to
        turn a distance join with threshold ``epsilon`` into an
        intersection join: the inflated box of ``a`` intersects ``b``'s box
        iff the L-infinity distance of the two boxes is at most ``epsilon``
        (and therefore whenever the Euclidean distance is).
        """
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        return MBR(
            tuple(c - epsilon for c in self.lo),
            tuple(c + epsilon for c in self.hi),
        )

    def translate(self, offset: Sequence[float]) -> "MBR":
        """Return the box shifted by ``offset``."""
        return MBR(
            tuple(c + o for c, o in zip(self.lo, offset)),
            tuple(c + o for c, o in zip(self.hi, offset)),
        )

    # -- measures --------------------------------------------------------
    def side_lengths(self) -> tuple[float, ...]:
        """Edge length per dimension."""
        return tuple(hi - lo for lo, hi in zip(self.lo, self.hi))

    def volume(self) -> float:
        """Product of all side lengths (area in 2D)."""
        return math.prod(self.side_lengths())

    def margin(self) -> float:
        """Sum of all side lengths (half-perimeter in 2D)."""
        return sum(self.side_lengths())

    def center(self) -> tuple[float, ...]:
        """Geometric center."""
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.lo, self.hi))

    def min_distance(self, other: "MBR") -> float:
        """Euclidean distance between the closest points of the two boxes.

        Zero when the boxes intersect.  Used by the refinement phase and
        by tests validating the ε-inflation reduction.
        """
        acc = 0.0
        for slo, shi, olo, ohi in zip(self.lo, self.hi, other.lo, other.hi):
            if ohi < slo:
                gap = slo - ohi
            elif shi < olo:
                gap = olo - shi
            else:
                gap = 0.0
            acc += gap * gap
        return math.sqrt(acc)

    def overlap_volume(self, other: "MBR") -> float:
        """Volume of the intersection (zero when disjoint)."""
        inter = self.intersection(other)
        return inter.volume() if inter is not None else 0.0


def mbr_of_points(points: Iterable[Sequence[float]]) -> MBR:
    """Tight bounding box of a non-empty collection of points."""
    it = iter(points)
    try:
        first = next(it)
    except StopIteration:
        raise ValueError("cannot bound an empty point set") from None
    lo = list(first)
    hi = list(first)
    for point in it:
        for d, c in enumerate(point):
            if c < lo[d]:
                lo[d] = c
            elif c > hi[d]:
                hi[d] = c
    return MBR(lo, hi)


def total_mbr(mbrs: Iterable[MBR]) -> MBR:
    """Tight bounding box enclosing a non-empty collection of boxes."""
    it = iter(mbrs)
    try:
        first = next(it)
    except StopIteration:
        raise ValueError("cannot bound an empty MBR set") from None
    lo = list(first.lo)
    hi = list(first.hi)
    for box in it:
        for d, c in enumerate(box.lo):
            if c < lo[d]:
                lo[d] = c
        for d, c in enumerate(box.hi):
            if c > hi[d]:
                hi[d] = c
    return MBR(lo, hi)
