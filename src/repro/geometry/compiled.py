"""Optional compiled (numba) kernel tier — ``backend="compiled"``.

The columnar backend already replaced per-object Python loops with
batched numpy; this module goes one step further for the three hottest
kernels by lowering them to scalar loops that numba can JIT to native
code:

- :func:`intersect_pairs_compiled` — the batch nested-loop intersection
  (same pair order and |A|·|B| comparison semantics as
  :func:`repro.geometry.columnar.intersect_pairs`);
- :func:`sweep_pairs_compiled` — the forward plane sweep along
  dimension 0 (same two-pass tie rule and candidate count as
  :func:`repro.geometry.columnar.sweep_pairs`);
- :func:`descend_ranges` — TOUCH's range descent over a flattened
  hierarchy (:class:`FlatHierarchy`), including the **true-hit
  shortcut** from Kipf et al.'s adaptive geospatial joins: a probe box
  that fully covers a node's MBR owns every A row beneath it, so the
  whole contiguous subtree row range is emitted without a single
  per-pair test.  Counter parity with the uncompiled descent is kept by
  charging the skipped work from precomputed subtree aggregates
  (``sub_tests`` / ``sub_stop - sub_start``), so ``comparisons`` and
  ``node_tests`` are bit-identical to a full descent.

Availability is auto-detected exactly like the columnar backend detects
numpy: importable numba makes ``backend="compiled"`` resolve to the
jitted kernels, anything else degrades to the columnar path.  The
``REPRO_COMPILED`` environment variable refines detection:

- ``auto`` (default) — numba if importable, else unavailable;
- ``force`` — report the tier available even without numba and run the
  pure-numpy twin of each kernel (identical pairs and counters; used by
  the test suite and CI legs without numba);
- ``off`` — report the tier unavailable even with numba installed.

A numba compilation/runtime failure never breaks a join: the failing
kernel set is disabled for the process (with a ``RuntimeWarning``) and
every call transparently uses the numpy twin.
"""

from __future__ import annotations

import os
import warnings

from repro.geometry.columnar import (
    HAVE_NUMPY,
    CoordinateTable,
    intersect_pairs,
    require_numpy,
    sweep_pairs,
)

try:  # pragma: no cover - numpy import guarded like columnar.py
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

try:  # pragma: no cover - numba is an optional accelerator
    import numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default container has none
    numba = None  # type: ignore[assignment]
    HAVE_NUMBA = False

__all__ = [
    "HAVE_NUMBA",
    "compiled_available",
    "compiled_mode",
    "using_numba",
    "intersect_pairs_compiled",
    "sweep_pairs_compiled",
    "FlatHierarchy",
    "descend_ranges",
]

#: Valid values of the ``REPRO_COMPILED`` detection override.
COMPILED_MODES = ("auto", "force", "off")

# One-shot numba failure latch: a kernel that fails to compile (or
# crashes at runtime) disables the jitted tier for the process so every
# later call goes straight to the numpy twins.
_NUMBA_KERNELS = None
_NUMBA_DISABLED = False


def compiled_mode() -> str:
    """The ``REPRO_COMPILED`` detection mode (validated)."""
    raw = os.environ.get("REPRO_COMPILED", "").strip().lower()
    if raw == "":
        return "auto"
    if raw not in COMPILED_MODES:
        raise ValueError(
            f"invalid REPRO_COMPILED={raw!r}: expected one of "
            f"{', '.join(COMPILED_MODES)}"
        )
    return raw


def compiled_available() -> bool:
    """Whether ``backend="compiled"`` resolves to this tier.

    ``force`` counts the pure-numpy twins as available (they run the
    same algorithms, true-hit shortcut included); ``off`` always says
    no; ``auto`` requires importable numba.
    """
    if not HAVE_NUMPY:
        return False
    mode = compiled_mode()
    if mode == "off":
        return False
    if mode == "force":
        return True
    return HAVE_NUMBA


def using_numba() -> bool:
    """Whether calls will actually dispatch to jitted kernels."""
    return HAVE_NUMBA and not _NUMBA_DISABLED and compiled_mode() != "off"


def _disable_numba(error: Exception) -> None:
    global _NUMBA_DISABLED
    if not _NUMBA_DISABLED:  # pragma: no cover - defensive path
        _NUMBA_DISABLED = True
        warnings.warn(
            f"numba kernel failed ({error!r}); the compiled tier now runs "
            "its numpy fallbacks for the rest of the process",
            RuntimeWarning,
            stacklevel=3,
        )


def _kernels():
    """The jitted kernel namespace, compiled lazily; None when unusable."""
    global _NUMBA_KERNELS
    if not using_numba():
        return None
    if _NUMBA_KERNELS is None:
        try:
            _NUMBA_KERNELS = _build_numba_kernels()
        except Exception as error:  # pragma: no cover - env dependent
            _disable_numba(error)
            return None
    return _NUMBA_KERNELS


# --------------------------------------------------------------------------
# Batch intersection + plane sweep
# --------------------------------------------------------------------------
def intersect_pairs_compiled(table_a: CoordinateTable, table_b: CoordinateTable):
    """All intersecting ``(index_a, index_b)`` pairs, nested-loop order.

    Drop-in replacement for :func:`~repro.geometry.columnar.intersect_pairs`
    (identical pair order); jitted when numba is usable, numpy otherwise.
    """
    require_numpy()
    if table_a.dim != table_b.dim:
        raise ValueError(f"dimension mismatch: {table_a.dim} vs {table_b.dim}")
    kernels = _kernels()
    if kernels is not None and len(table_a) and len(table_b):
        try:
            return kernels.intersect(table_a.lo, table_a.hi, table_b.lo, table_b.hi)
        except Exception as error:  # pragma: no cover - env dependent
            _disable_numba(error)
    return intersect_pairs(table_a, table_b)


def sweep_pairs_compiled(table_a: CoordinateTable, table_b: CoordinateTable):
    """Forward plane sweep: ``(index_a, index_b, candidates)``.

    Drop-in replacement for :func:`~repro.geometry.columnar.sweep_pairs`
    — same two-pass forward scan, same tie ownership, same candidate
    count, same anchor-major emission order.
    """
    require_numpy()
    if table_a.dim != table_b.dim:
        raise ValueError(f"dimension mismatch: {table_a.dim} vs {table_b.dim}")
    kernels = _kernels()
    if kernels is not None and len(table_a) and len(table_b):
        order_a = np.argsort(table_a.lo[:, 0], kind="stable")
        order_b = np.argsort(table_b.lo[:, 0], kind="stable")
        try:
            return kernels.sweep(
                table_a.lo, table_a.hi, table_b.lo, table_b.hi, order_a, order_b
            )
        except Exception as error:  # pragma: no cover - env dependent
            _disable_numba(error)
    return sweep_pairs(table_a, table_b)


# --------------------------------------------------------------------------
# TOUCH range descent over a flattened hierarchy
# --------------------------------------------------------------------------
class FlatHierarchy:
    """A TOUCH tree lowered to flat arrays for the compiled descent.

    Node order is the tree's DFS pre-order, which makes every subtree's
    descendant leaves — and hence its A rows in the leaf-order table —
    one contiguous range ``[sub_start, sub_stop)``.  ``sub_tests`` holds
    the number of child-overlap tests a full descent of the subtree
    would perform (the sum of child counts over its internal nodes):
    the true-hit shortcut charges these precomputed aggregates so its
    counters equal the shortcut-free descent exactly.

    Built by :func:`repro.core.local_join.flatten_hierarchy`; this class
    is purely numeric so the geometry layer stays free of tree imports.
    """

    __slots__ = (
        "node_lo",
        "node_hi",
        "children_ptr",
        "children_idx",
        "sub_start",
        "sub_stop",
        "sub_tests",
        "index",
    )

    def __init__(
        self,
        node_lo,
        node_hi,
        children_ptr,
        children_idx,
        sub_start,
        sub_stop,
        sub_tests,
        index,
    ) -> None:
        self.node_lo = node_lo
        self.node_hi = node_hi
        self.children_ptr = children_ptr
        self.children_idx = children_idx
        self.sub_start = sub_start
        self.sub_stop = sub_stop
        self.sub_tests = sub_tests
        #: Mapping from tree node -> flat index, for seeding descents.
        self.index = index

    def __len__(self) -> int:
        return self.node_lo.shape[0]

    @property
    def nbytes(self) -> int:
        """Real memory footprint of the flat arrays."""
        return int(
            self.node_lo.nbytes
            + self.node_hi.nbytes
            + self.children_ptr.nbytes
            + self.children_idx.nbytes
            + self.sub_start.nbytes
            + self.sub_stop.nbytes
            + self.sub_tests.nbytes
        )


def descend_ranges(
    flat: FlatHierarchy,
    a_lo,
    a_hi,
    b_lo,
    b_hi,
    seed_nodes,
    query_rows,
):
    """Range-descend every query from its assigned node to the leaves.

    Parameters
    ----------
    flat:
        The flattened hierarchy; ``a_lo`` / ``a_hi`` are the leaf-order
        corner arrays its row ranges index into.
    b_lo / b_hi:
        Corner arrays of the full probe table.
    seed_nodes / query_rows:
        Parallel vectors: query ``query_rows[i]`` starts its descent at
        flat node ``seed_nodes[i]`` (its phase-2 assignment).

    Returns ``(a_rows, b_rows, comparisons, node_tests)`` where the row
    arrays list every intersecting (A row, B row) pair exactly once and
    the counters equal a shortcut-free descent bit-for-bit.
    """
    require_numpy()
    seed_nodes = np.ascontiguousarray(seed_nodes, dtype=np.int64)
    query_rows = np.ascontiguousarray(query_rows, dtype=np.int64)
    empty = np.empty(0, dtype=np.int64)
    if len(query_rows) == 0 or a_lo.shape[0] == 0:
        return empty, empty, 0, 0
    kernels = _kernels()
    if kernels is not None:
        bq_lo = np.ascontiguousarray(b_lo[query_rows])
        bq_hi = np.ascontiguousarray(b_hi[query_rows])
        try:
            out_a, out_q, comparisons, node_tests = kernels.descend(
                flat.node_lo,
                flat.node_hi,
                flat.children_ptr,
                flat.children_idx,
                flat.sub_start,
                flat.sub_stop,
                flat.sub_tests,
                np.ascontiguousarray(a_lo),
                np.ascontiguousarray(a_hi),
                bq_lo,
                bq_hi,
                seed_nodes,
            )
            return out_a, query_rows[out_q], int(comparisons), int(node_tests)
        except Exception as error:  # pragma: no cover - env dependent
            _disable_numba(error)
    return _descend_batched(flat, a_lo, a_hi, b_lo, b_hi, seed_nodes, query_rows)


def _descend_batched(flat, a_lo, a_hi, b_lo, b_hi, seed_nodes, query_rows):
    """Numpy twin of the jitted descent (identical pairs and counters).

    A stack of ``(node, query-row block)`` entries is processed with
    broadcast tests; queries covering the node's MBR peel off through
    the true-hit shortcut, the rest descend the overlapping children.
    """
    out_a: list = []
    out_b: list = []
    comparisons = 0
    node_tests = 0
    node_lo, node_hi = flat.node_lo, flat.node_hi
    children_ptr, children_idx = flat.children_ptr, flat.children_idx
    sub_start, sub_stop, sub_tests = flat.sub_start, flat.sub_stop, flat.sub_tests

    stack = []
    for seed in np.unique(seed_nodes):
        stack.append((int(seed), query_rows[seed_nodes == seed]))
    while stack:
        node, rows = stack.pop()
        if len(rows) == 0:
            continue
        rows_lo, rows_hi = b_lo[rows], b_hi[rows]
        span = int(sub_stop[node] - sub_start[node])
        # True-hit shortcut: probes covering the node MBR own the whole
        # contiguous subtree row range without any per-pair tests.
        cover = (rows_lo <= node_lo[node]).all(axis=1) & (
            rows_hi >= node_hi[node]
        ).all(axis=1)
        if cover.any():
            hits = rows[cover]
            comparisons += span * len(hits)
            node_tests += int(sub_tests[node]) * len(hits)
            if span:
                a_range = np.arange(sub_start[node], sub_stop[node], dtype=np.int64)
                out_a.append(np.tile(a_range, len(hits)))
                out_b.append(np.repeat(hits, span))
            rows = rows[~cover]
            if len(rows) == 0:
                continue
            rows_lo, rows_hi = b_lo[rows], b_hi[rows]
        c0, c1 = int(children_ptr[node]), int(children_ptr[node + 1])
        if c0 == c1:  # leaf: test the bucket's rows against the queries
            if span == 0:
                continue
            comparisons += span * len(rows)
            start, stop = int(sub_start[node]), int(sub_stop[node])
            hit = np.nonzero(
                (a_lo[start:stop, None, :] <= rows_hi[None, :, :]).all(axis=2)
                & (a_hi[start:stop, None, :] >= rows_lo[None, :, :]).all(axis=2)
            )
            if len(hit[0]):
                out_a.append(start + hit[0].astype(np.int64))
                out_b.append(rows[hit[1]])
            continue
        children = children_idx[c0:c1]
        node_tests += len(rows) * len(children)
        overlap = (rows_lo[:, None, :] <= node_hi[children][None, :, :]).all(
            axis=2
        ) & (rows_hi[:, None, :] >= node_lo[children][None, :, :]).all(axis=2)
        for position, child in enumerate(children):
            stack.append((int(child), rows[overlap[:, position]]))
    empty = np.empty(0, dtype=np.int64)
    if not out_a:
        return empty, empty, comparisons, node_tests
    return (
        np.concatenate(out_a),
        np.concatenate(out_b),
        comparisons,
        node_tests,
    )


# --------------------------------------------------------------------------
# numba kernel construction (deferred so importing this module is free)
# --------------------------------------------------------------------------
def _build_numba_kernels():  # pragma: no cover - requires numba
    from types import SimpleNamespace

    from numba import njit

    @njit(cache=False)
    def bisect_left(arr, x):
        lo, hi = 0, arr.shape[0]
        while lo < hi:
            mid = (lo + hi) // 2
            if arr[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        return lo

    @njit(cache=False)
    def bisect_right(arr, x):
        lo, hi = 0, arr.shape[0]
        while lo < hi:
            mid = (lo + hi) // 2
            if arr[mid] <= x:
                lo = mid + 1
            else:
                hi = mid
        return lo

    @njit(cache=False)
    def intersect(a_lo, a_hi, b_lo, b_hi):
        n_a, n_b, dim = a_lo.shape[0], b_lo.shape[0], a_lo.shape[1]
        total = 0
        for i in range(n_a):
            for j in range(n_b):
                hit = True
                for d in range(dim):
                    if a_lo[i, d] > b_hi[j, d] or a_hi[i, d] < b_lo[j, d]:
                        hit = False
                        break
                if hit:
                    total += 1
        out_a = np.empty(total, np.int64)
        out_b = np.empty(total, np.int64)
        k = 0
        for i in range(n_a):
            for j in range(n_b):
                hit = True
                for d in range(dim):
                    if a_lo[i, d] > b_hi[j, d] or a_hi[i, d] < b_lo[j, d]:
                        hit = False
                        break
                if hit:
                    out_a[k] = i
                    out_b[k] = j
                    k += 1
        return out_a, out_b

    @njit(cache=False)
    def sweep_one_pass(
        anchor_lo, anchor_hi, other_lo, other_hi, order_other, left_side,
        out_anchor, out_other, fill
    ):
        # One direction of the forward scan.  With fill=False only the
        # hit/candidate counts are computed; with fill=True the hit
        # arrays are populated (anchor-major, window order).
        dim = anchor_lo.shape[1]
        n_other = order_other.shape[0]
        other_lo0 = np.empty(n_other, np.float64)
        for p in range(n_other):
            other_lo0[p] = other_lo[order_other[p], 0]
        hits = 0
        candidates = 0
        for i in range(anchor_lo.shape[0]):
            if left_side:
                start = bisect_left(other_lo0, anchor_lo[i, 0])
            else:
                start = bisect_right(other_lo0, anchor_lo[i, 0])
            stop = bisect_right(other_lo0, anchor_hi[i, 0])
            for p in range(start, stop):
                candidates += 1
                j = order_other[p]
                hit = True
                for d in range(1, dim):
                    if (
                        anchor_lo[i, d] > other_hi[j, d]
                        or anchor_hi[i, d] < other_lo[j, d]
                    ):
                        hit = False
                        break
                if hit:
                    if fill:
                        out_anchor[hits] = i
                        out_other[hits] = j
                    hits += 1
        return hits, candidates

    @njit(cache=False)
    def sweep(a_lo, a_hi, b_lo, b_hi, order_a, order_b):
        scratch = np.empty(0, np.int64)
        hits1, cand1 = sweep_one_pass(
            a_lo, a_hi, b_lo, b_hi, order_b, True, scratch, scratch, False
        )
        hits2, cand2 = sweep_one_pass(
            b_lo, b_hi, a_lo, a_hi, order_a, False, scratch, scratch, False
        )
        out_a = np.empty(hits1 + hits2, np.int64)
        out_b = np.empty(hits1 + hits2, np.int64)
        sweep_one_pass(
            a_lo, a_hi, b_lo, b_hi, order_b, True,
            out_a[:hits1], out_b[:hits1], True,
        )
        sweep_one_pass(
            b_lo, b_hi, a_lo, a_hi, order_a, False,
            out_b[hits1:], out_a[hits1:], True,
        )
        return out_a, out_b, cand1 + cand2

    @njit(cache=False)
    def descend(
        node_lo, node_hi, children_ptr, children_idx,
        sub_start, sub_stop, sub_tests,
        a_lo, a_hi, b_lo, b_hi, seeds,
    ):
        n_nodes = node_lo.shape[0]
        dim = node_lo.shape[1]
        cap = 1024
        out_a = np.empty(cap, np.int64)
        out_q = np.empty(cap, np.int64)
        count = 0
        comparisons = 0
        node_tests = 0
        stack = np.empty(n_nodes + 1, np.int64)
        for q in range(b_lo.shape[0]):
            depth = 1
            stack[0] = seeds[q]
            while depth > 0:
                depth -= 1
                node = stack[depth]
                covers = True
                for d in range(dim):
                    if b_lo[q, d] > node_lo[node, d] or b_hi[q, d] < node_hi[node, d]:
                        covers = False
                        break
                if covers:
                    # True hit: own the whole contiguous subtree range,
                    # charging the skipped tests from the aggregates.
                    span = sub_stop[node] - sub_start[node]
                    comparisons += span
                    node_tests += sub_tests[node]
                    need = count + span
                    if need > cap:
                        while cap < need:
                            cap *= 2
                        grown_a = np.empty(cap, np.int64)
                        grown_q = np.empty(cap, np.int64)
                        grown_a[:count] = out_a[:count]
                        grown_q[:count] = out_q[:count]
                        out_a = grown_a
                        out_q = grown_q
                    for r in range(sub_start[node], sub_stop[node]):
                        out_a[count] = r
                        out_q[count] = q
                        count += 1
                    continue
                c0 = children_ptr[node]
                c1 = children_ptr[node + 1]
                if c0 == c1:  # leaf bucket
                    for r in range(sub_start[node], sub_stop[node]):
                        comparisons += 1
                        hit = True
                        for d in range(dim):
                            if a_lo[r, d] > b_hi[q, d] or a_hi[r, d] < b_lo[q, d]:
                                hit = False
                                break
                        if hit:
                            if count == cap:
                                cap *= 2
                                grown_a = np.empty(cap, np.int64)
                                grown_q = np.empty(cap, np.int64)
                                grown_a[:count] = out_a[:count]
                                grown_q[:count] = out_q[:count]
                                out_a = grown_a
                                out_q = grown_q
                            out_a[count] = r
                            out_q[count] = q
                            count += 1
                    continue
                node_tests += c1 - c0
                for ci in range(c0, c1):
                    child = children_idx[ci]
                    hit = True
                    for d in range(dim):
                        if (
                            b_lo[q, d] > node_hi[child, d]
                            or b_hi[q, d] < node_lo[child, d]
                        ):
                            hit = False
                            break
                    if hit:
                        stack[depth] = child
                        depth += 1
        return out_a[:count], out_q[:count], comparisons, node_tests

    return SimpleNamespace(intersect=intersect, sweep=sweep, descend=descend)
