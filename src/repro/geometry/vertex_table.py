"""Columnar vertex storage for exact geometries (``VertexTable``).

The filter stage runs on :class:`~repro.geometry.columnar.CoordinateTable`
— fixed-width MBR rows — and is deliberately unaware of exact shapes.
This module adds the refinement-side twin: one flat ``float64`` vertex
buffer plus CSR offsets per object, so a dataset of polygons /
linestrings / points / boxes travels as four numpy arrays:

- ``vertices`` — ``(total_vertices, dim)`` float64, all objects
  concatenated in row order;
- ``offsets`` — ``(n_objects + 1,)`` int64 CSR bounds (object ``i``
  owns rows ``offsets[i]:offsets[i + 1]``);
- ``kinds`` — ``(n_objects,)`` int64 :data:`~repro.geometry.shapes.KIND_CODES`;
- ``ids`` — ``(n_objects,)`` int64 object ids.

It mirrors ``CoordinateTable``'s shared-memory hand-off exactly
(`to_shared` publishes one segment, workers `shm_slice` just their
rows), which is how the parallel engine ships vertex slices to workers
without pickling coordinate buffers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry.columnar import (
    HAVE_NUMPY,
    SharedTableBlock,
    _attach_segment,
    require_numpy,
    require_shm,
)
from repro.geometry.shapes import (
    KIND_CODES,
    KIND_NAMES,
    BoxShape,
    LineString,
    Point,
    Polygon,
    Shape,
)

try:  # pragma: no cover - numpy import guarded like columnar.py
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = ["VertexTable", "SharedVertexHandle", "shape_of"]

_KIND_CLASSES = {
    KIND_CODES["box"]: BoxShape,
    KIND_CODES["point"]: Point,
    KIND_CODES["linestring"]: LineString,
    KIND_CODES["polygon"]: Polygon,
}


def shape_of(obj) -> Shape:
    """The object's exact shape, falling back to a box over its MBR.

    The fallback reads ``obj.mbr`` as-is — callers that inflate build
    sides must attach box shapes *before* inflating (``run_algorithm``
    does) so refinement always evaluates original extents.
    """
    geometry = getattr(obj, "geometry", None)
    if isinstance(geometry, Shape):
        return geometry
    mbr = obj.mbr
    return BoxShape(mbr.lo, mbr.hi, oid=getattr(obj, "oid", None))


class VertexTable:
    """Columnar CSR vertex buffer over a sequence of shaped objects."""

    __slots__ = ("vertices", "offsets", "kinds", "ids", "_shm")

    def __init__(self, vertices, offsets, kinds, ids):
        require_numpy()
        self.vertices = np.ascontiguousarray(vertices, dtype=np.float64)
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self.kinds = np.ascontiguousarray(kinds, dtype=np.int64)
        self.ids = np.ascontiguousarray(ids, dtype=np.int64)
        if self.vertices.ndim != 2:
            raise ValueError("vertices must be a (total_vertices, dim) array")
        n = len(self.kinds)
        if len(self.offsets) != n + 1 or len(self.ids) != n:
            raise ValueError("offsets/kinds/ids lengths are inconsistent")
        if n and int(self.offsets[-1]) != len(self.vertices):
            raise ValueError("CSR offsets do not cover the vertex buffer")
        self._shm = None

    # -- construction ---------------------------------------------------
    @classmethod
    def from_objects(cls, objects: Sequence) -> "VertexTable":
        """Build from spatial objects, attaching box shapes where needed."""
        return cls.from_shapes(
            [shape_of(obj) for obj in objects],
            [obj.oid for obj in objects],
        )

    @classmethod
    def from_shapes(
        cls, shapes: Sequence[Shape], ids: Iterable[int]
    ) -> "VertexTable":
        require_numpy()
        if not shapes:
            return cls(
                np.empty((0, 2), dtype=np.float64),
                np.zeros(1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        dim = shapes[0].dim
        counts = np.fromiter(
            (len(shape.vertices) for shape in shapes), dtype=np.int64, count=len(shapes)
        )
        offsets = np.zeros(len(shapes) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        vertices = np.empty((int(offsets[-1]), dim), dtype=np.float64)
        for i, shape in enumerate(shapes):
            if shape.dim != dim:
                raise ValueError(
                    f"mixed dimensionality: shape {i} is {shape.dim}-D, expected {dim}-D"
                )
            vertices[offsets[i] : offsets[i + 1]] = shape.vertices
        kinds = np.fromiter(
            (KIND_CODES[shape.kind] for shape in shapes),
            dtype=np.int64,
            count=len(shapes),
        )
        return cls(vertices, offsets, kinds, np.fromiter(ids, dtype=np.int64))

    # -- basic views ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def dim(self) -> int:
        return self.vertices.shape[1]

    @property
    def nbytes(self) -> int:
        return (
            self.vertices.nbytes
            + self.offsets.nbytes
            + self.kinds.nbytes
            + self.ids.nbytes
        )

    def shape_at(self, index: int) -> Shape:
        lo, hi = int(self.offsets[index]), int(self.offsets[index + 1])
        cls = _KIND_CLASSES[int(self.kinds[index])]
        vertices = [tuple(row) for row in self.vertices[lo:hi]]
        return cls(vertices, oid=int(self.ids[index]))

    def to_shapes(self) -> list[Shape]:
        return [self.shape_at(i) for i in range(len(self))]

    def take(self, indices) -> "VertexTable":
        """Materialise a row subset (CSR re-slice) as a private table."""
        indices = np.asarray(indices, dtype=np.int64)
        starts = self.offsets[indices]
        counts = self.offsets[indices + 1] - starts
        new_offsets = np.zeros(len(indices) + 1, dtype=np.int64)
        np.cumsum(counts, out=new_offsets[1:])
        if len(indices) == 0:
            gathered = np.empty((0, self.dim), dtype=np.float64)
        else:
            from repro.geometry.columnar import concat_ranges

            _, rows = concat_ranges(starts, counts)
            gathered = self.vertices[rows]
        return VertexTable(
            gathered, new_offsets, self.kinds[indices], self.ids[indices]
        )

    # -- shared-memory hand-off ----------------------------------------
    def to_shared(self, name: str | None = None) -> SharedTableBlock:
        """Publish into one segment: vertex block, then the int64 blocks."""
        require_shm()
        from multiprocessing import shared_memory as _shared_memory

        vertices = np.ascontiguousarray(self.vertices)
        ints = np.concatenate([self.offsets, self.kinds, self.ids])
        total = vertices.nbytes + ints.nbytes
        segment = _shared_memory.SharedMemory(
            name=name, create=True, size=max(total, 1)
        )
        handle = SharedVertexHandle(
            segment.name, len(self), len(self.vertices), self.dim
        )
        buf = segment.buf
        np.frombuffer(buf, dtype=np.float64, count=vertices.size)[...] = (
            vertices.reshape(-1)
        )
        np.frombuffer(
            buf, dtype=np.int64, count=ints.size, offset=vertices.nbytes
        )[...] = ints
        return SharedTableBlock(segment, handle)

    @classmethod
    def from_shared(cls, handle: "SharedVertexHandle") -> "VertexTable":
        """Attach a published table as a zero-copy view (publisher owns it)."""
        require_shm()
        segment = _attach_segment(handle.name)
        rows, total, dim = handle.rows, handle.total_vertices, handle.dim
        vertices = np.frombuffer(
            segment.buf, dtype=np.float64, count=total * dim
        ).reshape(total, dim)
        ints = np.frombuffer(
            segment.buf,
            dtype=np.int64,
            count=3 * rows + 1,
            offset=vertices.nbytes,
        )
        table = cls.__new__(cls)
        table.vertices = vertices
        table.offsets = ints[: rows + 1]
        table.kinds = ints[rows + 1 : 2 * rows + 1]
        table.ids = ints[2 * rows + 1 :]
        table._shm = segment
        return table

    @classmethod
    def shm_slice(cls, handle: "SharedVertexHandle", indices) -> "VertexTable":
        """Copy the ``indices`` objects of a published table and detach."""
        view = cls.from_shared(handle)
        try:
            return view.take(indices)
        finally:
            view.release()

    def release(self) -> None:
        """Drop a :meth:`from_shared` attachment (no-op otherwise)."""
        segment, self._shm = self._shm, None
        if segment is None:
            return
        dim = self.dim
        self.vertices = np.empty((0, dim), dtype=np.float64)
        self.offsets = np.zeros(1, dtype=np.int64)
        self.kinds = np.empty(0, dtype=np.int64)
        self.ids = np.empty(0, dtype=np.int64)
        try:
            segment.close()
        except BufferError:  # pragma: no cover - a caller kept a view alive
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = sorted({KIND_NAMES[int(k)] for k in self.kinds})
        return (
            f"VertexTable({len(self)} objects, {len(self.vertices)} vertices, "
            f"dim={self.dim}, kinds={kinds})"
        )


class SharedVertexHandle:
    """Picklable locator of a vertex table published with ``to_shared()``."""

    __slots__ = ("name", "rows", "total_vertices", "dim")

    def __init__(self, name: str, rows: int, total_vertices: int, dim: int) -> None:
        self.name = name
        self.rows = rows
        self.total_vertices = total_vertices
        self.dim = dim

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedVertexHandle({self.name!r}, rows={self.rows}, "
            f"vertices={self.total_vertices}, dim={self.dim})"
        )

    def __getstate__(self):
        return (self.name, self.rows, self.total_vertices, self.dim)

    def __setstate__(self, state) -> None:
        self.name, self.rows, self.total_vertices, self.dim = state


# Re-export for callers that feature-test the hand-off.
HAVE_VERTEX_NUMPY = HAVE_NUMPY
