"""Spatial objects: the unit joined by every algorithm in this library.

A :class:`SpatialObject` carries a numeric identifier, an MBR used by the
filtering phase, and an optional exact geometry (e.g. a
:class:`~repro.geometry.distance.Cylinder`) consumed by the refinement
phase.  Join algorithms only ever look at ``oid`` and ``mbr``; refinement
looks at ``geometry``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry.mbr import MBR

__all__ = ["SpatialObject", "box_object", "point_object", "objects_from_mbrs"]


class SpatialObject:
    """A spatial object participating in a join.

    Parameters
    ----------
    oid:
        Identifier, unique within its dataset.  Result pairs are reported
        as ``(oid_a, oid_b)`` tuples.
    mbr:
        Minimum bounding rectangle used by the filtering phase.
    geometry:
        Optional exact shape for the refinement phase.  Any object with a
        ``min_distance(other) -> float`` method qualifies.
    """

    __slots__ = ("oid", "mbr", "geometry")

    def __init__(self, oid: int, mbr: MBR, geometry: object | None = None) -> None:
        self.oid = oid
        self.mbr = mbr
        self.geometry = geometry

    def __repr__(self) -> str:
        return f"SpatialObject(oid={self.oid}, mbr={self.mbr!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpatialObject):
            return NotImplemented
        return self.oid == other.oid and self.mbr == other.mbr

    def __hash__(self) -> int:
        return hash((self.oid, self.mbr))

    def inflated(self, epsilon: float) -> "SpatialObject":
        """Copy of this object with its MBR Minkowski-inflated by ``epsilon``.

        The exact geometry is carried over unchanged: refinement evaluates
        the original shape against the distance threshold directly.
        """
        if epsilon == 0:
            return self
        return SpatialObject(self.oid, self.mbr.expand(epsilon), self.geometry)


def box_object(oid: int, lo: Sequence[float], hi: Sequence[float]) -> SpatialObject:
    """Convenience constructor for a box-shaped object."""
    return SpatialObject(oid, MBR(lo, hi))


def point_object(oid: int, point: Sequence[float]) -> SpatialObject:
    """Convenience constructor for a degenerate (point) object."""
    return SpatialObject(oid, MBR(point, point))


def objects_from_mbrs(mbrs: Iterable[MBR], start_oid: int = 0) -> list[SpatialObject]:
    """Wrap raw MBRs into objects with sequential identifiers."""
    return [SpatialObject(start_oid + i, mbr) for i, mbr in enumerate(mbrs)]
