"""Exact vertex-based geometry: the shape layer under filter-refine.

MBR joins answer "which bounding boxes come within epsilon"; the TOUCH
paper's workloads (meshes, trajectories) are non-point geometries for
which the MBR test is only a *candidate* filter.  This module is the
shape vocabulary of the refinement stage:

- :class:`Point` — a single vertex, any dimensionality;
- :class:`LineString` — an open polyline (trajectories, neuron
  branches), 2-D or 3-D;
- :class:`Polygon` — a simple 2-D ring, treated as a *filled* region;
- :class:`BoxShape` — an axis-aligned solid box of any dimensionality;
  the canonical fallback for legacy MBR-only objects so that a mixed
  dataset can flow through one refinement pipeline.

Every shape knows its tight :meth:`Shape.mbr` and an optional
**interior rectangle** — an axis-aligned box fully contained in the
shape (Kipf et al.'s interior approximation).  Because the interior
rectangle is a *subset* of the shape, ``dist(interior_a, interior_b) <=
epsilon`` proves ``dist(a, b) <= epsilon`` without an exact test (the
"true hit" shortcut); symmetrically ``dist(mbr_a, mbr_b) > epsilon``
proves the pair apart (the "false hit" prune).

Degenerate payloads are rejected at construction with errors naming the
object id (polygons with fewer than three vertices, zero-length
linestrings, non-finite coordinates) so malformed data never reaches a
kernel.

The exact predicate is **Euclidean**: ``shape_distance(a, b) <=
epsilon``.  All internal comparisons happen on *squared* distances
(:func:`shape_distance_sq`), which keeps the scalar, vectorized and
compiled refinement kernels bit-for-bit consistent.
"""

from __future__ import annotations

import math
from typing import ClassVar, Iterable, Sequence

from repro.geometry.mbr import MBR

__all__ = [
    "Shape",
    "Point",
    "LineString",
    "Polygon",
    "BoxShape",
    "KIND_CODES",
    "KIND_NAMES",
    "shape_distance",
    "shape_distance_sq",
    "shape_from_payload",
    "shape_to_payload",
    "box_gap_sq",
    "polygon_contains",
    "segment_distance_sq",
]

#: Stable kind codes used by the columnar :class:`~repro.geometry.vertex_table.VertexTable`
#: and the JSON serving protocol.  Never renumber — fingerprints and
#: wire frames embed them.
KIND_CODES = {"box": 0, "point": 1, "linestring": 2, "polygon": 3}
KIND_NAMES = {code: name for name, code in KIND_CODES.items()}


def _label(kind: str, oid: object) -> str:
    return f"{kind} #{oid}" if oid is not None else kind


def _validate_vertices(
    vertices: Iterable[Sequence[float]], kind: str, oid: object, minimum: int
) -> tuple[tuple[float, ...], ...]:
    rows = []
    for row in vertices:
        rows.append(tuple(float(value) for value in row))
    if len(rows) < minimum:
        raise ValueError(
            f"{_label(kind, oid)}: needs at least {minimum} "
            f"vertices, got {len(rows)}"
        )
    dim = len(rows[0])
    if dim == 0:
        raise ValueError(f"{_label(kind, oid)}: vertices must have at least 1 coordinate")
    for index, row in enumerate(rows):
        if len(row) != dim:
            raise ValueError(
                f"{_label(kind, oid)}: vertex {index} has {len(row)} "
                f"coordinates, expected {dim}"
            )
        for value in row:
            if not math.isfinite(value):
                raise ValueError(
                    f"{_label(kind, oid)}: non-finite coordinate {value!r} "
                    f"in vertex {index}"
                )
    return tuple(rows)


def _clamp01(value: float) -> float:
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return value


def segment_distance_sq(
    ax: float, ay: float, bx: float, by: float,
    cx: float, cy: float, dx: float, dy: float,
) -> float:
    """Squared minimum distance between segments (a,b) and (c,d).

    Ericson's clamped closest-point computation.  The vectorized and
    compiled refinement kernels mirror this arithmetic operation for
    operation so every backend reaches the same float, which is what
    lets the parity suite demand identical refined pair sets.
    """
    d1x = bx - ax
    d1y = by - ay
    d2x = dx - cx
    d2y = dy - cy
    rx = ax - cx
    ry = ay - cy
    a = d1x * d1x + d1y * d1y
    e = d2x * d2x + d2y * d2y
    f = d2x * rx + d2y * ry
    if a <= 0.0 and e <= 0.0:
        return rx * rx + ry * ry
    if a <= 0.0:
        s = 0.0
        t = _clamp01(f / e)
    else:
        c = d1x * rx + d1y * ry
        if e <= 0.0:
            t = 0.0
            s = _clamp01(-c / a)
        else:
            b = d1x * d2x + d1y * d2y
            denom = a * e - b * b
            s = _clamp01((b * f - c * e) / denom) if denom != 0.0 else 0.0
            t = b * s + f
            if t < 0.0:
                t = 0.0
                s = _clamp01(-c / a)
            elif t > e:
                t = 1.0
                s = _clamp01((b - c) / a)
            else:
                t = t / e
    gx = (ax + d1x * s) - (cx + d2x * t)
    gy = (ay + d1y * s) - (cy + d2y * t)
    return gx * gx + gy * gy


def box_gap_sq(
    lo_a: Sequence[float], hi_a: Sequence[float],
    lo_b: Sequence[float], hi_b: Sequence[float],
) -> float:
    """Squared Euclidean gap between two closed axis-aligned boxes."""
    acc = 0.0
    for la, ha, lb, hb in zip(lo_a, hi_a, lo_b, hi_b):
        gap = la - hb
        other = lb - ha
        if other > gap:
            gap = other
        if gap > 0.0:
            acc += gap * gap
    return acc


def polygon_contains(vertices: Sequence[Sequence[float]], point: Sequence[float]) -> bool:
    """Boundary-inclusive point-in-polygon by ray casting (2-D)."""
    x, y = point[0], point[1]
    inside = False
    n = len(vertices)
    for i in range(n):
        x1, y1 = vertices[i]
        x2, y2 = vertices[(i + 1) % n]
        # Exact on-edge points belong to the closed region.
        if segment_distance_sq(x, y, x, y, x1, y1, x2, y2) == 0.0:
            return True
        if (y1 > y) != (y2 > y):
            t = (y - y1) / (y2 - y1)
            if x < x1 + t * (x2 - x1):
                inside = not inside
    return inside


class Shape:
    """Base class for exact geometries.

    Satisfies the :class:`~repro.geometry.objects.SpatialObject`
    geometry protocol (``min_distance(other) -> float``) so shapes plug
    into the legacy per-pair refinement unchanged.
    """

    __slots__ = ("vertices", "_mbr", "_interior")

    kind: ClassVar[str] = "shape"
    min_vertices: ClassVar[int] = 1
    #: Filled shapes contribute containment tests to the exact predicate.
    filled: ClassVar[bool] = False

    def __init__(self, vertices: Iterable[Sequence[float]], *, oid: object = None):
        self.vertices = _validate_vertices(vertices, self.kind, oid, self.min_vertices)
        self._validate(oid)
        self._mbr = None
        self._interior = False  # sentinel: not computed yet (None is a valid result)

    def _validate(self, oid: object) -> None:  # pragma: no cover - overridden
        pass

    @property
    def dim(self) -> int:
        return len(self.vertices[0])

    def mbr(self) -> MBR:
        if self._mbr is None:
            lo = tuple(min(v[d] for v in self.vertices) for d in range(self.dim))
            hi = tuple(max(v[d] for v in self.vertices) for d in range(self.dim))
            self._mbr = MBR(lo, hi)
        return self._mbr

    def interior_rectangle(self) -> MBR | None:
        """An axis-aligned box fully contained in the shape, or ``None``."""
        if self._interior is False:
            self._interior = self._compute_interior()
        return self._interior

    def _compute_interior(self) -> MBR | None:
        return None

    def segments(self) -> tuple[tuple[float, float, float, float], ...]:
        """The shape's boundary as flat 2-D segments ``(x1, y1, x2, y2)``."""
        raise TypeError(f"{self.kind} has no segment decomposition")

    def min_distance(self, other) -> float:
        if isinstance(other, Shape):
            return math.sqrt(shape_distance_sq(self, other))
        # Legacy geometries (Cylinder, Box) own their own dispatch.
        return other.min_distance(self)  # pragma: no cover - symmetry hook

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Shape)
            and self.kind == other.kind
            and self.vertices == other.vertices
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.vertices))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({len(self.vertices)} vertices, dim={self.dim})"

    def __reduce__(self):
        return (type(self), (self.vertices,))


class Point(Shape):
    """A single location; any dimensionality."""

    __slots__ = ()
    kind = "point"
    min_vertices = 1
    filled = False

    def __init__(self, vertices, *, oid=None):
        super().__init__(vertices, oid=oid)
        if len(self.vertices) != 1:
            raise ValueError(f"{_label(self.kind, oid)}: expected exactly 1 vertex")

    def _compute_interior(self) -> MBR | None:
        return self.mbr()

    def segments(self):
        x, y = self.vertices[0][0], self.vertices[0][1]
        return ((x, y, x, y),)


class BoxShape(Shape):
    """A solid axis-aligned box given as two vertices ``(lo, hi)``.

    The exact-geometry stand-in for legacy MBR-only objects: callers
    attach ``BoxShape(obj.mbr.lo, obj.mbr.hi)`` *before* epsilon
    inflation so refinement always sees original extents.
    """

    __slots__ = ()
    kind = "box"
    min_vertices = 2
    filled = True

    def __init__(self, lo, hi=None, *, oid=None):
        if hi is None:
            vertices = lo
        else:
            vertices = (tuple(lo), tuple(hi))
        super().__init__(vertices, oid=oid)

    def _validate(self, oid) -> None:
        if len(self.vertices) != 2:
            raise ValueError(f"{_label(self.kind, oid)}: expected exactly 2 vertices")
        lo, hi = self.vertices
        for d, (a, b) in enumerate(zip(lo, hi)):
            if b < a:
                raise ValueError(
                    f"{_label(self.kind, oid)}: hi < lo in dimension {d}"
                )

    def _compute_interior(self) -> MBR | None:
        return self.mbr()

    def contains_point(self, point: Sequence[float]) -> bool:
        lo, hi = self.vertices
        return all(a <= x <= b for a, x, b in zip(lo, point, hi))

    def segments(self):
        (x1, y1), (x2, y2) = self.vertices
        return (
            (x1, y1, x2, y1),
            (x2, y1, x2, y2),
            (x2, y2, x1, y2),
            (x1, y2, x1, y1),
        )


class LineString(Shape):
    """An open polyline; 2-D or 3-D, positive total length."""

    __slots__ = ()
    kind = "linestring"
    min_vertices = 2
    filled = False

    def _validate(self, oid) -> None:
        length = 0.0
        for a, b in zip(self.vertices, self.vertices[1:]):
            length += math.dist(a, b)
        if length <= 0.0:
            raise ValueError(f"{_label(self.kind, oid)}: zero-length linestring")

    def segments(self):
        return tuple(
            (a[0], a[1], b[0], b[1])
            for a, b in zip(self.vertices, self.vertices[1:])
        )


class Polygon(Shape):
    """A simple 2-D ring (implicitly closed), treated as filled."""

    __slots__ = ()
    kind = "polygon"
    min_vertices = 3
    filled = True

    def _validate(self, oid) -> None:
        if self.dim != 2:
            raise ValueError(
                f"{_label(self.kind, oid)}: polygons must be 2-D, "
                f"got {self.dim}-D vertices"
            )
        if len(self.vertices) > 3 and self.vertices[0] == self.vertices[-1]:
            # Accept an explicitly closed ring but store it open.
            self.vertices = self.vertices[:-1]

    def contains_point(self, point: Sequence[float]) -> bool:
        return polygon_contains(self.vertices, point)

    def segments(self):
        verts = self.vertices
        n = len(verts)
        return tuple(
            (verts[i][0], verts[i][1], verts[(i + 1) % n][0], verts[(i + 1) % n][1])
            for i in range(n)
        )

    def _compute_interior(self) -> MBR | None:
        """Largest centered box from a shrinking geometric search.

        Conservative by construction: a candidate rectangle counts only
        when all four corners are inside the (closed) polygon and no
        polygon edge crosses the rectangle's open interior — which is
        exactly the condition for rect ⊆ polygon on a simple ring.
        """
        box = self.mbr()
        cx = (box.lo[0] + box.hi[0]) * 0.5
        cy = (box.lo[1] + box.hi[1]) * 0.5
        half_x = (box.hi[0] - box.lo[0]) * 0.5
        half_y = (box.hi[1] - box.lo[1]) * 0.5
        shrink = 0.5
        for _ in range(6):
            hx = half_x * shrink
            hy = half_y * shrink
            lo = (cx - hx, cy - hy)
            hi = (cx + hx, cy + hy)
            if self._rect_inside(lo, hi):
                return MBR(lo, hi)
            shrink *= 0.5
        if self.contains_point((cx, cy)):
            return MBR((cx, cy), (cx, cy))
        return None

    def _rect_inside(self, lo, hi) -> bool:
        corners = ((lo[0], lo[1]), (hi[0], lo[1]), (hi[0], hi[1]), (lo[0], hi[1]))
        for corner in corners:
            if not polygon_contains(self.vertices, corner):
                return False
        for x1, y1, x2, y2 in self.segments():
            if _segment_crosses_open_rect(x1, y1, x2, y2, lo, hi):
                return False
        return True


def _segment_crosses_open_rect(x1, y1, x2, y2, lo, hi) -> bool:
    """Liang-Barsky clip: does the segment enter the rectangle's open interior?"""
    dx = x2 - x1
    dy = y2 - y1
    t0, t1 = 0.0, 1.0
    for p, q in (
        (-dx, x1 - lo[0]),
        (dx, hi[0] - x1),
        (-dy, y1 - lo[1]),
        (dy, hi[1] - y1),
    ):
        if p == 0.0:
            if q < 0.0:
                return False
            continue
        r = q / p
        if p < 0.0:
            if r > t1:
                return False
            if r > t0:
                t0 = r
        else:
            if r < t0:
                return False
            if r < t1:
                t1 = r
    if t1 <= t0:
        return False
    tm = (t0 + t1) * 0.5
    mx = x1 + tm * dx
    my = y1 + tm * dy
    return lo[0] < mx < hi[0] and lo[1] < my < hi[1]


_BOXLIKE = ("box", "point")


def _as_boxlike(shape: Shape) -> tuple[Sequence[float], Sequence[float]]:
    if shape.kind == "point":
        vertex = shape.vertices[0]
        return vertex, vertex
    return shape.vertices[0], shape.vertices[1]


def shape_distance_sq(a: Shape, b: Shape) -> float:
    """Squared Euclidean minimum distance between two (filled) shapes."""
    if a.dim != b.dim:
        raise ValueError(f"dimensionality mismatch: {a.dim} vs {b.dim}")
    if a.kind in _BOXLIKE and b.kind in _BOXLIKE:
        lo_a, hi_a = _as_boxlike(a)
        lo_b, hi_b = _as_boxlike(b)
        return box_gap_sq(lo_a, hi_a, lo_b, hi_b)
    if a.dim != 2:
        raise ValueError(
            f"exact {a.kind}/{b.kind} distance requires 2-D shapes, got {a.dim}-D"
        )
    best = math.inf
    segs_a = a.segments()
    segs_b = b.segments()
    for ax, ay, bx, by in segs_a:
        for cx, cy, dx, dy in segs_b:
            d = segment_distance_sq(ax, ay, bx, by, cx, cy, dx, dy)
            if d < best:
                best = d
                if best == 0.0:
                    return 0.0
    if best > 0.0:
        # Boundaries apart: a filled shape may still swallow the other whole.
        if a.filled and _filled_contains(a, b.vertices[0]):
            return 0.0
        if b.filled and _filled_contains(b, a.vertices[0]):
            return 0.0
    return best


def _filled_contains(shape: Shape, point: Sequence[float]) -> bool:
    if shape.kind == "box":
        return shape.contains_point(point)
    return polygon_contains(shape.vertices, point)


def shape_distance(a: Shape, b: Shape) -> float:
    """Euclidean minimum distance between two shapes."""
    return math.sqrt(shape_distance_sq(a, b))


def shape_to_payload(shape: Shape) -> list:
    """JSON-friendly ``[kind, [x, y, ...]]`` flat-vertex encoding."""
    flat: list[float] = []
    for vertex in shape.vertices:
        flat.extend(vertex)
    return [shape.kind, len(shape.vertices[0]), flat]


_KIND_CLASSES = {
    "box": BoxShape,
    "point": Point,
    "linestring": LineString,
    "polygon": Polygon,
}


def shape_from_payload(payload: Sequence, *, oid: object = None) -> Shape:
    """Inverse of :func:`shape_to_payload`."""
    kind, dim, flat = payload[0], int(payload[1]), payload[2]
    try:
        cls = _KIND_CLASSES[kind]
    except KeyError:
        raise ValueError(f"unknown shape kind {kind!r}") from None
    if dim <= 0 or len(flat) % dim:
        raise ValueError(f"{_label(str(kind), oid)}: malformed vertex payload")
    vertices = [tuple(flat[i : i + dim]) for i in range(0, len(flat), dim)]
    if cls is BoxShape:
        return BoxShape(vertices, oid=oid)
    return cls(vertices, oid=oid)
