"""Columnar (structure-of-arrays) geometry: the vectorised hot path.

The object model (:class:`~repro.geometry.mbr.MBR` tuples wrapped in
:class:`~repro.geometry.objects.SpatialObject`) is convenient but pays
interpreter overhead on every intersection test.  The paper's point is
that after TOUCH's partitioning the join is CPU-bound on exactly those
tests, so this module stores a whole dataset as one contiguous
``(N, 2 * D)`` float64 array — ``[:, :D]`` the minimum corners, ``[:, D:]``
the maximum corners — plus an ``(N,)`` int64 id vector, and provides
batch kernels over it:

- :func:`intersects_many` — the full |A| × |B| boolean intersection
  matrix, one broadcasted comparison instead of |A|·|B| Python calls;
- :func:`intersect_pairs` — the intersecting index pairs, computed in
  bounded-memory chunks (the batch nested-loop primitive);
- :func:`sweep_pairs` — a vectorised forward plane-sweep along dimension
  0, generating only the candidate pairs whose sweep intervals overlap;
- :func:`overlap_mask` / :func:`boxes_overlap_matrix` — one-box-vs-table
  and small-stack-vs-table tests used by the TOUCH assignment phase.

Everything degrades gracefully: when numpy is unavailable
(:data:`HAVE_NUMPY` is ``False``) the object code paths remain the only
backend and importing this module stays safe.

All predicates use closed-box semantics (touching boundaries intersect),
bit-for-bit the same rule as :meth:`MBR.intersects`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.geometry.mbr import MBR

try:  # pragma: no cover - exercised implicitly by every columnar test
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the CI images all ship numpy
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

try:  # pragma: no cover - stdlib on every supported platform
    from multiprocessing import shared_memory as _shared_memory

    HAVE_SHM = True
except ImportError:  # pragma: no cover - stripped-down interpreters
    _shared_memory = None  # type: ignore[assignment]
    HAVE_SHM = False

if TYPE_CHECKING:  # avoid a runtime cycle with repro.geometry.objects
    from repro.geometry.objects import SpatialObject

__all__ = [
    "HAVE_NUMPY",
    "HAVE_SHM",
    "require_numpy",
    "BACKENDS",
    "resolve_backend",
    "validate_backend",
    "CoordinateTable",
    "SharedTableHandle",
    "SharedTableBlock",
    "DEFAULT_DIM",
    "intersects_many",
    "intersect_pairs",
    "sweep_pairs",
    "overlap_mask",
    "axes_overlap_mask",
    "boxes_overlap_matrix",
    "concat_ranges",
    "chunk_boundaries",
    "DEFAULT_CANDIDATE_CHUNK",
]

#: Upper bound on materialised candidate pairs per vectorised chunk.
#: Bounds peak memory of the batch kernels at roughly
#: ``DEFAULT_CANDIDATE_CHUNK * (2 * D + 2) * 8`` bytes of temporaries.
DEFAULT_CANDIDATE_CHUNK = 1 << 22


def require_numpy() -> None:
    """Raise a clear error when a columnar API is used without numpy."""
    if not HAVE_NUMPY:
        raise RuntimeError(
            "the columnar geometry backend requires numpy; install numpy "
            "or select backend='object'"
        )


#: Valid values of the ``backend`` parameter of the ported algorithms.
BACKENDS = ("auto", "object", "columnar", "compiled")

#: Dimensionality assumed for empty tables built without an explicit
#: ``dim`` (the library's native datasets are 3-D boxes).
DEFAULT_DIM = 3


def validate_backend(backend: str) -> str:
    """Constructor-time check of a backend selector; returns it."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    return backend


def resolve_backend(backend: str, allow_compiled: bool = True) -> str:
    """Normalise a backend selector to an executable backend name.

    ``"auto"`` picks the columnar path whenever numpy is importable and
    falls back to the object path otherwise — it never opts into the
    compiled tier on its own.  ``"compiled"`` resolves to itself when
    the compiled kernels are usable (numba importable, or the
    ``REPRO_COMPILED=force`` pure-python mode) and degrades gracefully
    to ``"columnar"`` (then ``"object"``) when they are not.  Algorithms
    without a compiled execution pass ``allow_compiled=False`` so an
    explicit ``backend="compiled"`` request lands on their columnar
    path instead of falling through to the object loops.  Explicitly
    requesting ``"columnar"`` without numpy fails later, inside the
    first columnar kernel, with the :func:`require_numpy` message.
    """
    validate_backend(backend)
    if backend == "auto":
        return "columnar" if HAVE_NUMPY else "object"
    if backend == "compiled":
        if not HAVE_NUMPY:
            return "object"
        if not allow_compiled:
            return "columnar"
        from repro.geometry.compiled import compiled_available

        return "compiled" if compiled_available() else "columnar"
    return backend


class CoordinateTable:
    """A dataset of axis-aligned boxes in columnar form.

    Parameters
    ----------
    coords:
        ``(N, 2 * D)`` float64 array; row ``i`` holds the minimum corner
        of box ``i`` in columns ``[0, D)`` and the maximum corner in
        columns ``[D, 2 * D)``.
    ids:
        ``(N,)`` int64 array of object identifiers (the ``oid`` reported
        in result pairs).

    The table is the columnar twin of a list of
    :class:`~repro.geometry.objects.SpatialObject`; conversions preserve
    ids and coordinates exactly (float64 in, float64 out).
    """

    __slots__ = ("coords", "ids", "_shm")

    def __init__(self, coords, ids) -> None:
        require_numpy()
        coords = np.ascontiguousarray(coords, dtype=np.float64)
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        if coords.ndim != 2 or coords.shape[1] % 2 != 0 or coords.shape[1] == 0:
            raise ValueError(
                f"coords must have shape (N, 2*D) with D >= 1, got {coords.shape}"
            )
        if ids.shape != (coords.shape[0],):
            raise ValueError(
                f"ids shape {ids.shape} does not match {coords.shape[0]} rows"
            )
        self.coords = coords
        self.ids = ids
        self._shm = None

    # -- construction --------------------------------------------------
    @classmethod
    def from_objects(
        cls, objects: Sequence["SpatialObject"], dim: int | None = None
    ) -> "CoordinateTable":
        """Build a table from spatial objects (ids taken from ``oid``).

        An empty sequence yields a well-formed ``(0, 2 * dim)`` table
        (``dim`` defaults to :data:`DEFAULT_DIM` when it cannot be
        inferred), so empty-side joins flow through the columnar
        kernels instead of tripping a shape-inference error.
        """
        require_numpy()
        if not objects:
            dim = DEFAULT_DIM if dim is None else dim
            return cls(
                np.empty((0, 2 * dim), dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
        dim = objects[0].mbr.dim
        coords = np.empty((len(objects), 2 * dim), dtype=np.float64)
        ids = np.empty(len(objects), dtype=np.int64)
        for i, obj in enumerate(objects):
            mbr = obj.mbr
            coords[i, :dim] = mbr.lo
            coords[i, dim:] = mbr.hi
            ids[i] = obj.oid
        return cls(coords, ids)

    @classmethod
    def from_mbrs(
        cls,
        mbrs: Iterable[MBR],
        ids: Sequence[int] | None = None,
        dim: int | None = None,
    ) -> "CoordinateTable":
        """Build a table from raw MBRs with sequential (or given) ids.

        Empty input yields a ``(0, 2 * dim)`` table exactly like
        :meth:`from_objects`.
        """
        require_numpy()
        boxes = list(mbrs)
        if not boxes:
            dim = DEFAULT_DIM if dim is None else dim
            return cls(
                np.empty((0, 2 * dim), dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
        dim = boxes[0].dim
        coords = np.empty((len(boxes), 2 * dim), dtype=np.float64)
        for i, box in enumerate(boxes):
            coords[i, :dim] = box.lo
            coords[i, dim:] = box.hi
        id_arr = np.arange(len(boxes), dtype=np.int64) if ids is None else ids
        return cls(coords, id_arr)

    # -- basic protocol ------------------------------------------------
    def __len__(self) -> int:
        return self.coords.shape[0]

    def __repr__(self) -> str:
        return f"CoordinateTable(n={len(self)}, dim={self.dim})"

    @property
    def dim(self) -> int:
        """Number of spatial dimensions."""
        return self.coords.shape[1] // 2

    @property
    def lo(self):
        """``(N, D)`` view of the minimum corners."""
        return self.coords[:, : self.dim]

    @property
    def hi(self):
        """``(N, D)`` view of the maximum corners."""
        return self.coords[:, self.dim :]

    @property
    def nbytes(self) -> int:
        """Real memory footprint of the coordinate and id arrays."""
        return int(self.coords.nbytes + self.ids.nbytes)

    # -- conversion ----------------------------------------------------
    def mbr(self, index: int) -> MBR:
        """The ``index``-th box as an object-model MBR."""
        dim = self.dim
        row = self.coords[index]
        return MBR(tuple(row[:dim]), tuple(row[dim:]))

    def to_objects(self) -> "list[SpatialObject]":
        """Materialise the table as a list of spatial objects."""
        from repro.geometry.objects import SpatialObject

        dim = self.dim
        rows = self.coords.tolist()
        ids = self.ids.tolist()
        return [
            SpatialObject(oid, MBR(tuple(row[:dim]), tuple(row[dim:])))
            for oid, row in zip(ids, rows)
        ]

    def take(self, indices) -> "CoordinateTable":
        """Row subset (fancy index) as a new table."""
        return CoordinateTable(self.coords[indices], self.ids[indices])

    def bounds(self):
        """``(lo, hi)`` vectors of the tight bound over all rows.

        Raises
        ------
        ValueError
            On an empty table — there is no meaningful bound, and a
            bare numpy reduction error would not name the culprit.
        """
        if len(self) == 0:
            raise ValueError(f"bounds() of an empty table: {self!r} has no rows")
        return self.lo.min(axis=0), self.hi.max(axis=0)

    # -- shared-memory hand-off ----------------------------------------
    def to_shared(self, name: str | None = None) -> "SharedTableBlock":
        """Publish the table into one shared-memory segment.

        The segment holds the coordinate block followed by the id block;
        the returned :class:`SharedTableBlock` owns the segment (the
        caller must :meth:`~SharedTableBlock.close` it, normally with
        ``unlink=True``, when every consumer is done) and exposes the
        tiny picklable :class:`SharedTableHandle` that workers attach
        with :meth:`from_shared` / :meth:`shm_slice`.
        """
        require_shm()
        coords = np.ascontiguousarray(self.coords)
        ids = np.ascontiguousarray(self.ids)
        total = coords.nbytes + ids.nbytes
        segment = _shared_memory.SharedMemory(
            name=name, create=True, size=max(total, 1)
        )
        handle = SharedTableHandle(segment.name, len(self), self.dim)
        buf = segment.buf
        np.frombuffer(buf, dtype=np.float64, count=coords.size)[...] = (
            coords.reshape(-1)
        )
        np.frombuffer(
            buf, dtype=np.int64, count=ids.size, offset=coords.nbytes
        )[...] = ids
        return SharedTableBlock(segment, handle)

    @classmethod
    def from_shared(cls, handle: "SharedTableHandle") -> "CoordinateTable":
        """Attach a published table as a zero-copy view.

        The returned table's arrays alias the shared segment; the
        attachment is held open for the lifetime of the table object.
        The publishing process keeps ownership — this side never
        unlinks.  Use :meth:`shm_slice` to materialise a private row
        subset and drop the attachment immediately.
        """
        require_numpy()
        require_shm()
        segment = _attach_segment(handle.name)
        rows, dim = handle.rows, handle.dim
        coords = np.frombuffer(
            segment.buf, dtype=np.float64, count=rows * 2 * dim
        ).reshape(rows, 2 * dim)
        ids = np.frombuffer(
            segment.buf, dtype=np.int64, count=rows, offset=coords.nbytes
        )
        table = cls.__new__(cls)
        table.coords = coords
        table.ids = ids
        table._shm = segment
        return table

    @classmethod
    def shm_slice(cls, handle: "SharedTableHandle", indices) -> "CoordinateTable":
        """Copy the ``indices`` rows of a published table and detach.

        The worker-side hand-off primitive: attach the parent's
        segment, fancy-index just this worker's rows into private
        arrays, then close the attachment so the parent's ``unlink``
        is the only lifecycle event left.
        """
        view = cls.from_shared(handle)
        try:
            return cls(view.coords[indices], view.ids[indices])
        finally:
            view.release()

    def release(self) -> None:
        """Drop a :meth:`from_shared` attachment (no-op otherwise).

        The table's arrays are invalidated (replaced by empty ones) so
        the aliased buffer can actually close; callers must have copied
        whatever rows they need first (:meth:`shm_slice` does).
        """
        segment, self._shm = self._shm, None
        if segment is None:
            return
        dim = self.dim
        self.coords = np.empty((0, 2 * dim), dtype=np.float64)
        self.ids = np.empty(0, dtype=np.int64)
        try:
            segment.close()
        except BufferError:  # pragma: no cover - a caller kept a view alive
            # The attachment then lives until process exit; the segment
            # itself is still owned (and unlinked) by the publisher.
            pass


def require_shm() -> None:
    """Raise a clear error when the shm hand-off is used without support."""
    require_numpy()
    if not HAVE_SHM:
        raise RuntimeError(
            "multiprocessing.shared_memory is unavailable on this platform; "
            "use the pickle hand-off (handoff='pickle')"
        )


def _attach_segment(name: str):
    """Attach an existing segment without adopting its lifecycle.

    Python's resource tracker registers *attachments* as if they were
    creations before 3.13, so a worker exiting would try to unlink a
    segment the parent still owns.  Unregistering after the fact is
    wrong too: under fork the worker shares the parent's tracker, so
    the unregister would erase the *parent's* registration and its
    later ``unlink`` would trip a tracker KeyError.  Instead the
    registration is suppressed for the duration of the attach (the
    3.13+ ``track=False`` semantics), leaving the parent as the sole
    registered owner.
    """
    try:  # pragma: no cover - interpreter-version dependent
        from multiprocessing import resource_tracker

        register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
    except Exception:
        return _shared_memory.SharedMemory(name=name)
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = register


class SharedTableHandle:
    """Picklable locator of a table published with ``to_shared()``."""

    __slots__ = ("name", "rows", "dim")

    def __init__(self, name: str, rows: int, dim: int) -> None:
        self.name = name
        self.rows = rows
        self.dim = dim

    def __repr__(self) -> str:
        return f"SharedTableHandle({self.name!r}, rows={self.rows}, dim={self.dim})"

    def __getstate__(self):
        return (self.name, self.rows, self.dim)

    def __setstate__(self, state) -> None:
        self.name, self.rows, self.dim = state


class SharedTableBlock:
    """Parent-side owner of one published shared-memory segment."""

    __slots__ = ("segment", "handle")

    def __init__(self, segment, handle: SharedTableHandle) -> None:
        self.segment = segment
        self.handle = handle

    def close(self, unlink: bool = True) -> None:
        """Close (and by default unlink) the segment; idempotent."""
        segment, self.segment = self.segment, None
        if segment is None:
            return
        segment.close()
        if unlink:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedTableBlock":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- flat candidate-range machinery ------------------------------------
def concat_ranges(starts, counts):
    """Vectorised ``concatenate([arange(s, s + c) for s, c in ...])``.

    Also returns the index of the originating range for every element —
    the backbone of every candidate-pair generator in this module: given
    per-anchor candidate windows ``[start, start + count)`` it produces
    the flat ``(anchor_index, candidate_index)`` arrays in one shot,
    without a Python-level loop.
    """
    require_numpy()
    counts = np.asarray(counts, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    anchors = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    positions = np.arange(total, dtype=np.int64) - offsets[anchors]
    return anchors, starts[anchors] + positions


def chunk_boundaries(counts, chunk: int):
    """Split anchor indices so each block yields <= ``chunk`` candidates.

    ``counts[i]`` is the number of candidates anchor ``i`` contributes;
    the returned ``(lo, hi)`` anchor ranges partition all anchors so
    every range's candidate total stays near the ``chunk`` budget (a
    single anchor may exceed it on its own).  Shared by every chunked
    candidate generator (sweep, grid cell join, batch nested loop).
    """
    cum = np.cumsum(counts)
    total = int(cum[-1]) if len(cum) else 0
    if total <= chunk:
        return [(0, len(counts))]
    cuts = np.searchsorted(cum, np.arange(chunk, total, chunk), side="left") + 1
    edges = [0, *[int(c) for c in cuts], len(counts)]
    return [
        (edges[i], edges[i + 1])
        for i in range(len(edges) - 1)
        if edges[i] < edges[i + 1]
    ]


# -- batch predicates --------------------------------------------------
def intersects_many(table_a: CoordinateTable, table_b: CoordinateTable):
    """Full boolean intersection matrix, shape ``(len(a), len(b))``.

    ``result[i, j]`` is ``True`` iff box ``i`` of A and box ``j`` of B
    share at least one point — exactly
    ``table_a.mbr(i).intersects(table_b.mbr(j))``, closed-box semantics.
    Materialises |A| × |B| booleans: meant for moderate inputs and for
    validation; use :func:`intersect_pairs` for large joins.
    """
    require_numpy()
    if table_a.dim != table_b.dim:
        raise ValueError(f"dimension mismatch: {table_a.dim} vs {table_b.dim}")
    a_lo = table_a.lo[:, None, :]
    a_hi = table_a.hi[:, None, :]
    b_lo = table_b.lo[None, :, :]
    b_hi = table_b.hi[None, :, :]
    return ((a_lo <= b_hi) & (b_lo <= a_hi)).all(axis=2)


def overlap_mask(table: CoordinateTable, lo, hi):
    """``(N,)`` mask of table rows intersecting the box ``(lo, hi)``."""
    require_numpy()
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    return (table.lo <= hi).all(axis=1) & (table.hi >= lo).all(axis=1)


def axes_overlap_mask(table: CoordinateTable, axes, lows, highs):
    """``(N,)`` mask of rows whose interval on each listed axis overlaps.

    The partial-dimensional variant of :func:`overlap_mask`: only the
    ``axes`` are constrained (closed intervals, same float64 semantics as
    :meth:`MBR.intersects`), the rest stay free.  This is the membership
    test of the slab/tile decomposition — a region bounds one or two
    axes, never all — vectorised so the parallel engine can slice
    per-region coordinate blocks without a per-object Python loop.
    """
    require_numpy()
    dim = table.dim
    mask = np.ones(len(table), dtype=bool)
    for axis, lo, hi in zip(axes, lows, highs):
        mask &= table.coords[:, axis + dim] >= lo  # row hi >= interval lo
        mask &= table.coords[:, axis] <= hi  # row lo <= interval hi
    return mask


def boxes_overlap_matrix(lo_rows, hi_rows, boxes_lo, boxes_hi):
    """Overlap matrix of ``(m, D)`` corner rows against ``(k, D)`` boxes.

    Used by the assignment phase to test a batch of B objects against
    all children of a tree node in one broadcast.
    """
    require_numpy()
    return ((lo_rows[:, None, :] <= boxes_hi[None, :, :]).all(axis=2)) & (
        (hi_rows[:, None, :] >= boxes_lo[None, :, :]).all(axis=2)
    )


# -- batch join kernels ------------------------------------------------
def intersect_pairs(
    table_a: CoordinateTable,
    table_b: CoordinateTable,
    chunk: int = DEFAULT_CANDIDATE_CHUNK,
):
    """All intersecting ``(index_a, index_b)`` pairs, nested-loop order.

    Tests every pair (|A| · |B| comparisons) with bounded peak memory by
    processing blocks of A rows; pair order matches the object-model
    nested loop (A-major, then B).
    """
    require_numpy()
    if table_a.dim != table_b.dim:
        raise ValueError(f"dimension mismatch: {table_a.dim} vs {table_b.dim}")
    n_a, n_b = len(table_a), len(table_b)
    if n_a == 0 or n_b == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    rows_per_block = max(1, chunk // max(1, n_b))
    out_a, out_b = [], []
    b_lo = table_b.lo[None, :, :]
    b_hi = table_b.hi[None, :, :]
    for start in range(0, n_a, rows_per_block):
        stop = min(n_a, start + rows_per_block)
        block = (
            (table_a.lo[start:stop, None, :] <= b_hi)
            & (b_lo <= table_a.hi[start:stop, None, :])
        ).all(axis=2)
        hit_a, hit_b = np.nonzero(block)
        out_a.append(hit_a.astype(np.int64) + start)
        out_b.append(hit_b.astype(np.int64))
    return np.concatenate(out_a), np.concatenate(out_b)


def sweep_pairs(
    table_a: CoordinateTable,
    table_b: CoordinateTable,
    chunk: int = DEFAULT_CANDIDATE_CHUNK,
):
    """Vectorised forward plane-sweep along dimension 0.

    Returns ``(index_a, index_b, candidates)`` where the index arrays
    list every intersecting pair exactly once and ``candidates`` is the
    number of pair tests performed (the plane-sweep comparison count:
    pairs whose dimension-0 intervals overlap).

    The classic forward scan splits pairs by which box starts first:

    - pass 1 anchors on A: candidates ``b`` with
      ``a.lo0 <= b.lo0 <= a.hi0``;
    - pass 2 anchors on B: candidates ``a`` with
      ``b.lo0 < a.lo0 <= b.hi0`` (strict on the left so ties are owned
      by pass 1).

    Both passes locate their candidate windows with two ``searchsorted``
    calls against the lo-sorted opposite table and materialise them with
    :func:`concat_ranges` — no per-object Python loop.
    """
    require_numpy()
    if table_a.dim != table_b.dim:
        raise ValueError(f"dimension mismatch: {table_a.dim} vs {table_b.dim}")
    empty = np.empty(0, dtype=np.int64)
    if len(table_a) == 0 or len(table_b) == 0:
        return empty, empty, 0

    out_a: list = []
    out_b: list = []
    candidates = 0

    order_b = np.argsort(table_b.lo[:, 0], kind="stable")
    order_a = np.argsort(table_a.lo[:, 0], kind="stable")

    candidates += _sweep_pass(
        table_a, table_b, order_b, out_a, out_b, anchor_is_a=True, chunk=chunk
    )
    candidates += _sweep_pass(
        table_b, table_a, order_a, out_b, out_a, anchor_is_a=False, chunk=chunk
    )

    if not out_a:
        return empty, empty, candidates
    return np.concatenate(out_a), np.concatenate(out_b), candidates


def _sweep_pass(
    anchors: CoordinateTable,
    others: CoordinateTable,
    order_other,
    out_anchor: list,
    out_other: list,
    anchor_is_a: bool,
    chunk: int,
) -> int:
    """One direction of the forward scan; appends hits, returns tests.

    ``anchor_is_a`` selects the tie rule: anchoring on A takes candidates
    with ``b.lo0 >= a.lo0`` (``side='left'``), anchoring on B takes the
    strictly-later A starts (``side='right'``), so every pair is generated
    by exactly one pass.
    """
    other_lo0 = others.lo[order_other, 0]
    side = "left" if anchor_is_a else "right"
    starts = np.searchsorted(other_lo0, anchors.lo[:, 0], side=side)
    ends = np.searchsorted(other_lo0, anchors.hi[:, 0], side="right")
    counts = np.maximum(ends - starts, 0)
    total = 0
    for lo_i, hi_i in chunk_boundaries(counts, chunk):
        anchor_idx, window_pos = concat_ranges(starts[lo_i:hi_i], counts[lo_i:hi_i])
        if len(anchor_idx) == 0:
            continue
        anchor_idx += lo_i
        other_idx = order_other[window_pos]
        total += len(anchor_idx)
        # Dimension 0 already overlaps by construction; test the rest.
        dim = anchors.dim
        keep = np.ones(len(anchor_idx), dtype=bool)
        for d in range(1, dim):
            keep &= anchors.lo[anchor_idx, d] <= others.hi[other_idx, d]
            keep &= anchors.hi[anchor_idx, d] >= others.lo[other_idx, d]
        out_anchor.append(anchor_idx[keep])
        out_other.append(other_idx[keep])
    return total
