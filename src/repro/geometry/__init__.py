"""Geometric primitives: MBRs, spatial objects and exact distances."""

from repro.geometry.distance import (
    Box,
    Cylinder,
    point_distance,
    point_segment_distance,
    segment_distance,
)
from repro.geometry.mbr import MBR, mbr_of_points, total_mbr
from repro.geometry.objects import (
    SpatialObject,
    box_object,
    objects_from_mbrs,
    point_object,
)

__all__ = [
    "MBR",
    "mbr_of_points",
    "total_mbr",
    "SpatialObject",
    "box_object",
    "point_object",
    "objects_from_mbrs",
    "Box",
    "Cylinder",
    "point_distance",
    "point_segment_distance",
    "segment_distance",
]
