"""Geometric primitives: MBRs, spatial objects, shapes and exact distances."""

from repro.geometry.distance import (
    Box,
    Cylinder,
    point_distance,
    point_segment_distance,
    segment_distance,
)
from repro.geometry.mbr import MBR, mbr_of_points, total_mbr
from repro.geometry.objects import (
    SpatialObject,
    box_object,
    objects_from_mbrs,
    point_object,
)
from repro.geometry.shapes import (
    BoxShape,
    LineString,
    Point,
    Polygon,
    Shape,
    shape_distance,
    shape_from_payload,
    shape_to_payload,
)

__all__ = [
    "MBR",
    "mbr_of_points",
    "total_mbr",
    "SpatialObject",
    "box_object",
    "point_object",
    "objects_from_mbrs",
    "Box",
    "Cylinder",
    "point_distance",
    "point_segment_distance",
    "segment_distance",
    "Shape",
    "Point",
    "LineString",
    "Polygon",
    "BoxShape",
    "shape_distance",
    "shape_from_payload",
    "shape_to_payload",
]
