"""Exact distance predicates for the refinement phase.

The paper's filtering phase approximates every object by its MBR; the
refinement phase then evaluates the exact shapes.  The neuroscience use
case models neuron branches as cylinders, so the key primitive here is the
minimum distance between two line segments (a cylinder pair is within
distance ε iff their axes are within ``ε + r1 + r2``).

All functions operate on plain coordinate tuples so they work in 2D and 3D
alike.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.geometry.mbr import MBR

__all__ = [
    "point_distance",
    "point_segment_distance",
    "segment_distance",
    "Cylinder",
    "Box",
]

Point = Sequence[float]


def _sub(a: Point, b: Point) -> tuple[float, ...]:
    return tuple(x - y for x, y in zip(a, b))


def _dot(a: Sequence[float], b: Sequence[float]) -> float:
    return sum(x * y for x, y in zip(a, b))


def _add_scaled(a: Point, direction: Sequence[float], t: float) -> tuple[float, ...]:
    return tuple(x + t * d for x, d in zip(a, direction))


def point_distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


def point_segment_distance(point: Point, seg_a: Point, seg_b: Point) -> float:
    """Euclidean distance from ``point`` to the segment ``seg_a``-``seg_b``."""
    direction = _sub(seg_b, seg_a)
    length_sq = _dot(direction, direction)
    if length_sq == 0.0:
        return point_distance(point, seg_a)
    t = _dot(_sub(point, seg_a), direction) / length_sq
    t = max(0.0, min(1.0, t))
    closest = _add_scaled(seg_a, direction, t)
    return point_distance(point, closest)


def segment_distance(p1: Point, q1: Point, p2: Point, q2: Point) -> float:
    """Minimum Euclidean distance between segments ``p1q1`` and ``p2q2``.

    Classic clamped closest-point computation (Ericson, *Real-Time
    Collision Detection*, §5.1.9) that is robust for parallel and
    degenerate (point-like) segments.
    """
    d1 = _sub(q1, p1)
    d2 = _sub(q2, p2)
    r = _sub(p1, p2)
    a = _dot(d1, d1)
    e = _dot(d2, d2)
    f = _dot(d2, r)

    if a == 0.0 and e == 0.0:
        return point_distance(p1, p2)
    if a == 0.0:
        return point_segment_distance(p1, p2, q2)
    if e == 0.0:
        return point_segment_distance(p2, p1, q1)

    c = _dot(d1, r)
    b = _dot(d1, d2)
    denom = a * e - b * b

    if denom != 0.0:
        s = max(0.0, min(1.0, (b * f - c * e) / denom))
    else:  # parallel segments: pick any s, then clamp symmetric t below
        s = 0.0
    t = (b * s + f) / e

    # Clamp t, then recompute s for the clamped t and clamp again.
    if t < 0.0:
        t = 0.0
        s = max(0.0, min(1.0, -c / a))
    elif t > 1.0:
        t = 1.0
        s = max(0.0, min(1.0, (b - c) / a))

    closest1 = _add_scaled(p1, d1, s)
    closest2 = _add_scaled(p2, d2, t)
    return point_distance(closest1, closest2)


class Cylinder:
    """A cylinder with spherical caps (a capsule) modelling a neuron segment.

    The neuroscience model in the paper represents axon and dendrite
    branches as chains of short cylinders.  A capsule is the standard
    robust approximation: distance between two capsules is the distance
    between their axes minus the radii.
    """

    __slots__ = ("start", "end", "radius")

    def __init__(self, start: Point, end: Point, radius: float) -> None:
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        self.start = tuple(float(c) for c in start)
        self.end = tuple(float(c) for c in end)
        self.radius = float(radius)

    def __repr__(self) -> str:
        return f"Cylinder({self.start}, {self.end}, r={self.radius})"

    def mbr(self) -> MBR:
        """Tight axis-aligned bounding box (accounting for the radius)."""
        lo = tuple(min(s, e) - self.radius for s, e in zip(self.start, self.end))
        hi = tuple(max(s, e) + self.radius for s, e in zip(self.start, self.end))
        return MBR(lo, hi)

    def min_distance(self, other: "Cylinder") -> float:
        """Exact surface-to-surface distance (zero when overlapping)."""
        axis_distance = segment_distance(self.start, self.end, other.start, other.end)
        return max(0.0, axis_distance - self.radius - other.radius)


class Box:
    """An exact box geometry (its refinement distance equals the MBR's)."""

    __slots__ = ("_mbr",)

    def __init__(self, lo: Point, hi: Point) -> None:
        self._mbr = MBR(lo, hi)

    def __repr__(self) -> str:
        return f"Box({self._mbr.lo}, {self._mbr.hi})"

    def mbr(self) -> MBR:
        """The box itself."""
        return self._mbr

    def min_distance(self, other: "Box") -> float:
        """Euclidean distance between the two boxes."""
        return self._mbr.min_distance(other._mbr)
