"""True multiprocess parallel join over the chunked decomposition.

Where :class:`~repro.parallel.chunked.ChunkedSpatialJoin` *simulates* the
paper's §3 BlueGene/P deployment by joining the contiguous regions one
after another, :class:`ParallelChunkedJoin` actually ships them to a
``multiprocessing`` worker pool:

1. **decompose** — the universe is cut by the shared
   :class:`~repro.parallel.decompose.Decomposition` (slabs or tiles) and
   each dataset is published **once** as a
   ``multiprocessing.shared_memory`` block
   (:meth:`~repro.geometry.columnar.CoordinateTable.to_shared`); each
   region then ships only its int64 member-row indices, and workers
   attach zero-copy views
   (:meth:`~repro.geometry.columnar.CoordinateTable.shm_slice`) — no
   coordinate buffer is ever pickled on this path
   (``stats.extra["pickled_coord_bytes"] == 0``).  When shared memory
   (or numpy) is unavailable — or ``handoff="pickle"`` is forced — the
   engine falls back to the previous per-region pickled float64
   coordinate blocks plus int64 id vectors, and without numpy it
   degrades further to compact ``(oid, lo, hi)`` tuples;
2. **worker_join** — each worker rebuilds its region's objects, runs a
   fresh algorithm instance from a picklable
   :class:`~repro.joins.registry.AlgorithmSpec`, and applies the shared
   reference-point ownership rule locally, so only owned pairs travel
   back; with ``dedup="partition"`` the members instead arrive
   pre-classified under the two-layer corner-ownership scheme
   (:mod:`repro.partition.classes`) and the worker runs the allowed
   class-pair mini-joins, whose union is duplicate-free by construction
   — no in-worker dedup pass at all;
3. **merge** — results are combined in deterministic region order:
   counters sum, ``memory_bytes`` takes the per-worker maximum, and the
   three phase wall-clocks land in ``stats.extra``: ``decompose_seconds``,
   ``worker_join_seconds`` (the wall-clock of the whole fan-out — the
   pool's critical path including IPC) and ``merge_seconds``, next to
   the raw in-worker ``per_chunk_seconds`` list and its
   ``worker_seconds_sum`` (the sequential-equivalent work).

Pair sets and summed counters are bit-identical to the sequential
engines for the same ``(kind, n_chunks)`` — and identical between the
shared-memory and pickle hand-offs; the parity suite
(``tests/test_parallel_parity.py``) pins both for every registered
algorithm.

With ``geometry="exact"`` the engine runs the filter-refine split
in-worker: vertex data travels next to the coordinates (a second
shared-memory :class:`~repro.geometry.vertex_table.VertexTable` block
sliced by the same row indices on the shm path, sliced vertex tables or
shape payloads on the pickle paths), and each worker refines its
*owned* candidate pairs locally before they travel back.  Refining
after the ownership test keeps the merge duplicate-free and makes the
summed refine counters count every global candidate exactly once.

Worker pools (:class:`concurrent.futures.ProcessPoolExecutor`) are
cached per ``(start_method, workers)`` and reused across joins (fork
start-up is cheap, but spawn is not); call :func:`shutdown_pools` to
release them explicitly — an ``atexit`` hook does so at interpreter
shutdown, so repeated engine use never leaks semaphores or worker
processes.  A worker killed mid-join surfaces as
:class:`WorkerCrashError` (the executor raises ``BrokenProcessPool``
instead of hanging like ``multiprocessing.Pool.map``), the broken
executor is dropped from the cache, and the parent unlinks its shared
blocks in ``finally`` so ``/dev/shm`` is never stranded.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.geometry.columnar import (
    HAVE_NUMPY,
    HAVE_SHM,
    CoordinateTable,
    axes_overlap_mask,
)
from repro.geometry.mbr import MBR, total_mbr
from repro.geometry.objects import SpatialObject
from repro.joins.base import Pair, SpatialJoinAlgorithm
from repro.joins.registry import AlgorithmSpec
from repro.parallel.decompose import (
    DECOMPOSE_KINDS,
    Decomposition,
    adaptive_chunk_count,
)
from repro.stats.counters import JoinStatistics

__all__ = ["ParallelChunkedJoin", "WorkerCrashError", "shutdown_pools"]


class WorkerCrashError(RuntimeError):
    """A worker process died mid-join (killed, OOM, hard crash).

    Raised in place of the executor's ``BrokenProcessPool`` so callers
    get the engine's cleanup guarantees spelled out: the shared-memory
    blocks were unlinked, the broken executor was evicted from the
    cache (the next join builds a fresh one), and ``stats`` carries the
    phase breakdown collected up to the crash
    (``stats.extra["worker_crashed"]`` is set).
    """

    def __init__(self, message: str, stats: JoinStatistics) -> None:
        super().__init__(message)
        self.stats = stats


# -- pool management ----------------------------------------------------
_EXECUTORS: dict[tuple[str, int], ProcessPoolExecutor] = {}


def _default_start_method() -> str:
    """Prefer fork (cheap, inherits the interpreter) where available."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else multiprocessing.get_start_method()


def _get_executor(start_method: str, workers: int) -> ProcessPoolExecutor:
    key = (start_method, workers)
    executor = _EXECUTORS.get(key)
    if executor is None:
        if not _EXECUTORS:
            # Registered on first use, not at import: merely importing
            # the engine must stay side-effect free.
            atexit.register(shutdown_pools)
        executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(start_method),
        )
        _EXECUTORS[key] = executor
    return executor


def _drop_executor(start_method: str, workers: int) -> None:
    """Evict (and best-effort shut down) a broken executor."""
    executor = _EXECUTORS.pop((start_method, workers), None)
    if executor is not None:
        executor.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut down and forget every cached worker pool."""
    while _EXECUTORS:
        _, executor = _EXECUTORS.popitem()
        executor.shutdown(wait=True, cancel_futures=True)


# -- chunk slicing ------------------------------------------------------
class _ColumnarSlicer:
    """Vectorised region membership over one dataset's coordinate table.

    Builds the table once and answers each region with a broadcast
    interval test — bit-identical to :meth:`Region.touches` (closed
    boxes, float64 comparisons) but without the per-object Python loop.
    Chunk payloads come out as contiguous ``("table", coords, ids,
    class_masks)`` buffers ready for IPC.

    With ``dedup="partition"`` membership switches to the two-layer
    index-range rule (:meth:`Decomposition.covers`) and every member is
    shipped with its class mask, both resolved on the decomposition's
    shared-edge ruler via one ``searchsorted`` per partitioned axis —
    bit-identical to :meth:`Decomposition.owner_cell`'s ``bisect_right``.

    With ``handoff="shm"`` the whole table is published once as a
    shared-memory block in the constructor; every chunk then carries the
    picklable :class:`~repro.geometry.columnar.SharedTableHandle` plus
    the member row indices instead of sliced coordinate buffers, and
    :meth:`close` unlinks the block (the engine calls it in
    ``finally``).
    """

    def __init__(
        self,
        objects: list[SpatialObject],
        decomposition: Decomposition,
        dedup: str,
        handoff: str = "pickle",
        exact: bool = False,
    ) -> None:
        self.table = CoordinateTable.from_objects(objects)
        self.dedup = dedup
        self.handoff = handoff
        self.block = self.table.to_shared() if handoff == "shm" else None
        self.vtable = None
        self.vblock = None
        if exact:
            # Exact mode ships vertex data next to the coordinates: the
            # same member rows slice both tables, so workers re-attach
            # shapes positionally.
            from repro.geometry.vertex_table import VertexTable

            self.vtable = VertexTable.from_objects(objects)
            if handoff == "shm":
                self.vblock = self.vtable.to_shared()
        if dedup != "partition":
            return
        import numpy as np

        table, dim = self.table, self.table.dim
        self._owner_lo, self._owner_hi = [], []
        for coordinate, axis in enumerate(decomposition.axes):
            edges = np.asarray(decomposition.edges[coordinate], dtype=np.float64)
            last = len(edges) - 1
            for source, out in (
                (table.coords[:, axis], self._owner_lo),
                (table.coords[:, axis + dim], self._owner_hi),
            ):
                owner = np.searchsorted(edges, source, side="right") - 1
                out.append(np.clip(owner, 0, last))

    def close(self) -> None:
        """Unlink the published shared blocks (idempotent)."""
        if self.block is not None:
            self.block.close(unlink=True)
        if self.vblock is not None:
            self.vblock.close(unlink=True)

    def _payload(self, member, classes):
        import numpy as np

        if self.block is not None:
            indices = np.flatnonzero(member).astype(np.int64, copy=False)
            if self.vblock is not None:
                return (
                    "shm",
                    self.block.handle,
                    indices,
                    classes,
                    self.vblock.handle,
                )
            return ("shm", self.block.handle, indices, classes)
        table = self.table
        if self.vtable is not None:
            vertex_slice = self.vtable.take(np.flatnonzero(member))
            return (
                "table",
                table.coords[member],
                table.ids[member],
                classes,
                vertex_slice,
            )
        return ("table", table.coords[member], table.ids[member], classes)

    def chunk(self, region):
        table = self.table
        if self.dedup != "partition":
            mask = axes_overlap_mask(table, region.axes, region.lows, region.highs)
            if not mask.any():
                return None
            return self._payload(mask, None)
        import numpy as np

        member = np.ones(len(table), dtype=bool)
        for coordinate, cell in enumerate(region.cells):
            member &= self._owner_lo[coordinate] <= cell
            member &= self._owner_hi[coordinate] >= cell
        if not member.any():
            return None
        classes = np.zeros(int(member.sum()), dtype=np.int64)
        for coordinate, cell in enumerate(region.cells):
            classes += (self._owner_lo[coordinate][member] == cell).astype(
                np.int64
            ) << coordinate
        return self._payload(member, classes)


class _ObjectSlicer:
    """Pure-Python fallback used when numpy is unavailable."""

    def __init__(
        self,
        objects: list[SpatialObject],
        decomposition: Decomposition,
        dedup: str,
        handoff: str = "pickle",
        exact: bool = False,
    ) -> None:
        self.objects = objects
        self.decomposition = decomposition
        self.dedup = dedup
        self.exact = exact

    def close(self) -> None:
        """Nothing published, nothing to release."""

    def _payload(self, members, classes):
        rows = [(o.oid, o.mbr.lo, o.mbr.hi) for o in members]
        if not self.exact:
            return ("objects", rows, classes)
        from repro.geometry.shapes import shape_to_payload

        return ("objects", rows, classes, [shape_to_payload(o.geometry) for o in members])

    def chunk(self, region):
        if self.dedup != "partition":
            members = [o for o in self.objects if region.touches(o.mbr)]
            if not members:
                return None
            return self._payload(members, None)
        decomposition = self.decomposition
        members = [o for o in self.objects if decomposition.covers(region, o.mbr)]
        if not members:
            return None
        classes = [decomposition.class_mask(region, o.mbr) for o in members]
        return self._payload(members, classes)


def _make_slicer(
    objects: list[SpatialObject],
    decomposition,
    dedup: str,
    handoff: str,
    exact: bool = False,
):
    slicer = _ColumnarSlicer if HAVE_NUMPY else _ObjectSlicer
    return slicer(objects, decomposition, dedup, handoff, exact)


#: Valid values of the ``handoff`` selector.
HANDOFF_MODES = ("auto", "shm", "pickle")

#: Valid values of the ``geometry`` selector (mirrors
#: :data:`repro.bench.config.GEOMETRY_MODES`, which the engine must not
#: import — the bench layer sits above the engines).
GEOMETRY_MODES = ("mbr", "exact")


def _resolve_handoff(handoff: str) -> str:
    """Resolve ``"auto"`` against what this interpreter can actually do."""
    if handoff == "pickle":
        return "pickle"
    usable = HAVE_NUMPY and HAVE_SHM
    if handoff == "shm":
        if not usable:
            raise RuntimeError(
                "handoff='shm' requires numpy and multiprocessing."
                "shared_memory; use handoff='auto' to fall back"
            )
        return "shm"
    return "shm" if usable else "pickle"


# -- worker-side code ---------------------------------------------------


def _with_shapes(objects, vertex_table):
    """Re-attach exact shapes to rebuilt objects, by table position."""
    return [
        SpatialObject(obj.oid, obj.mbr, vertex_table.shape_at(i))
        for i, obj in enumerate(objects)
    ]


def _unpack_chunk(payload):
    """Rebuild the region's objects (and class masks) inside the worker.

    Exact-mode payloads carry one extra element of vertex data (a shared
    vertex-table handle, a sliced :class:`VertexTable`, or shape
    payloads), re-attached here so the worker can refine locally.
    """
    tag = payload[0]
    if tag == "shm":
        # Attach the parent's shared block, copy out just this region's
        # rows, detach.  The worker keeps no reference to the segment.
        if len(payload) == 5:
            from repro.geometry.vertex_table import VertexTable

            _tag, handle, indices, classes, vertex_handle = payload
            objects = _with_shapes(
                CoordinateTable.shm_slice(handle, indices).to_objects(),
                VertexTable.shm_slice(vertex_handle, indices),
            )
            return objects, None if classes is None else classes.tolist()
        _tag, handle, indices, classes = payload
        objects = CoordinateTable.shm_slice(handle, indices).to_objects()
        return objects, None if classes is None else classes.tolist()
    if tag == "table":
        if len(payload) == 5:
            _tag, coords, ids, classes, vertex_slice = payload
            objects = _with_shapes(
                CoordinateTable(coords, ids).to_objects(), vertex_slice
            )
            return objects, None if classes is None else classes.tolist()
        _tag, coords, ids, classes = payload
        objects = CoordinateTable(coords, ids).to_objects()
        return objects, None if classes is None else classes.tolist()
    if len(payload) == 4:
        from repro.geometry.shapes import shape_from_payload

        _tag, rows, classes, shapes = payload
        objects = [
            SpatialObject(oid, MBR(lo, hi), shape_from_payload(shape, oid=oid))
            for (oid, lo, hi), shape in zip(rows, shapes)
        ]
        return objects, classes
    _tag, rows, classes = payload
    return [SpatialObject(oid, MBR(lo, hi)) for oid, lo, hi in rows], classes


#: Per-worker spill counters surfaced in the parent's ``stats.extra``
#: when the engine runs under a byte budget (``stats.merge`` sums the
#: numeric counters but leaves ``extra`` alone, so these fold by hand).
_WORKER_SPILL_KEYS = (
    "spilled_partitions",
    "spill_bytes_written",
    "spill_bytes_read",
    "unspills",
)


def _fold_spill_counters(stats: JoinStatistics, chunk_stats: JoinStatistics) -> None:
    """Sum a chunk's budgeted-join counters into aggregated stats."""
    for key in _WORKER_SPILL_KEYS:
        value = chunk_stats.extra.get(key)
        if value:
            stats.extra[key] = stats.extra.get(key, 0) + int(value)


def _require_shapes(objects, side: str) -> None:
    """Exact mode demands explicit shapes on every object.

    A missing shape would silently fall back to a box over ``obj.mbr``
    — which on this path is the *inflated* build MBR, not the original
    extent — so the engine refuses rather than refining wrong.
    """
    from repro.geometry.shapes import Shape

    for obj in objects:
        if not isinstance(obj.geometry, Shape):
            raise ValueError(
                f"geometry='exact' requires every {side}-side object to "
                f"carry an exact shape attached before epsilon inflation; "
                f"object #{obj.oid} has none"
            )


def _refine_chunk(pairs, objects_a, objects_b, refine, stats):
    """Refine this worker's owned pairs against the chunk's exact shapes.

    Runs *after* the ownership test, so the owned sets partition the
    global candidate set and the summed refine counters count every
    candidate exactly once across workers.
    """
    from repro.refine import RefinePipeline

    epsilon, backend = refine
    return RefinePipeline(epsilon, backend=backend).refine(
        pairs, objects_a, objects_b, stats=stats
    )


def _run_chunk(task):
    """Worker entry point: join one region, free of cross-region dupes.

    Returns ``(region_index, owned_pairs, duplicates, stats, seconds)``.
    With ``dedup="reference"`` the region's full join runs first and
    every result pair is then ownership-tested (the in-worker dedup
    pass); with ``dedup="partition"`` the members arrive pre-classified
    and the allowed class-pair mini-joins are executed instead — owned
    by construction, no per-pair test.  ``refine`` (``(epsilon,
    backend)`` or ``None``) runs the exact-geometry refine stage over
    the owned pairs before they travel back.  Must stay a module-level
    function so it pickles under every start method.
    """
    (
        spec,
        decomposition,
        region_index,
        chunk_a,
        chunk_b,
        dedup,
        max_bytes,
        refine,
    ) = task
    start = time.perf_counter()
    objects_a, classes_a = _unpack_chunk(chunk_a)
    objects_b, classes_b = _unpack_chunk(chunk_b)

    def fresh() -> SpatialJoinAlgorithm:
        # Per-worker budget: each region join runs under its share of
        # the byte budget, spilling over-budget sub-partitions locally.
        if max_bytes is None:
            return spec.make()
        from repro.memory import BudgetedSpatialJoin

        return BudgetedSpatialJoin(spec.make, max_bytes)

    if dedup == "partition":
        from repro.partition.classes import group_by_mask, mini_join_masks

        groups_a = group_by_mask(objects_a, classes_a)
        groups_b = group_by_mask(objects_b, classes_b)
        stats = JoinStatistics()
        pairs: list[Pair] = []
        for mask_a, mask_b in mini_join_masks(len(decomposition.axes)):
            mini_a = groups_a.get(mask_a)
            mini_b = groups_b.get(mask_b)
            if not mini_a or not mini_b:
                continue
            result = fresh().join(mini_a, mini_b)
            stats.merge(result.stats)
            _fold_spill_counters(stats, result.stats)
            pairs.extend(result.pairs)
        if refine is not None:
            pairs = _refine_chunk(pairs, objects_a, objects_b, refine, stats)
        return region_index, pairs, 0, stats, time.perf_counter() - start

    result = fresh().join(objects_a, objects_b)
    region = decomposition.regions[region_index]
    mbr_a = {o.oid: o.mbr for o in objects_a}
    mbr_b = {o.oid: o.mbr for o in objects_b}
    owned: list[Pair] = []
    duplicates = 0
    result.stats.dedup_checks += len(result.pairs)
    for oid_a, oid_b in result.pairs:
        if decomposition.owns(region, mbr_a[oid_a], mbr_b[oid_b]):
            owned.append((oid_a, oid_b))
        else:
            duplicates += 1
    if refine is not None:
        owned = _refine_chunk(owned, objects_a, objects_b, refine, result.stats)
    return region_index, owned, duplicates, result.stats, time.perf_counter() - start


# -- the engine ---------------------------------------------------------
class ParallelChunkedJoin(SpatialJoinAlgorithm):
    """Multiprocess execution of any registered join over slabs or tiles.

    Parameters
    ----------
    algorithm:
        An :class:`~repro.joins.registry.AlgorithmSpec`, a registry name
        (``overrides`` are then forwarded to the factory), or a picklable
        zero-argument factory (e.g. a top-level class; closures are
        rejected eagerly).
    workers:
        Worker-process count (>= 1).
    n_chunks:
        Region count; ``None`` picks it adaptively from the object count
        and worker count (:func:`~repro.parallel.decompose.adaptive_chunk_count`).
    kind:
        ``"slabs"`` (1-D, the paper's layout) or ``"tiles"`` (2-D grid).
    axis:
        Slab axis (or first tile axis).
    dedup:
        How cross-region duplicates are prevented.  ``"reference"``
        (default): every region receives all touching objects, workers
        join them and then ownership-test each result pair against the
        reference-point rule.  ``"partition"``: members are classified
        by the two-layer corner-ownership scheme at decompose time and
        workers run only the allowed class-pair mini-joins — the merged
        result is duplicate-free by construction and the in-worker
        dedup pass is skipped entirely (``stats.dedup_checks`` gains
        nothing from the engine; see :mod:`repro.partition.classes`).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``.
    handoff:
        How coordinate data reaches the workers.  ``"auto"`` (default):
        one shared-memory block per side with per-region index views
        when numpy and ``multiprocessing.shared_memory`` are available,
        else the pickle path.  ``"shm"`` forces shared memory (raises
        when unavailable); ``"pickle"`` forces the per-region pickled
        buffers.  Pair sets and counters are identical either way.
    max_bytes:
        Optional total byte budget; each worker joins its regions under
        an equal share (``max_bytes // workers``, at least 1) through
        the spilling :class:`~repro.memory.budgeted.BudgetedSpatialJoin`,
        and the per-worker spill counters are folded into
        ``stats.extra``.  Pair parity with the unbudgeted engine is
        exact (the budgeted join is complete and duplicate-free for its
        inputs).
    geometry:
        ``"mbr"`` (default) returns MBR candidate pairs exactly as
        before; ``"exact"`` ships vertex data alongside the coordinates
        and refines each worker's owned pairs against the objects'
        exact shapes.  Exact mode requires every object to carry a
        :class:`~repro.geometry.shapes.Shape` attached *before* any ε
        inflation (the harness's ``_shaped`` rule) — refinement reads
        shapes only, so the inflated build MBRs never leak into the
        exact predicate.
    refine_epsilon:
        The ε of the exact distance predicate (required with
        ``geometry="exact"``, rejected otherwise).  Kept separate from
        the builder's inflation because the engine never inflates — it
        receives the already-inflated build side.
    """

    name = "Parallel"

    #: Valid values of the ``dedup`` selector.
    DEDUP_MODES = ("reference", "partition")

    def __init__(
        self,
        algorithm: AlgorithmSpec | str,
        *,
        workers: int = 2,
        n_chunks: int | None = None,
        kind: str = "slabs",
        axis: int = 0,
        dedup: str = "reference",
        start_method: str | None = None,
        handoff: str = "auto",
        max_bytes: int | None = None,
        geometry: str = "mbr",
        refine_epsilon: float | None = None,
        **overrides,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_bytes is not None and (
            isinstance(max_bytes, bool)
            or not isinstance(max_bytes, int)
            or max_bytes <= 0
        ):
            raise ValueError(
                f"max_bytes must be a positive integer byte count, "
                f"got {max_bytes!r}"
            )
        if dedup not in self.DEDUP_MODES:
            raise ValueError(
                f"unknown dedup mode {dedup!r}; expected one of "
                f"{', '.join(self.DEDUP_MODES)}"
            )
        if handoff not in HANDOFF_MODES:
            raise ValueError(
                f"unknown handoff mode {handoff!r}; expected one of "
                f"{', '.join(HANDOFF_MODES)}"
            )
        if n_chunks is not None and n_chunks < 1:
            raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
        if axis < 0:
            raise ValueError(f"axis must be >= 0, got {axis}")
        if kind not in DECOMPOSE_KINDS:
            raise ValueError(
                f"unknown decomposition kind {kind!r}; expected one of "
                f"{', '.join(DECOMPOSE_KINDS)}"
            )
        if geometry not in GEOMETRY_MODES:
            raise ValueError(
                f"unknown geometry mode {geometry!r}; expected one of "
                f"{', '.join(GEOMETRY_MODES)}"
            )
        if geometry == "exact":
            if refine_epsilon is None:
                raise ValueError("geometry='exact' requires refine_epsilon")
            refine_epsilon = float(refine_epsilon)
            if not math.isfinite(refine_epsilon) or refine_epsilon < 0:
                raise ValueError(
                    f"refine_epsilon must be finite and non-negative, "
                    f"got {refine_epsilon!r}"
                )
        elif refine_epsilon is not None:
            raise ValueError(
                "refine_epsilon is only meaningful with geometry='exact'"
            )
        if isinstance(algorithm, str):
            algorithm = AlgorithmSpec.create(algorithm, **overrides)
        elif overrides:
            raise TypeError("overrides are only accepted with a registry name")
        if isinstance(algorithm, AlgorithmSpec):
            base_name = algorithm.name
        else:
            try:
                pickle.dumps(algorithm)
            except Exception as exc:
                raise TypeError(
                    "the base algorithm factory must be picklable to cross "
                    "process boundaries; pass an AlgorithmSpec or a registry "
                    f"name instead ({exc})"
                ) from exc
            base_name = getattr(algorithm, "__name__", repr(algorithm))
        self.spec = algorithm
        self.workers = workers
        self.n_chunks = n_chunks
        self.kind = kind
        self.axis = axis
        self.dedup = dedup
        self.handoff = handoff
        self.max_bytes = max_bytes
        self.geometry = geometry
        self.refine_epsilon = refine_epsilon
        self.start_method = start_method or _default_start_method()
        chunk_label = "auto" if n_chunks is None else str(n_chunks)
        suffix = "" if kind == "slabs" else f":{kind}"
        if dedup != "reference":
            suffix += f":{dedup}"
        self.name = f"Parallel[{base_name}x{chunk_label}{suffix}@{workers}w]"

    def describe(self) -> dict:
        info = {
            "workers": self.workers,
            "n_chunks": self.n_chunks,
            "decompose": self.kind,
            "axis": self.axis,
            "dedup": self.dedup,
            "handoff": self.handoff,
            "max_bytes": self.max_bytes,
            "start_method": self.start_method,
        }
        if self.geometry != "mbr":
            # Only exact runs grow keys, keeping mbr-mode descriptions
            # (and the records built from them) byte-identical.
            info["geometry"] = self.geometry
            info["refine_epsilon"] = self.refine_epsilon
        return info

    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        exact = self.geometry == "exact"
        if exact:
            _require_shapes(objects_a, "build")
            _require_shapes(objects_b, "probe")
        n_chunks = self.n_chunks or adaptive_chunk_count(
            len(objects_a) + len(objects_b), self.workers
        )
        handoff = _resolve_handoff(self.handoff)
        stats.extra["workers"] = self.workers
        stats.extra["n_chunks"] = n_chunks
        stats.extra["decompose"] = self.kind
        stats.extra["dedup"] = self.dedup
        stats.extra["handoff"] = handoff
        worker_max_bytes = (
            None if self.max_bytes is None else max(1, self.max_bytes // self.workers)
        )
        if worker_max_bytes is not None:
            stats.extra["worker_max_bytes"] = worker_max_bytes
        stats.extra["pickled_coord_bytes"] = 0
        stats.extra["decompose_seconds"] = 0.0
        stats.extra["worker_join_seconds"] = 0.0
        stats.extra["merge_seconds"] = 0.0
        if not objects_a or not objects_b:
            return []

        # Phase 1: decompose — cut the universe, slice member views.
        start = time.perf_counter()
        universe = total_mbr(o.mbr for o in objects_a).union(
            total_mbr(o.mbr for o in objects_b)
        )
        decomposition = Decomposition.build(
            universe, kind=self.kind, n_chunks=n_chunks, axis=self.axis
        )
        spec = self._wire_spec()
        refine = None
        if exact:
            backend = None
            if isinstance(self.spec, AlgorithmSpec):
                backend = dict(self.spec.overrides).get("backend")
            refine = (self.refine_epsilon, backend or "auto")
        slicer_a = _make_slicer(objects_a, decomposition, self.dedup, handoff, exact)
        try:
            slicer_b = _make_slicer(
                objects_b, decomposition, self.dedup, handoff, exact
            )
        except BaseException:
            slicer_a.close()
            raise
        try:
            pickled_coord_bytes = 0
            tasks = []
            for region in decomposition.regions:
                chunk_a = slicer_a.chunk(region)
                if chunk_a is None:
                    continue
                chunk_b = slicer_b.chunk(region)
                if chunk_b is None:
                    continue
                for chunk in (chunk_a, chunk_b):
                    if chunk[0] == "table":
                        pickled_coord_bytes += chunk[1].nbytes + chunk[2].nbytes
                tasks.append(
                    (
                        spec,
                        decomposition,
                        region.index,
                        chunk_a,
                        chunk_b,
                        self.dedup,
                        worker_max_bytes,
                        refine,
                    )
                )
            # Instrumented so tests can assert the shm hot path never
            # pickles a coordinate buffer (indices and ids of the pickle
            # fallback are the only numeric payloads).
            stats.extra["pickled_coord_bytes"] = pickled_coord_bytes
            stats.extra["decompose_seconds"] = time.perf_counter() - start
            stats.extra["decompose"] = decomposition.kind
            if not tasks:
                return []

            # Phase 2: worker_join — fan the regions out over the pool.
            start = time.perf_counter()
            executor = _get_executor(self.start_method, self.workers)
            try:
                outcomes = list(executor.map(_run_chunk, tasks))
            except BrokenProcessPool as exc:
                # A dead worker poisons the whole executor: evict it so
                # the next join starts clean, and surface the crash with
                # the stats collected so far attached.
                _drop_executor(self.start_method, self.workers)
                stats.extra["worker_crashed"] = True
                stats.extra["worker_join_seconds"] = time.perf_counter() - start
                raise WorkerCrashError(
                    f"a worker process died while joining {len(tasks)} "
                    f"regions ({self.name}); shared-memory blocks were "
                    "unlinked and the worker pool was discarded",
                    stats,
                ) from exc
            worker_join_seconds = time.perf_counter() - start
        finally:
            # Whatever happened above, the parent owns the shared blocks
            # and must unlink them — a crashed worker cannot strand
            # segments in /dev/shm.
            slicer_a.close()
            slicer_b.close()

        # Phase 3: merge — deterministic region order (executor.map
        # preserves task order): counters sum, memory maxes, pairs
        # concatenate.
        start = time.perf_counter()
        pairs: list[Pair] = []
        duplicates = 0
        per_chunk: list[float] = []
        for _index, owned, chunk_duplicates, chunk_stats, seconds in outcomes:
            pairs.extend(owned)
            duplicates += chunk_duplicates
            stats.merge(chunk_stats)
            _fold_spill_counters(stats, chunk_stats)
            per_chunk.append(seconds)
        stats.duplicates_suppressed += duplicates
        stats.result_pairs = len(pairs)
        stats.extra["worker_join_seconds"] = worker_join_seconds
        stats.extra["worker_seconds_sum"] = sum(per_chunk)
        stats.extra["per_chunk_seconds"] = per_chunk
        stats.extra["merge_seconds"] = time.perf_counter() - start
        return pairs

    def _wire_spec(self):
        """What travels to the workers: a spec, or a picklable factory
        wrapped so ``.make()`` exists either way."""
        if isinstance(self.spec, AlgorithmSpec):
            return self.spec
        return _FactorySpec(self.spec)


class _FactorySpec:
    """Adapter giving a plain picklable factory the ``.make()`` protocol."""

    __slots__ = ("factory",)

    def __init__(self, factory) -> None:
        self.factory = factory

    def __getstate__(self):
        return self.factory

    def __setstate__(self, state) -> None:
        self.factory = state

    def make(self) -> SpatialJoinAlgorithm:
        return self.factory()
