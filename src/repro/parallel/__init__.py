"""Chunked and multiprocess execution of the paper's §3 decomposition.

- :mod:`repro.parallel.decompose` — slab/tile cutting and the shared
  boundary-ownership (reference-point) rule;
- :mod:`repro.parallel.chunked` — sequential simulation (one "core" at a
  time);
- :mod:`repro.parallel.engine` — the real ``multiprocessing`` engine.
"""

from repro.parallel.chunked import ChunkedSpatialJoin
from repro.parallel.decompose import (
    DECOMPOSE_KINDS,
    Decomposition,
    Region,
    adaptive_chunk_count,
    slab_bounds,
    tile_grid,
)

#: Engine names resolved lazily so importing the package (or anything
#: that re-exports it, like the top-level ``repro``) does not pull in
#: multiprocessing machinery for purely sequential use.
_ENGINE_EXPORTS = ("ParallelChunkedJoin", "shutdown_pools")


def __getattr__(name: str):
    if name in _ENGINE_EXPORTS:
        from repro.parallel import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ChunkedSpatialJoin",
    "ParallelChunkedJoin",
    "Decomposition",
    "Region",
    "DECOMPOSE_KINDS",
    "adaptive_chunk_count",
    "slab_bounds",
    "tile_grid",
    "shutdown_pools",
]
