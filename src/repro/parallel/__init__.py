"""Chunked execution simulating the paper's per-core decomposition."""

from repro.parallel.chunked import ChunkedSpatialJoin, slab_bounds

__all__ = ["ChunkedSpatialJoin", "slab_bounds"]
