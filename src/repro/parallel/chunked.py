"""Chunked execution: the paper's BlueGene/P decomposition, simulated.

§3 of the paper: "the dataset is split into 16K contiguous subsets, each
subset is loaded in the memory of a core and the distance join is
performed locally (independent of the other cores and thus massively
parallel)".  This module reproduces that decomposition on one machine,
sequentially — one region at a time, as if a single core played every
role.  The decomposition geometry and the boundary-ownership rule live
in :mod:`repro.parallel.decompose`, shared with the true multiprocess
engine (:mod:`repro.parallel.engine`), so both produce identical pair
sets and identical summed counters for the same ``(kind, n_chunks)``.

Per-chunk statistics are merged: counters add up (total work), memory
takes the per-chunk maximum (each core only ever holds one chunk).
"""

from __future__ import annotations

import time
from typing import Callable

from repro.geometry.mbr import total_mbr
from repro.geometry.objects import SpatialObject
from repro.joins.base import Pair, SpatialJoinAlgorithm
from repro.joins.registry import AlgorithmSpec
from repro.parallel.decompose import Decomposition, slab_bounds
from repro.stats.counters import JoinStatistics

__all__ = ["ChunkedSpatialJoin", "slab_bounds"]


class ChunkedSpatialJoin(SpatialJoinAlgorithm):
    """Run a base join independently over contiguous spatial chunks.

    Parameters
    ----------
    base_factory:
        Zero-argument callable producing a fresh join algorithm per chunk
        (each "core" gets its own instance, as on the BlueGene/P), or an
        :class:`~repro.joins.registry.AlgorithmSpec`.
    n_chunks:
        Number of contiguous regions.
    axis:
        Axis along which the universe is sliced (``kind="slabs"``; for
        tiles it selects the first of the two partitioned axes).
    kind:
        ``"slabs"`` (1-D intervals, the paper's layout) or ``"tiles"``
        (2-D grid, finer regions at the same chunk count).
    """

    name = "Chunked"

    def __init__(
        self,
        base_factory: Callable[[], SpatialJoinAlgorithm] | AlgorithmSpec,
        n_chunks: int = 4,
        axis: int = 0,
        kind: str = "slabs",
    ) -> None:
        if n_chunks < 1:
            raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
        if axis < 0:
            raise ValueError(f"axis must be >= 0, got {axis}")
        if isinstance(base_factory, AlgorithmSpec):
            base_factory = base_factory.make
        self.base_factory = base_factory
        self.n_chunks = n_chunks
        self.axis = axis
        self.kind = kind
        sample = base_factory()
        suffix = "" if kind == "slabs" else f":{kind}"
        self.name = f"Chunked[{sample.name}x{n_chunks}{suffix}]"

    def describe(self) -> dict:
        return {"n_chunks": self.n_chunks, "axis": self.axis, "decompose": self.kind}

    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        if not objects_a or not objects_b:
            return []
        start = time.perf_counter()
        universe = total_mbr(o.mbr for o in objects_a).union(
            total_mbr(o.mbr for o in objects_b)
        )
        decomposition = Decomposition.build(
            universe, kind=self.kind, n_chunks=self.n_chunks, axis=self.axis
        )
        chunks = [
            (region, decomposition.members(region, objects_a),
             decomposition.members(region, objects_b))
            for region in decomposition.regions
        ]
        decompose_seconds = time.perf_counter() - start

        pairs: list[Pair] = []
        duplicates = 0
        worker_seconds = 0.0
        for region, chunk_a, chunk_b in chunks:
            if not chunk_a or not chunk_b:
                continue
            start = time.perf_counter()
            result = self.base_factory().join(chunk_a, chunk_b)
            stats.merge(result.stats)

            mbr_a = {o.oid: o.mbr for o in chunk_a}
            mbr_b = {o.oid: o.mbr for o in chunk_b}
            stats.dedup_checks += len(result.pairs)
            for oid_a, oid_b in result.pairs:
                if decomposition.owns(region, mbr_a[oid_a], mbr_b[oid_b]):
                    pairs.append((oid_a, oid_b))
                else:
                    duplicates += 1
            worker_seconds += time.perf_counter() - start
        stats.duplicates_suppressed += duplicates
        stats.result_pairs = len(pairs)
        stats.extra["n_chunks"] = self.n_chunks
        stats.extra["decompose"] = decomposition.kind
        stats.extra["decompose_seconds"] = decompose_seconds
        stats.extra["worker_join_seconds"] = worker_seconds
        stats.extra["merge_seconds"] = 0.0
        return pairs
