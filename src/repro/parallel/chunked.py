"""Chunked execution: the paper's BlueGene/P decomposition, simulated.

§3 of the paper: "the dataset is split into 16K contiguous subsets, each
subset is loaded in the memory of a core and the distance join is
performed locally (independent of the other cores and thus massively
parallel)".  This module reproduces that decomposition on one machine:

- the universe is cut into ``n_chunks`` contiguous slabs along one axis;
- each slab receives every object whose MBR intersects it (objects that
  straddle a boundary are seen by several chunks);
- any registered join algorithm runs *independently* per chunk;
- cross-chunk duplicate pairs are suppressed with an ownership rule: a
  pair belongs to the slab containing the reference point of the two
  MBRs, so the union of chunk results equals the global join exactly.

Per-chunk statistics are merged: counters add up (total work), memory
takes the per-chunk maximum (each core only ever holds one chunk).
"""

from __future__ import annotations

from typing import Callable

from repro.geometry.mbr import MBR, total_mbr
from repro.geometry.objects import SpatialObject
from repro.joins.base import Pair, SpatialJoinAlgorithm
from repro.stats.counters import JoinStatistics

__all__ = ["ChunkedSpatialJoin", "slab_bounds"]


def slab_bounds(lo: float, hi: float, n_chunks: int) -> list[tuple[float, float]]:
    """Split ``[lo, hi]`` into ``n_chunks`` equal contiguous intervals."""
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    if hi < lo:
        raise ValueError(f"invalid interval [{lo}, {hi}]")
    width = (hi - lo) / n_chunks
    bounds = [(lo + i * width, lo + (i + 1) * width) for i in range(n_chunks)]
    # Close the final slab exactly at hi to avoid floating-point gaps.
    bounds[-1] = (bounds[-1][0], hi)
    return bounds


class ChunkedSpatialJoin(SpatialJoinAlgorithm):
    """Run a base join independently over contiguous spatial chunks.

    Parameters
    ----------
    base_factory:
        Zero-argument callable producing a fresh join algorithm per chunk
        (each "core" gets its own instance, as on the BlueGene/P).
    n_chunks:
        Number of contiguous slabs.
    axis:
        Axis along which the universe is sliced.
    """

    name = "Chunked"

    def __init__(
        self,
        base_factory: Callable[[], SpatialJoinAlgorithm],
        n_chunks: int = 4,
        axis: int = 0,
    ) -> None:
        if n_chunks < 1:
            raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
        if axis < 0:
            raise ValueError(f"axis must be >= 0, got {axis}")
        self.base_factory = base_factory
        self.n_chunks = n_chunks
        self.axis = axis
        sample = base_factory()
        self.name = f"Chunked[{sample.name}x{n_chunks}]"

    def describe(self) -> dict:
        return {"n_chunks": self.n_chunks, "axis": self.axis}

    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        if not objects_a or not objects_b:
            return []
        axis = self.axis
        universe = total_mbr(o.mbr for o in objects_a).union(
            total_mbr(o.mbr for o in objects_b)
        )
        if axis >= universe.dim:
            raise ValueError(f"axis {axis} out of range for {universe.dim}-dimensional data")

        bounds = slab_bounds(universe.lo[axis], universe.hi[axis], self.n_chunks)
        pairs: list[Pair] = []
        duplicates = 0
        for index, (slab_lo, slab_hi) in enumerate(bounds):
            chunk_a = [o for o in objects_a if self._touches(o.mbr, axis, slab_lo, slab_hi)]
            chunk_b = [o for o in objects_b if self._touches(o.mbr, axis, slab_lo, slab_hi)]
            if not chunk_a or not chunk_b:
                continue
            result = self.base_factory().join(chunk_a, chunk_b)
            stats.merge(result.stats)

            mbr_a = {o.oid: o.mbr for o in chunk_a}
            mbr_b = {o.oid: o.mbr for o in chunk_b}
            last = index == len(bounds) - 1
            for oid_a, oid_b in result.pairs:
                reference = max(mbr_a[oid_a].lo[axis], mbr_b[oid_b].lo[axis])
                owned = slab_lo <= reference < slab_hi or (last and reference == slab_hi)
                if owned:
                    pairs.append((oid_a, oid_b))
                else:
                    duplicates += 1
        stats.duplicates_suppressed += duplicates
        stats.result_pairs = len(pairs)
        stats.extra["n_chunks"] = self.n_chunks
        return pairs

    @staticmethod
    def _touches(mbr: MBR, axis: int, slab_lo: float, slab_hi: float) -> bool:
        return mbr.hi[axis] >= slab_lo and mbr.lo[axis] <= slab_hi
