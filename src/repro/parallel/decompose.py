"""Spatial decomposition shared by the chunked and multiprocess engines.

§3 of the paper: "the dataset is split into 16K contiguous subsets, each
subset is loaded in the memory of a core and the distance join is
performed locally (independent of the other cores and thus massively
parallel)".  This module owns the geometry of that decomposition so the
sequential simulation (:class:`~repro.parallel.chunked.ChunkedSpatialJoin`)
and the real multiprocess engine
(:class:`~repro.parallel.engine.ParallelChunkedJoin`) cut the universe —
and deduplicate boundary pairs — *identically*:

- **slabs**: the universe is cut into ``n_chunks`` contiguous intervals
  along one axis (the paper's BlueGene/P layout);
- **tiles**: a 2-D grid over two axes, the layout of "Parallel In-Memory
  Evaluation of Spatial Joins" — finer regions at the same chunk count,
  so skewed data spreads across workers more evenly.

Every region receives each object whose MBR *touches* it (closed
intervals — objects straddling a boundary are seen by several regions).
Cross-region duplicates are suppressed with the reference-point rule: a
pair belongs to the unique region containing the point
``ref[d] = max(a.lo[d], b.lo[d])`` on every partitioned axis ``d``.

Ownership is resolved by binary search over the *shared* region edges
(:meth:`Decomposition.owner_cell`), which makes the intervals half-open
``[edge_i, edge_i+1)`` with the final interval closed at the universe
bound.  Resolving against the global edge list (rather than testing each
region's own ``[lo, hi)`` in isolation) guarantees every reference point
has exactly one owner even when floating-point rounding makes adjacent
interval bounds disagree — the historical per-slab test lost pairs whose
reference point landed exactly on an interior edge a slab believed it
did not own.
"""

from __future__ import annotations

import itertools
import math
from bisect import bisect_right
from dataclasses import dataclass

from repro.geometry.mbr import MBR

__all__ = [
    "slab_bounds",
    "tile_grid",
    "adaptive_chunk_count",
    "Region",
    "Decomposition",
    "DECOMPOSE_KINDS",
    "DEFAULT_OBJECTS_PER_CHUNK",
    "MAX_ADAPTIVE_CHUNKS",
]

#: Valid values of the ``kind`` / ``--decompose`` selector.
DECOMPOSE_KINDS = ("slabs", "tiles")

#: Target object count per chunk for the adaptive heuristic: small
#: enough that per-core state stays cache-friendly, large enough that
#: per-chunk fixed costs (index build, IPC) stay amortised.
DEFAULT_OBJECTS_PER_CHUNK = 4096

#: Upper bound of the adaptive heuristic; beyond this, replication of
#: boundary straddlers starts to dominate the shrinking per-chunk work.
MAX_ADAPTIVE_CHUNKS = 256


def slab_bounds(lo: float, hi: float, n_chunks: int) -> list[tuple[float, float]]:
    """Split ``[lo, hi]`` into ``n_chunks`` equal contiguous intervals."""
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    if hi < lo:
        raise ValueError(f"invalid interval [{lo}, {hi}]")
    width = (hi - lo) / n_chunks
    bounds = [(lo + i * width, lo + (i + 1) * width) for i in range(n_chunks)]
    # Close the final slab exactly at hi to avoid floating-point gaps.
    bounds[-1] = (bounds[-1][0], hi)
    return bounds


def tile_grid(n_chunks: int, extent_x: float, extent_y: float) -> tuple[int, int]:
    """Factor ``n_chunks`` into an ``(nx, ny)`` grid of near-square tiles.

    Among all factorisations ``nx * ny == n_chunks`` the one whose tiles
    are closest to square (cell aspect ratio nearest 1 given the two
    universe extents) is chosen, so elongated universes get more cuts
    along their long axis.
    """
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    best = (n_chunks, 1)
    best_score = math.inf
    for nx in range(1, n_chunks + 1):
        if n_chunks % nx:
            continue
        ny = n_chunks // nx
        width = extent_x / nx if extent_x > 0 else 1.0
        height = extent_y / ny if extent_y > 0 else 1.0
        aspect = max(width, height) / max(min(width, height), 1e-300)
        if aspect < best_score:
            best_score = aspect
            best = (nx, ny)
    return best


def adaptive_chunk_count(
    n_objects: int,
    workers: int = 1,
    target_per_chunk: int = DEFAULT_OBJECTS_PER_CHUNK,
    max_chunks: int = MAX_ADAPTIVE_CHUNKS,
) -> int:
    """Pick a chunk count from the workload size and worker count.

    Enough chunks that (a) every worker has at least one region to own
    and (b) no region holds more than ``target_per_chunk`` objects on
    average, capped at ``max_chunks`` so boundary replication cannot run
    away on huge inputs.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    by_size = math.ceil(n_objects / target_per_chunk) if n_objects > 0 else 1
    return min(max_chunks, max(1, workers, by_size))


@dataclass(frozen=True)
class Region:
    """One contiguous piece of the decomposed universe.

    ``axes[i]`` is the partitioned axis of coordinate ``i``; ``cells[i]``
    the region's interval index along that axis; ``lows[i]``/``highs[i]``
    the interval bounds.  Frozen and tuple-only, so regions pickle across
    process boundaries for free.
    """

    index: int
    axes: tuple[int, ...]
    cells: tuple[int, ...]
    lows: tuple[float, ...]
    highs: tuple[float, ...]

    def touches(self, mbr: MBR) -> bool:
        """Closed-interval membership: does the MBR overlap this region?"""
        return all(
            mbr.hi[axis] >= lo and mbr.lo[axis] <= hi
            for axis, lo, hi in zip(self.axes, self.lows, self.highs)
        )


class Decomposition:
    """A slab or tile cutting of a universe, with the ownership rule.

    Construct via :meth:`slabs`, :meth:`tiles` or :meth:`build`; the
    resulting object is picklable and is shipped verbatim to worker
    processes so parent and workers agree bit-for-bit on region edges.
    """

    __slots__ = ("kind", "axes", "shape", "bounds", "edges", "regions")

    def __init__(
        self,
        kind: str,
        axes: tuple[int, ...],
        bounds: tuple[tuple[tuple[float, float], ...], ...],
    ) -> None:
        if kind not in DECOMPOSE_KINDS:
            raise ValueError(
                f"unknown decomposition kind {kind!r}; expected one of "
                f"{', '.join(DECOMPOSE_KINDS)}"
            )
        if len(axes) != len(bounds) or not axes:
            raise ValueError("axes and bounds must align and be non-empty")
        self.kind = kind
        self.axes = axes
        self.bounds = bounds
        self.shape = tuple(len(per_axis) for per_axis in bounds)
        # Left edges per axis: the shared ownership ruler (see owner_cell).
        self.edges = tuple(
            tuple(lo for lo, _ in per_axis) for per_axis in bounds
        )
        self.regions = self._build_regions()

    def _build_regions(self) -> list[Region]:
        regions: list[Region] = []
        # C-order enumeration over the per-axis interval indices.
        counts = self.shape
        total = math.prod(counts)
        for flat in range(total):
            cells = []
            rest = flat
            for count in reversed(counts):
                rest, cell = divmod(rest, count)
                cells.append(cell)
            cells.reverse()
            regions.append(
                Region(
                    index=flat,
                    axes=self.axes,
                    cells=tuple(cells),
                    lows=tuple(
                        self.bounds[i][cell][0] for i, cell in enumerate(cells)
                    ),
                    highs=tuple(
                        self.bounds[i][cell][1] for i, cell in enumerate(cells)
                    ),
                )
            )
        return regions

    # -- construction --------------------------------------------------
    @classmethod
    def slabs(cls, universe: MBR, n_chunks: int, axis: int = 0) -> "Decomposition":
        """Contiguous slabs along one axis (the paper's §3 layout)."""
        if axis < 0:
            raise ValueError(f"axis must be >= 0, got {axis}")
        if axis >= universe.dim:
            raise ValueError(
                f"axis {axis} out of range for {universe.dim}-dimensional data"
            )
        per_axis = tuple(slab_bounds(universe.lo[axis], universe.hi[axis], n_chunks))
        return cls("slabs", (axis,), (per_axis,))

    @classmethod
    def tiles(
        cls, universe: MBR, n_chunks: int, axes: tuple[int, int] = (0, 1)
    ) -> "Decomposition":
        """A near-square 2-D grid of ``n_chunks`` tiles over two axes."""
        ax, ay = axes
        if ax == ay:
            raise ValueError(f"tile axes must differ, got {axes}")
        for axis in axes:
            if axis < 0:
                raise ValueError(f"axis must be >= 0, got {axis}")
            if axis >= universe.dim:
                raise ValueError(
                    f"axis {axis} out of range for {universe.dim}-dimensional data"
                )
        nx, ny = tile_grid(
            n_chunks,
            universe.hi[ax] - universe.lo[ax],
            universe.hi[ay] - universe.lo[ay],
        )
        return cls(
            "tiles",
            (ax, ay),
            (
                tuple(slab_bounds(universe.lo[ax], universe.hi[ax], nx)),
                tuple(slab_bounds(universe.lo[ay], universe.hi[ay], ny)),
            ),
        )

    @classmethod
    def build(
        cls,
        universe: MBR,
        kind: str = "slabs",
        n_chunks: int = 4,
        axis: int = 0,
    ) -> "Decomposition":
        """Dispatch on ``kind``; tiles fall back to slabs in 1-D."""
        if kind not in DECOMPOSE_KINDS:
            raise ValueError(
                f"unknown decomposition kind {kind!r}; expected one of "
                f"{', '.join(DECOMPOSE_KINDS)}"
            )
        if n_chunks < 1:
            raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
        if axis < 0:
            raise ValueError(f"axis must be >= 0, got {axis}")
        if axis >= universe.dim:
            raise ValueError(
                f"axis {axis} out of range for {universe.dim}-dimensional data"
            )
        if kind == "tiles" and universe.dim >= 2:
            return cls.tiles(universe, n_chunks, axes=(axis, (axis + 1) % universe.dim))
        return cls.slabs(universe, n_chunks, axis=axis)

    # -- pickling (``__slots__`` without a dict) -----------------------
    def __reduce__(self):
        return (Decomposition, (self.kind, self.axes, self.bounds))

    # -- protocol ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.regions)

    def __repr__(self) -> str:
        return f"Decomposition({self.kind}, shape={self.shape}, axes={self.axes})"

    def describe(self) -> dict:
        return {"decompose": self.kind, "shape": self.shape, "axes": self.axes}

    # -- the shared ownership rule -------------------------------------
    def owner_cell(self, coordinate: int, value: float) -> int:
        """Interval index owning ``value`` along partitioned coordinate.

        Binary search over the shared left-edge list: half-open
        ``[edge_i, edge_i+1)`` intervals whose last member also owns the
        closing universe bound (and, defensively, anything beyond it).
        Total on the whole axis — no value can fall between regions.
        """
        edges = self.edges[coordinate]
        return min(max(bisect_right(edges, value) - 1, 0), len(edges) - 1)

    def owner_index(self, mbr_a: MBR, mbr_b: MBR) -> int:
        """Flat index of the region owning the pair ``(a, b)``.

        The reference point is ``max(a.lo[d], b.lo[d])`` per partitioned
        axis — a point both MBRs contain, so the owning region sees both
        objects and the local join reports the pair there.
        """
        flat = 0
        for coordinate, axis in enumerate(self.axes):
            reference = max(mbr_a.lo[axis], mbr_b.lo[axis])
            flat = flat * self.shape[coordinate] + self.owner_cell(
                coordinate, reference
            )
        return flat

    def owns(self, region: Region, mbr_a: MBR, mbr_b: MBR) -> bool:
        """Does ``region`` own the pair under the reference-point rule?"""
        return self.owner_index(mbr_a, mbr_b) == region.index

    # -- routing -------------------------------------------------------
    def covering_indices(self, mbr: MBR) -> list[int]:
        """Flat indices of every region the MBR covers (routing rule).

        The per-axis interval range is ``[owner_cell(lo), owner_cell(hi)]``
        — exactly the membership rule of :meth:`covers`, enumerated once
        for the whole decomposition instead of tested region by region.
        The sharded serving tier routes each probe MBR to precisely these
        shards; :meth:`covers` remains the per-region oracle the tests
        pin this enumeration against.
        """
        ranges = []
        for coordinate, axis in enumerate(self.axes):
            lo_cell = self.owner_cell(coordinate, mbr.lo[axis])
            hi_cell = self.owner_cell(coordinate, mbr.hi[axis])
            ranges.append(range(lo_cell, hi_cell + 1))
        flats: list[int] = []
        for cells in itertools.product(*ranges):
            flat = 0
            for coordinate, cell in enumerate(cells):
                flat = flat * self.shape[coordinate] + cell
            flats.append(flat)
        return flats

    # -- the two-layer classification ----------------------------------
    def covers(self, region: Region, mbr: MBR) -> bool:
        """Index-range membership used by ``dedup="partition"``.

        The MBR belongs to the regions whose interval index lies within
        ``[owner_cell(lo), owner_cell(hi)]`` on every partitioned axis —
        the multiple assignment of the two-layer scheme, resolved on the
        same shared-edge ruler as pair ownership.  Unlike the closed
        :meth:`Region.touches` test it excludes objects meeting a region
        only at its low boundary (their low corner is owned by the next
        region over); those replicas can never contribute an owned pair,
        and dropping them is what makes the per-region mini-joins
        duplicate-free without any per-pair test.
        """
        for coordinate, axis in enumerate(self.axes):
            cell = region.cells[coordinate]
            if not (
                self.owner_cell(coordinate, mbr.lo[axis])
                <= cell
                <= self.owner_cell(coordinate, mbr.hi[axis])
            ):
                return False
        return True

    def class_mask(self, region: Region, mbr: MBR) -> int:
        """Two-layer class mask of ``mbr``'s replica in ``region``.

        Bit ``i`` is set iff the region owns the MBR's low corner along
        partitioned coordinate ``i`` (see :mod:`repro.partition.classes`
        for the mini-join algebra built on these masks).  Exactly one
        covering region — the home region — has every bit set.
        """
        mask = 0
        for coordinate, axis in enumerate(self.axes):
            if self.owner_cell(coordinate, mbr.lo[axis]) == region.cells[coordinate]:
                mask |= 1 << coordinate
        return mask

    # -- membership ----------------------------------------------------
    def members(self, region: Region, objects):
        """Objects whose MBR touches the region (closed intervals)."""
        return [obj for obj in objects if region.touches(obj.mbr)]
