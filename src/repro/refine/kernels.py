"""Exact-geometry refinement kernels (scalar + numpy-vectorized twins).

The refinement predicate is Euclidean: ``shape_distance(a, b) <=
epsilon``, evaluated on *squared* distances throughout.  Three kernel
families, each with a scalar canonical form and a vectorized numpy twin
that mirrors the scalar arithmetic **operation for operation**, so the
object, columnar and compiled refinement backends reach bit-identical
decisions (the same discipline the MBR kernels follow):

- :func:`repro.geometry.shapes.box_gap_sq` /
  :func:`box_gap_sq_batch` — squared Euclidean gap between closed
  boxes; powers both the MBR **false-hit** prune and the
  interior-rectangle **true-hit** shortcut;
- :func:`repro.geometry.shapes.segment_distance_sq` /
  :func:`min_cross_sq` — Ericson's clamped closest-point between
  segments, minimised over the full segment cross product of a pair;
- :func:`repro.geometry.shapes.polygon_contains` — boundary-inclusive
  point-in-polygon ray casting (scalar in every backend: it runs at
  most twice per indeterminate pair).
"""

from __future__ import annotations

from repro.geometry.columnar import require_numpy

try:  # pragma: no cover - numpy import guarded like columnar.py
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = ["box_gap_sq_batch", "min_cross_sq", "segments_array"]


def box_gap_sq_batch(lo_a, hi_a, lo_b, hi_b):
    """Squared box gaps for ``(P, d)`` corner arrays, one value per row.

    NaN rows (missing interior rectangles) propagate to NaN gaps, which
    compare ``False`` against any epsilon — exactly "no shortcut".
    """
    require_numpy()
    gap = np.maximum(lo_a - hi_b, lo_b - hi_a)
    gap = np.maximum(gap, 0.0)
    return (gap * gap).sum(axis=1)


def segments_array(shape):
    """A shape's boundary as an ``(n, 4)`` float64 segment array."""
    require_numpy()
    return np.asarray(shape.segments(), dtype=np.float64).reshape(-1, 4)


def min_cross_sq(segs_a, segs_b) -> float:
    """Minimum squared distance over the segment cross product.

    The numpy twin of looping :func:`~repro.geometry.shapes.segment_distance_sq`
    over all ``n * m`` segment pairs; every intermediate is computed
    with the same operations in the same order, so the minimum is the
    same float the scalar loop finds.
    """
    require_numpy()
    A = segs_a[:, None, :]
    B = segs_b[None, :, :]
    ax, ay, bx, by = A[..., 0], A[..., 1], A[..., 2], A[..., 3]
    cx, cy, dx, dy = B[..., 0], B[..., 1], B[..., 2], B[..., 3]
    d1x = bx - ax
    d1y = by - ay
    d2x = dx - cx
    d2y = dy - cy
    rx = ax - cx
    ry = ay - cy
    a = d1x * d1x + d1y * d1y
    e = d2x * d2x + d2y * d2y
    f = d2x * rx + d2y * ry
    c = d1x * rx + d1y * ry
    b = d1x * d2x + d1y * d2y

    safe_a = np.where(a > 0.0, a, 1.0)
    safe_e = np.where(e > 0.0, e, 1.0)
    denom = a * e - b * b
    safe_denom = np.where(denom != 0.0, denom, 1.0)

    s_gen = np.clip((b * f - c * e) / safe_denom, 0.0, 1.0)
    s_gen = np.where(denom != 0.0, s_gen, 0.0)
    t_num = b * s_gen + f
    s_low = np.clip(-c / safe_a, 0.0, 1.0)
    s_high = np.clip((b - c) / safe_a, 0.0, 1.0)
    t_gen = np.where(
        t_num < 0.0,
        0.0,
        np.where(t_num > e, 1.0, t_num / safe_e),
    )
    s_sel = np.where(t_num < 0.0, s_low, np.where(t_num > e, s_high, s_gen))

    t_a0 = np.clip(f / safe_e, 0.0, 1.0)
    s = np.where(a <= 0.0, 0.0, np.where(e <= 0.0, s_low, s_sel))
    t = np.where(
        a <= 0.0,
        np.where(e <= 0.0, 0.0, t_a0),
        np.where(e <= 0.0, 0.0, t_gen),
    )

    gx = (ax + d1x * s) - (cx + d2x * t)
    gy = (ay + d1y * s) - (cy + d2y * t)
    dist = gx * gx + gy * gy
    if dist.size == 0:
        return float("inf")
    return float(dist.min())
