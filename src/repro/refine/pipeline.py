"""The refine stage of the filter-refine join pipeline.

A :class:`RefinePipeline` consumes candidate ``(oid_a, oid_b)`` pairs
from *any* registry algorithm (the filter stage — unchanged MBR
machinery) and keeps exactly the pairs whose exact Euclidean shape
distance is within epsilon.  Per candidate pair, in order:

1. **False-hit prune** — ``gap(mbr_a, mbr_b)^2 > eps^2`` proves the
   shapes apart (the MBR gap lower-bounds the shape distance).  Counted
   in ``false_hit_prunes``.  This fires because the candidate filter
   uses L-inf box inflation while the exact predicate is Euclidean: a
   diagonal neighbour intersects the inflated box yet sits further than
   epsilon.
2. **True-hit shortcut** (Kipf et al.) — both shapes expose an interior
   rectangle (a box *subset* of the shape) and
   ``gap(int_a, int_b)^2 <= eps^2`` proves the pair within epsilon
   without an exact test.  Counted in ``true_hits``.
3. **Exact test** — the segment-cross minimum distance plus containment
   checks for filled shapes.  Counted in ``exact_tests``.

The accounting identity ``true_hits + exact_tests == candidate_pairs -
false_hit_prunes`` holds by construction and is pinned by the parity
suite.  Surviving pairs are counted in ``refined_pairs`` and returned
in candidate order, so every backend (object / columnar / compiled)
produces the identical list.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.geometry.columnar import HAVE_NUMPY, resolve_backend
from repro.geometry.shapes import box_gap_sq, shape_distance_sq
from repro.geometry.vertex_table import shape_of
from repro.stats.counters import JoinStatistics

try:  # pragma: no cover - numpy import guarded like columnar.py
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = ["RefinePipeline", "MissingShapesError"]


class MissingShapesError(ValueError):
    """``geometry="exact"`` was requested for a dataset without shapes."""

    def __init__(self, dataset: str):
        self.dataset = dataset
        super().__init__(
            f"dataset {dataset!r} carries no shape payloads; "
            "geometry='exact' needs vertex data (use a polygon/linestring "
            "workload such as 'polygons', or attach shapes to the dataset)"
        )


class _Side:
    """Per-side refinement view: shapes plus oid-keyed lookup arrays."""

    __slots__ = (
        "shapes",
        "index",
        "mbr_lo",
        "mbr_hi",
        "int_lo",
        "int_hi",
        "_segs",
    )

    def __init__(self, objects: Sequence, columnar: bool):
        self.shapes = [shape_of(obj) for obj in objects]
        self.index = {obj.oid: i for i, obj in enumerate(objects)}
        self._segs: dict[int, object] = {}
        if columnar and self.shapes:
            dim = self.shapes[0].dim
            n = len(self.shapes)
            self.mbr_lo = np.empty((n, dim), dtype=np.float64)
            self.mbr_hi = np.empty((n, dim), dtype=np.float64)
            self.int_lo = np.full((n, dim), np.nan, dtype=np.float64)
            self.int_hi = np.full((n, dim), np.nan, dtype=np.float64)
            for i, shape in enumerate(self.shapes):
                box = shape.mbr()
                self.mbr_lo[i] = box.lo
                self.mbr_hi[i] = box.hi
                interior = shape.interior_rectangle()
                if interior is not None:
                    self.int_lo[i] = interior.lo
                    self.int_hi[i] = interior.hi
        else:
            self.mbr_lo = self.mbr_hi = self.int_lo = self.int_hi = None

    def segments(self, i: int):
        segs = self._segs.get(i)
        if segs is None:
            from repro.refine.kernels import segments_array

            segs = segments_array(self.shapes[i])
            self._segs[i] = segs
        return segs


class RefinePipeline:
    """Exact refinement of candidate pairs at a fixed epsilon.

    Parameters
    ----------
    epsilon:
        The join distance; the exact predicate is
        ``shape_distance <= epsilon`` (Euclidean).  ``0`` degenerates to
        an exact intersection test.
    backend:
        ``"auto"`` / ``"object"`` / ``"columnar"`` / ``"compiled"`` with
        the same resolution rules as the filter kernels.  Every backend
        returns the identical refined list.
    """

    def __init__(self, epsilon: float, backend: str = "auto"):
        epsilon = float(epsilon)
        if not math.isfinite(epsilon) or epsilon < 0.0:
            raise ValueError(f"epsilon must be finite and >= 0, got {epsilon!r}")
        self.epsilon = epsilon
        self.backend = resolve_backend(backend)

    def refine(
        self,
        pairs: Sequence[tuple[int, int]],
        objects_a: Sequence,
        objects_b: Sequence,
        stats: JoinStatistics | None = None,
    ) -> list[tuple[int, int]]:
        """Filter candidate pairs down to exact matches, in candidate order.

        ``objects_a`` / ``objects_b`` must expose **original** (never
        epsilon-inflated) extents: either objects carrying
        :class:`~repro.geometry.shapes.Shape` geometry, or plain MBR
        objects which refine as solid boxes over ``obj.mbr``.
        """
        if stats is None:
            stats = JoinStatistics()
        stats.candidate_pairs += len(pairs)
        if not pairs:
            return []
        columnar = self.backend in ("columnar", "compiled") and HAVE_NUMPY
        side_a = _Side(objects_a, columnar)
        side_b = _Side(objects_b, columnar)
        if columnar:
            kept = self._refine_columnar(pairs, side_a, side_b, stats)
        else:
            kept = self._refine_object(pairs, side_a, side_b, stats)
        stats.refined_pairs += len(kept)
        return kept

    # -- object backend -------------------------------------------------
    def _refine_object(self, pairs, side_a, side_b, stats):
        eps_sq = self.epsilon * self.epsilon
        kept = []
        for pair in pairs:
            i = side_a.index[pair[0]]
            j = side_b.index[pair[1]]
            sa = side_a.shapes[i]
            sb = side_b.shapes[j]
            box_a = sa.mbr()
            box_b = sb.mbr()
            if box_gap_sq(box_a.lo, box_a.hi, box_b.lo, box_b.hi) > eps_sq:
                stats.false_hit_prunes += 1
                continue
            int_a = sa.interior_rectangle()
            int_b = sb.interior_rectangle()
            if (
                int_a is not None
                and int_b is not None
                and box_gap_sq(int_a.lo, int_a.hi, int_b.lo, int_b.hi) <= eps_sq
            ):
                stats.true_hits += 1
                kept.append(pair)
                continue
            stats.exact_tests += 1
            if shape_distance_sq(sa, sb) <= eps_sq:
                kept.append(pair)
        return kept

    # -- columnar / compiled backend ------------------------------------
    def _refine_columnar(self, pairs, side_a, side_b, stats):
        from repro.refine.kernels import box_gap_sq_batch

        eps_sq = self.epsilon * self.epsilon
        rows_a = np.fromiter(
            (side_a.index[p[0]] for p in pairs), dtype=np.int64, count=len(pairs)
        )
        rows_b = np.fromiter(
            (side_b.index[p[1]] for p in pairs), dtype=np.int64, count=len(pairs)
        )
        mbr_gap = box_gap_sq_batch(
            side_a.mbr_lo[rows_a],
            side_a.mbr_hi[rows_a],
            side_b.mbr_lo[rows_b],
            side_b.mbr_hi[rows_b],
        )
        alive = mbr_gap <= eps_sq
        stats.false_hit_prunes += int(len(pairs) - int(alive.sum()))
        int_gap = box_gap_sq_batch(
            side_a.int_lo[rows_a],
            side_a.int_hi[rows_a],
            side_b.int_lo[rows_b],
            side_b.int_hi[rows_b],
        )
        true_hit = alive & (int_gap <= eps_sq)
        stats.true_hits += int(true_hit.sum())
        kept = []
        if self.backend == "compiled":
            from repro.refine.compiled import min_cross_sq_compiled as cross
        else:
            from repro.refine.kernels import min_cross_sq as cross
        for k in np.flatnonzero(alive):
            pair = pairs[k]
            if true_hit[k]:
                kept.append(pair)
                continue
            stats.exact_tests += 1
            i = int(rows_a[k])
            j = int(rows_b[k])
            if self._exact_sq(side_a, i, side_b, j, cross) <= eps_sq:
                kept.append(pair)
        return kept

    @staticmethod
    def _exact_sq(side_a, i, side_b, j, cross) -> float:
        sa = side_a.shapes[i]
        sb = side_b.shapes[j]
        boxlike = ("box", "point")
        if sa.kind in boxlike and sb.kind in boxlike:
            return shape_distance_sq(sa, sb)
        if sa.dim != 2:
            raise ValueError(
                f"exact {sa.kind}/{sb.kind} distance requires 2-D shapes, "
                f"got {sa.dim}-D"
            )
        best = cross(side_a.segments(i), side_b.segments(j))
        if best > 0.0:
            from repro.geometry.shapes import _filled_contains

            if sa.filled and _filled_contains(sa, sb.vertices[0]):
                return 0.0
            if sb.filled and _filled_contains(sb, sa.vertices[0]):
                return 0.0
        return best
