"""Exact-geometry refinement: the second stage of filter-refine joins.

The filter stage is any registry algorithm producing MBR candidate
pairs; this package turns candidates into exact answers.  See
``docs/geometry.md`` for the shape model and the true-hit / false-hit
shortcut rules.
"""

from repro.refine.pipeline import MissingShapesError, RefinePipeline

__all__ = ["MissingShapesError", "RefinePipeline"]
