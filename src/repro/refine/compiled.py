"""Optional compiled (numba) twin of the refinement cross-distance kernel.

Follows the ``geometry/compiled.py`` conventions: availability is the
shared ``REPRO_COMPILED`` switch (``auto`` / ``force`` / ``off``), a
numba compilation failure disables the jitted kernel for the process
with a ``RuntimeWarning``, and the ``force`` mode (CI legs without
numba, the local test suite) runs the pure-numpy twin
:func:`repro.refine.kernels.min_cross_sq` — which mirrors the scalar
arithmetic exactly, so pairs and counters are identical either way.
"""

from __future__ import annotations

import warnings

from repro.geometry.compiled import HAVE_NUMBA, compiled_available, compiled_mode
from repro.refine.kernels import min_cross_sq

__all__ = ["compiled_available", "compiled_mode", "min_cross_sq_compiled"]

_numba_failed = False
_jitted = None


def _disable_numba(error: Exception) -> None:
    global _numba_failed
    _numba_failed = True
    warnings.warn(
        f"numba refine kernel disabled after failure: {error!r}; "
        "falling back to the numpy twin",
        RuntimeWarning,
        stacklevel=3,
    )


def _kernel():
    """The jitted cross-distance kernel, or ``None`` for the numpy twin."""
    global _jitted
    if _numba_failed or not HAVE_NUMBA:
        return None
    if _jitted is None:
        try:
            _jitted = _build_numba_kernel()
        except Exception as error:  # pragma: no cover - requires numba
            _disable_numba(error)
            return None
    return _jitted


def min_cross_sq_compiled(segs_a, segs_b) -> float:
    """Minimum squared segment-cross distance, jitted when numba is live."""
    kernel = _kernel()
    if kernel is None:
        return min_cross_sq(segs_a, segs_b)
    try:
        return float(kernel(segs_a, segs_b))
    except Exception as error:  # pragma: no cover - requires numba
        _disable_numba(error)
        return min_cross_sq(segs_a, segs_b)


def _build_numba_kernel():  # pragma: no cover - requires numba
    import numba

    @numba.njit(cache=True, fastmath=False)
    def cross_min_sq(segs_a, segs_b):
        best = 1.7976931348623157e308
        for i in range(segs_a.shape[0]):
            ax = segs_a[i, 0]
            ay = segs_a[i, 1]
            bx = segs_a[i, 2]
            by = segs_a[i, 3]
            for j in range(segs_b.shape[0]):
                cx = segs_b[j, 0]
                cy = segs_b[j, 1]
                dx = segs_b[j, 2]
                dy = segs_b[j, 3]
                d1x = bx - ax
                d1y = by - ay
                d2x = dx - cx
                d2y = dy - cy
                rx = ax - cx
                ry = ay - cy
                a = d1x * d1x + d1y * d1y
                e = d2x * d2x + d2y * d2y
                f = d2x * rx + d2y * ry
                if a <= 0.0 and e <= 0.0:
                    d = rx * rx + ry * ry
                elif a <= 0.0:
                    t = f / e
                    if t < 0.0:
                        t = 0.0
                    elif t > 1.0:
                        t = 1.0
                    gx = ax - (cx + d2x * t)
                    gy = ay - (cy + d2y * t)
                    d = gx * gx + gy * gy
                else:
                    c = d1x * rx + d1y * ry
                    if e <= 0.0:
                        t = 0.0
                        s = -c / a
                        if s < 0.0:
                            s = 0.0
                        elif s > 1.0:
                            s = 1.0
                    else:
                        b = d1x * d2x + d1y * d2y
                        denom = a * e - b * b
                        if denom != 0.0:
                            s = (b * f - c * e) / denom
                            if s < 0.0:
                                s = 0.0
                            elif s > 1.0:
                                s = 1.0
                        else:
                            s = 0.0
                        t = b * s + f
                        if t < 0.0:
                            t = 0.0
                            s = -c / a
                            if s < 0.0:
                                s = 0.0
                            elif s > 1.0:
                                s = 1.0
                        elif t > e:
                            t = 1.0
                            s = (b - c) / a
                            if s < 0.0:
                                s = 0.0
                            elif s > 1.0:
                                s = 1.0
                        else:
                            t = t / e
                    gx = (ax + d1x * s) - (cx + d2x * t)
                    gy = (ay + d1y * s) - (cy + d2y * t)
                    d = gx * gx + gy * gy
                if d < best:
                    best = d
                if best == 0.0:
                    return 0.0
        return best

    return cross_min_sq
