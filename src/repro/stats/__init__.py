"""Instrumentation: counters, timers, memory model and cost estimation."""

from repro.stats.counters import JoinStatistics
from repro.stats.estimate import (
    estimate_pair_probability,
    estimate_result_pairs,
    estimate_selectivity,
    mean_side_lengths,
)
from repro.stats.timing import PhaseTimer, timed

__all__ = [
    "JoinStatistics",
    "PhaseTimer",
    "timed",
    "estimate_pair_probability",
    "estimate_result_pairs",
    "estimate_selectivity",
    "mean_side_lengths",
]
