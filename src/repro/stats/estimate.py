"""Analytic selectivity estimation (after Aref & Samet's cost model).

Table 1 of the paper characterises each workload by its measured join
selectivity (Equation 1).  This module predicts that selectivity *before*
running the join, using the classic uniform-assumption model: two
axis-aligned boxes with mean side lengths ``s_a`` and ``s_b`` placed
uniformly in a universe of edge ``U`` intersect with probability
``prod_d (s_a[d] + s_b[d]) / U[d]`` (a Minkowski-sum argument).

For non-uniform data the uniform estimate is a lower bound; the benchmark
reports include both the estimate and the measurement, which is exactly
the comparison query optimisers make.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.geometry.columnar import CoordinateTable
from repro.geometry.objects import SpatialObject

__all__ = [
    "mean_side_lengths",
    "estimate_pair_probability",
    "estimate_selectivity",
    "estimate_result_pairs",
]


def mean_side_lengths(
    objects: Union[Sequence[SpatialObject], CoordinateTable],
) -> tuple[float, ...]:
    """Per-dimension mean MBR side length of a non-empty dataset.

    Accepts either a sequence of objects or a :class:`CoordinateTable`
    directly.  A table is reduced in one vectorised pass over the
    ``(N, 2D)`` coordinate block; callers that already hold a columnar
    view (datasets, the optimizer's sketches) should pass it instead of
    paying the historical per-object Python loop.
    """
    if isinstance(objects, CoordinateTable):
        if not len(objects):
            raise ValueError("cannot summarise an empty dataset")
        return tuple(float(s) for s in (objects.hi - objects.lo).mean(axis=0))
    if not objects:
        raise ValueError("cannot summarise an empty dataset")
    dim = objects[0].mbr.dim
    totals = [0.0] * dim
    for obj in objects:
        for d, side in enumerate(obj.mbr.side_lengths()):
            totals[d] += side
    n = len(objects)
    return tuple(total / n for total in totals)


def estimate_pair_probability(
    sides_a: Sequence[float],
    sides_b: Sequence[float],
    universe_extents: Sequence[float],
    epsilon: float = 0.0,
) -> float:
    """Probability that two random boxes (one inflated by ε) intersect.

    Uses the Minkowski-sum argument per dimension; degenerate universe
    extents contribute probability 1 (everything shares that plane).
    """
    probability = 1.0
    for s_a, s_b, extent in zip(sides_a, sides_b, universe_extents):
        if extent <= 0:
            continue
        overlap_window = s_a + s_b + 2.0 * epsilon
        probability *= min(1.0, overlap_window / extent)
    return probability


def estimate_selectivity(
    objects_a: Sequence[SpatialObject],
    objects_b: Sequence[SpatialObject],
    epsilon: float = 0.0,
) -> float:
    """Predicted join selectivity (Equation 1) under uniformity.

    The universe is taken as the union of both datasets' extents.
    """
    if not objects_a or not objects_b:
        return 0.0
    from repro.geometry.mbr import total_mbr

    universe = total_mbr(o.mbr for o in objects_a).union(
        total_mbr(o.mbr for o in objects_b)
    )
    return estimate_pair_probability(
        mean_side_lengths(objects_a),
        mean_side_lengths(objects_b),
        universe.side_lengths(),
        epsilon,
    )


def estimate_result_pairs(
    objects_a: Sequence[SpatialObject],
    objects_b: Sequence[SpatialObject],
    epsilon: float = 0.0,
) -> float:
    """Expected number of result pairs under the uniform model."""
    return estimate_selectivity(objects_a, objects_b, epsilon) * len(objects_a) * len(
        objects_b
    )
