"""Analytic memory-footprint model.

The paper measures the resident memory of a single-threaded C++
implementation.  Measuring a CPython process instead would mostly measure
interpreter object headers, so this module prices the *algorithmic* data
structures with C++-like constants.  The model is deliberately simple and
shared by all algorithms, so relative footprints — the quantity the paper
argues about (PBSM-500 ≈ 80× everything else) — are faithful.

Cost constants
--------------
- a stored object reference (pointer) costs :data:`POINTER_BYTES`;
- an MBR costs ``2 * dim * COORD_BYTES``;
- an index node costs :data:`NODE_OVERHEAD_BYTES` plus its MBR plus one
  pointer per child slot;
- a hash-grid cell costs :data:`CELL_OVERHEAD_BYTES` plus one pointer per
  stored reference.

PBSM's blow-up emerges naturally: with 500 cells per dimension each
ε-inflated object overlaps hundreds of 3D cells and is re-referenced in
every one of them.
"""

from __future__ import annotations

__all__ = [
    "POINTER_BYTES",
    "COORD_BYTES",
    "NODE_OVERHEAD_BYTES",
    "CELL_OVERHEAD_BYTES",
    "OBJECT_RECORD_BYTES",
    "GRID_REPLICATION_ESTIMATE",
    "mbr_bytes",
    "object_record_bytes",
    "node_bytes",
    "grid_cells_bytes",
    "reference_list_bytes",
    "columnar_table_bytes",
]

POINTER_BYTES = 8
COORD_BYTES = 8
NODE_OVERHEAD_BYTES = 16  # level tag, entity-list header, parent pointer
CELL_OVERHEAD_BYTES = 24  # hash bucket + list header
OBJECT_RECORD_BYTES = 8  # id field of an object record (MBR priced separately)
#: Assumed per-object cell replication when pricing a uniform grid
#: *before* it is built (real replication is workload-dependent and only
#: known after hashing); used by the grid algorithms' ``estimate_bytes``.
GRID_REPLICATION_ESTIMATE = 4


def mbr_bytes(dim: int) -> int:
    """Size of one MBR: two corners of ``dim`` coordinates."""
    return 2 * dim * COORD_BYTES


def object_record_bytes(dim: int) -> int:
    """Size of one stored object record: id + MBR."""
    return OBJECT_RECORD_BYTES + mbr_bytes(dim)


def node_bytes(dim: int, fanout: int) -> int:
    """Size of one index node with ``fanout`` child slots."""
    return NODE_OVERHEAD_BYTES + mbr_bytes(dim) + fanout * POINTER_BYTES


def reference_list_bytes(n_references: int) -> int:
    """Size of a list storing ``n_references`` object pointers."""
    return n_references * POINTER_BYTES


def grid_cells_bytes(n_cells: int, n_references: int) -> int:
    """Size of a hash grid with ``n_cells`` non-empty cells holding
    ``n_references`` object references in total."""
    return n_cells * CELL_OVERHEAD_BYTES + n_references * POINTER_BYTES


def columnar_table_bytes(rows: int, dim: int) -> int:
    """Exact payload bytes of a columnar coordinate table with ``rows`` boxes.

    Unlike the analytic constants above this is not a model: a
    :class:`~repro.geometry.columnar.CoordinateTable` stores ``2 * dim``
    float64 coordinates plus one int64 id per row, so the figure matches
    the table's real ``nbytes``.  The memory governor prices partition
    row-slices with it (see :mod:`repro.memory`).
    """
    return rows * (2 * dim * COORD_BYTES + 8)
