"""Lightweight phase timers used by the join implementations."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PhaseTimer", "timed"]


class PhaseTimer:
    """Accumulates wall-clock durations for named phases.

    Example
    -------
    >>> timer = PhaseTimer()
    >>> with timer.phase("build"):
    ...     pass
    >>> timer.seconds("build") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._durations: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager accumulating into phase ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._durations[name] = self._durations.get(name, 0.0) + elapsed

    def seconds(self, name: str) -> float:
        """Accumulated duration of phase ``name`` (zero if never entered)."""
        return self._durations.get(name, 0.0)

    def total(self) -> float:
        """Sum of all recorded phases."""
        return sum(self._durations.values())

    def as_dict(self) -> dict[str, float]:
        """Copy of the phase → seconds mapping."""
        return dict(self._durations)


@contextmanager
def timed() -> Iterator[list[float]]:
    """Yield a single-element list that receives the elapsed seconds.

    >>> with timed() as t:
    ...     pass
    >>> t[0] >= 0.0
    True
    """
    holder = [0.0]
    start = time.perf_counter()
    try:
        yield holder
    finally:
        holder[0] = time.perf_counter() - start
