"""Join statistics: the implementation-independent metrics of the paper.

Every join algorithm fills a :class:`JoinStatistics` instance.  The paper's
headline metric is ``comparisons`` — the number of object-object MBR
intersection tests — which is independent of language and machine, plus
execution time and memory footprint.  We also track several secondary
counters (node tests, filtered objects, replication) that the paper
discusses qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["JoinStatistics"]


@dataclass
class JoinStatistics:
    """Counters and timings collected while executing a spatial join.

    Attributes
    ----------
    comparisons:
        Object-object MBR intersection tests (the paper's headline count).
    node_tests:
        Object-node or node-node MBR tests performed while navigating index
        structures.  The paper excludes these from the headline metric; we
        keep them for analysis.
    result_pairs:
        Number of intersecting pairs reported.
    duplicates_suppressed:
        Candidate pairs discarded by deduplication (reference-point method
        in PBSM and in grid local joins).
    dedup_checks:
        Per-pair ownership tests performed to suppress duplicates from
        multiple assignment (reference-point tests in PBSM cells and grid
        local joins, region-ownership tests in the chunked/parallel
        engines, result-set membership probes in the quadtree join).
        The two-layer partition join is duplicate-free by construction
        and keeps this at exactly 0.
    filtered:
        Objects of the probe dataset eliminated before any object-object
        comparison (TOUCH / S3 filtering; Figures 13 and 14a).
    replicated_entries:
        Total object references stored in partitioning structures beyond
        one per object (multiple assignment in PBSM, grid replication in
        local joins).
    memory_bytes:
        Analytic memory footprint of the algorithm's data structures, per
        the model in :mod:`repro.stats.memory`.
    build_seconds / assign_seconds / join_seconds:
        Wall-clock duration of the three phases (tree/index/partition
        construction, assignment/probing, actual joining).  Algorithms
        without a phase leave it at zero.
    total_seconds:
        End-to-end wall-clock duration, including structure building, as
        the paper reports ("the time to build the indexing structures is
        included").
    candidate_pairs / false_hit_prunes / true_hits / exact_tests /
    refined_pairs:
        Filter-refine accounting (``geometry="exact"`` runs only; all
        stay 0 on pure-MBR workloads).  ``candidate_pairs`` counts pairs
        entering refinement, ``false_hit_prunes`` the pairs eliminated
        by the Euclidean MBR-gap prune, ``true_hits`` the pairs accepted
        via the interior-rectangle shortcut without an exact test,
        ``exact_tests`` the pairs that needed one, and ``refined_pairs``
        the survivors.  ``true_hits + exact_tests == candidate_pairs -
        false_hit_prunes`` holds by construction.
    """

    comparisons: int = 0
    node_tests: int = 0
    result_pairs: int = 0
    duplicates_suppressed: int = 0
    dedup_checks: int = 0
    filtered: int = 0
    replicated_entries: int = 0
    candidate_pairs: int = 0
    false_hit_prunes: int = 0
    true_hits: int = 0
    exact_tests: int = 0
    refined_pairs: int = 0
    memory_bytes: int = 0
    build_seconds: float = 0.0
    assign_seconds: float = 0.0
    join_seconds: float = 0.0
    total_seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    def merge(self, other: "JoinStatistics") -> None:
        """Accumulate another statistics object into this one.

        Used by the chunked and multiprocess engines to combine
        per-chunk statistics: counters add up (total work is invariant
        under parallelisation), timings add up (sequential-equivalent
        work), and the memory footprint takes the maximum, matching the
        per-core peak-resident semantics of the paper's §3 deployment.
        ``extra`` is deliberately untouched — engines record their own
        phase wall-clocks there (``decompose_seconds``,
        ``worker_join_seconds``, ``merge_seconds``, per-chunk lists)
        after merging, and ``total_seconds`` is overwritten by
        :meth:`SpatialJoinAlgorithm.join` with the true end-to-end
        wall-clock, so parallel speedup shows as ``total_seconds``
        dropping below the summed phase times.
        """
        self.comparisons += other.comparisons
        self.node_tests += other.node_tests
        self.result_pairs += other.result_pairs
        self.duplicates_suppressed += other.duplicates_suppressed
        self.dedup_checks += other.dedup_checks
        self.filtered += other.filtered
        self.replicated_entries += other.replicated_entries
        self.candidate_pairs += other.candidate_pairs
        self.false_hit_prunes += other.false_hit_prunes
        self.true_hits += other.true_hits
        self.exact_tests += other.exact_tests
        self.refined_pairs += other.refined_pairs
        self.memory_bytes = max(self.memory_bytes, other.memory_bytes)
        self.build_seconds += other.build_seconds
        self.assign_seconds += other.assign_seconds
        self.join_seconds += other.join_seconds
        self.total_seconds += other.total_seconds

    def as_dict(self) -> dict:
        """Flat dictionary view used by the benchmark reporter."""
        return {
            "comparisons": self.comparisons,
            "node_tests": self.node_tests,
            "result_pairs": self.result_pairs,
            "duplicates_suppressed": self.duplicates_suppressed,
            "dedup_checks": self.dedup_checks,
            "filtered": self.filtered,
            "replicated_entries": self.replicated_entries,
            "candidate_pairs": self.candidate_pairs,
            "false_hit_prunes": self.false_hit_prunes,
            "true_hits": self.true_hits,
            "exact_tests": self.exact_tests,
            "refined_pairs": self.refined_pairs,
            "memory_bytes": self.memory_bytes,
            "build_seconds": self.build_seconds,
            "assign_seconds": self.assign_seconds,
            "join_seconds": self.join_seconds,
            "total_seconds": self.total_seconds,
        }
