"""Memory-budgeted spatial join with partition spilling.

TOUCH is an *in-memory* join; PR 5-7 grew it into a long-lived serving
tier, still assuming both datasets (and every replica) fit in RAM.
:class:`BudgetedSpatialJoin` removes that assumption: given a byte
budget, it joins datasets whose priced footprint exceeds the budget by
decomposing the universe into tiles, keeping as many tiles resident as
the budget allows and spilling the rest to disk as ``.npy`` row-slices,
mirroring the AsterixDB build/probe spill lifecycle (``spilledStatus``
bookkeeping, ``freeMem`` accounting, unspill-on-close):

1. **Partition & price.**  The universe is decomposed exactly as the
   chunked/parallel engines do (:mod:`repro.parallel.decompose`), so the
   boundary-ownership rule guarantees a duplicate-free merge.  Each
   partition is priced with the base algorithm's ``estimate_bytes``.
2. **Admit or spill.**  Partitions charge the
   :class:`~repro.memory.budget.MemoryBudget` first-fit; whatever does
   not fit is written to a :class:`~repro.memory.spill.SpillStore` and
   its member lists are dropped.
3. **Resident pass.**  Resident partitions join first, releasing their
   charge as each local join closes.
4. **Unspill-on-close.**  With the build side shrunk, spilled
   partitions are pulled back in passes: each pass admits every
   partition that now fits (an *unspill*), joins it, and releases it.
5. **Recursive repartitioning.**  A skewed partition that exceeds the
   whole budget on its own is re-decomposed by a nested budgeted join
   over its members (bounded depth), so heavy tiles degrade to more,
   smaller spills instead of blowing the budget.

Pair parity with the unbudgeted algorithm is exact: every partition
join is complete and sound for its members, and the reference-point
ownership filter keeps each pair exactly once — the same argument the
chunked-parity suite proves for :class:`ChunkedSpatialJoin`.

Spill activity is recorded in ``stats.extra`` (see
:data:`~repro.memory.budget.SPILL_COUNTER_KEYS`) and, when a shared
:class:`~repro.memory.budget.SpillMetrics` is attached, aggregated into
the owning service's ``stats()``.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.geometry.mbr import total_mbr
from repro.geometry.objects import SpatialObject
from repro.joins.base import Pair, SpatialJoinAlgorithm, dimensionality
from repro.joins.registry import AlgorithmSpec
from repro.memory.budget import MemoryBudget, SpillMetrics, validate_max_bytes
from repro.memory.spill import SpilledPartition, SpillStore
from repro.parallel.decompose import Decomposition
from repro.stats.counters import JoinStatistics

__all__ = ["BudgetedSpatialJoin"]

#: Upper bound on partitions per decomposition level; recursion splits
#: further when a single level cannot isolate the skew.
MAX_SPILL_PARTITIONS = 64
#: Recursion bound for skewed partitions that refuse to shrink (e.g.
#: every box stacked on one point).  At the bound the partition joins
#: in one piece and the overrun is counted instead.
MAX_REPARTITION_DEPTH = 3


class BudgetedSpatialJoin(SpatialJoinAlgorithm):
    """Run any registered join under a byte budget, spilling partitions.

    Parameters
    ----------
    base:
        Registry name, :class:`~repro.joins.registry.AlgorithmSpec` or
        zero-argument factory for the underlying algorithm (a fresh
        instance joins every partition).
    max_bytes:
        The byte budget.  Joins whose priced footprint fits run the base
        algorithm unchanged (zero spill counters).
    kind / axis:
        Decomposition geometry, as in the chunked/parallel engines.
    spill_root:
        Directory under which the per-join spill directory is created
        (system temp dir by default).
    metrics:
        Optional shared :class:`~repro.memory.budget.SpillMetrics`;
        the service layer attaches its own to aggregate counters across
        probes.
    """

    name = "Budgeted"

    def __init__(
        self,
        base: "str | AlgorithmSpec | Callable[[], SpatialJoinAlgorithm]",
        max_bytes: int,
        *,
        kind: str = "tiles",
        axis: int = 0,
        spill_root: str | None = None,
        metrics: SpillMetrics | None = None,
        max_partitions: int = MAX_SPILL_PARTITIONS,
        max_depth: int = MAX_REPARTITION_DEPTH,
        _depth: int = 0,
    ) -> None:
        self.max_bytes = validate_max_bytes(max_bytes)
        if isinstance(base, str):
            base = AlgorithmSpec.create(base)
        self.base = base
        self.base_factory = base.make if isinstance(base, AlgorithmSpec) else base
        self.kind = kind
        self.axis = axis
        self.spill_root = spill_root
        self.metrics = metrics
        self.max_partitions = max_partitions
        self.max_depth = max_depth
        self._depth = _depth
        sample = self.base_factory()
        self.base_name = sample.name
        self.name = f"Budgeted[{sample.name}]"
        #: Spill directory of the most recent join — removed by the time
        #: the join returns; kept for the hygiene tests.
        self.last_spill_dir: str | None = None

    def describe(self) -> dict:
        return {
            "base": self.base_name,
            "max_bytes": self.max_bytes,
            "decompose": self.kind,
            "max_partitions": self.max_partitions,
        }

    def estimate_bytes(self, n_a: int, n_b: int, dim: int) -> int:
        return self.base_factory().estimate_bytes(n_a, n_b, dim)

    # -- engine --------------------------------------------------------
    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        counters = {key: 0 for key in (
            "spilled_partitions", "spill_bytes_written", "spill_bytes_read",
            "unspills", "spill_passes", "recursive_repartitions",
            "budget_overruns", "resident_partitions",
        )}
        stats.extra["budget_bytes"] = self.max_bytes
        stats.extra.update(counters)
        if not objects_a or not objects_b:
            return []

        pricer = self.base_factory()
        dim = dimensionality(objects_a, objects_b)
        estimated = pricer.estimate_bytes(len(objects_a), len(objects_b), dim)
        stats.extra["estimated_bytes"] = estimated
        if estimated <= self.max_bytes:
            result = self.base_factory().join(objects_a, objects_b)
            stats.merge(result.stats)
            return list(result.pairs)

        pairs = self._spilling_join(
            objects_a, objects_b, pricer, dim, estimated, stats, counters
        )
        stats.extra.update(counters)
        if self.metrics is not None and self._depth == 0:
            self.metrics.add(
                spilled_joins=1,
                **{key: counters[key] for key in counters if key != "resident_partitions"},
            )
        return pairs

    def _spilling_join(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        pricer: SpatialJoinAlgorithm,
        dim: int,
        estimated: int,
        stats: JoinStatistics,
        counters: dict[str, int],
    ) -> list[Pair]:
        # Oversplit by 2x: members of neighbouring tiles overlap
        # (straddlers replicate), so even splits still need headroom.
        n_parts = min(
            self.max_partitions,
            max(2, -(-2 * estimated // self.max_bytes)),
        )
        universe = total_mbr(o.mbr for o in objects_a).union(
            total_mbr(o.mbr for o in objects_b)
        )
        decomposition = Decomposition.build(
            universe, kind=self.kind, n_chunks=n_parts, axis=self.axis
        )
        stats.extra["spill_partitions_total"] = len(decomposition.regions)

        budget = MemoryBudget(self.max_bytes)
        store = SpillStore(root=self.spill_root)
        self.last_spill_dir = store.directory
        pairs: list[Pair] = []
        try:
            # Phase 1: admit first-fit, spill the rest.
            resident: list[tuple[int, list, list, int]] = []
            spilled: list[tuple[int, SpilledPartition]] = []
            for index, region in enumerate(decomposition.regions):
                chunk_a = decomposition.members(region, objects_a)
                chunk_b = decomposition.members(region, objects_b)
                if not chunk_a or not chunk_b:
                    continue
                cost = pricer.estimate_bytes(len(chunk_a), len(chunk_b), dim)
                if budget.fits(cost):
                    budget.charge(cost)
                    resident.append((index, chunk_a, chunk_b, cost))
                else:
                    part = store.write(index, chunk_a, chunk_b)
                    spilled.append((index, part))
                    del chunk_a, chunk_b
            counters["resident_partitions"] += len(resident)
            counters["spilled_partitions"] += len(spilled)
            counters["spill_bytes_written"] += store.bytes_written

            # Phase 2: join resident partitions, releasing as each closes.
            for index, chunk_a, chunk_b, cost in resident:
                pairs.extend(
                    self._join_partition(
                        decomposition, index, chunk_a, chunk_b, stats, counters
                    )
                )
                budget.release(cost)
            resident.clear()

            # Phase 3: unspill-on-close — pull spilled partitions back in
            # passes now that the resident charges are gone.
            queue = spilled
            while queue:
                counters["spill_passes"] += 1
                admitted: list[tuple[int, SpilledPartition, int]] = []
                deferred: list[tuple[int, SpilledPartition]] = []
                for index, part in queue:
                    cost = pricer.estimate_bytes(part.n_a, part.n_b, dim)
                    if budget.fits(cost):
                        budget.charge(cost)
                        admitted.append((index, part, cost))
                    else:
                        deferred.append((index, part))
                if not admitted:
                    # Head of the queue exceeds the whole (empty) budget:
                    # skewed partition — recursively repartition it.
                    index, part = deferred.pop(0)
                    chunk_a, chunk_b = store.read(part)
                    counters["spill_bytes_read"] += part.file_bytes
                    pairs.extend(
                        self._join_skewed(
                            decomposition, index, chunk_a, chunk_b, stats, counters
                        )
                    )
                    queue = deferred
                    continue
                for index, part, cost in admitted:
                    chunk_a, chunk_b = store.read(part)
                    counters["spill_bytes_read"] += part.file_bytes
                    counters["unspills"] += 1
                    pairs.extend(
                        self._join_partition(
                            decomposition, index, chunk_a, chunk_b, stats, counters
                        )
                    )
                    budget.release(cost)
                queue = deferred
        finally:
            store.close()
        stats.extra["budget_peak_bytes"] = budget.peak_bytes
        return pairs

    def _join_partition(
        self,
        decomposition: Decomposition,
        index: int,
        chunk_a: list[SpatialObject],
        chunk_b: list[SpatialObject],
        stats: JoinStatistics,
        counters: dict[str, int],
        algorithm: SpatialJoinAlgorithm | None = None,
    ) -> list[Pair]:
        """Join one partition and keep only the pairs this region owns."""
        start = time.perf_counter()
        result = (algorithm or self.base_factory()).join(chunk_a, chunk_b)
        stats.merge(result.stats)
        region = decomposition.regions[index]
        mbr_a = {o.oid: o.mbr for o in chunk_a}
        mbr_b = {o.oid: o.mbr for o in chunk_b}
        stats.dedup_checks += len(result.pairs)
        owned = [
            (oid_a, oid_b)
            for oid_a, oid_b in result.pairs
            if decomposition.owns(region, mbr_a[oid_a], mbr_b[oid_b])
        ]
        stats.duplicates_suppressed += len(result.pairs) - len(owned)
        stats.extra["partition_join_seconds"] = stats.extra.get(
            "partition_join_seconds", 0.0
        ) + (time.perf_counter() - start)
        return owned

    def _join_skewed(
        self,
        decomposition: Decomposition,
        index: int,
        chunk_a: list[SpatialObject],
        chunk_b: list[SpatialObject],
        stats: JoinStatistics,
        counters: dict[str, int],
    ) -> list[Pair]:
        """A partition bigger than the whole budget: recurse or overrun."""
        if self._depth >= self.max_depth:
            counters["budget_overruns"] += 1
            return self._join_partition(
                decomposition, index, chunk_a, chunk_b, stats, counters
            )
        counters["recursive_repartitions"] += 1
        nested = BudgetedSpatialJoin(
            self.base,
            self.max_bytes,
            kind=self.kind,
            axis=self.axis,
            spill_root=self.spill_root,
            metrics=None,  # parent folds the nested counters in below
            max_partitions=self.max_partitions,
            max_depth=self.max_depth,
            _depth=self._depth + 1,
        )
        result = nested.join(chunk_a, chunk_b)
        stats.merge(result.stats)
        for key in counters:
            counters[key] += int(result.stats.extra.get(key, 0))
        # The nested join is complete and duplicate-free for the members;
        # the parent region's ownership filter dedups the straddlers.
        region = decomposition.regions[index]
        mbr_a = {o.oid: o.mbr for o in chunk_a}
        mbr_b = {o.oid: o.mbr for o in chunk_b}
        stats.dedup_checks += len(result.pairs)
        owned = [
            (oid_a, oid_b)
            for oid_a, oid_b in result.pairs
            if decomposition.owns(region, mbr_a[oid_a], mbr_b[oid_b])
        ]
        stats.duplicates_suppressed += len(result.pairs) - len(owned)
        return owned
    # NOTE: phase-3 recursion happens with the parent budget drained, so
    # the nested join sees the full budget — skew degrades to more,
    # smaller spills rather than an unbounded resident set.
